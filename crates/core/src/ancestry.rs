//! Append-only rooted-tree ancestry with skew-binary jump pointers.
//!
//! Both the fork framework and the protocol simulator are built around the
//! same shape of data: an arena-allocated rooted tree that only ever grows
//! (vertices/blocks are immutable once inserted and parents always exist
//! before children), over which the hot queries are *ancestry* queries —
//! lowest common ancestor, ancestor at a given depth, deepest ancestor
//! whose monotone key (slot label) does not exceed a bound. This module
//! factors that machinery out once.
//!
//! [`AncestorIndex`] stores **one jump pointer per node** chosen by the
//! skew-binary rule: node `v` jumps to `jump(jump(parent))` when the two
//! previous jumps span equal depth ranges, and to `parent` otherwise. The
//! rule makes every root path a skew-binary counter, which guarantees any
//! monotone descent (to a target depth, key bound, or the LCA) takes
//! `O(log n)` steps — while an insert costs `O(1)` (two array reads),
//! unlike classic binary lifting's `O(log n)` table row per node. For the
//! workloads here — millions of inserts, orders of magnitude fewer
//! queries — that trade is decisively better, and it uses 3 words per
//! node instead of `O(log n)`.

use std::cmp::Ordering;

/// An append-only ancestry index over a rooted tree.
///
/// Node `0` is the root, created by [`AncestorIndex::new`]; every later
/// node is appended under an existing parent with [`push`]. Nodes are
/// identified by their insertion index (`usize`), which callers typically
/// wrap in their own id newtype.
///
/// # Examples
///
/// ```
/// use multihonest_core::AncestorIndex;
///
/// let mut idx = AncestorIndex::new();
/// let a = idx.push(0); // child of the root
/// let b = idx.push(a);
/// let c = idx.push(a);
/// assert_eq!(idx.depth(b), 2);
/// assert_eq!(idx.lca(b, c), a);
/// assert_eq!(idx.ancestor_at_depth(b, 1), a);
/// assert!(idx.is_ancestor_or_equal(a, b));
/// assert!(!idx.is_ancestor_or_equal(b, c));
/// ```
///
/// [`push`]: AncestorIndex::push
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AncestorIndex {
    /// Parent links; the root self-loops so every entry is total.
    parents: Vec<u32>,
    depths: Vec<u32>,
    /// Skew-binary jump pointers: an ancestor strictly above the node
    /// (the root self-loops). The jump distance is a pure function of
    /// depth, so equal-depth nodes always jump to equal depths.
    jumps: Vec<u32>,
}

impl Default for AncestorIndex {
    fn default() -> AncestorIndex {
        AncestorIndex::new()
    }
}

impl AncestorIndex {
    /// Creates an index holding only the root (node `0`, depth 0).
    pub fn new() -> AncestorIndex {
        AncestorIndex {
            parents: vec![0],
            depths: vec![0],
            jumps: vec![0],
        }
    }

    /// The number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.depths.len()
    }

    /// Reserves room for at least `additional` more nodes.
    pub fn reserve(&mut self, additional: usize) {
        self.parents.reserve(additional);
        self.depths.reserve(additional);
        self.jumps.reserve(additional);
    }

    /// Resets the index to the root-only state of [`AncestorIndex::new`]
    /// while keeping the column allocations — the reuse hook batch
    /// drivers call between executions instead of allocating afresh.
    pub fn clear(&mut self) {
        self.parents.clear();
        self.depths.clear();
        self.jumps.clear();
        self.parents.push(0);
        self.depths.push(0);
        self.jumps.push(0);
    }

    /// Always `false`: the root is always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Appends a node under `parent` and returns its index. `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist.
    pub fn push(&mut self, parent: usize) -> usize {
        assert!(parent < self.depths.len(), "parent {parent} does not exist");
        let id = self.depths.len();
        assert!(id < u32::MAX as usize, "ancestry index is full");
        self.depths.push(self.depths[parent] + 1);
        self.parents.push(parent as u32);
        // Skew-binary rule: merge two equal-span jumps into one.
        let j1 = self.jumps[parent] as usize;
        let j2 = self.jumps[j1] as usize;
        let jump = if self.depths[parent] - self.depths[j1] == self.depths[j1] - self.depths[j2] {
            j2
        } else {
            parent
        };
        self.jumps.push(jump as u32);
        id
    }

    /// The depth of `v` (0 for the root).
    #[inline]
    pub fn depth(&self, v: usize) -> usize {
        self.depths[v] as usize
    }

    /// The parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: usize) -> Option<usize> {
        (v != 0).then(|| self.parents[v] as usize)
    }

    /// The `steps`-th ancestor of `v`, clamped at the root. `O(log n)`.
    pub fn ancestor(&self, v: usize, steps: usize) -> usize {
        let d = self.depths[v] as usize;
        self.ancestor_at_depth(v, d.saturating_sub(steps))
    }

    /// The ancestor of `v` at depth `depth` (`v` itself if it is not
    /// deeper than `depth`). `O(log n)`: take the jump whenever it does
    /// not overshoot, the parent link otherwise.
    pub fn ancestor_at_depth(&self, v: usize, depth: usize) -> usize {
        let depth = depth as u32;
        let mut cur = v;
        while self.depths[cur] > depth {
            let j = self.jumps[cur] as usize;
            cur = if self.depths[j] >= depth {
                j
            } else {
                self.parents[cur] as usize
            };
        }
        cur
    }

    /// Returns `true` when `anc` lies on the root path of `v` (inclusive).
    pub fn is_ancestor_or_equal(&self, anc: usize, v: usize) -> bool {
        self.depths[anc] <= self.depths[v]
            && self.ancestor_at_depth(v, self.depths[anc] as usize) == anc
    }

    /// The lowest common ancestor of `a` and `b`: lift the deeper endpoint
    /// to equal depth, then walk both up in lockstep — jumping when the
    /// jump targets differ (the meet is still below them), stepping to
    /// parents when they coincide (jumping could overshoot). `O(log n)`.
    ///
    /// The lockstep is sound because the jump distance is a pure function
    /// of depth: equal-depth nodes always jump to equal depths.
    pub fn lca(&self, a: usize, b: usize) -> usize {
        let (da, db) = (self.depths[a] as usize, self.depths[b] as usize);
        let mut a = self.ancestor_at_depth(a, da.min(db));
        let mut b = self.ancestor_at_depth(b, da.min(db));
        while a != b {
            let (ja, jb) = (self.jumps[a] as usize, self.jumps[b] as usize);
            if ja != jb {
                a = ja;
                b = jb;
            } else {
                a = self.parents[a] as usize;
                b = self.parents[b] as usize;
            }
        }
        a
    }

    /// The deepest node on the root path of `v` (inclusive) whose key does
    /// not exceed `max_key`, where `key` maps a node to its key.
    /// `O(log n)` plus one `key` call per step.
    ///
    /// Requires keys to be *non-decreasing* along every root path and
    /// `key(root) ≤ max_key` — exactly the shape of slot labels in forks
    /// and block stores (children always occupy later slots).
    pub fn last_key_at_most<K: Ord>(
        &self,
        v: usize,
        max_key: K,
        key: impl Fn(usize) -> K,
    ) -> usize {
        let mut cur = v;
        // Invariant: key(cur) > max_key; jump whenever the jump target is
        // still above the bound (all skipped nodes have keys ≥ its key),
        // step to the parent otherwise. The first node at or below the
        // bound is the answer: its on-path child had a key above it.
        while key(cur) > max_key {
            let j = self.jumps[cur] as usize;
            cur = if key(j) > max_key {
                j
            } else {
                self.parents[cur] as usize
            };
        }
        cur
    }

    /// Compares `a` and `b` by pre-order (DFS entry) position, taking
    /// sibling order to be insertion order — valid whenever the caller
    /// appends children in increasing index order, which every append-only
    /// arena in this workspace does. An ancestor precedes its descendants;
    /// unrelated nodes compare by the branches they take below their
    /// lowest common ancestor.
    ///
    /// The order of existing nodes is stable under [`push`]: appending a
    /// node never reorders previously inserted ones (it only inserts the
    /// new node somewhere after its parent).
    ///
    /// [`push`]: AncestorIndex::push
    pub fn preorder_cmp(&self, a: usize, b: usize) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        let c = self.lca(a, b);
        if c == a {
            return Ordering::Less;
        }
        if c == b {
            return Ordering::Greater;
        }
        let ca = self.ancestor_at_depth(a, self.depths[c] as usize + 1);
        let cb = self.ancestor_at_depth(b, self.depths[c] as usize + 1);
        ca.cmp(&cb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random parent choice (SplitMix64-style).
    fn mix(i: u64) -> u64 {
        let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_tree(n: usize) -> AncestorIndex {
        let mut idx = AncestorIndex::new();
        for i in 0..n {
            let parent = (mix(i as u64) % idx.len() as u64) as usize;
            idx.push(parent);
        }
        idx
    }

    fn lca_walk(idx: &AncestorIndex, mut a: usize, mut b: usize) -> usize {
        while idx.depth(a) > idx.depth(b) {
            a = idx.parent(a).unwrap();
        }
        while idx.depth(b) > idx.depth(a) {
            b = idx.parent(b).unwrap();
        }
        while a != b {
            a = idx.parent(a).unwrap();
            b = idx.parent(b).unwrap();
        }
        a
    }

    #[test]
    fn root_only() {
        let idx = AncestorIndex::new();
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
        assert_eq!(idx.depth(0), 0);
        assert_eq!(idx.parent(0), None);
        assert_eq!(idx.lca(0, 0), 0);
        assert_eq!(idx.ancestor(0, 5), 0);
    }

    #[test]
    fn chain_queries() {
        let mut idx = AncestorIndex::new();
        let mut chain = vec![0usize];
        for _ in 0..1000 {
            let tip = idx.push(*chain.last().unwrap());
            chain.push(tip);
        }
        let tip = *chain.last().unwrap();
        assert_eq!(idx.ancestor(tip, 0), tip);
        assert_eq!(idx.ancestor(tip, 999), chain[1]);
        assert_eq!(idx.ancestor(tip, 1000), 0);
        assert_eq!(idx.ancestor(tip, 5000), 0);
        assert_eq!(idx.ancestor_at_depth(tip, 731), chain[731]);
        assert_eq!(idx.ancestor_at_depth(tip, 2000), tip);
        assert_eq!(idx.lca(tip, chain[400]), chain[400]);
        assert!(idx.is_ancestor_or_equal(chain[400], tip));
        assert!(!idx.is_ancestor_or_equal(tip, chain[400]));
    }

    #[test]
    fn jump_distance_is_a_function_of_depth() {
        // The lockstep LCA walk relies on equal-depth nodes jumping to
        // equal depths; verify on a deterministic random tree.
        let idx = random_tree(500);
        let mut span_at_depth = std::collections::HashMap::new();
        for v in 1..idx.len() {
            let span = idx.depth(v) - idx.depth(idx.jumps[v] as usize);
            let prev = span_at_depth.insert(idx.depth(v), span);
            assert!(
                prev.is_none() || prev == Some(span),
                "depth {}",
                idx.depth(v)
            );
        }
    }

    #[test]
    fn lca_matches_parent_walk_on_random_trees() {
        let idx = random_tree(400);
        for a in (0..idx.len()).step_by(7) {
            for b in (0..idx.len()).step_by(11) {
                assert_eq!(idx.lca(a, b), lca_walk(&idx, a, b), "lca({a}, {b})");
            }
        }
    }

    #[test]
    fn last_key_at_most_matches_walk() {
        // Key = depth * 2 (strictly increasing along root paths).
        let idx = random_tree(300);
        let key = |v: usize| idx.depth(v) * 2;
        for v in 0..idx.len() {
            for bound in [0usize, 1, 3, 7, idx.depth(v) * 2] {
                let got = idx.last_key_at_most(v, bound, key);
                // Walk reference.
                let mut cur = v;
                while key(cur) > bound {
                    cur = idx.parent(cur).unwrap();
                }
                assert_eq!(got, cur, "last_key_at_most({v}, {bound})");
            }
        }
    }

    #[test]
    fn preorder_matches_explicit_dfs() {
        let idx = random_tree(300);
        // Build children lists (insertion order = index order) and DFS.
        let mut children = vec![Vec::new(); idx.len()];
        for v in 1..idx.len() {
            children[idx.parent(v).unwrap()].push(v);
        }
        let mut order = vec![0usize; idx.len()];
        let mut stack = vec![0usize];
        let mut next = 0;
        while let Some(v) = stack.pop() {
            order[v] = next;
            next += 1;
            for &c in children[v].iter().rev() {
                stack.push(c);
            }
        }
        for a in (0..idx.len()).step_by(5) {
            for b in (0..idx.len()).step_by(9) {
                assert_eq!(
                    idx.preorder_cmp(a, b),
                    order[a].cmp(&order[b]),
                    "preorder_cmp({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn preorder_is_stable_under_push() {
        let mut idx = random_tree(120);
        let pairs: Vec<(usize, usize)> = (0..idx.len())
            .step_by(3)
            .flat_map(|a| (0..idx.len()).step_by(7).map(move |b| (a, b)))
            .collect();
        let before: Vec<Ordering> = pairs.iter().map(|&(a, b)| idx.preorder_cmp(a, b)).collect();
        for i in 0..100 {
            let parent = (mix(1000 + i) % idx.len() as u64) as usize;
            idx.push(parent);
        }
        for (&(a, b), &ord) in pairs.iter().zip(&before) {
            assert_eq!(idx.preorder_cmp(a, b), ord, "({a}, {b}) reordered");
        }
    }

    #[test]
    fn clear_restores_root_only_state() {
        let mut idx = random_tree(200);
        idx.clear();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.depth(0), 0);
        assert_eq!(idx.parent(0), None);
        // Rebuilding after clear matches a fresh build exactly.
        let rebuilt = {
            for i in 0..200 {
                let parent = (mix(i as u64) % idx.len() as u64) as usize;
                idx.push(parent);
            }
            idx
        };
        assert_eq!(rebuilt, random_tree(200));
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn push_rejects_missing_parent() {
        let mut idx = AncestorIndex::new();
        idx.push(3);
    }
}
