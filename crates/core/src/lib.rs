//! # multihonest-core
//!
//! Foundational, paper-agnostic data structures shared by the rest of the
//! workspace. The crate sits below every other `multihonest-*` crate (it
//! depends on nothing), so both the fork framework (`multihonest-fork`)
//! and the protocol simulator (`multihonest-sim`) can build on the same
//! machinery instead of maintaining parallel implementations.
//!
//! Currently this means [`ancestry`]: an append-only rooted-tree ancestry
//! index with skew-binary jump pointers — one pointer per node, `O(1)`
//! per insert — answering lowest-common-ancestor and level/key ancestor
//! queries in `O(log n)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ancestry;

pub use crate::ancestry::AncestorIndex;
