//! # multihonest
//!
//! A complete Rust implementation of *Consistency of Proof-of-Stake
//! Blockchains with Concurrent Honest Slot Leaders* (Kiayias, Quader,
//! Russell; ICDCS 2020): the fork framework with multiply honest slots,
//! Catalan slots and the Unique Vertex Property, the relative-margin
//! recurrences and the exact settlement-probability algorithm behind the
//! paper's Table 1, the optimal online adversary `A*`, the
//! generating-function tail bounds behind Theorems 1, 2, 7 and 8, and an
//! executable longest-chain PoS protocol simulator.
//!
//! This facade crate re-exports the subsystem crates and offers a
//! high-level entry point, [`ConsistencyAnalyzer`].
//!
//! ## Quickstart
//!
//! ```
//! use multihonest::ConsistencyAnalyzer;
//!
//! // 30% adversarial stake; 60% of honest slots have a unique leader.
//! let analyzer = ConsistencyAnalyzer::from_stake(0.30, 0.60)?;
//!
//! // Exact probability that a transaction is rolled back after waiting
//! // k = 50 slots (paper Section 6.6 / Table 1):
//! let exact = analyzer.settlement_failure_exact(50);
//!
//! // The rigorous analytic bound of Theorem 1:
//! let bound = analyzer.settlement_failure_bound(50).expect("valid parameters");
//! assert!(exact <= bound);
//!
//! // Which prior analyses could even handle these parameters?
//! let report = analyzer.threshold_report();
//! assert!(report.optimal); // p_h + p_H > p_A always holds here
//! # Ok::<(), multihonest::chars::DistributionError>(())
//! ```
//!
//! ## Subsystem map
//!
//! | module | contents | paper sections |
//! |---|---|---|
//! | [`core`] | shared append-only ancestry/LCA layer | — |
//! | [`chars`] | characteristic strings, distributions, reduction map | 2, 8 |
//! | [`fork`] | fork trees, axioms, reach/margin by definition | 2, 3, 6, A |
//! | [`catalan`] | Catalan slots, UVP characterizations | 3, 4 |
//! | [`margin`] | Theorem-5 recurrences, exact settlement DP | 6 |
//! | [`adversary`] | settlement game, optimal adversary `A*`, Monte Carlo | 2.2, 6.5 |
//! | [`analytic`] | generating functions, Bounds 1–3, Theorems 1/2/7/8 | 4, 5, 8, 9 |
//! | [`sim`] | executable PoS protocol with Δ-network and attacks | 2, 8 |
//! | [`scenario`] | columnar million-slot engine + scenario library | 2, 8 |
//! | [`sweep`] | campaign orchestrator: seeded grids, checkpoints, reports | 6.6, 8 |
//! | [`obs`] | zero-cost spans, metrics registry, Chrome-trace export | — |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use multihonest_adversary as adversary;
pub use multihonest_analytic as analytic;
pub use multihonest_catalan as catalan;
pub use multihonest_chars as chars;
pub use multihonest_core as core;
pub use multihonest_fork as fork;
pub use multihonest_margin as margin;
pub use multihonest_obs as obs;
pub use multihonest_scenario as scenario;
pub use multihonest_sim as sim;
pub use multihonest_sweep as sweep;

/// Convenient re-exports of the most used types.
pub mod prelude {
    pub use multihonest_adversary::{is_canonical, MonteCarlo, OptimalAdversary, SettlementGame};
    pub use multihonest_analytic::{Bound1, Bound2, Bound3};
    pub use multihonest_catalan::CatalanAnalysis;
    pub use multihonest_chars::{
        BernoulliCondition, CharString, Reduction, SemiString, SemiSymbol, Symbol,
    };
    pub use multihonest_fork::{Fork, ReachAnalysis, VertexId};
    pub use multihonest_margin::{ExactSettlement, MarginState, ReachState};
    pub use multihonest_sim::{SimConfig, Simulation, Strategy, TieBreak};
}

use multihonest_analytic::baselines;
use multihonest_analytic::ParameterError;
use multihonest_chars::{BernoulliCondition, DistributionError};
use multihonest_margin::ExactSettlement;

/// Which consistency analyses apply to a parameter point, and with what
/// guarantees. See [`ConsistencyAnalyzer::threshold_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdReport {
    /// This paper: `p_h + p_H > p_A`, error `e^{−Θ(k)}`.
    pub optimal: bool,
    /// Praos/Genesis: `p_h − p_H > p_A`, error `e^{−Θ(k)}`.
    pub praos_genesis: bool,
    /// Sleepy/Snow White: `p_h > p_A`, error `e^{−Θ(√k)}`.
    pub sleepy_snow_white: bool,
}

/// High-level consistency analysis for a longest-chain PoS deployment.
///
/// Wraps the `(ε, p_h)`-Bernoulli condition together with the exact
/// settlement DP and the analytic bounds, exposing the questions an
/// operator actually asks: *how long must a client wait before treating a
/// transaction as settled, and with what failure probability?*
#[derive(Debug, Clone)]
pub struct ConsistencyAnalyzer {
    cond: BernoulliCondition,
    exact: ExactSettlement,
}

impl ConsistencyAnalyzer {
    /// Creates an analyzer from the symbol distribution directly.
    pub fn new(cond: BernoulliCondition) -> ConsistencyAnalyzer {
        ConsistencyAnalyzer {
            cond,
            exact: ExactSettlement::new(cond),
        }
    }

    /// Creates an analyzer from deployment-style parameters:
    /// `adversarial_stake ∈ (0, 1/2)` is `p_A`, and `unique_fraction` is
    /// the fraction of honest-led slots with a *single* honest leader
    /// (Table 1's `Pr[h]/(1 − α)` row parameter).
    ///
    /// # Errors
    ///
    /// Returns an error when the resulting probabilities are invalid
    /// (e.g. `adversarial_stake ≥ 1/2`).
    pub fn from_stake(
        adversarial_stake: f64,
        unique_fraction: f64,
    ) -> Result<ConsistencyAnalyzer, DistributionError> {
        let p_h = unique_fraction * (1.0 - adversarial_stake);
        let p_hh = 1.0 - adversarial_stake - p_h;
        let cond = BernoulliCondition::from_probabilities(p_h, p_hh, adversarial_stake)?;
        Ok(ConsistencyAnalyzer::new(cond))
    }

    /// The underlying Bernoulli condition.
    pub fn condition(&self) -> BernoulliCondition {
        self.cond
    }

    /// The **exact** probability that a slot fails to settle within `k`
    /// slots (paper Section 6.6; the quantity tabulated in Table 1).
    pub fn settlement_failure_exact(&self, k: usize) -> f64 {
        self.exact.violation_probability(k)
    }

    /// Exact failure probabilities at several horizons, sharing one DP.
    pub fn settlement_failure_exact_many(&self, ks: &[usize]) -> Vec<f64> {
        self.exact.violation_probabilities(ks)
    }

    /// The rigorous analytic bound of Theorem 1 at horizon `k`.
    ///
    /// # Errors
    ///
    /// Returns an error when `p_h = 0` (Theorem 1 needs uniquely honest
    /// slots; see [`Self::settlement_failure_bound_tiebreak`]).
    pub fn settlement_failure_bound(&self, k: usize) -> Result<f64, ParameterError> {
        multihonest_analytic::settlement_insecurity_bound(
            self.cond.epsilon(),
            self.cond.p_unique_honest(),
            k,
        )
    }

    /// Theorem 2's bound (consistent tie-breaking, works with `p_h = 0`).
    ///
    /// # Errors
    ///
    /// Returns an error when `ε ∉ (0, 1)`.
    pub fn settlement_failure_bound_tiebreak(&self, k: usize) -> Result<f64, ParameterError> {
        multihonest_analytic::settlement_insecurity_bound_tiebreak(self.cond.epsilon(), k)
    }

    /// Theorem 8's common-prefix bound over a horizon of `total_len`
    /// slots.
    ///
    /// # Errors
    ///
    /// Returns an error when the Bound-1 parameters are out of range.
    pub fn cp_failure_bound(&self, total_len: usize, k: usize) -> Result<f64, ParameterError> {
        multihonest_analytic::cp_insecurity_bound(
            self.cond.epsilon(),
            self.cond.p_unique_honest(),
            total_len,
            k,
        )
    }

    /// The smallest `k` whose **exact** settlement failure probability is
    /// at most `target`, searched up to `max_k`; `None` if even `max_k`
    /// does not suffice.
    pub fn settlement_horizon(&self, target: f64, max_k: usize) -> Option<usize> {
        let ks: Vec<usize> = (0..=max_k).collect();
        let ps = self.exact.violation_probabilities(&ks);
        ps.iter().position(|&p| p <= target)
    }

    /// Which prior analyses admit these parameters (paper Section 1).
    pub fn threshold_report(&self) -> ThresholdReport {
        let a = baselines::classify(&self.cond);
        ThresholdReport {
            optimal: a.optimal,
            praos_genesis: a.praos_genesis,
            sleepy_snow_white: a.sleepy_snow_white,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_stake_roundtrip() {
        let a = ConsistencyAnalyzer::from_stake(0.3, 0.6).unwrap();
        let c = a.condition();
        assert!((c.p_adversarial() - 0.3).abs() < 1e-12);
        assert!((c.p_unique_honest() - 0.42).abs() < 1e-12);
        assert!((c.p_multi_honest() - 0.28).abs() < 1e-12);
        assert!(ConsistencyAnalyzer::from_stake(0.6, 0.5).is_err());
    }

    #[test]
    fn exact_below_bound() {
        let a = ConsistencyAnalyzer::from_stake(0.25, 0.5).unwrap();
        for k in [20, 60] {
            let exact = a.settlement_failure_exact(k);
            let bound = a.settlement_failure_bound(k).unwrap();
            assert!(exact <= bound, "k = {k}: exact {exact:e} > bound {bound:e}");
        }
    }

    #[test]
    fn settlement_horizon_monotone() {
        let a = ConsistencyAnalyzer::from_stake(0.2, 0.8).unwrap();
        let k_loose = a.settlement_horizon(1e-3, 200).unwrap();
        let k_tight = a.settlement_horizon(1e-6, 200).unwrap();
        assert!(k_tight > k_loose, "{k_tight} > {k_loose}");
        assert_eq!(a.settlement_horizon(1e-300, 10), None);
    }

    #[test]
    fn threshold_report_matches_baselines() {
        // p_h < p_A but p_h + p_H > p_A: the paper-exclusive regime.
        let a = ConsistencyAnalyzer::from_stake(0.4, 0.2).unwrap();
        let r = a.threshold_report();
        assert!(r.optimal && !r.praos_genesis && !r.sleepy_snow_white);
    }

    #[test]
    fn exact_many_matches_single() {
        let a = ConsistencyAnalyzer::from_stake(0.3, 0.5).unwrap();
        let many = a.settlement_failure_exact_many(&[10, 30]);
        assert!((many[0] - a.settlement_failure_exact(10)).abs() < 1e-12);
        assert!((many[1] - a.settlement_failure_exact(30)).abs() < 1e-12);
    }
}
