//! Throughput of the core string algorithms: the Theorem-5 margin
//! recurrence, the Catalan walk scan, and the ρ_Δ reduction map.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use multihonest::catalan::CatalanAnalysis;
use multihonest::chars::{BernoulliCondition, Reduction, SemiSyncCondition};
use multihonest::margin::recurrence;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_margin_trace(c: &mut Criterion) {
    let cond = BernoulliCondition::new(0.2, 0.4).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("margin_trace");
    for n in [1_000usize, 10_000, 100_000] {
        let w = cond.sample(&mut rng, n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| recurrence::margin_trace(std::hint::black_box(w), 0));
        });
    }
    group.finish();
}

fn bench_catalan_scan(c: &mut Criterion) {
    let cond = BernoulliCondition::new(0.2, 0.4).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("catalan_scan");
    for n in [1_000usize, 100_000] {
        let w = cond.sample(&mut rng, n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| {
                CatalanAnalysis::new(std::hint::black_box(w))
                    .catalan_slots()
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let cond = SemiSyncCondition::new(0.1, 0.02, 0.05).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let w = cond.sample(&mut rng, 100_000);
    let mut group = c.benchmark_group("reduction_map");
    group.throughput(Throughput::Elements(100_000));
    for delta in [1usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, &delta| {
            b.iter(|| Reduction::new(delta).apply(std::hint::black_box(&w)).len());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_margin_trace,
    bench_catalan_scan,
    bench_reduction
);
criterion_main!(benches);
