//! E5 timing: the optimal online adversary A* building canonical forks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use multihonest::adversary::OptimalAdversary;
use multihonest::chars::BernoulliCondition;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_astar(c: &mut Criterion) {
    let cond = BernoulliCondition::new(0.2, 0.4).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("astar_build");
    group.sample_size(20);
    for n in [50usize, 200, 800] {
        let w = cond.sample(&mut rng, n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| OptimalAdversary::build(std::hint::black_box(w)).vertex_count());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_astar);
criterion_main!(benches);
