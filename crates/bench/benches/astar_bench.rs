//! E5 timing: the optimal online adversary A* building canonical forks.
//!
//! `astar_build` drives the incremental-engine path at sizes up to
//! n = 10⁴; `astar_build_reference` times the definitional oracle on the
//! small sizes (it is super-quadratic — the gap between the two groups is
//! the engine's speedup). The committed perf baseline lives in
//! `BENCH_astar.json`, written by `astar -- bench-report`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use multihonest::adversary::{astar::reference, OptimalAdversary};
use multihonest::chars::BernoulliCondition;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_astar(c: &mut Criterion) {
    let cond = BernoulliCondition::new(0.2, 0.4).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("astar_build");
    group.sample_size(20);
    for n in [50usize, 200, 800, 3_000, 10_000] {
        let w = cond.sample(&mut rng, n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| OptimalAdversary::build(std::hint::black_box(w)).vertex_count());
        });
    }
    group.finish();
}

fn bench_astar_reference(c: &mut Criterion) {
    let cond = BernoulliCondition::new(0.2, 0.4).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("astar_build_reference");
    group.sample_size(10);
    for n in [50usize, 200, 800] {
        let w = cond.sample(&mut rng, n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| reference::build(std::hint::black_box(w)).vertex_count());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_astar, bench_astar_reference);
criterion_main!(benches);
