//! Protocol simulator throughput, per strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use multihonest::prelude::*;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for strategy in Strategy::ALL {
        let cfg = SimConfig {
            honest_nodes: 10,
            adversarial_stake: 0.3,
            active_slot_coeff: 0.25,
            delta: 2,
            slots: 2_000,
            tie_break: TieBreak::AdversarialOrder,
            strategy,
        };
        group.throughput(Throughput::Elements(cfg.slots as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    Simulation::run(std::hint::black_box(cfg), 9)
                        .metrics()
                        .final_height
                });
            },
        );
    }
    group.finish();
}

fn bench_settlement_sweep(c: &mut Criterion) {
    // The full (1..=slots) × k violation sweep on a prebuilt execution:
    // the indexed batch API vs the retained naive oracle.
    let cfg = multihonest_bench::sim_bench_config(2_000);
    let sim = Simulation::run(&cfg, 9);
    let mut group = c.benchmark_group("settlement_sweep");
    group.sample_size(10);
    for k in [10usize, 80] {
        group.bench_with_input(BenchmarkId::new("indexed", k), &k, |b, &k| {
            b.iter(|| sim.count_violating_slots(std::hint::black_box(k), cfg.slots));
        });
        group.bench_with_input(BenchmarkId::new("oracle", k), &k, |b, &k| {
            b.iter(|| {
                (1..=cfg.slots)
                    .filter(|&s| sim.settlement_violation_oracle(s, std::hint::black_box(k)))
                    .count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_settlement_sweep);
criterion_main!(benches);
