//! Protocol simulator throughput, per strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use multihonest::prelude::*;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for strategy in Strategy::ALL {
        let cfg = SimConfig {
            honest_nodes: 10,
            adversarial_stake: 0.3,
            active_slot_coeff: 0.25,
            delta: 2,
            slots: 2_000,
            tie_break: TieBreak::AdversarialOrder,
            strategy,
        };
        group.throughput(Throughput::Elements(cfg.slots as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    Simulation::run(std::hint::black_box(cfg), 9)
                        .metrics()
                        .final_height
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
