//! E1 timing: one exact-DP cell of Table 1 at several horizons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multihonest::margin::ExactSettlement;
use multihonest_bench::table1_condition;

fn bench_table1_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_cell");
    group.sample_size(10);
    for k in [50usize, 100, 200] {
        group.bench_with_input(BenchmarkId::new("alpha_0.30_ratio_0.8", k), &k, |b, &k| {
            let exact = ExactSettlement::new(table1_condition(0.30, 0.8));
            b.iter(|| exact.violation_probability(std::hint::black_box(k)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1_cell);
criterion_main!(benches);
