//! E1 timing: the banded exact-DP kernel on Table-1 workloads — single
//! cells, a shared multi-checkpoint pass (one Table-1 column), and the
//! fused-absorption cumulative-horizon variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multihonest::margin::ExactSettlement;
use multihonest_bench::{table1_condition, TABLE1_KS};

fn bench_table1_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_cell");
    group.sample_size(10);
    for k in [50usize, 100, 200] {
        group.bench_with_input(BenchmarkId::new("alpha_0.30_ratio_0.8", k), &k, |b, &k| {
            let exact = ExactSettlement::new(table1_condition(0.30, 0.8));
            b.iter(|| exact.violation_probability(std::hint::black_box(k)));
        });
    }
    group.finish();
}

fn bench_table1_column(c: &mut Criterion) {
    // One (α, ratio) pair at the full published k set — the unit of work
    // the parallel grid fans out, and the checkpoint-only accounting's
    // best case (5 sweeps across a 500-step pass).
    let mut group = c.benchmark_group("table1_column");
    group.sample_size(10);
    for (alpha, ratio) in [(0.30, 0.8), (0.10, 1.0)] {
        group.bench_with_input(
            BenchmarkId::new("k100_to_500", format!("alpha_{alpha}_ratio_{ratio}")),
            &(alpha, ratio),
            |b, &(alpha, ratio)| {
                let exact = ExactSettlement::new(table1_condition(alpha, ratio));
                b.iter(|| exact.violation_probabilities(std::hint::black_box(&TABLE1_KS)));
            },
        );
    }
    group.finish();
}

fn bench_violation_by_horizon(c: &mut Criterion) {
    let mut group = c.benchmark_group("violation_by_horizon");
    group.sample_size(10);
    for (k, horizon) in [(50usize, 150usize), (100, 300)] {
        group.bench_with_input(
            BenchmarkId::new("alpha_0.30_ratio_0.8", format!("{k}_{horizon}")),
            &(k, horizon),
            |b, &(k, horizon)| {
                let exact = ExactSettlement::new(table1_condition(0.30, 0.8));
                b.iter(|| {
                    exact.violation_by_horizon(
                        std::hint::black_box(k),
                        std::hint::black_box(horizon),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_table1_cell,
    bench_table1_column,
    bench_violation_by_horizon
);
criterion_main!(benches);
