//! Analytic machinery timing: series construction and theorem bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multihonest::analytic::{self, Bound1, Bound2};
use multihonest::chars::SemiSyncCondition;

fn bench_bound_series(c: &mut Criterion) {
    let mut group = c.benchmark_group("bound_series_tail");
    group.sample_size(10);
    for k in [100usize, 400] {
        group.bench_with_input(BenchmarkId::new("bound1_exact", k), &k, |b, &k| {
            let bound = Bound1::new(0.3, 0.4).unwrap();
            b.iter(|| bound.tail_exact(std::hint::black_box(k)));
        });
        group.bench_with_input(BenchmarkId::new("bound2_exact", k), &k, |b, &k| {
            let bound = Bound2::new(0.3).unwrap();
            b.iter(|| bound.tail_exact(std::hint::black_box(k)));
        });
    }
    group.finish();
}

fn bench_theorem_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem_bounds");
    group.bench_function("theorem1_chernoff_k400", |b| {
        b.iter(|| analytic::settlement_insecurity_bound(0.3, 0.4, std::hint::black_box(400)))
    });
    group.bench_function("theorem7_delta4_k300", |b| {
        let cond = SemiSyncCondition::new(0.05, 0.01, 0.03).unwrap();
        b.iter(|| analytic::theorem7_bound(&cond, 4, std::hint::black_box(300)))
    });
    group.finish();
}

criterion_group!(benches, bench_bound_series, bench_theorem_bounds);
criterion_main!(benches);
