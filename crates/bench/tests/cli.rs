//! Property coverage for the hardened CLI parser: over arbitrary
//! flag/value/positional interleavings, `flag_value` never hands a flag
//! back as a value, errors exactly when the grammar says it must, and
//! `positionals` partitions cleanly against the flags.

use multihonest_bench::cli::{flag_value, parsed_flag, positionals, reject_unknown_flags};
use proptest::prelude::*;

/// A small but adversarial token alphabet: value-taking flags, boolean
/// flags, plausible values, and things that look like values of the
/// wrong type.
fn arb_token() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("--seed".to_string()),
        Just("--threads".to_string()),
        Just("--out".to_string()),
        Just("--trace".to_string()),
        Just("--heartbeat".to_string()),
        Just("--quick".to_string()),
        Just("--json".to_string()),
        Just("bench-report".to_string()),
        Just("abc".to_string()),
        Just("out.json".to_string()),
        Just("trace.json".to_string()),
        (0u64..10_000).prop_map(|n| n.to_string()),
    ]
}

fn arb_args() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_token(), 0..=8)
}

const VALUE_FLAGS: [&str; 5] = ["--seed", "--threads", "--out", "--trace", "--heartbeat"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// The bugfix property: whatever the interleaving, a returned value
    /// is never `--`-prefixed, and an error is returned exactly when the
    /// token after the flag's first occurrence is missing or a flag.
    #[test]
    fn values_are_never_flags(args in arb_args(), which in 0usize..5) {
        let flag = VALUE_FLAGS[which];
        let parsed = flag_value(&args, flag);
        match args.iter().position(|a| a == flag) {
            None => prop_assert_eq!(parsed, Ok(None)),
            Some(i) => match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    prop_assert_eq!(parsed, Ok(Some(v.as_str())));
                }
                _ => prop_assert!(parsed.is_err(), "{flag} at {i} in {args:?}"),
            },
        }
    }

    /// Planting `flag value` into any argument vector that does not
    /// already mention the flag always parses back to exactly `value`.
    #[test]
    fn planted_flag_round_trips(
        base in arb_args(),
        at in 0usize..9,
        which in 0usize..5,
        value in 0u64..1_000_000,
    ) {
        let flag = VALUE_FLAGS[which];
        let mut args: Vec<String> = base.into_iter().filter(|a| a != flag).collect();
        let at = at.min(args.len());
        args.splice(at..at, [flag.to_string(), value.to_string()]);
        prop_assert_eq!(flag_value(&args, flag), Ok(Some(value.to_string().as_str())));
        prop_assert_eq!(parsed_flag::<u64>(&args, flag), Ok(Some(value)));
    }

    /// `parsed_flag` agrees with `flag_value` + `str::parse` everywhere.
    #[test]
    fn parsed_flag_matches_manual_parse(args in arb_args(), which in 0usize..5) {
        let flag = VALUE_FLAGS[which];
        let manual = match flag_value(&args, flag) {
            Err(_) => None,
            Ok(None) => Some(None),
            Ok(Some(v)) => v.parse::<u64>().ok().map(Some),
        };
        match (parsed_flag::<u64>(&args, flag), manual) {
            (Ok(got), Some(want)) => prop_assert_eq!(got, want),
            (Err(_), None) => {}
            (got, want) => prop_assert!(false, "{got:?} vs {want:?} on {args:?}"),
        }
    }

    /// `positionals` returns exactly the non-flag tokens that do not sit
    /// immediately after a value-taking flag, in order.
    #[test]
    fn positionals_partition_the_vector(args in arb_args()) {
        let pos = positionals(&args, &VALUE_FLAGS);
        let expected: Vec<&str> = args
            .iter()
            .enumerate()
            .filter(|(i, a)| {
                !a.starts_with("--")
                    && (*i == 0 || !VALUE_FLAGS.contains(&args[i - 1].as_str()))
            })
            .map(|(_, a)| a.as_str())
            .collect();
        prop_assert_eq!(pos.clone(), expected);
        for p in pos {
            prop_assert!(!p.starts_with("--"));
        }
    }

    /// The unknown-flag guard accepts exactly the vectors whose `--`
    /// tokens all come from the known set.
    #[test]
    fn unknown_flag_guard_is_exact(args in arb_args()) {
        let known = ["--seed", "--threads", "--out", "--quick"];
        let ok = reject_unknown_flags(&args, &known).is_ok();
        let expect = args
            .iter()
            .all(|a| !a.starts_with("--") || known.contains(&a.as_str()));
        prop_assert_eq!(ok, expect, "{:?}", args);
    }
}
