//! Shared experiment code for the `table1` and `experiments` binaries and
//! the Criterion benches.
//!
//! Every artifact of the paper's evaluation maps to a function here (see
//! DESIGN.md's experiment index E1–E10); the binaries are thin clients
//! that format the returned structures as text or JSON.

use serde::Serialize;

use multihonest::chars::{BernoulliCondition, SemiSyncCondition};
use multihonest::margin::ExactSettlement;
use multihonest::prelude::*;

pub mod regress;

/// One regenerated cell of paper Table 1.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Table1Cell {
    /// Adversarial probability `α = Pr[A]`.
    pub alpha: f64,
    /// The `Pr[h]/(1 − α)` row parameter.
    pub ratio: f64,
    /// Settlement horizon `k`.
    pub k: usize,
    /// Exact violation probability.
    pub probability: f64,
}

/// The α columns of the published table.
pub const TABLE1_ALPHAS: [f64; 6] = [0.01, 0.10, 0.20, 0.30, 0.40, 0.49];
/// The `Pr[h]/(1 − α)` row groups of the published table.
pub const TABLE1_RATIOS: [f64; 6] = [1.0, 0.9, 0.8, 0.5, 0.25, 0.01];
/// The `k` rows of the published table.
pub const TABLE1_KS: [usize; 5] = [100, 200, 300, 400, 500];

/// The Bernoulli condition of a Table-1 cell (canonical parameterization:
/// [`BernoulliCondition::from_alpha_ratio`]).
pub fn table1_condition(alpha: f64, ratio: f64) -> BernoulliCondition {
    BernoulliCondition::from_alpha_ratio(alpha, ratio).expect("table parameters are valid")
}

/// The default worker count for the parallel experiment grids: all
/// available hardware parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs jobs `0..n` on up to `threads` scoped workers pulling from a
/// shared atomic counter, and returns the results **in job order** —
/// deterministic output whatever the parallelism. Used by every
/// experiment-grid fan-out below (the repo is offline, so no rayon;
/// `std::thread::scope` carries the borrow of `f`).
fn run_jobs<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let counter = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let counter = &counter;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                loop {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    out.push((i, f(i)));
                }
                out
            }));
        }
        for h in handles {
            for (i, v) in h.join().expect("worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every job ran"))
        .collect()
}

/// Regenerates Table 1 (experiment E1) for the given parameter subsets,
/// sharing one banded DP pass per `(α, ratio)` pair, with pairs fanned
/// out across [`default_threads`] workers. Pass smaller `ks` for a quick
/// look.
pub fn generate_table1(alphas: &[f64], ratios: &[f64], ks: &[usize]) -> Vec<Table1Cell> {
    generate_table1_threads(alphas, ratios, ks, default_threads())
}

/// [`generate_table1`] with an explicit worker count (the `--threads`
/// knob of the `table1` binary). Cell order is identical for every
/// thread count.
pub fn generate_table1_threads(
    alphas: &[f64],
    ratios: &[f64],
    ks: &[usize],
    threads: usize,
) -> Vec<Table1Cell> {
    table1_grid_timed(alphas, ratios, ks, threads).0
}

/// The parallel Table-1 grid plus per-`(α, ratio)`-pair wall-clock
/// seconds (job order: ratio-major, matching the cell order).
fn table1_grid_timed(
    alphas: &[f64],
    ratios: &[f64],
    ks: &[usize],
    threads: usize,
) -> (Vec<Table1Cell>, Vec<f64>) {
    let pairs: Vec<(f64, f64)> = ratios
        .iter()
        .flat_map(|&ratio| alphas.iter().map(move |&alpha| (alpha, ratio)))
        .collect();
    let per_pair = run_jobs(pairs.len(), threads, |i| {
        let (alpha, ratio) = pairs[i];
        let start = std::time::Instant::now();
        let exact = ExactSettlement::new(table1_condition(alpha, ratio));
        let ps = exact.violation_probabilities(ks);
        let cells: Vec<Table1Cell> = ks
            .iter()
            .zip(&ps)
            .map(|(&k, &probability)| Table1Cell {
                alpha,
                ratio,
                k,
                probability,
            })
            .collect();
        (cells, start.elapsed().as_secs_f64())
    });
    let mut cells = Vec::with_capacity(pairs.len() * ks.len());
    let mut seconds = Vec::with_capacity(pairs.len());
    for (pair_cells, secs) in per_pair {
        cells.extend(pair_cells);
        seconds.push(secs);
    }
    (cells, seconds)
}

/// Formats cells in the paper's layout: one block per ratio, rows = k,
/// columns = α.
pub fn render_table1(cells: &[Table1Cell], alphas: &[f64], ratios: &[f64], ks: &[usize]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Exact probabilities of k-settlement violations (paper Table 1)"
    );
    for &ratio in ratios {
        let _ = writeln!(out, "\nPr[h]/(1-α) = {ratio}");
        let _ = write!(out, "{:>5} |", "k");
        for &alpha in alphas {
            let _ = write!(out, " {alpha:>9} |");
        }
        let _ = writeln!(out);
        for &k in ks {
            let _ = write!(out, "{k:>5} |");
            for &alpha in alphas {
                let cell = cells
                    .iter()
                    .find(|c| c.alpha == alpha && c.ratio == ratio && c.k == k)
                    .expect("cell generated");
                let _ = write!(out, " {:>9.2e} |", cell.probability);
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// E6: exact DP vs the analytic Theorem-1 machinery.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BoundVsExactRow {
    /// Honest margin `ε`.
    pub epsilon: f64,
    /// Uniquely honest probability `p_h`.
    pub p_h: f64,
    /// Horizon `k`.
    pub k: usize,
    /// Exact DP violation probability.
    pub exact: f64,
    /// Near-exact series tail of Bound 1 (no-unique-Catalan event).
    pub bound1_series: f64,
    /// Rigorous Chernoff form of Theorem 1.
    pub theorem1: f64,
}

/// Runs experiment E6 over a small grid, one scoped worker per
/// `(ε, p_h)` point (see [`bound_vs_exact_threads`]).
pub fn bound_vs_exact(ks: &[usize]) -> Vec<BoundVsExactRow> {
    bound_vs_exact_threads(ks, default_threads())
}

/// [`bound_vs_exact`] with an explicit worker count; row order is
/// identical for every thread count.
pub fn bound_vs_exact_threads(ks: &[usize], threads: usize) -> Vec<BoundVsExactRow> {
    let points = [(0.2, 0.4), (0.3, 0.3), (0.4, 0.6), (0.1, 0.2)];
    run_jobs(points.len(), threads, |i| {
        let (epsilon, p_h) = points[i];
        let cond = BernoulliCondition::new(epsilon, p_h).expect("valid");
        let exact = ExactSettlement::new(cond);
        let ps = exact.violation_probabilities(ks);
        let b1 = Bound1::new(epsilon, p_h).expect("valid");
        ks.iter()
            .zip(&ps)
            .map(|(&k, &e)| BoundVsExactRow {
                epsilon,
                p_h,
                k,
                exact: e,
                bound1_series: b1.tail_exact(k),
                theorem1: b1.tail(k),
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// E7: the consistent tie-breaking regime (`p_h = 0`).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TiebreakRow {
    /// Honest margin `ε`.
    pub epsilon: f64,
    /// Horizon `k`.
    pub k: usize,
    /// Bound 2's rigorous tail (Theorem 2).
    pub theorem2: f64,
    /// Monte-Carlo frequency of the Bound-2 failure event.
    pub mc_no_consecutive_catalan: f64,
    /// Mean max slot divergence under adversarial ties (balance attack).
    pub sim_divergence_adversarial_ties: f64,
    /// Mean max slot divergence under the consistent rule.
    pub sim_divergence_consistent: f64,
}

/// Runs experiment E7.
pub fn tiebreak_experiment(trials: u64, sim_runs: u64) -> Vec<TiebreakRow> {
    let mut rows = Vec::new();
    for epsilon in [0.3, 0.5] {
        let cond = BernoulliCondition::new(epsilon, 0.0).expect("bivalent condition");
        let mc = MonteCarlo::new(cond, trials, 101);
        let b2 = Bound2::new(epsilon).expect("valid");
        for k in [50usize, 100, 200] {
            let est = mc.no_consecutive_catalan_in_window(3 * k, k, k);
            let (div_adv, div_con) = balance_divergences(epsilon, sim_runs);
            rows.push(TiebreakRow {
                epsilon,
                k,
                theorem2: b2.tail(k),
                mc_no_consecutive_catalan: est.frequency(),
                sim_divergence_adversarial_ties: div_adv,
                sim_divergence_consistent: div_con,
            });
        }
    }
    rows
}

fn balance_divergences(epsilon: f64, runs: u64) -> (f64, f64) {
    let stake = (1.0 - epsilon) / 2.0;
    let mk = |tie| SimConfig {
        honest_nodes: 8,
        adversarial_stake: stake,
        active_slot_coeff: 0.5,
        delta: 0,
        slots: 600,
        tie_break: tie,
        strategy: Strategy::BalanceAttack,
    };
    let mean = |tie| -> f64 {
        (0..runs)
            .map(|seed| {
                Simulation::run(&mk(tie), seed)
                    .metrics()
                    .max_slot_divergence as f64
            })
            .sum::<f64>()
            / runs as f64
    };
    (mean(TieBreak::AdversarialOrder), mean(TieBreak::Consistent))
}

/// E8: the Δ-synchronous setting.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DeltaRow {
    /// Delay bound `Δ`.
    pub delta: usize,
    /// Effective reduced margin `ε_Δ` (condition (20)).
    pub effective_epsilon: f64,
    /// Theorem 7's bound at `k`.
    pub theorem7: f64,
    /// Horizon used.
    pub k: usize,
    /// Observed settlement violations in simulation (count over anchors).
    pub sim_violations: usize,
}

/// Runs experiment E8 for a sparse chain (`f = 0.05`).
pub fn delta_experiment(k: usize, slots: usize) -> Vec<DeltaRow> {
    let cond = SemiSyncCondition::new(0.05, 0.01, 0.03).expect("valid");
    let mut rows = Vec::new();
    for delta in [0usize, 2, 4, 8] {
        let effective_epsilon = cond.effective_epsilon(delta).unwrap_or(f64::NAN);
        let theorem7 = multihonest::analytic::theorem7_bound(&cond, delta, k).unwrap_or(1.0);
        let cfg = SimConfig {
            honest_nodes: 8,
            adversarial_stake: 0.2,
            active_slot_coeff: 0.05,
            delta,
            slots,
            tie_break: TieBreak::AdversarialOrder,
            strategy: Strategy::PrivateWithholding,
        };
        let sim = Simulation::run(&cfg, 77);
        // Indexed count; anchors past slots − 2k are excluded as before
        // (their observation windows are clipped).
        let sim_violations = sim.count_violating_slots(k, slots.saturating_sub(2 * k));
        rows.push(DeltaRow {
            delta,
            effective_epsilon,
            theorem7,
            k,
            sim_violations,
        });
    }
    rows
}

/// E9: which analyses admit which parameter points, and what the exact
/// error is there.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ThresholdRow {
    /// `p_h`.
    pub p_h: f64,
    /// `p_H`.
    pub p_hh: f64,
    /// `p_A`.
    pub p_a: f64,
    /// This paper's threshold.
    pub optimal: bool,
    /// Praos/Genesis threshold.
    pub praos: bool,
    /// Sleepy/Snow White threshold.
    pub snow_white: bool,
    /// Exact violation probability at the probe horizon.
    pub exact_at_k: f64,
    /// The probe horizon.
    pub k: usize,
}

/// Runs experiment E9 across a stake grid with fixed `p_A`, one scoped
/// worker per stake split (see [`threshold_experiment_threads`]).
pub fn threshold_experiment(k: usize) -> Vec<ThresholdRow> {
    threshold_experiment_threads(k, default_threads())
}

/// [`threshold_experiment`] with an explicit worker count; row order is
/// identical for every thread count.
pub fn threshold_experiment_threads(k: usize, threads: usize) -> Vec<ThresholdRow> {
    let p_a = 0.40;
    run_jobs(6, threads, |split| {
        let p_h = (1.0 - p_a) * split as f64 / 5.0;
        let p_hh = 1.0 - p_a - p_h;
        let cond = BernoulliCondition::from_probabilities(p_h, p_hh, p_a).expect("valid");
        let a = multihonest::analytic::baselines::classify(&cond);
        let exact = ExactSettlement::new(cond).violation_probability(k);
        ThresholdRow {
            p_h,
            p_hh,
            p_a,
            optimal: a.optimal,
            praos: a.praos_genesis,
            snow_white: a.sleepy_snow_white,
            exact_at_k: exact,
            k,
        }
    })
}

/// E10: Catalan-slot tail events, Monte Carlo vs the series tails.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CatalanTailRow {
    /// Honest margin `ε`.
    pub epsilon: f64,
    /// Uniquely honest probability.
    pub p_h: f64,
    /// Window length `k`.
    pub k: usize,
    /// MC frequency of "no uniquely honest Catalan slot in window".
    pub mc_unique: f64,
    /// Bound 1 series tail.
    pub bound1_series: f64,
    /// MC frequency of "no consecutive Catalan pair in window".
    pub mc_consecutive: f64,
    /// Bound 2 series tail.
    pub bound2_series: f64,
}

/// Runs experiment E10.
pub fn catalan_tail_experiment(trials: u64) -> Vec<CatalanTailRow> {
    let mut rows = Vec::new();
    for (epsilon, p_h) in [(0.3, 0.4), (0.5, 0.5)] {
        let cond = BernoulliCondition::new(epsilon, p_h).expect("valid");
        let mc = MonteCarlo::new(cond, trials, 303);
        let b1 = Bound1::new(epsilon, p_h).expect("valid");
        let b2 = Bound2::new(epsilon).expect("valid");
        for k in [20usize, 40, 80] {
            let unique = mc.no_unique_catalan_in_window(3 * k, k, k);
            let consecutive = mc.no_consecutive_catalan_in_window(3 * k, k, k);
            rows.push(CatalanTailRow {
                epsilon,
                p_h,
                k,
                mc_unique: unique.frequency(),
                bound1_series: b1.tail_exact(k),
                mc_consecutive: consecutive.frequency(),
                bound2_series: b2.tail_exact(k),
            });
        }
    }
    rows
}

/// Minimal CLI parsing shared by the bench binaries (bare
/// `std::env::args` handling; no argument-parser crate offline).
///
/// Malformed command lines are reported, not panicked on: every parser
/// returns a [`CliError`](cli::CliError) describing what was wrong, and
/// the binaries convert it into a usage message plus exit status 2 via
/// [`or_usage`](cli::or_usage). A value-taking flag followed by another
/// `--`-prefixed token is an error — `--seed --quick` used to silently
/// parse `--quick` as the seed.
pub mod cli {
    use std::fmt;
    use std::str::FromStr;

    /// A malformed command line, human-readable.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct CliError(String);

    impl fmt::Display for CliError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The value following `--flag`.
    ///
    /// `Ok(None)` when the flag is absent; an error when the flag is
    /// present but followed by nothing or by another `--`-prefixed
    /// token (which is a flag, not a value).
    pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, CliError> {
        let Some(i) = args.iter().position(|a| a == flag) else {
            return Ok(None);
        };
        match args.get(i + 1).map(String::as_str) {
            Some(v) if !v.starts_with("--") => Ok(Some(v)),
            Some(v) => Err(CliError(format!(
                "{flag} expects a value, found flag '{v}'"
            ))),
            None => Err(CliError(format!("{flag} expects a value"))),
        }
    }

    /// The value of `--flag` parsed as `T`; `Ok(None)` when absent.
    pub fn parsed_flag<T: FromStr>(args: &[String], flag: &str) -> Result<Option<T>, CliError> {
        match flag_value(args, flag)? {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError(format!("{flag}: invalid value '{v}'"))),
        }
    }

    /// Fails on any `--` token outside `known` — catches typos like
    /// `--thread` before they are silently ignored.
    pub fn reject_unknown_flags(args: &[String], known: &[&str]) -> Result<(), CliError> {
        match args
            .iter()
            .find(|a| a.starts_with("--") && !known.contains(&a.as_str()))
        {
            Some(flag) => Err(CliError(format!("unknown flag '{flag}'"))),
            None => Ok(()),
        }
    }

    /// Positional (non-`--`) arguments, excluding the values consumed by
    /// the listed value-taking flags.
    pub fn positionals<'a>(args: &'a [String], value_flags: &[&str]) -> Vec<&'a str> {
        args.iter()
            .enumerate()
            .filter(|(i, a)| {
                !a.starts_with("--")
                    && !i
                        .checked_sub(1)
                        .map(|p| value_flags.contains(&args[p].as_str()))
                        .unwrap_or(false)
            })
            .map(|(_, a)| a.as_str())
            .collect()
    }

    /// Unwraps a parse result or prints `error: ...` plus the usage
    /// string to stderr and exits with status 2.
    pub fn or_usage<T>(result: Result<T, CliError>, usage: &str) -> T {
        match result {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("usage: {usage}");
                std::process::exit(2);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn args(tokens: &[&str]) -> Vec<String> {
            tokens.iter().map(|t| t.to_string()).collect()
        }

        #[test]
        fn absent_flag_is_none() {
            assert_eq!(flag_value(&args(&["--quick"]), "--seed"), Ok(None));
            assert_eq!(parsed_flag::<u64>(&args(&[]), "--seed"), Ok(None));
        }

        #[test]
        fn present_flag_yields_its_value() {
            let a = args(&["--seed", "17", "--quick"]);
            assert_eq!(flag_value(&a, "--seed"), Ok(Some("17")));
            assert_eq!(parsed_flag::<u64>(&a, "--seed"), Ok(Some(17)));
        }

        #[test]
        fn flag_shaped_value_rejected() {
            // The bug this module's rewrite fixes: "--seed --quick" must
            // not parse "--quick" as the seed.
            let a = args(&["--seed", "--quick"]);
            let err = flag_value(&a, "--seed").unwrap_err();
            assert!(err.to_string().contains("found flag '--quick'"), "{err}");
            assert!(parsed_flag::<u64>(&a, "--seed").is_err());
        }

        #[test]
        fn trailing_flag_without_value_rejected() {
            let err = flag_value(&args(&["--out"]), "--out").unwrap_err();
            assert_eq!(err.to_string(), "--out expects a value");
        }

        #[test]
        fn unparseable_value_names_the_flag() {
            let err = parsed_flag::<u64>(&args(&["--seed", "abc"]), "--seed").unwrap_err();
            assert_eq!(err.to_string(), "--seed: invalid value 'abc'");
        }

        #[test]
        fn unknown_flags_are_caught() {
            let a = args(&["--thread", "4"]);
            assert!(reject_unknown_flags(&a, &["--threads"]).is_err());
            assert_eq!(reject_unknown_flags(&a, &["--thread"]), Ok(()));
        }

        #[test]
        fn positionals_skip_flag_values() {
            let a = args(&["run", "--seed", "3", "fast", "--quick"]);
            assert_eq!(positionals(&a, &["--seed"]), vec!["run", "fast"]);
        }
    }
}

/// A machine-readable timing record of one Table-1 grid regeneration —
/// the repo's margin-DP perf trajectory (`BENCH_margin.json`). Every PR
/// that touches the kernel can diff a fresh run against the committed
/// baseline.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// What was timed.
    pub name: String,
    /// Worker threads used for the `(α, ratio)` fan-out.
    pub threads: usize,
    /// Grid: α columns.
    pub alphas: Vec<f64>,
    /// Grid: `Pr[h]/(1 − α)` rows.
    pub ratios: Vec<f64>,
    /// Grid: settlement horizons.
    pub ks: Vec<usize>,
    /// Number of cells produced (`alphas × ratios × ks`).
    pub cells: usize,
    /// End-to-end wall-clock seconds for the whole grid.
    pub total_seconds: f64,
    /// Cells per wall-clock second.
    pub cells_per_second: f64,
    /// Fastest single `(α, ratio)` DP pass, seconds.
    pub pair_seconds_min: f64,
    /// Median `(α, ratio)` DP pass, seconds.
    pub pair_seconds_median: f64,
    /// Mean `(α, ratio)` DP pass, seconds.
    pub pair_seconds_mean: f64,
    /// Slowest single `(α, ratio)` DP pass, seconds.
    pub pair_seconds_max: f64,
    /// Sum of all cell probabilities — a cheap cross-run equivalence
    /// fingerprint of the kernel's numerical output.
    pub probability_checksum: f64,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time_seconds: u64,
}

/// Times a Table-1 grid regeneration and returns the cells plus the
/// [`BenchReport`] describing the run (the `bench-report` mode of the
/// `table1` binary).
pub fn bench_report(
    alphas: &[f64],
    ratios: &[f64],
    ks: &[usize],
    threads: usize,
) -> (Vec<Table1Cell>, BenchReport) {
    let start = std::time::Instant::now();
    let (cells, mut pair_seconds) = table1_grid_timed(alphas, ratios, ks, threads);
    let total_seconds = start.elapsed().as_secs_f64();
    pair_seconds.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let pairs = pair_seconds.len().max(1) as f64;
    let report = BenchReport {
        schema: "multihonest-bench-margin/v1".to_string(),
        name: "table1_grid".to_string(),
        threads,
        alphas: alphas.to_vec(),
        ratios: ratios.to_vec(),
        ks: ks.to_vec(),
        cells: cells.len(),
        total_seconds,
        cells_per_second: cells.len() as f64 / total_seconds.max(f64::MIN_POSITIVE),
        pair_seconds_min: pair_seconds.first().copied().unwrap_or(0.0),
        pair_seconds_median: pair_seconds
            .get(pair_seconds.len() / 2)
            .copied()
            .unwrap_or(0.0),
        pair_seconds_mean: pair_seconds.iter().sum::<f64>() / pairs,
        pair_seconds_max: pair_seconds.last().copied().unwrap_or(0.0),
        probability_checksum: cells.iter().map(|c| c.probability).sum(),
        unix_time_seconds: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    };
    (cells, report)
}

/// A machine-readable timing record of one simulator settlement sweep —
/// the consistency-layer perf trajectory (`BENCH_sim.json`), mirroring
/// [`BenchReport`] for the margin DP. The oracle timings come from the
/// retained naive scan, and the builder asserts the two paths produce
/// **bit-identical** violating-slot sets before reporting any numbers.
#[derive(Debug, Clone, Serialize)]
pub struct SimBenchReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// What was timed.
    pub name: String,
    /// Simulated slots.
    pub slots: usize,
    /// Honest nodes.
    pub honest_nodes: usize,
    /// Adversarial stake.
    pub adversarial_stake: f64,
    /// Active-slot coefficient `f`.
    pub active_slot_coeff: f64,
    /// Network delay bound `Δ`.
    pub delta: usize,
    /// Adversarial strategy.
    pub strategy: String,
    /// Execution seed.
    pub seed: u64,
    /// Settlement parameters swept.
    pub ks: Vec<usize>,
    /// Wall-clock seconds for `Simulation::run` (includes folding the
    /// divergence index).
    pub run_seconds: f64,
    /// Full `(1..=slots) × ks` sweep through the indexed batch API.
    pub indexed_sweep_seconds: f64,
    /// The same sweep through the naive per-query scan.
    pub oracle_sweep_seconds: f64,
    /// `oracle_sweep_seconds / indexed_sweep_seconds`.
    pub sweep_speedup: f64,
    /// Violating anchors per `k` — the equivalence fingerprint.
    pub violating_slots_per_k: Vec<usize>,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time_seconds: u64,
}

/// The canonical sim-bench configuration: the 2000-slot private
/// withholding execution named by the ROADMAP as the simulator's
/// remaining hot path (identical to the criterion `sim_bench` shape).
pub fn sim_bench_config(slots: usize) -> SimConfig {
    SimConfig {
        honest_nodes: 10,
        adversarial_stake: 0.3,
        active_slot_coeff: 0.25,
        delta: 2,
        slots,
        tie_break: TieBreak::AdversarialOrder,
        strategy: Strategy::PrivateWithholding,
    }
}

/// Runs the settlement-sweep benchmark: one execution, then the full
/// `(1..=slots) × ks` violation sweep through both the indexed batch API
/// and the naive oracle, timing each.
///
/// # Panics
///
/// Panics if the two paths disagree on any violating-slot set — the
/// equivalence check is part of the benchmark, so a drifting index can
/// never produce a plausible-looking baseline.
pub fn sim_bench_report(cfg: &SimConfig, seed: u64, ks: &[usize]) -> SimBenchReport {
    let run_start = std::time::Instant::now();
    let sim = Simulation::run(cfg, seed);
    let run_seconds = run_start.elapsed().as_secs_f64();

    let indexed_start = std::time::Instant::now();
    let indexed: Vec<Vec<bool>> = ks.iter().map(|&k| sim.settlement_violations(k)).collect();
    let indexed_sweep_seconds = indexed_start.elapsed().as_secs_f64();

    let oracle_start = std::time::Instant::now();
    let oracle: Vec<Vec<bool>> = ks
        .iter()
        .map(|&k| {
            (1..=cfg.slots)
                .map(|s| sim.settlement_violation_oracle(s, k))
                .collect()
        })
        .collect();
    let oracle_sweep_seconds = oracle_start.elapsed().as_secs_f64();

    for ((&k, idx), orc) in ks.iter().zip(&indexed).zip(&oracle) {
        assert_eq!(
            idx, orc,
            "indexed settlement sweep diverged from the oracle at k = {k}"
        );
    }
    SimBenchReport {
        schema: "multihonest-bench-sim/v1".to_string(),
        name: "settlement_sweep".to_string(),
        slots: cfg.slots,
        honest_nodes: cfg.honest_nodes,
        adversarial_stake: cfg.adversarial_stake,
        active_slot_coeff: cfg.active_slot_coeff,
        delta: cfg.delta,
        strategy: cfg.strategy.name().to_string(),
        seed,
        ks: ks.to_vec(),
        run_seconds,
        indexed_sweep_seconds,
        oracle_sweep_seconds,
        sweep_speedup: oracle_sweep_seconds / indexed_sweep_seconds.max(f64::MIN_POSITIVE),
        violating_slots_per_k: indexed
            .iter()
            .map(|v| v.iter().filter(|&&b| b).count())
            .collect(),
        unix_time_seconds: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    }
}

/// A machine-readable timing record of the optimal adversary `A*` —
/// the game-side perf trajectory (`BENCH_astar.json`), mirroring
/// [`BenchReport`] (margin DP) and [`SimBenchReport`] (simulator). The
/// oracle timings come from the retained definitional implementation
/// (`astar::reference`), and the builder asserts the two paths produce
/// **bit-identical forks** before reporting any numbers.
#[derive(Debug, Clone, Serialize)]
pub struct AstarBenchReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// What was timed.
    pub name: String,
    /// Honest margin `ε` of the sampled condition.
    pub epsilon: f64,
    /// Uniquely honest probability `p_h` of the sampled condition.
    pub p_h: f64,
    /// Seed for the per-`n` sampled strings.
    pub seed: u64,
    /// String lengths timed through the incremental engine.
    pub ns: Vec<usize>,
    /// Best-of-3 engine build seconds per `n`.
    pub engine_seconds: Vec<f64>,
    /// Canonical-fork vertex counts per `n` — the structural fingerprint.
    pub vertices: Vec<usize>,
    /// `ρ(F)` of the engine-built fork per `n`, asserted equal to the
    /// recurrence `ρ(w)` (Theorem 6) — the semantic fingerprint.
    pub rhos: Vec<i64>,
    /// The subset of `ns` also driven through the definitional oracle.
    pub oracle_ns: Vec<usize>,
    /// Best-of-3 oracle build seconds per oracle `n`.
    pub oracle_seconds: Vec<f64>,
    /// `oracle_seconds / engine_seconds` per oracle `n`.
    pub speedups: Vec<f64>,
    /// The speedup at the largest oracle-checked `n` — the headline
    /// number of the seed-audit hot path.
    pub speedup_at_largest_oracle_n: f64,
    /// Monte-Carlo sweep: string length.
    pub mc_len: usize,
    /// Monte-Carlo sweep: trials.
    pub mc_trials: u64,
    /// Monte-Carlo sweep: worker threads.
    pub mc_threads: usize,
    /// Monte-Carlo sweep: wall-clock seconds.
    pub mc_seconds: f64,
    /// Monte-Carlo sweep: trials where game-side `ρ(F)` matched the
    /// recurrence `ρ(w)` (must equal `mc_trials`).
    pub mc_rho_agreements: u64,
    /// Monte-Carlo sweep: mean `ρ` over trials.
    pub mc_mean_rho: f64,
    /// Monte-Carlo sweep: mean `µ_ε(w)` over trials.
    pub mc_mean_margin: f64,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time_seconds: u64,
}

/// The canonical astar-bench condition (matches `astar_bench.rs`).
pub fn astar_bench_condition() -> BernoulliCondition {
    BernoulliCondition::new(0.2, 0.4).expect("valid condition")
}

/// Runs the `A*` benchmark: per `n`, a seeded string is built into a
/// canonical fork through the incremental engine (best-of-3 timing); for
/// every `n` also listed in `oracle_ns`, the definitional oracle builds
/// the same string and the two forks are asserted **bit-identical**
/// before their timings are compared. A [`CanonicalMonteCarlo`] sweep at
/// `mc_len` rounds out the report with the Theorem-6 cross-validation at
/// scale.
///
/// # Panics
///
/// Panics if the engine and oracle forks differ, if an `oracle_ns` entry
/// is missing from `ns`, or if any Monte-Carlo trial's `ρ` disagrees with
/// the recurrence — a drifting engine can never produce a
/// plausible-looking baseline.
pub fn astar_bench_report(
    ns: &[usize],
    oracle_ns: &[usize],
    mc_len: usize,
    mc_trials: u64,
    threads: usize,
    seed: u64,
) -> AstarBenchReport {
    use multihonest::adversary::astar::reference;
    use multihonest::adversary::{CanonicalMonteCarlo, OptimalAdversary};
    use multihonest::fork::ReachAnalysis;
    use multihonest::margin::recurrence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let cond = astar_bench_condition();
    let best_of_3 = |f: &mut dyn FnMut()| -> f64 {
        (0..3)
            .map(|_| {
                let start = std::time::Instant::now();
                f();
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };

    let mut engine_seconds = Vec::new();
    let mut vertices = Vec::new();
    let mut rhos = Vec::new();
    let mut oracle_seconds = Vec::new();
    let mut speedups = Vec::new();
    for (i, &n) in ns.iter().enumerate() {
        let w = cond.sample(&mut StdRng::seed_from_u64(seed ^ (n as u64)), n);
        let fork = OptimalAdversary::build(&w);
        let secs = best_of_3(&mut || {
            std::hint::black_box(OptimalAdversary::build(std::hint::black_box(&w)));
        });
        engine_seconds.push(secs);
        vertices.push(fork.vertex_count());
        // The fork's own ρ — asserted against the recurrence (Theorem 6)
        // so the fingerprint reads the engine's output, not the theory's.
        let fork_rho = ReachAnalysis::new(&fork).rho();
        assert_eq!(
            fork_rho,
            recurrence::rho(&w),
            "ρ(F) must equal the recurrence ρ(w) at n = {n} (Theorem 6)"
        );
        rhos.push(fork_rho);
        if oracle_ns.contains(&n) {
            let oracle = reference::build(&w);
            assert_eq!(
                fork, oracle,
                "engine fork diverged from the oracle at n = {n}"
            );
            let osecs = best_of_3(&mut || {
                std::hint::black_box(reference::build(std::hint::black_box(&w)));
            });
            oracle_seconds.push(osecs);
            speedups.push(osecs / engine_seconds[i].max(f64::MIN_POSITIVE));
        }
    }
    assert_eq!(
        oracle_seconds.len(),
        oracle_ns.len(),
        "every oracle n must appear in ns"
    );

    let mc = CanonicalMonteCarlo::new(cond, mc_trials, seed).with_threads(threads);
    let mc_start = std::time::Instant::now();
    let summary = mc.summary(mc_len);
    let mc_seconds = mc_start.elapsed().as_secs_f64();
    assert_eq!(
        summary.rho_agreements, mc_trials,
        "game-side ρ must match the recurrence on every trial (Theorem 6)"
    );

    AstarBenchReport {
        schema: "multihonest-bench-astar/v1".to_string(),
        name: "astar_build".to_string(),
        epsilon: cond.epsilon(),
        p_h: cond.p_unique_honest(),
        seed,
        ns: ns.to_vec(),
        engine_seconds,
        vertices,
        rhos,
        oracle_ns: oracle_ns.to_vec(),
        oracle_seconds,
        speedup_at_largest_oracle_n: speedups.last().copied().unwrap_or(0.0),
        speedups,
        mc_len,
        mc_trials,
        mc_threads: threads,
        mc_seconds,
        mc_rho_agreements: summary.rho_agreements,
        mc_mean_rho: summary.mean_rho,
        mc_mean_margin: summary.mean_margin,
        unix_time_seconds: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    }
}

/// A machine-readable timing record of one campaign sweep — the
/// orchestrator's perf trajectory (`BENCH_sweep.json`), mirroring
/// [`BenchReport`] for the margin DP. The builder first replays a tiny
/// grid through an interrupt + resume and asserts the rendered report is
/// **byte-identical** to a straight run before timing anything, so a
/// broken checkpoint path can never produce a plausible-looking
/// baseline.
#[derive(Debug, Clone, Serialize)]
pub struct SweepBenchReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// What was timed.
    pub name: String,
    /// Worker threads used for the campaign.
    pub threads: usize,
    /// Root seed of the seed-sharding scheme.
    pub seed: u64,
    /// Spec fingerprint (ties the numbers to one exact grid).
    pub spec_fingerprint: u64,
    /// Grid cells (strategy × Δ × stake-profile).
    pub cells: usize,
    /// Trials per cell.
    pub trials_per_cell: u64,
    /// Total executions (`cells × trials_per_cell`).
    pub executions: u64,
    /// Slots per execution.
    pub slots: usize,
    /// Settlement parameters per cell.
    pub ks: Vec<usize>,
    /// Cells of the interrupt/resume equivalence pre-check grid.
    pub resume_check_cells: usize,
    /// Wall-clock seconds of that pre-check (two short campaigns).
    pub resume_check_seconds: f64,
    /// End-to-end wall-clock seconds for the timed campaign.
    pub run_seconds: f64,
    /// Executions per wall-clock second.
    pub executions_per_second: f64,
    /// Simulated slots per wall-clock second, in millions.
    pub mslots_per_second: f64,
    /// Executions with ≥ 1 violating anchor at the smallest `k`, summed
    /// over the grid — a cheap cross-run equivalence fingerprint.
    pub violations_at_smallest_k: u64,
    /// Wrapping sum of the per-cell aggregate fingerprints — the strong
    /// cross-run equivalence fingerprint (thread-count invariant).
    pub aggregate_checksum: u64,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time_seconds: u64,
}

/// The interrupt/resume equivalence pre-check: runs a tiny campaign
/// straight, then interrupted-and-resumed on a different thread count,
/// and asserts the rendered reports are byte-identical.
///
/// # Panics
///
/// Panics if the two report byte streams differ, or if the scratch
/// checkpoint cannot be written.
fn sweep_resume_precheck(seed: u64) -> (usize, f64) {
    use multihonest_sweep::{campaign_report, report_json, run_campaign, CampaignSpec, RunOptions};
    let start = std::time::Instant::now();
    let mut spec = CampaignSpec::quick_grid();
    spec.seed = seed ^ 0x5EED_CAFE;
    spec.slots = 120;
    spec.trials_per_cell = 12;
    let straight = run_campaign(&spec, &RunOptions::default()).expect("no checkpoint involved");
    let oracle = report_json(&campaign_report(&spec, &straight));

    let path = std::env::temp_dir().join(format!("multihonest-sweep-precheck-{seed}.json"));
    let _ = std::fs::remove_file(&path);
    let interrupted = run_campaign(
        &spec,
        &RunOptions {
            threads: 2,
            checkpoint: Some(path.clone()),
            stop_after_cells: Some(2),
        },
    )
    .expect("write scratch checkpoint");
    assert!(!interrupted.is_complete(), "interrupt did not interrupt");
    let resumed = run_campaign(
        &spec,
        &RunOptions {
            threads: 4,
            checkpoint: Some(path.clone()),
            stop_after_cells: None,
        },
    )
    .expect("resume from scratch checkpoint");
    let _ = std::fs::remove_file(&path);
    assert!(resumed.is_complete());
    assert_eq!(
        report_json(&campaign_report(&spec, &resumed)),
        oracle,
        "interrupted + resumed campaign diverged from the straight run"
    );
    (spec.cell_count(), start.elapsed().as_secs_f64())
}

/// Runs the campaign-sweep benchmark: the resume pre-check, then one
/// timed campaign over `spec`, returning the campaign report plus the
/// [`SweepBenchReport`] describing the run (the `bench-report` mode of
/// the `sweep` binary).
///
/// # Panics
///
/// Panics if the pre-check finds an interrupt/resume divergence or the
/// campaign does not complete.
pub fn sweep_bench_report(
    spec: &multihonest_sweep::CampaignSpec,
    threads: usize,
) -> (multihonest_sweep::CampaignReport, SweepBenchReport) {
    use multihonest_sweep::{campaign_report, run_campaign, RunOptions};
    let (resume_check_cells, resume_check_seconds) = sweep_resume_precheck(spec.seed);

    let start = std::time::Instant::now();
    let outcome = run_campaign(
        spec,
        &RunOptions {
            threads,
            checkpoint: None,
            stop_after_cells: None,
        },
    )
    .expect("no checkpoint involved");
    let run_seconds = start.elapsed().as_secs_f64();
    assert!(outcome.is_complete(), "untimed-out campaign must complete");
    let report = campaign_report(spec, &outcome);

    let executions = spec.executions();
    let aggregate_checksum = outcome
        .aggregates
        .iter()
        .flatten()
        .fold(0u64, |acc, a| acc.wrapping_add(a.fingerprint));
    let violations_at_smallest_k = outcome
        .aggregates
        .iter()
        .flatten()
        .map(|a| a.violating_executions.first().copied().unwrap_or(0))
        .sum();
    let bench = SweepBenchReport {
        schema: "multihonest-bench-sweep/v1".to_string(),
        name: "campaign_sweep".to_string(),
        threads,
        seed: spec.seed,
        spec_fingerprint: spec.fingerprint(),
        cells: spec.cell_count(),
        trials_per_cell: spec.trials_per_cell,
        executions,
        slots: spec.slots,
        ks: spec.ks.clone(),
        resume_check_cells,
        resume_check_seconds,
        run_seconds,
        executions_per_second: executions as f64 / run_seconds.max(f64::MIN_POSITIVE),
        mslots_per_second: executions as f64 * spec.slots as f64
            / run_seconds.max(f64::MIN_POSITIVE)
            / 1e6,
        violations_at_smallest_k,
        aggregate_checksum,
        unix_time_seconds: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    };
    (report, bench)
}

/// A machine-readable record of the fault-injection conservatism sweep —
/// the robustness trajectory (`BENCH_faults.json`), mirroring
/// [`SweepBenchReport`] for the campaign orchestrator. Before measuring
/// anything the builder replays every library scenario through **both**
/// engines and asserts their degradation ledgers are identical, and the
/// conservatism harness itself must return `Some(true)` for every
/// scenario — a drifting fault runtime or a broken Δ′ reduction can
/// never produce a plausible-looking baseline.
#[derive(Debug, Clone, Serialize)]
pub struct FaultsBenchReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// What was measured.
    pub name: String,
    /// Worker threads for the per-scenario fan-out.
    pub threads: usize,
    /// Root seed of the per-trial seed derivation.
    pub seed: u64,
    /// Slots per execution (the fault library scales its windows to it).
    pub slots: usize,
    /// Seeded trials per scenario.
    pub trials_per_scenario: u64,
    /// Settlement parameters checked per scenario.
    pub ks: Vec<usize>,
    /// Per-scenario conservatism verdicts (the payload).
    pub scenarios: Vec<multihonest_sweep::ScenarioConservatism>,
    /// Wall-clock seconds per scenario's trial batch.
    pub scenario_seconds: Vec<f64>,
    /// Every scenario's verdict was `Some(true)` (asserted by the
    /// builder; recorded for downstream diffing).
    pub all_conservative: bool,
    /// Scenarios replayed through both engines in the equivalence
    /// pre-check.
    pub equivalence_checked: usize,
    /// Deferred deliveries observed in the pre-check replays (both
    /// engines agreed on every ledger).
    pub equivalence_deferred: u64,
    /// Wrapping sum of the columnar execution fingerprints of the
    /// pre-check replays — the cross-run equivalence fingerprint.
    pub fingerprint_checksum: u64,
    /// Wall-clock seconds of the equivalence pre-check.
    pub equivalence_seconds: f64,
    /// End-to-end wall-clock seconds.
    pub total_seconds: f64,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time_seconds: u64,
}

/// Runs the fault-injection benchmark: the dual-engine equivalence
/// pre-check over the whole [`fault_library`], then the Δ-conservatism
/// harness ([`check_conservatism`]) per scenario, fanned out across
/// `threads` workers (the `faults` binary).
///
/// # Panics
///
/// Panics if the two engines disagree on any scenario's degradation
/// ledger, or if any scenario's conservatism verdict is not
/// `Some(true)`.
///
/// [`fault_library`]: multihonest_scenario::fault_library
/// [`check_conservatism`]: multihonest_sweep::check_conservatism
pub fn faults_bench_report(
    slots: usize,
    trials_per_scenario: u64,
    ks: &[usize],
    threads: usize,
    seed: u64,
) -> FaultsBenchReport {
    use multihonest_scenario::{execution_fingerprint, fault_library, ColumnarSimulation};
    use multihonest_sweep::check_conservatism;

    let start = std::time::Instant::now();
    let library = fault_library(slots);

    // Equivalence pre-check: one replay of every scenario on each
    // engine; the ledgers (deferral/drop/window accounting) must match
    // event for event.
    let eq_start = std::time::Instant::now();
    let eq_seed = seed ^ 0xFA_17;
    let mut equivalence_deferred = 0u64;
    let mut fingerprint_checksum = 0u64;
    for sc in &library {
        let schedule = sc.schedule(eq_seed);
        let mut strategy = sc.config.strategy.instantiate();
        let (sim, ledger) = ColumnarSimulation::run_with_schedule_faults(
            &sc.config,
            &schedule,
            strategy.as_mut(),
            &sc.plan,
        );
        fingerprint_checksum = fingerprint_checksum.wrapping_add(execution_fingerprint(&sim));
        let mut ref_strategy = sc.config.strategy.instantiate();
        let (_, ref_ledger) = Simulation::run_with_schedule_faults(
            &sc.config,
            sc.reference_schedule(eq_seed),
            ref_strategy.as_mut(),
            &sc.plan,
        );
        assert_eq!(
            ref_ledger, ledger,
            "engines disagree on the '{}' degradation ledger",
            sc.name
        );
        equivalence_deferred += ledger.deferred;
    }
    let equivalence_seconds = eq_start.elapsed().as_secs_f64();

    let per_scenario = run_jobs(library.len(), threads, |i| {
        let t0 = std::time::Instant::now();
        let verdict = check_conservatism(&library[i], trials_per_scenario, ks, seed);
        (verdict, t0.elapsed().as_secs_f64())
    });
    let mut scenarios = Vec::with_capacity(per_scenario.len());
    let mut scenario_seconds = Vec::with_capacity(per_scenario.len());
    for (verdict, secs) in per_scenario {
        assert_eq!(
            verdict.conservative,
            Some(true),
            "'{}' exceeded its Δ′-model prediction: {:?}",
            verdict.scenario,
            verdict.rows
        );
        scenarios.push(verdict);
        scenario_seconds.push(secs);
    }

    FaultsBenchReport {
        schema: "multihonest-bench-faults/v1".to_string(),
        name: "fault_conservatism".to_string(),
        threads,
        seed,
        slots,
        trials_per_scenario,
        ks: ks.to_vec(),
        all_conservative: scenarios.iter().all(|s| s.conservative == Some(true)),
        equivalence_checked: library.len(),
        equivalence_deferred,
        fingerprint_checksum,
        equivalence_seconds,
        scenarios,
        scenario_seconds,
        total_seconds: start.elapsed().as_secs_f64(),
        unix_time_seconds: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    }
}

/// A machine-readable timing record of the streaming fork pipeline —
/// the online-validation perf trajectory (`BENCH_forkflow.json`). Two
/// headline comparisons:
///
/// * **online Δ-axiom validation**: a streaming columnar run (fork
///   built, (F1)–(F3)+(F4Δ) decided and margin channel drained in one
///   pass) against the replay-then-validate baseline that used to gate
///   scale — a reference-engine replay plus the batch `validate_delta`
///   sweep over the extracted fork;
/// * **incremental µ_x witnesses**: the `AstarBuilder`'s tracked-cut
///   margins (`O(log n)` per symbol) against a per-step
///   `ReachAnalysis` rebuild (`O(n)` per symbol).
///
/// Both comparisons assert bit-level equivalence before any timing is
/// reported, so a drifting pipeline can never produce a
/// plausible-looking baseline.
#[derive(Debug, Clone, Serialize)]
pub struct ForkflowBenchReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// What was timed.
    pub name: String,
    /// Seed of the sampled schedules and strings.
    pub seed: u64,
    /// Delay bound Δ of the streamed executions.
    pub delta: usize,
    /// Horizon of the headline streaming run.
    pub streaming_slots: usize,
    /// Wall-clock seconds of the headline streaming run.
    pub streaming_seconds: f64,
    /// Slots per second of the headline streaming run.
    pub streaming_slots_per_second: f64,
    /// Vertices of the streamed fork (blocks incl. genesis).
    pub streaming_vertices: usize,
    /// The online verdict was `Ok` (asserted; fault-free runs cannot
    /// violate the axioms thanks to the engine-side Δ clamp).
    pub streaming_valid: bool,
    /// Margin-channel events observed (one per reduced symbol).
    pub streaming_margin_events: usize,
    /// Final reach ρ of the Δ-reduced characteristic string.
    pub streaming_rho: i64,
    /// Final relative margin µ_ε of the Δ-reduced string.
    pub streaming_margin: i64,
    /// Common horizon of the validation comparison.
    pub baseline_slots: usize,
    /// Replay-then-validate seconds: reference replay + fork extraction
    /// + batch `validate_delta`.
    pub replay_validate_seconds: f64,
    /// Streaming-validated seconds at the same horizon.
    pub streaming_at_baseline_seconds: f64,
    /// `replay_validate_seconds / streaming_at_baseline_seconds` — the
    /// headline of the streaming refactor.
    pub validation_speedup: f64,
    /// Length of the µ_x tracking comparison's sampled string.
    pub mu_len: usize,
    /// Cuts `x` whose relative margins µ_x were tracked.
    pub mu_cuts: Vec<usize>,
    /// Seconds to stream the string through tracked `CutTracker`s.
    pub mu_tracked_seconds: f64,
    /// Seconds for the per-step `ReachAnalysis`-rebuild baseline.
    pub mu_rebuild_seconds: f64,
    /// `mu_rebuild_seconds / mu_tracked_seconds`.
    pub mu_speedup: f64,
    /// step × cut equivalence checks performed (tracked ≡ rebuild).
    pub mu_checks: usize,
    /// End-to-end wall-clock seconds.
    pub total_seconds: f64,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time_seconds: u64,
}

/// Counts margin-channel events and keeps the latest observation.
#[derive(Default)]
struct MarginChannelProbe {
    events: usize,
}

impl multihonest::sim::MetricsSink for MarginChannelProbe {
    fn on_margin(&mut self, _slot: usize, _rho: i64, _margin: i64) {
        self.events += 1;
    }
}

/// Runs the streaming-fork-pipeline benchmark (the `forkflow` binary):
/// the online-validation comparison at `baseline_slots`, the headline
/// streaming run at `streaming_slots`, and the incremental-µ_x
/// comparison on a length-`mu_len` sampled string.
///
/// # Panics
///
/// Panics if the streamed fork differs from the reference engine's
/// extraction, if the online verdict disagrees with the batch
/// `validate_delta` oracle (or is not `Ok` on these fault-free runs),
/// or if any tracked µ_x disagrees with the `ReachAnalysis` rebuild at
/// any step.
pub fn forkflow_bench_report(
    streaming_slots: usize,
    baseline_slots: usize,
    mu_len: usize,
    seed: u64,
) -> ForkflowBenchReport {
    use multihonest::adversary::AstarBuilder;
    use multihonest::fork::validate::validate_delta;
    use multihonest::fork::ReachAnalysis;
    use multihonest::sim::{SimConfig, Simulation, Strategy, TieBreak};
    use multihonest_scenario::{run_streaming_validated, ColumnarSchedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let start = std::time::Instant::now();
    let delta = 2usize;
    let cfg = |slots: usize| SimConfig {
        honest_nodes: 6,
        adversarial_stake: 0.3,
        active_slot_coeff: 0.3,
        delta,
        slots,
        tie_break: TieBreak::AdversarialOrder,
        strategy: Strategy::PrivateWithholding,
    };

    // --- Validation comparison at the common horizon. ---
    let config = cfg(baseline_slots);
    let schedule = ColumnarSchedule::sample(
        config.honest_nodes,
        config.adversarial_stake,
        config.active_slot_coeff,
        config.slots,
        seed,
    );
    let mut strategy = config.strategy.instantiate();
    let mut probe = MarginChannelProbe::default();
    let t0 = std::time::Instant::now();
    let out = run_streaming_validated(&config, &schedule, strategy.as_mut(), &mut probe);
    let streaming_at_baseline_seconds = t0.elapsed().as_secs_f64();

    // The baseline this pipeline retires: replay the execution through
    // the reference engine, extract its fork, then run the batch
    // axiom sweep (quadratic in the honest-slot count) over it.
    let t0 = std::time::Instant::now();
    let replay = Simulation::run(&config, seed);
    let extracted = replay.fork();
    let batch = validate_delta(extracted.fork(), extracted.characteristic_string(), delta);
    let replay_validate_seconds = t0.elapsed().as_secs_f64();

    assert_eq!(
        &out.pipeline.fork,
        extracted.fork(),
        "streamed fork diverged from the reference extraction"
    );
    assert_eq!(
        out.pipeline.validation.is_ok(),
        batch.is_ok(),
        "online verdict disagrees with the batch oracle"
    );
    assert_eq!(
        out.pipeline.validation,
        Ok(()),
        "a fault-free Δ-clamped execution must satisfy the axioms"
    );
    let validation_speedup =
        replay_validate_seconds / streaming_at_baseline_seconds.max(f64::MIN_POSITIVE);

    // --- Headline streaming run: no replay at all. ---
    let config = cfg(streaming_slots);
    let schedule = ColumnarSchedule::sample(
        config.honest_nodes,
        config.adversarial_stake,
        config.active_slot_coeff,
        config.slots,
        seed,
    );
    let mut strategy = config.strategy.instantiate();
    let mut probe = MarginChannelProbe::default();
    let t0 = std::time::Instant::now();
    let out = run_streaming_validated(&config, &schedule, strategy.as_mut(), &mut probe);
    let streaming_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(
        out.pipeline.validation,
        Ok(()),
        "the headline run must validate online"
    );

    // --- Incremental µ_x witnesses vs per-step rebuild. ---
    let w = astar_bench_condition().sample(&mut StdRng::seed_from_u64(seed ^ 0xF0_17), mu_len);
    let mu_cuts = vec![0, mu_len / 4, mu_len / 2];
    let mut mu_checks = 0usize;

    let t0 = std::time::Instant::now();
    let mut tracked = AstarBuilder::new();
    for &cut in &mu_cuts {
        tracked.track_cut(cut);
    }
    let mut tracked_margins: Vec<i64> = Vec::with_capacity(mu_len * mu_cuts.len());
    for &sym in w.symbols() {
        tracked.step(sym);
        for &cut in &mu_cuts {
            tracked_margins.push(tracked.relative_margin(cut).expect("cut is tracked"));
        }
    }
    let mu_tracked_seconds = t0.elapsed().as_secs_f64();

    let t0 = std::time::Instant::now();
    let mut rebuilt = AstarBuilder::new();
    let mut rebuilt_margins: Vec<i64> = Vec::with_capacity(mu_len * mu_cuts.len());
    for (i, &sym) in w.symbols().iter().enumerate() {
        rebuilt.step(sym);
        let analysis = ReachAnalysis::new(rebuilt.fork());
        for &cut in &mu_cuts {
            rebuilt_margins.push(analysis.relative_margin(cut.min(i + 1)));
        }
    }
    let mu_rebuild_seconds = t0.elapsed().as_secs_f64();

    for (step, (got, want)) in tracked_margins.iter().zip(&rebuilt_margins).enumerate() {
        assert_eq!(
            got,
            want,
            "tracked µ_x diverged from the rebuild at check {step} (cut {})",
            mu_cuts[step % mu_cuts.len()]
        );
        mu_checks += 1;
    }
    // Witness sanity at the end of the stream: every tracked cut's
    // witness pair must attain its margin under a fresh analysis.
    let analysis = ReachAnalysis::new(tracked.fork());
    for &cut in &mu_cuts {
        let margin = tracked.relative_margin(cut).expect("cut is tracked");
        let (a, b) = tracked.margin_witness(cut).expect("nonempty fork");
        assert_eq!(
            analysis.reach(a).min(analysis.reach(b)),
            margin,
            "witness pair does not attain µ_{cut}"
        );
    }
    let mu_speedup = mu_rebuild_seconds / mu_tracked_seconds.max(f64::MIN_POSITIVE);

    ForkflowBenchReport {
        schema: "multihonest-bench-forkflow/v1".to_string(),
        name: "streaming_fork_pipeline".to_string(),
        seed,
        delta,
        streaming_slots,
        streaming_seconds,
        streaming_slots_per_second: streaming_slots as f64
            / streaming_seconds.max(f64::MIN_POSITIVE),
        streaming_vertices: out.pipeline.fork.vertex_count(),
        streaming_valid: out.pipeline.validation.is_ok(),
        streaming_margin_events: probe.events,
        streaming_rho: out.pipeline.rho,
        streaming_margin: out.pipeline.margin,
        baseline_slots,
        replay_validate_seconds,
        streaming_at_baseline_seconds,
        validation_speedup,
        mu_len,
        mu_cuts,
        mu_tracked_seconds,
        mu_rebuild_seconds,
        mu_speedup,
        mu_checks,
        total_seconds: start.elapsed().as_secs_f64(),
        unix_time_seconds: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_generation_small() {
        let cells = generate_table1(&[0.3], &[1.0, 0.5], &[50, 100]);
        assert_eq!(cells.len(), 4);
        let rendered = render_table1(&cells, &[0.3], &[1.0, 0.5], &[50, 100]);
        assert!(rendered.contains("Pr[h]/(1-α) = 1"));
        assert!(rendered.contains("50"));
        // Probabilities decrease with k within each ratio block.
        for ratio in [1.0, 0.5] {
            let p50 = cells
                .iter()
                .find(|c| c.ratio == ratio && c.k == 50)
                .unwrap();
            let p100 = cells
                .iter()
                .find(|c| c.ratio == ratio && c.k == 100)
                .unwrap();
            assert!(p100.probability < p50.probability);
        }
    }

    #[test]
    fn grid_output_is_thread_count_invariant() {
        // Same cells in the same order, bitwise, for any worker count.
        let (alphas, ratios, ks) = (&[0.2, 0.4][..], &[1.0, 0.5][..], &[30usize, 60][..]);
        let single = generate_table1_threads(alphas, ratios, ks, 1);
        for threads in [2usize, 3, 8] {
            let multi = generate_table1_threads(alphas, ratios, ks, threads);
            assert_eq!(single.len(), multi.len());
            for (a, b) in single.iter().zip(&multi) {
                assert_eq!((a.alpha, a.ratio, a.k), (b.alpha, b.ratio, b.k));
                assert_eq!(a.probability, b.probability, "{threads} threads");
            }
        }
        let rows1 = threshold_experiment_threads(40, 1);
        let rows4 = threshold_experiment_threads(40, 4);
        for (a, b) in rows1.iter().zip(&rows4) {
            assert_eq!(a.exact_at_k, b.exact_at_k);
        }
    }

    #[test]
    fn bench_report_is_well_formed() {
        let (cells, report) = bench_report(&[0.3], &[1.0], &[40, 80], 2);
        assert_eq!(report.cells, cells.len());
        assert_eq!(report.cells, 2);
        assert!(report.total_seconds > 0.0);
        assert!(report.pair_seconds_min <= report.pair_seconds_max);
        assert!(
            (report.probability_checksum - cells.iter().map(|c| c.probability).sum::<f64>()).abs()
                < 1e-15
        );
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        assert!(json.contains("\"schema\""));
        assert!(json.contains("multihonest-bench-margin/v1"));
        assert!(json.contains("\"total_seconds\""));
    }

    #[test]
    fn sim_bench_report_is_well_formed_and_indexed_sweep_wins() {
        // A reduced grid of the acceptance-criterion sweep: the batch API
        // must reproduce the oracle's violating-slot sets bit-identically
        // (asserted inside sim_bench_report) and be ≥ 10× faster. The real
        // margin is orders of magnitude, but the indexed sweep only takes
        // microseconds, so a scheduler preemption of this one measurement
        // could sink the ratio — take the best of three runs.
        let cfg = sim_bench_config(600);
        let report = (0..3)
            .map(|_| sim_bench_report(&cfg, 9, &[5, 10, 20, 40]))
            .max_by(|a, b| {
                a.sweep_speedup
                    .partial_cmp(&b.sweep_speedup)
                    .expect("finite speedups")
            })
            .expect("three runs");
        assert_eq!(report.schema, "multihonest-bench-sim/v1");
        assert_eq!(report.ks, vec![5, 10, 20, 40]);
        assert_eq!(report.violating_slots_per_k.len(), 4);
        // Monotone: a larger k can only settle more anchors.
        for pair in report.violating_slots_per_k.windows(2) {
            assert!(pair[0] >= pair[1], "{:?}", report.violating_slots_per_k);
        }
        assert!(
            report.sweep_speedup >= 10.0,
            "indexed sweep only {}x faster than the oracle",
            report.sweep_speedup
        );
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        assert!(json.contains("multihonest-bench-sim/v1"));
        assert!(json.contains("\"sweep_speedup\""));
    }

    #[test]
    fn astar_bench_report_is_well_formed_and_engine_wins() {
        // A reduced grid of the acceptance sweep: bit-identical forks are
        // asserted inside astar_bench_report, as is ρ agreement on every
        // Monte-Carlo trial. The committed BENCH_astar.json carries the
        // ≥ 10× headline at n = 800; at this reduced n the margin is
        // smaller and the box may be noisy, so assert a conservative
        // floor on the best of three runs.
        let report = (0..3)
            .map(|_| astar_bench_report(&[100, 400], &[400], 500, 6, 2, 4))
            .max_by(|a, b| {
                a.speedup_at_largest_oracle_n
                    .partial_cmp(&b.speedup_at_largest_oracle_n)
                    .expect("finite speedups")
            })
            .expect("three runs");
        assert_eq!(report.schema, "multihonest-bench-astar/v1");
        assert_eq!(report.ns, vec![100, 400]);
        assert_eq!(report.engine_seconds.len(), 2);
        assert_eq!(report.vertices.len(), 2);
        assert_eq!(report.oracle_seconds.len(), 1);
        assert_eq!(report.speedups.len(), 1);
        assert_eq!(report.mc_rho_agreements, report.mc_trials);
        assert!(
            report.speedup_at_largest_oracle_n >= 2.0,
            "engine only {}x faster than the oracle at n = 400",
            report.speedup_at_largest_oracle_n
        );
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        assert!(json.contains("multihonest-bench-astar/v1"));
        assert!(json.contains("\"speedup_at_largest_oracle_n\""));
    }

    #[test]
    fn faults_bench_report_is_well_formed_and_conservative() {
        // A reduced version of the committed BENCH_faults.json run: the
        // dual-engine ledger equality and the Some(true) verdicts are
        // asserted inside the builder.
        let report = faults_bench_report(160, 4, &[8, 24], 2, 5);
        assert_eq!(report.schema, "multihonest-bench-faults/v1");
        assert_eq!(report.scenarios.len(), 7);
        assert_eq!(report.scenario_seconds.len(), 7);
        assert!(report.all_conservative);
        assert_eq!(report.equivalence_checked, 7);
        assert!(
            report.equivalence_deferred > 0,
            "the pre-check replays must exercise the fault path"
        );
        assert!(report.scenarios.iter().all(|s| s.dropped == 0));
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        assert!(json.contains("multihonest-bench-faults/v1"));
        assert!(json.contains("\"all_conservative\": true"));
        assert!(json.contains("partition-withholding"));
    }

    #[test]
    fn forkflow_bench_report_is_well_formed_and_streaming_wins() {
        // A reduced version of the committed BENCH_forkflow.json run: the
        // fork equality, verdict parity and per-step µ_x equivalence are
        // all asserted inside the builder. The committed baseline carries
        // the ≥ 10× headline at 10⁵ slots; at this reduced horizon the
        // margin is smaller and the box may be noisy, so assert a
        // conservative floor on the best of three runs.
        let report = (0..3)
            .map(|_| forkflow_bench_report(6_000, 3_000, 150, 7))
            .max_by(|a, b| {
                a.validation_speedup
                    .partial_cmp(&b.validation_speedup)
                    .expect("finite speedups")
            })
            .expect("three runs");
        assert_eq!(report.schema, "multihonest-bench-forkflow/v1");
        assert!(report.streaming_valid);
        assert!(report.streaming_vertices > 0);
        assert!(
            report.streaming_margin_events > 0,
            "the margin channel must fire"
        );
        assert_eq!(report.mu_cuts, vec![0, 37, 75]);
        assert_eq!(report.mu_checks, 150 * 3);
        assert!(
            report.validation_speedup >= 2.0,
            "streaming validation only {}x faster than replay-then-validate",
            report.validation_speedup
        );
        assert!(
            report.mu_speedup >= 2.0,
            "tracked µ_x only {}x faster than the per-step rebuild",
            report.mu_speedup
        );
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        assert!(json.contains("multihonest-bench-forkflow/v1"));
        assert!(json.contains("\"validation_speedup\""));
        assert!(json.contains("\"streaming_valid\": true"));
    }

    #[test]
    fn bound_vs_exact_ordering() {
        for row in bound_vs_exact(&[30, 60]) {
            assert!(row.exact <= row.theorem1 + 1e-12, "{row:?}");
            // The series tail is itself an upper bound on the exact DP
            // (no uniquely honest Catalan slot is necessary for violation).
            assert!(row.exact <= row.bound1_series + 1e-9, "{row:?}");
        }
    }

    #[test]
    fn threshold_rows_cover_exclusive_region() {
        let rows = threshold_experiment(60);
        assert!(rows.iter().all(|r| r.optimal));
        assert!(rows.iter().any(|r| !r.snow_white));
        assert!(rows.iter().any(|r| r.snow_white && !r.praos));
        // Error at fixed k worsens as h-mass shifts to H.
        let first = rows.first().unwrap(); // p_h = 0
        let last = rows.last().unwrap(); // p_h = 1 − p_A
        assert!(last.exact_at_k <= first.exact_at_k);
    }

    #[test]
    fn delta_rows_weaken_with_delay() {
        let rows = delta_experiment(40, 400);
        for pair in rows.windows(2) {
            assert!(pair[0].theorem7 <= pair[1].theorem7 + 1e-12);
            assert!(pair[0].effective_epsilon >= pair[1].effective_epsilon - 1e-12);
        }
    }
}
