//! The unified bench-regression gate: rebuild every perf-trajectory
//! report in-process and diff it against the committed `BENCH_*.json`
//! baseline with an explicit tolerance.
//!
//! This replaces the previous per-binary CI smoke steps (seven separate
//! `cargo run … | python3` blocks) with one auditable gate. For every
//! target the gate re-runs the exact grid its binary would run, parses
//! both the fresh report and the committed baseline into the vendored
//! [`Value`] tree, and checks three layers:
//!
//! 1. **schema + shape** — the schema tags match the expected constant
//!    and the top-level key sets are identical (a report field added or
//!    removed without regenerating the baseline fails loudly);
//! 2. **invariants** — the per-target correctness facts the old CI
//!    asserted in python (engine-equivalence counts, conservatism
//!    verdicts, `ρ`-agreement totals, executions laws), applied to the
//!    fresh report *and* re-checked on the committed baseline;
//! 3. **throughput** *(full grids only)* — the target's headline
//!    throughput figure must stay within `tolerance` (a relative
//!    regression fraction) of the committed number. Quick grids skip
//!    this layer: their shapes are intentionally incomparable to the
//!    full-grid baselines, and timing on shared CI runners is noise.
//!
//! Every numeric parameter here mirrors its binary's defaults — the
//! fresh quick report is the same object `<bin> bench-report --quick`
//! writes, so a gate failure always reproduces from the command line.

use serde::Value;
use std::path::{Path, PathBuf};

/// The regression targets, in gate order. Each `t` diffs against
/// `BENCH_<t>.json`.
pub const REGRESS_TARGETS: [&str; 7] = [
    "margin", "sim", "astar", "scenario", "sweep", "faults", "forkflow",
];

/// Options for one gate run.
#[derive(Debug, Clone)]
pub struct RegressOptions {
    /// Rebuild the reduced grids (the CI mode). `false` re-runs the
    /// full published grids and adds the throughput layer.
    pub quick: bool,
    /// Allowed relative throughput regression on full grids: fresh
    /// headline ≥ `(1 − tolerance) ×` baseline. Ignored when `quick`.
    pub tolerance: f64,
    /// Directory holding the committed `BENCH_*.json` baselines.
    pub baseline_dir: PathBuf,
    /// Worker threads for the targets that fan out.
    pub threads: usize,
}

impl Default for RegressOptions {
    fn default() -> RegressOptions {
        RegressOptions {
            quick: true,
            tolerance: 0.5,
            baseline_dir: PathBuf::from("."),
            threads: crate::default_threads(),
        }
    }
}

/// The verdict for one target: every failed check, with the check count
/// for context.
#[derive(Debug)]
pub struct TargetOutcome {
    /// Which target ran.
    pub target: &'static str,
    /// The baseline file it diffed against.
    pub baseline_path: PathBuf,
    /// Checks evaluated.
    pub checks: usize,
    /// Human-readable descriptions of every failed check.
    pub failures: Vec<String>,
}

impl TargetOutcome {
    /// `true` when every check passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The expected schema tag of a target's report.
pub fn expected_schema(target: &str) -> Option<&'static str> {
    Some(match target {
        "margin" => "multihonest-bench-margin/v1",
        "sim" => "multihonest-bench-sim/v1",
        "astar" => "multihonest-bench-astar/v1",
        "scenario" => "multihonest-bench-scenario/v1",
        "sweep" => "multihonest-bench-sweep/v1",
        "faults" => "multihonest-bench-faults/v1",
        "forkflow" => "multihonest-bench-forkflow/v1",
        _ => return None,
    })
}

/// The committed baseline file a target diffs against.
pub fn baseline_path(dir: &Path, target: &str) -> PathBuf {
    dir.join(format!("BENCH_{target}.json"))
}

/// Check accumulator: every assertion lands here, failures carry a
/// rendered description instead of panicking so one broken target still
/// reports every divergence it has.
struct Checks {
    n: usize,
    failures: Vec<String>,
}

impl Checks {
    fn new() -> Checks {
        Checks {
            n: 0,
            failures: Vec::new(),
        }
    }

    fn check(&mut self, ok: bool, describe: impl FnOnce() -> String) {
        self.n += 1;
        if !ok {
            self.failures.push(describe());
        }
    }

    /// Top-level key sets of fresh and baseline are identical.
    fn key_sets_match(&mut self, fresh: &Value, base: &Value) {
        let keys = |v: &Value| -> Vec<String> {
            match v {
                Value::Object(entries) => {
                    let mut ks: Vec<String> = entries.iter().map(|(k, _)| k.clone()).collect();
                    ks.sort();
                    ks
                }
                _ => Vec::new(),
            }
        };
        let (f, b) = (keys(fresh), keys(base));
        self.check(!f.is_empty() && f == b, || {
            format!("top-level key sets differ: fresh {f:?} vs baseline {b:?}")
        });
    }

    /// `report[key]` is the expected schema string, in both reports.
    fn schemas_match(&mut self, fresh: &Value, base: &Value, expected: &str) {
        for (who, v) in [("fresh", fresh), ("baseline", base)] {
            let got = v.get("schema").and_then(Value::as_str);
            self.check(got == Some(expected), || {
                format!("{who} schema {got:?}, expected {expected:?}")
            });
        }
    }

    fn u64_field(&mut self, v: &Value, who: &str, key: &str) -> u64 {
        let got = v.get(key).and_then(Value::as_u64);
        self.check(got.is_some(), || {
            format!("{who} field {key:?} missing or not a u64")
        });
        got.unwrap_or(0)
    }

    fn f64_field(&mut self, v: &Value, who: &str, key: &str) -> f64 {
        let got = v.get(key).and_then(Value::as_f64);
        self.check(got.is_some(), || {
            format!("{who} field {key:?} missing or not a number")
        });
        got.unwrap_or(f64::NAN)
    }

    fn bool_field(&mut self, v: &Value, who: &str, key: &str) -> bool {
        let got = v.get(key).and_then(Value::as_bool);
        self.check(got.is_some(), || {
            format!("{who} field {key:?} missing or not a bool")
        });
        got.unwrap_or(false)
    }

    fn array_len(&mut self, v: &Value, who: &str, key: &str) -> usize {
        let got = v.get(key).and_then(Value::as_array).map(<[Value]>::len);
        self.check(got.is_some(), || {
            format!("{who} field {key:?} missing or not an array")
        });
        got.unwrap_or(0)
    }

    /// Full-grid throughput layer: fresh ≥ (1 − tolerance) × baseline.
    fn throughput_within(&mut self, fresh: &Value, base: &Value, key: &str, tolerance: f64) {
        let f = self.f64_field(fresh, "fresh", key);
        let b = self.f64_field(base, "baseline", key);
        let floor = b * (1.0 - tolerance);
        self.check(f.is_finite() && f >= floor, || {
            format!(
                "throughput regression: fresh {key} = {f:.4} below floor {floor:.4} \
                 (baseline {b:.4}, tolerance {tolerance})"
            )
        });
    }
}

/// Loads and parses one committed baseline.
fn load_baseline(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("baseline {} is not JSON: {e}", path.display()))
}

/// Serializes a fresh report back through the same JSON pipeline the
/// binaries use and reparses it, so fresh and baseline are compared as
/// identical tree shapes.
fn reparse<T: serde::Serialize>(report: &T) -> Result<Value, String> {
    let text = serde_json::to_string(report).map_err(|e| format!("serialize fresh report: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("reparse fresh report: {e}"))
}

/// Rebuilds the target's report on the grid its binary would run.
fn build_fresh(target: &str, opts: &RegressOptions) -> Result<Value, String> {
    let quick = opts.quick;
    let threads = opts.threads;
    match target {
        "margin" => {
            let (alphas, ratios, ks): (Vec<f64>, Vec<f64>, Vec<usize>) = if quick {
                (vec![0.10, 0.30, 0.40], vec![1.0, 0.5], vec![100, 200])
            } else {
                (
                    crate::TABLE1_ALPHAS.to_vec(),
                    crate::TABLE1_RATIOS.to_vec(),
                    crate::TABLE1_KS.to_vec(),
                )
            };
            let (_cells, report) = crate::bench_report(&alphas, &ratios, &ks, threads);
            reparse(&report)
        }
        "sim" => {
            let cfg = crate::sim_bench_config(if quick { 600 } else { 2_000 });
            let ks: Vec<usize> = vec![5, 10, 20, 40, 80, 160];
            reparse(&crate::sim_bench_report(&cfg, 9, &ks))
        }
        "astar" => {
            let (ns, oracle_ns, mc_len, mc_trials): (&[usize], &[usize], usize, u64) = if quick {
                (&[100, 400], &[100, 400], 1_000, 8)
            } else {
                (&[200, 800, 3_000, 10_000], &[200, 800], 10_000, 32)
            };
            reparse(&crate::astar_bench_report(
                ns, oracle_ns, mc_len, mc_trials, threads, 4,
            ))
        }
        "scenario" => {
            let ks: Vec<usize> = vec![5, 20, 80];
            let report = if quick {
                multihonest_scenario::scenario_bench_report(600, 20_000, 100_000, 9, &ks, threads)
            } else {
                multihonest_scenario::scenario_bench_report(
                    2_000, 200_000, 1_000_000, 9, &ks, threads,
                )
            };
            reparse(&report)
        }
        "sweep" => {
            let spec = if quick {
                multihonest_sweep::CampaignSpec::quick_grid()
            } else {
                multihonest_sweep::CampaignSpec::default_grid()
            };
            let (_campaign, bench) = crate::sweep_bench_report(&spec, threads);
            reparse(&bench)
        }
        "faults" => {
            let (slots, trials, ks): (usize, u64, &[usize]) = if quick {
                (160, 8, &[8, 24])
            } else {
                (400, 48, &[8, 16, 32])
            };
            reparse(&crate::faults_bench_report(
                slots, trials, ks, threads, 0xC0FFEE,
            ))
        }
        "forkflow" => {
            let (slots, baseline_slots, mu_len) = if quick {
                (20_000, 10_000, 150)
            } else {
                (1_000_000, 1_000_000, 600)
            };
            reparse(&crate::forkflow_bench_report(
                slots,
                baseline_slots,
                mu_len,
                0xF0_12D,
            ))
        }
        other => Err(format!("unknown regress target {other:?}")),
    }
}

/// Per-target invariant layer: the correctness facts the old per-binary
/// CI smokes asserted, applied to the fresh report and re-checked on the
/// committed baseline.
fn check_invariants(target: &str, fresh: &Value, base: &Value, c: &mut Checks) {
    match target {
        "margin" => {
            let (a, r, k) = (
                c.array_len(fresh, "fresh", "alphas"),
                c.array_len(fresh, "fresh", "ratios"),
                c.array_len(fresh, "fresh", "ks"),
            );
            let cells = c.u64_field(fresh, "fresh", "cells");
            c.check(cells as usize == a * r * k, || {
                format!("fresh cells {cells} != alphas×ratios×ks = {}", a * r * k)
            });
            let checksum = c.f64_field(fresh, "fresh", "probability_checksum");
            c.check(checksum.is_finite() && checksum > 0.0, || {
                format!("fresh probability_checksum {checksum} not a positive finite number")
            });
        }
        "sim" => {
            // Schema + key-set layers carry this target; the builder
            // itself asserts indexed/oracle bit-identity before timing.
        }
        "astar" => {
            for (who, v) in [("fresh", fresh), ("baseline", base)] {
                let agreements = c.u64_field(v, who, "mc_rho_agreements");
                let trials = c.u64_field(v, who, "mc_trials");
                c.check(agreements == trials, || {
                    format!("{who} mc_rho_agreements {agreements} != mc_trials {trials}")
                });
            }
        }
        "scenario" => {
            let fe = c.u64_field(fresh, "fresh", "equivalence_scenarios");
            let be = c.u64_field(base, "baseline", "equivalence_scenarios");
            c.check(fe == be, || {
                format!("equivalence_scenarios differ: fresh {fe} vs baseline {be}")
            });
            let names = |v: &Value| -> Vec<String> {
                v.get("rows")
                    .and_then(Value::as_array)
                    .map(|rows| {
                        rows.iter()
                            .filter_map(|row| row.get("name").and_then(Value::as_str))
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default()
            };
            let (fn_, bn) = (names(fresh), names(base));
            c.check(!fn_.is_empty() && fn_ == bn, || {
                format!("scenario rosters differ: fresh {fn_:?} vs baseline {bn:?}")
            });
        }
        "sweep" => {
            for (who, v) in [("fresh", fresh), ("baseline", base)] {
                let cells = c.u64_field(v, who, "cells");
                c.check(cells == 24, || format!("{who} cells {cells} != 24"));
                let executions = c.u64_field(v, who, "executions");
                let trials = c.u64_field(v, who, "trials_per_cell");
                c.check(executions == cells * trials, || {
                    format!("{who} executions {executions} != cells {cells} × trials {trials}")
                });
            }
        }
        "faults" => {
            let roster = |v: &Value| -> Vec<String> {
                v.get("scenarios")
                    .and_then(Value::as_array)
                    .map(|ss| {
                        ss.iter()
                            .filter_map(|s| s.get("scenario").and_then(Value::as_str))
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default()
            };
            let (fr, br) = (roster(fresh), roster(base));
            c.check(!fr.is_empty() && fr == br, || {
                format!("fault-scenario rosters differ: fresh {fr:?} vs baseline {br:?}")
            });
            for (who, v) in [("fresh", fresh), ("baseline", base)] {
                c.check(c.bool_probe(v, "all_conservative"), || {
                    format!("{who} all_conservative is not true")
                });
                let scenarios = v.get("scenarios").and_then(Value::as_array).unwrap_or(&[]);
                for s in scenarios {
                    let name = s.get("scenario").and_then(Value::as_str).unwrap_or("?");
                    c.check(
                        s.get("conservative").and_then(Value::as_bool) == Some(true),
                        || format!("{who} scenario {name:?} not conservative"),
                    );
                    c.check(s.get("dropped").and_then(Value::as_u64) == Some(0), || {
                        format!("{who} scenario {name:?} dropped deliveries != 0")
                    });
                }
            }
        }
        "forkflow" => {
            for (who, v) in [("fresh", fresh), ("baseline", base)] {
                let valid = c.bool_field(v, who, "streaming_valid");
                c.check(valid, || format!("{who} streaming_valid is not true"));
                let events = c.u64_field(v, who, "streaming_margin_events");
                c.check(events > 0, || format!("{who} streaming_margin_events == 0"));
                let checks = c.u64_field(v, who, "mu_checks");
                let mu_len = c.u64_field(v, who, "mu_len");
                let cuts = c.array_len(v, who, "mu_cuts");
                c.check(checks == mu_len * cuts as u64, || {
                    format!("{who} mu_checks {checks} != mu_len {mu_len} × cuts {cuts}")
                });
            }
            let speedup = c.f64_field(base, "baseline", "validation_speedup");
            c.check(speedup >= 10.0, || {
                format!("baseline validation_speedup {speedup:.2} < 10")
            });
        }
        _ => {}
    }
}

impl Checks {
    /// Reads a bool field without registering a check (for composite
    /// assertions that phrase their own failure).
    fn bool_probe(&self, v: &Value, key: &str) -> bool {
        v.get(key).and_then(Value::as_bool) == Some(true)
    }
}

/// The headline throughput field diffed on full grids (bigger is
/// better). `None` for targets whose headline lives in a lib test.
fn throughput_field(target: &str) -> Option<&'static str> {
    match target {
        "margin" => Some("cells_per_second"),
        "sim" => Some("sweep_speedup"),
        "astar" => Some("speedup_at_largest_oracle_n"),
        "scenario" => Some("million_slots_per_second"),
        "sweep" => Some("executions_per_second"),
        "forkflow" => Some("validation_speedup"),
        _ => None,
    }
}

/// Runs one target's regression gate.
///
/// # Errors
///
/// Returns `Err` only for environmental failures — an unknown target
/// name, an unreadable or unparsable baseline file. Check *failures*
/// land in the returned [`TargetOutcome`] instead.
pub fn regress_target(
    target: &'static str,
    opts: &RegressOptions,
) -> Result<TargetOutcome, String> {
    let baseline = baseline_path(&opts.baseline_dir, target);
    let base = load_baseline(&baseline)?;
    let fresh = build_fresh(target, opts)?;
    let mut c = Checks::new();
    let expected = expected_schema(target).ok_or_else(|| format!("unknown target {target:?}"))?;
    c.schemas_match(&fresh, &base, expected);
    c.key_sets_match(&fresh, &base);
    check_invariants(target, &fresh, &base, &mut c);
    if !opts.quick {
        if let Some(field) = throughput_field(target) {
            c.throughput_within(&fresh, &base, field, opts.tolerance);
        }
    }
    Ok(TargetOutcome {
        target,
        baseline_path: baseline,
        checks: c.n,
        failures: c.failures,
    })
}

/// Runs the gate over `targets` in order (the full roster when empty).
///
/// # Errors
///
/// Propagates the first environmental failure (see [`regress_target`]).
pub fn run_regress(
    targets: &[&'static str],
    opts: &RegressOptions,
) -> Result<Vec<TargetOutcome>, String> {
    let roster: Vec<&'static str> = if targets.is_empty() {
        REGRESS_TARGETS.to_vec()
    } else {
        targets.to_vec()
    };
    roster.iter().map(|t| regress_target(t, opts)).collect()
}

/// Renders the outcome table: one line per target, then every failure.
pub fn render_outcomes(outcomes: &[TargetOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        out.push_str(&format!(
            "regress {:<9} {:>4} checks  {}  vs {}\n",
            o.target,
            o.checks,
            if o.passed() { "ok  " } else { "FAIL" },
            o.baseline_path.display()
        ));
    }
    for o in outcomes {
        for f in &o.failures {
            out.push_str(&format!("  {}: {f}\n", o.target));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_table_covers_every_target() {
        for t in REGRESS_TARGETS {
            assert!(expected_schema(t).is_some(), "{t}");
        }
        assert!(expected_schema("nonsense").is_none());
    }

    #[test]
    fn baseline_paths_follow_the_bench_convention() {
        let p = baseline_path(Path::new("/x"), "margin");
        assert_eq!(p, PathBuf::from("/x/BENCH_margin.json"));
    }

    #[test]
    fn mismatched_schema_and_keys_are_reported_not_panicked() {
        let fresh = serde_json::from_str(r#"{"schema": "a/v1", "cells": 3}"#).unwrap();
        let base = serde_json::from_str(r#"{"schema": "b/v1", "extra": 1}"#).unwrap();
        let mut c = Checks::new();
        c.schemas_match(&fresh, &base, "a/v1");
        c.key_sets_match(&fresh, &base);
        assert_eq!(c.n, 3);
        assert_eq!(c.failures.len(), 2, "{:?}", c.failures);
    }

    #[test]
    fn throughput_floor_is_tolerance_scaled() {
        let fresh = serde_json::from_str(r#"{"rate": 6.0}"#).unwrap();
        let base = serde_json::from_str(r#"{"rate": 10.0}"#).unwrap();
        let mut c = Checks::new();
        c.throughput_within(&fresh, &base, "rate", 0.5);
        assert!(c.failures.is_empty(), "6 >= 10×0.5: {:?}", c.failures);
        c.throughput_within(&fresh, &base, "rate", 0.2);
        assert_eq!(c.failures.len(), 1, "6 < 10×0.8");
    }

    #[test]
    fn forkflow_invariants_accept_a_consistent_report() {
        let doc = r#"{
            "schema": "multihonest-bench-forkflow/v1",
            "streaming_valid": true,
            "streaming_margin_events": 12,
            "mu_checks": 300,
            "mu_len": 150,
            "mu_cuts": [10, 75],
            "validation_speedup": 25.0
        }"#;
        let fresh = serde_json::from_str(doc).unwrap();
        let base = serde_json::from_str(doc).unwrap();
        let mut c = Checks::new();
        check_invariants("forkflow", &fresh, &base, &mut c);
        assert!(c.failures.is_empty(), "{:?}", c.failures);
    }
}
