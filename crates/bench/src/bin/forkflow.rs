//! The streaming-fork-pipeline CLI: times online Δ-axiom validation
//! against the retired replay-then-validate baseline and the tracked
//! µ_x cuts against a per-step `ReachAnalysis` rebuild, then writes the
//! timing record.
//!
//! ```bash
//! # the full baseline (writes BENCH_forkflow.json):
//! cargo run -p multihonest-bench --release --bin forkflow
//! # reduced CI smoke run:
//! cargo run -p multihonest-bench --release --bin forkflow -- --quick
//! cargo run -p multihonest-bench --release --bin forkflow -- --quick --out /tmp/f.json
//! ```
//!
//! The run aborts (rather than writing a report) if the streamed fork
//! differs from the reference extraction, the online verdict disagrees
//! with the batch oracle, or any tracked µ_x disagrees with the rebuild
//! — the committed baseline always certifies an equivalent pipeline.

use multihonest_bench::cli::{flag_value, or_usage, parsed_flag, reject_unknown_flags};
use multihonest_bench::forkflow_bench_report;

const USAGE: &str = "forkflow [--quick] [--seed <u64>] [--slots <n>] [--out <path>]";

const KNOWN_FLAGS: [&str; 4] = ["--quick", "--seed", "--slots", "--out"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    or_usage(reject_unknown_flags(&args, &KNOWN_FLAGS), USAGE);
    let quick = args.iter().any(|a| a == "--quick");

    // Full run: the million-slot headline plus the 10⁵-slot common-horizon
    // comparison (the acceptance criterion of the streaming refactor).
    // Quick run: the smallest grid that still exercises every path.
    // The validation comparison runs at the full headline horizon — the
    // batch (F4Δ) sweep is quadratic in the honest-slot count, which is
    // exactly the scale gate the streaming pipeline removes. µ_x
    // comparison lengths stay small: the rebuild baseline is the
    // definitional O(V²) pair scan per step — cubic in the horizon.
    let (default_slots, baseline_slots, mu_len) = if quick {
        (20_000, 10_000, 150)
    } else {
        (1_000_000, 1_000_000, 600)
    };
    let slots = or_usage(parsed_flag(&args, "--slots"), USAGE).unwrap_or(default_slots);
    let seed = or_usage(parsed_flag(&args, "--seed"), USAGE).unwrap_or(0xF0_12D);
    // Quick-run reports default to a separate file: BENCH_forkflow.json
    // is the committed full baseline and must not be silently clobbered
    // with incomparable quick-run numbers.
    let out_path = or_usage(flag_value(&args, "--out"), USAGE).unwrap_or(if quick {
        "BENCH_forkflow_quick.json"
    } else {
        "BENCH_forkflow.json"
    });

    let report = forkflow_bench_report(slots, baseline_slots, mu_len, seed);
    let payload = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(out_path, format!("{payload}\n")).expect("write forkflow report");
    eprintln!(
        "forkflow: streamed {} slots in {:.3}s ({:.2e} slots/s, verdict Ok, {} margin events); \
         validation {:.1}x vs replay at {} slots; tracked u_x {:.1}x vs rebuild \
         ({} checks at n = {}) -> {}",
        report.streaming_slots,
        report.streaming_seconds,
        report.streaming_slots_per_second,
        report.streaming_margin_events,
        report.validation_speedup,
        report.baseline_slots,
        report.mu_speedup,
        report.mu_checks,
        report.mu_len,
        out_path
    );
}
