//! The simulator settlement sweep: observed `(s, k)`-violations of the
//! canonical withholding execution, computed through the indexed
//! consistency-query layer.
//!
//! ```bash
//! # the sweep table (2000-slot withholding config, several k):
//! cargo run -p multihonest-bench --release --bin settlement
//! # reduced 600-slot grid:
//! cargo run -p multihonest-bench --release --bin settlement -- --quick
//! # timing baseline for the perf trajectory (writes BENCH_sim.json):
//! cargo run -p multihonest-bench --release --bin settlement -- bench-report
//! cargo run -p multihonest-bench --release --bin settlement -- bench-report --quick --out /tmp/b.json
//! ```

use multihonest::prelude::*;
use multihonest_bench::cli::{flag_value, or_usage, parsed_flag};
use multihonest_bench::{sim_bench_config, sim_bench_report};

const USAGE: &str = "settlement [bench-report] [--quick] [--seed <u64>] [--out <path>]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let report_mode = args.iter().any(|a| a == "bench-report");
    let seed: u64 = or_usage(parsed_flag(&args, "--seed"), USAGE).unwrap_or(9);
    // Quick-grid reports default to a separate file: BENCH_sim.json is the
    // committed full-grid baseline and must not be silently clobbered with
    // incomparable quick-grid numbers.
    let out_path = or_usage(flag_value(&args, "--out"), USAGE).unwrap_or(if quick {
        "BENCH_sim_quick.json"
    } else {
        "BENCH_sim.json"
    });
    let cfg = sim_bench_config(if quick { 600 } else { 2_000 });
    let ks: Vec<usize> = vec![5, 10, 20, 40, 80, 160];

    if report_mode {
        let report = sim_bench_report(&cfg, seed, &ks);
        let payload = serde_json::to_string_pretty(&report).expect("serializable");
        std::fs::write(out_path, format!("{payload}\n")).expect("write bench report");
        eprintln!(
            "bench-report: {} slots, run {:.3}s, sweep {:.2e}s indexed vs {:.2e}s oracle \
             ({:.0}x, bit-identical) -> {}",
            report.slots,
            report.run_seconds,
            report.indexed_sweep_seconds,
            report.oracle_sweep_seconds,
            report.sweep_speedup,
            out_path
        );
        return;
    }

    let sim = Simulation::run(&cfg, seed);
    let m = sim.metrics();
    println!(
        "== observed settlement violations ({} slots, {} strategy, Δ = {}) ==",
        cfg.slots, cfg.strategy, cfg.delta
    );
    println!(
        "growth {:.3}, quality {:.3}, max slot divergence {}, max settlement lag {:?}\n",
        m.chain_growth(),
        m.chain_quality(),
        m.max_slot_divergence,
        m.max_settlement_lag
    );
    println!(
        "{:>5} | {:>15} | {:>20}",
        "k", "violated anchors", "first violating slot"
    );
    for &k in &ks {
        let violated = sim.count_violating_slots(k, cfg.slots);
        println!(
            "{k:>5} | {violated:>15} | {:>20}",
            sim.first_violating_slot(k)
                .map_or("-".to_string(), |s| s.to_string())
        );
    }
}
