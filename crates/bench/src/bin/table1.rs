//! Regenerates paper Table 1 (experiment E1).
//!
//! ```bash
//! # quick subset (seconds):
//! cargo run -p multihonest-bench --release --bin table1 -- --quick
//! # the full published grid (minutes):
//! cargo run -p multihonest-bench --release --bin table1
//! # machine-readable output:
//! cargo run -p multihonest-bench --release --bin table1 -- --quick --json
//! ```

use multihonest_bench::{generate_table1, render_table1, TABLE1_ALPHAS, TABLE1_KS, TABLE1_RATIOS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");

    let (alphas, ratios, ks): (Vec<f64>, Vec<f64>, Vec<usize>) = if quick {
        (vec![0.10, 0.30, 0.40], vec![1.0, 0.5], vec![100, 200])
    } else {
        (
            TABLE1_ALPHAS.to_vec(),
            TABLE1_RATIOS.to_vec(),
            TABLE1_KS.to_vec(),
        )
    };

    let start = std::time::Instant::now();
    let cells = generate_table1(&alphas, &ratios, &ks);
    let elapsed = start.elapsed();

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&cells).expect("serializable")
        );
    } else {
        print!("{}", render_table1(&cells, &alphas, &ratios, &ks));
        eprintln!(
            "\n{} cells in {:.1?} (exact O(k³) DP per (α, ratio) pair)",
            cells.len(),
            elapsed
        );
        eprintln!("note: published k = 500 row under-reports; see EXPERIMENTS.md finding F1");
    }
}
