//! Regenerates paper Table 1 (experiment E1).
//!
//! ```bash
//! # quick subset (well under a second):
//! cargo run -p multihonest-bench --release --bin table1 -- --quick
//! # the full published grid (a few seconds with the banded kernel):
//! cargo run -p multihonest-bench --release --bin table1
//! # machine-readable output:
//! cargo run -p multihonest-bench --release --bin table1 -- --quick --json
//! # timing baseline for the perf trajectory (writes BENCH_margin.json):
//! cargo run -p multihonest-bench --release --bin table1 -- bench-report
//! cargo run -p multihonest-bench --release --bin table1 -- bench-report --quick --out /tmp/b.json
//! # worker threads for the (α, ratio) fan-out (default: all cores):
//! cargo run -p multihonest-bench --release --bin table1 -- --threads 4
//! ```

use multihonest_bench::cli::{flag_value, or_usage, parsed_flag};
use multihonest_bench::{
    bench_report, default_threads, generate_table1_threads, render_table1, TABLE1_ALPHAS,
    TABLE1_KS, TABLE1_RATIOS,
};

const USAGE: &str = "table1 [bench-report] [--quick] [--json] [--threads <n>] [--out <path>]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let report_mode = args.iter().any(|a| a == "bench-report");
    let threads = or_usage(parsed_flag(&args, "--threads"), USAGE).unwrap_or_else(default_threads);
    // Quick-grid reports default to a separate file: BENCH_margin.json is
    // the committed full-grid baseline and must not be silently clobbered
    // with incomparable quick-grid numbers.
    let out_path = or_usage(flag_value(&args, "--out"), USAGE).unwrap_or(if quick {
        "BENCH_margin_quick.json"
    } else {
        "BENCH_margin.json"
    });

    let (alphas, ratios, ks): (Vec<f64>, Vec<f64>, Vec<usize>) = if quick {
        (vec![0.10, 0.30, 0.40], vec![1.0, 0.5], vec![100, 200])
    } else {
        (
            TABLE1_ALPHAS.to_vec(),
            TABLE1_RATIOS.to_vec(),
            TABLE1_KS.to_vec(),
        )
    };

    if report_mode {
        let (cells, report) = bench_report(&alphas, &ratios, &ks, threads);
        let payload = serde_json::to_string_pretty(&report).expect("serializable");
        std::fs::write(out_path, format!("{payload}\n")).expect("write bench report");
        eprintln!(
            "bench-report: {} cells in {:.2}s ({:.1} cells/s, {} threads) -> {}",
            cells.len(),
            report.total_seconds,
            report.cells_per_second,
            report.threads,
            out_path
        );
        return;
    }

    let start = std::time::Instant::now();
    let cells = generate_table1_threads(&alphas, &ratios, &ks, threads);
    let elapsed = start.elapsed();

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&cells).expect("serializable")
        );
    } else {
        print!("{}", render_table1(&cells, &alphas, &ratios, &ks));
        eprintln!(
            "\n{} cells in {:.1?} (banded exact DP per (α, ratio) pair, {threads} thread(s))",
            cells.len(),
            elapsed
        );
        eprintln!("note: published k = 500 row under-reports; see EXPERIMENTS.md finding F1");
    }
}
