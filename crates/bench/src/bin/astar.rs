//! The optimal-adversary benchmark: canonical-fork builds through the
//! incremental engine vs the definitional oracle, plus the Monte-Carlo
//! margin/ρ sweep over long characteristic strings.
//!
//! ```bash
//! # canonical-fork Monte-Carlo statistics at a few horizons:
//! cargo run -p multihonest-bench --release --bin astar
//! # timing baseline for the perf trajectory (writes BENCH_astar.json):
//! cargo run -p multihonest-bench --release --bin astar -- bench-report
//! # reduced grid (CI smoke):
//! cargo run -p multihonest-bench --release --bin astar -- bench-report --quick --out /tmp/b.json
//! ```

use multihonest::adversary::CanonicalMonteCarlo;
use multihonest_bench::cli::{flag_value, or_usage, parsed_flag};
use multihonest_bench::{astar_bench_condition, astar_bench_report, default_threads};

const USAGE: &str = "astar [bench-report] [--quick] [--seed <u64>] [--threads <n>] [--out <path>]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let report_mode = args.iter().any(|a| a == "bench-report");
    let seed: u64 = or_usage(parsed_flag(&args, "--seed"), USAGE).unwrap_or(4);
    let threads = or_usage(parsed_flag(&args, "--threads"), USAGE).unwrap_or_else(default_threads);
    // Quick-grid reports default to a separate file: BENCH_astar.json is
    // the committed full-grid baseline and must not be silently clobbered
    // with incomparable quick-grid numbers.
    let out_path = or_usage(flag_value(&args, "--out"), USAGE).unwrap_or(if quick {
        "BENCH_astar_quick.json"
    } else {
        "BENCH_astar.json"
    });

    if report_mode {
        let (ns, oracle_ns, mc_len, mc_trials): (&[usize], &[usize], usize, u64) = if quick {
            (&[100, 400], &[100, 400], 1_000, 8)
        } else {
            (&[200, 800, 3_000, 10_000], &[200, 800], 10_000, 32)
        };
        let report = astar_bench_report(ns, oracle_ns, mc_len, mc_trials, threads, seed);
        let payload = serde_json::to_string_pretty(&report).expect("serializable");
        std::fs::write(out_path, format!("{payload}\n")).expect("write bench report");
        eprintln!(
            "bench-report: n = {:?}, engine {:.2e}s at n = {}, {:.1}x vs oracle at n = {}, \
             MC {} trials at n = {} in {:.2}s (bit-identical forks, ρ agreements {}/{}) -> {}",
            report.ns,
            report.engine_seconds.last().unwrap(),
            report.ns.last().unwrap(),
            report.speedup_at_largest_oracle_n,
            report.oracle_ns.last().unwrap(),
            report.mc_trials,
            report.mc_len,
            report.mc_seconds,
            report.mc_rho_agreements,
            report.mc_trials,
            out_path
        );
        return;
    }

    // Default mode: the margin/ρ statistics of canonical forks over
    // sampled strings — the game-theoretic side of Table 1's settlement
    // story, at horizons the definitional path could never reach.
    let cond = astar_bench_condition();
    let trials = if quick { 8 } else { 48 };
    println!(
        "== canonical-fork Monte Carlo (ε = {}, p_h = {}, {} trials/row, {} threads) ==",
        cond.epsilon(),
        cond.p_unique_honest(),
        trials,
        threads
    );
    println!(
        "{:>7} | {:>9} | {:>8} | {:>12} | {:>13} | {:>12}",
        "n", "mean ρ", "max ρ", "mean µ_ε(w)", "µ_ε(w) ≥ 0", "ρ agreement"
    );
    let lens: &[usize] = if quick {
        &[500, 2_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    for &len in lens {
        let s = CanonicalMonteCarlo::new(cond, trials, seed)
            .with_threads(threads)
            .summary(len);
        println!(
            "{:>7} | {:>9.3} | {:>8} | {:>12.3} | {:>10}/{:<2} | {:>9}/{:<2}",
            len,
            s.mean_rho,
            s.max_rho,
            s.mean_margin,
            s.nonneg_margin_trials,
            s.trials,
            s.rho_agreements,
            s.trials
        );
    }
}
