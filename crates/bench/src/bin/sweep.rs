//! The campaign sweep orchestrator CLI: deterministic seeded campaigns
//! over the (strategy × Δ × stake-profile) grid with checkpointed
//! resume.
//!
//! ```bash
//! # the full default campaign (24 cells × 4200 trials ≈ 10^5 executions):
//! cargo run -p multihonest-bench --release --bin sweep
//! # reduced grid:
//! cargo run -p multihonest-bench --release --bin sweep -- --quick
//! # checkpointed + resumable (rerun the same line after an interrupt):
//! cargo run -p multihonest-bench --release --bin sweep -- --checkpoint sweep.ckpt.json
//! # timing baseline for the perf trajectory (writes BENCH_sweep.json):
//! cargo run -p multihonest-bench --release --bin sweep -- bench-report
//! cargo run -p multihonest-bench --release --bin sweep -- bench-report --quick --out /tmp/b.json
//! ```
//!
//! An interrupted checkpointed run (`--stop-after-cells`, or an actual
//! kill) exits cleanly without writing a report; rerunning the same
//! command resumes from the checkpoint and produces a report
//! byte-identical to an uninterrupted run.

use std::path::PathBuf;

use multihonest::obs::{Heartbeat, ObsRecorder};
use multihonest_bench::cli::{flag_value, or_usage, parsed_flag, reject_unknown_flags};
use multihonest_bench::{default_threads, sweep_bench_report};
use multihonest_sweep::{
    campaign_report, report_csv, report_json, run_campaign, run_campaign_observed, CampaignSpec,
    RunOptions,
};

const USAGE: &str = "sweep [bench-report] [--quick] [--seed <u64>] [--threads <n>] \
                     [--out <path>] [--csv <path>] [--checkpoint <path>] \
                     [--stop-after-cells <n>] [--trace <path>] [--heartbeat <secs>]";

const KNOWN_FLAGS: [&str; 9] = [
    "--quick",
    "--seed",
    "--threads",
    "--out",
    "--csv",
    "--checkpoint",
    "--stop-after-cells",
    "--trace",
    "--heartbeat",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    or_usage(reject_unknown_flags(&args, &KNOWN_FLAGS), USAGE);
    let quick = args.iter().any(|a| a == "--quick");
    let report_mode = args.iter().any(|a| a == "bench-report");

    let mut spec = if quick {
        CampaignSpec::quick_grid()
    } else {
        CampaignSpec::default_grid()
    };
    if let Some(seed) = or_usage(parsed_flag(&args, "--seed"), USAGE) {
        spec.seed = seed;
    }
    let threads = or_usage(parsed_flag(&args, "--threads"), USAGE).unwrap_or_else(default_threads);
    let checkpoint: Option<PathBuf> =
        or_usage(flag_value(&args, "--checkpoint"), USAGE).map(PathBuf::from);
    let stop_after_cells: Option<usize> = or_usage(parsed_flag(&args, "--stop-after-cells"), USAGE);
    let csv_path = or_usage(flag_value(&args, "--csv"), USAGE);
    // Quick-grid reports default to a separate file: BENCH_sweep.json is
    // the committed full-grid baseline and must not be silently clobbered
    // with incomparable quick-grid numbers.
    let out_path =
        or_usage(flag_value(&args, "--out"), USAGE).unwrap_or(match (report_mode, quick) {
            (true, false) => "BENCH_sweep.json",
            (true, true) => "BENCH_sweep_quick.json",
            (false, false) => "sweep_campaign.json",
            (false, true) => "sweep_campaign_quick.json",
        });

    if report_mode {
        let (campaign, bench) = sweep_bench_report(&spec, threads);
        let payload = serde_json::to_string_pretty(&bench).expect("serializable");
        std::fs::write(out_path, format!("{payload}\n")).expect("write bench report");
        if let Some(path) = csv_path {
            std::fs::write(path, report_csv(&campaign)).expect("write campaign CSV");
        }
        eprintln!(
            "bench-report: resume pre-check OK ({} cells, {:.2}s); \
             {} executions over {} cells in {:.2}s on {} threads \
             ({:.0} exec/s, {:.2} Mslots/s) -> {}",
            bench.resume_check_cells,
            bench.resume_check_seconds,
            bench.executions,
            bench.cells,
            bench.run_seconds,
            bench.threads,
            bench.executions_per_second,
            bench.mslots_per_second,
            out_path
        );
        return;
    }

    let trace_path = or_usage(flag_value(&args, "--trace"), USAGE).map(PathBuf::from);
    let heartbeat_secs: Option<u64> = or_usage(parsed_flag(&args, "--heartbeat"), USAGE);

    let opts = RunOptions {
        threads,
        checkpoint: checkpoint.clone(),
        stop_after_cells,
    };
    // Observability is opt-in: without --trace/--heartbeat the campaign
    // takes the plain path (no per-worker shards, no span events).
    let observing = trace_path.is_some() || heartbeat_secs.is_some();
    let mut rec = ObsRecorder::new();
    let mut hb = heartbeat_secs.map(Heartbeat::new);
    let run = if observing {
        run_campaign_observed(&spec, &opts, Some(&mut rec), hb.as_mut())
    } else {
        run_campaign(&spec, &opts)
    };
    let outcome = match run {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &trace_path {
        std::fs::write(path, rec.chrome_trace_json()).expect("write Chrome trace");
        eprintln!(
            "trace: {} span events from {} workers -> {} (load in chrome://tracing or Perfetto)",
            rec.events().len(),
            threads,
            path.display()
        );
    }

    if !outcome.is_complete() {
        // Interrupted (only reachable via --stop-after-cells or a flush
        // failure upgraded to an error above): the checkpoint holds the
        // completed prefix, so the same command line resumes the rest.
        eprintln!(
            "campaign interrupted: {}/{} cells complete ({} resumed, {} executions this run); \
             rerun with the same --checkpoint to resume",
            outcome.completed_cells,
            spec.cell_count(),
            outcome.resumed_cells,
            outcome.executions_run,
        );
        return;
    }

    let report = campaign_report(&spec, &outcome);
    std::fs::write(out_path, report_json(&report)).expect("write campaign report");
    if let Some(path) = csv_path {
        std::fs::write(path, report_csv(&report)).expect("write campaign CSV");
    }
    eprintln!(
        "campaign complete: {} executions over {} cells ({} resumed) -> {}",
        report.executions, report.completed_cells, outcome.resumed_cells, out_path
    );
}
