//! The experiment harness: regenerates the quantitative comparisons E6–E10
//! of DESIGN.md (all paper artifacts beyond Table 1 and the figures).
//!
//! ```bash
//! cargo run -p multihonest-bench --release --bin experiments            # all, text
//! cargo run -p multihonest-bench --release --bin experiments -- --quick
//! cargo run -p multihonest-bench --release --bin experiments -- tiebreak --json
//! ```
//!
//! Sections: `bound-vs-exact`, `tiebreak`, `delta-sync`, `thresholds`,
//! `catalan-tails`. `--threads N` bounds the worker fan-out of the
//! DP-heavy sections (default: all cores).

use multihonest_bench as bench;

const USAGE: &str = "experiments [--quick] [--json] [--threads <n>] [experiment-names...]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let threads = bench::cli::or_usage(bench::cli::parsed_flag(&args, "--threads"), USAGE)
        .unwrap_or_else(bench::default_threads);
    let wanted = bench::cli::positionals(&args, &["--threads"]);
    let run = |name: &str| wanted.is_empty() || wanted.contains(&name);

    if run("bound-vs-exact") {
        let ks: Vec<usize> = if quick {
            vec![40, 80]
        } else {
            vec![50, 100, 200, 400]
        };
        let rows = bench::bound_vs_exact_threads(&ks, threads);
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&rows).expect("serializable")
            );
        } else {
            println!("== E6: exact settlement probability vs Theorem-1 machinery ==");
            println!("  ε   p_h    k |      exact | Bound1 series | Theorem 1");
            for r in rows {
                println!(
                    "{:4} {:5} {:4} | {:10.3e} | {:13.3e} | {:9.3e}",
                    r.epsilon, r.p_h, r.k, r.exact, r.bound1_series, r.theorem1
                );
            }
            println!();
        }
    }

    if run("tiebreak") {
        let (trials, sims) = if quick { (4_000, 3) } else { (20_000, 10) };
        let rows = bench::tiebreak_experiment(trials, sims);
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&rows).expect("serializable")
            );
        } else {
            println!("== E7: consistent tie-breaking, p_h = 0 (Theorem 2) ==");
            println!("  ε    k | Theorem 2 | MC no-pair | sim div (A0) | sim div (A0')");
            for r in rows {
                println!(
                    "{:4} {:4} | {:9.3e} | {:10.4} | {:12.1} | {:13.1}",
                    r.epsilon,
                    r.k,
                    r.theorem2,
                    r.mc_no_consecutive_catalan,
                    r.sim_divergence_adversarial_ties,
                    r.sim_divergence_consistent
                );
            }
            println!();
        }
    }

    if run("delta-sync") {
        let (k, slots) = if quick { (30, 400) } else { (60, 2_000) };
        let rows = bench::delta_experiment(k, slots);
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&rows).expect("serializable")
            );
        } else {
            println!("== E8: Δ-synchronous setting (Theorem 7) ==");
            println!("  Δ |   ε_Δ   | Theorem 7 (k={k}) | sim violations");
            for r in rows {
                println!(
                    "{:3} | {:7.4} | {:16.3e} | {:14}",
                    r.delta, r.effective_epsilon, r.theorem7, r.sim_violations
                );
            }
            println!();
        }
    }

    if run("thresholds") {
        let k = if quick { 50 } else { 100 };
        let rows = bench::threshold_experiment_threads(k, threads);
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&rows).expect("serializable")
            );
        } else {
            println!("== E9: threshold comparison at p_A = 0.40 (paper Section 1) ==");
            println!("  p_h   p_H | ours | Praos | SnowWhite | exact err at k={k}");
            for r in rows {
                println!(
                    "{:5.2} {:5.2} | {:4} | {:5} | {:9} | {:12.3e}",
                    r.p_h, r.p_hh, r.optimal, r.praos, r.snow_white, r.exact_at_k
                );
            }
            println!();
        }
    }

    if run("catalan-tails") {
        let trials = if quick { 4_000 } else { 40_000 };
        let rows = bench::catalan_tail_experiment(trials);
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&rows).expect("serializable")
            );
        } else {
            println!("== E10: Catalan-slot rarity, Monte Carlo vs series tails ==");
            println!("  ε   p_h    k | MC unique | Bound1 | MC consec | Bound2");
            for r in rows {
                println!(
                    "{:4} {:5} {:4} | {:9.4} | {:6.4} | {:9.4} | {:6.4}",
                    r.epsilon,
                    r.p_h,
                    r.k,
                    r.mc_unique,
                    r.bound1_series,
                    r.mc_consecutive,
                    r.bound2_series
                );
            }
            println!();
        }
    }
}
