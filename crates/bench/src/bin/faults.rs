//! The fault-injection robustness CLI: replays the canonical fault
//! library (partitions, eclipses, crash–recovery, windowed loss, and a
//! compound chain) through both engines, then runs the Δ-conservatism
//! harness per scenario and writes the verdict table.
//!
//! ```bash
//! # the full baseline (writes BENCH_faults.json):
//! cargo run -p multihonest-bench --release --bin faults
//! # reduced CI smoke run:
//! cargo run -p multihonest-bench --release --bin faults -- --quick
//! cargo run -p multihonest-bench --release --bin faults -- --quick --out /tmp/f.json
//! ```
//!
//! The run aborts (rather than writing a report) if the two engines
//! disagree on any degradation ledger or if any scenario's empirical
//! violation frequency escapes its Δ′-model prediction — the committed
//! baseline always certifies a conservative fault layer.

use multihonest_bench::cli::{flag_value, or_usage, parsed_flag, reject_unknown_flags};
use multihonest_bench::{default_threads, faults_bench_report};

const USAGE: &str = "faults [--quick] [--seed <u64>] [--threads <n>] [--trials <n>] [--out <path>]";

const KNOWN_FLAGS: [&str; 5] = ["--quick", "--seed", "--threads", "--trials", "--out"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    or_usage(reject_unknown_flags(&args, &KNOWN_FLAGS), USAGE);
    let quick = args.iter().any(|a| a == "--quick");

    // Full run: the same horizon as the scenario fingerprint pins; enough
    // trials for the empirical frequencies to mean something. Quick run:
    // the smallest grid that still activates every fault window.
    let (slots, default_trials, ks): (usize, u64, &[usize]) = if quick {
        (160, 8, &[8, 24])
    } else {
        (400, 48, &[8, 16, 32])
    };
    let trials = or_usage(parsed_flag(&args, "--trials"), USAGE).unwrap_or(default_trials);
    let seed = or_usage(parsed_flag(&args, "--seed"), USAGE).unwrap_or(0xC0FFEE);
    let threads = or_usage(parsed_flag(&args, "--threads"), USAGE).unwrap_or_else(default_threads);
    // Quick-run reports default to a separate file: BENCH_faults.json is
    // the committed full baseline and must not be silently clobbered
    // with incomparable quick-run numbers.
    let out_path = or_usage(flag_value(&args, "--out"), USAGE).unwrap_or(if quick {
        "BENCH_faults_quick.json"
    } else {
        "BENCH_faults.json"
    });

    let report = faults_bench_report(slots, trials, ks, threads, seed);
    let payload = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(out_path, format!("{payload}\n")).expect("write faults report");
    eprintln!(
        "faults: engine equivalence OK ({} scenarios, {} deferred, {:.2}s); \
         conservatism OK ({} scenarios x {} trials, ks {:?}) in {:.2}s on {} threads -> {}",
        report.equivalence_checked,
        report.equivalence_deferred,
        report.equivalence_seconds,
        report.scenarios.len(),
        report.trials_per_scenario,
        report.ks,
        report.total_seconds,
        report.threads,
        out_path
    );
}
