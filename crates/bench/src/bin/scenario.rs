//! The scenario engine's grid sweep: columnar million-slot executions
//! across the scenario library, with engine-equivalence enforcement.
//!
//! ```bash
//! # the scenario grid table (200k-slot rows, headline at 10^6 slots):
//! cargo run -p multihonest-bench --release --bin scenario
//! # reduced grid:
//! cargo run -p multihonest-bench --release --bin scenario -- --quick
//! # timing baseline for the perf trajectory (writes BENCH_scenario.json):
//! cargo run -p multihonest-bench --release --bin scenario -- bench-report
//! cargo run -p multihonest-bench --release --bin scenario -- bench-report --quick --out /tmp/b.json
//! ```

use multihonest_bench::cli::{flag_value, or_usage, parsed_flag};
use multihonest_scenario::{scenario_bench_report, ScenarioBenchReport};

fn build_report(quick: bool, seed: u64, threads: usize) -> ScenarioBenchReport {
    let ks: Vec<usize> = vec![5, 20, 80];
    if quick {
        scenario_bench_report(600, 20_000, 100_000, seed, &ks, threads)
    } else {
        scenario_bench_report(2_000, 200_000, 1_000_000, seed, &ks, threads)
    }
}

const USAGE: &str =
    "scenario [bench-report] [--quick] [--seed <u64>] [--threads <n>] [--out <path>]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let report_mode = args.iter().any(|a| a == "bench-report");
    let seed: u64 = or_usage(parsed_flag(&args, "--seed"), USAGE).unwrap_or(9);
    let threads = or_usage(parsed_flag(&args, "--threads"), USAGE)
        .unwrap_or_else(multihonest_bench::default_threads);
    // Quick-grid reports default to a separate file: BENCH_scenario.json
    // is the committed full-grid baseline and must not be silently
    // clobbered with incomparable quick-grid numbers.
    let out_path = or_usage(flag_value(&args, "--out"), USAGE).unwrap_or(if quick {
        "BENCH_scenario_quick.json"
    } else {
        "BENCH_scenario.json"
    });

    let report = build_report(quick, seed, threads);

    if report_mode {
        let payload = serde_json::to_string_pretty(&report).expect("serializable");
        std::fs::write(out_path, format!("{payload}\n")).expect("write bench report");
        eprintln!(
            "bench-report: {} scenarios bit-identical at {} slots ({:.1}x vs reference); \
             {}-slot headline {:.2}s ({:.2} Mslots/s) -> {}",
            report.equivalence_scenarios,
            report.equivalence_slots,
            report.speedup,
            report.million_slots,
            report.million_run_seconds,
            report.million_slots_per_second / 1e6,
            out_path
        );
        return;
    }

    println!(
        "== scenario grid ({} slots per row, seed {seed}, {} threads) ==",
        report.grid_slots, report.threads
    );
    println!(
        "equivalence: {} scenarios bit-identical to sim::reference at {} slots \
         (reference {:.2}s vs columnar {:.3}s, {:.0}x)",
        report.equivalence_scenarios,
        report.equivalence_slots,
        report.reference_seconds,
        report.columnar_seconds,
        report.speedup
    );
    println!(
        "throughput headline: {} slots of private-withholding in {:.2}s ({:.2} Mslots/s)\n",
        report.million_slots,
        report.million_run_seconds,
        report.million_slots_per_second / 1e6
    );
    println!(
        "{:<24} | {:>8} | {:>9} | {:>7} | {:>9} | {:>7} | {:>8} | {:>12}",
        "scenario",
        "run s",
        "Mslots/s",
        "quality",
        "rollbacks",
        "max lag",
        "viol@k20",
        "fingerprint"
    );
    for row in &report.rows {
        println!(
            "{:<24} | {:>8.3} | {:>9.2} | {:>7.3} | {:>9} | {:>7} | {:>8} | {:>12x}",
            row.name,
            row.run_seconds,
            row.mslots_per_second,
            row.chain_quality,
            row.rollbacks,
            row.max_settlement_lag,
            row.violating_anchors[1],
            row.fingerprint
        );
    }
}
