//! The scenario engine's grid sweep: columnar million-slot executions
//! across the scenario library, with engine-equivalence enforcement.
//!
//! ```bash
//! # the scenario grid table (200k-slot rows, headline at 10^6 slots):
//! cargo run -p multihonest-bench --release --bin scenario
//! # reduced grid:
//! cargo run -p multihonest-bench --release --bin scenario -- --quick
//! # timing baseline for the perf trajectory (writes BENCH_scenario.json):
//! cargo run -p multihonest-bench --release --bin scenario -- bench-report
//! cargo run -p multihonest-bench --release --bin scenario -- bench-report --quick --out /tmp/b.json
//! # bounded-memory long-horizon run (eviction + optional WAL resume):
//! cargo run -p multihonest-bench --release --bin scenario -- horizon --slots 100000000 --wal /tmp/run.wal
//! ```

use multihonest::obs::{Heartbeat, ObsRecorder};
use multihonest::sim::{SimConfig, Strategy, TieBreak};
use multihonest_bench::cli::{flag_value, or_usage, parsed_flag, reject_unknown_flags};
use multihonest_scenario::report::profile_headline;
use multihonest_scenario::{
    run_horizon, run_horizon_observed, scenario_bench_report, HorizonOptions, LeaderProbs,
    ScenarioBenchReport,
};

fn build_report(quick: bool, seed: u64, threads: usize) -> ScenarioBenchReport {
    let ks: Vec<usize> = vec![5, 20, 80];
    if quick {
        scenario_bench_report(600, 20_000, 100_000, seed, &ks, threads)
    } else {
        scenario_bench_report(2_000, 200_000, 1_000_000, seed, &ks, threads)
    }
}

const USAGE: &str = "scenario [bench-report | horizon] [--quick] [--profile] [--seed <u64>] \
     [--threads <n>] [--out <path>] [--slots <n>] [--segment <n>] [--wal <path>] \
     [--trace <path>] [--events <path>] [--heartbeat <secs>]";

const KNOWN_FLAGS: [&str; 11] = [
    "--quick",
    "--profile",
    "--seed",
    "--threads",
    "--out",
    "--slots",
    "--segment",
    "--wal",
    "--trace",
    "--events",
    "--heartbeat",
];

/// The `horizon` subcommand: one bounded-memory long-horizon execution
/// of the canonical private-withholding shape, with settled-prefix
/// eviction and (optionally) WAL checkpointing — interrupt it and rerun
/// the same command line to resume.
fn run_horizon_cmd(args: &[String], seed: u64) {
    let slots: usize = or_usage(parsed_flag(args, "--slots"), USAGE).unwrap_or(100_000_000);
    let segment: usize = or_usage(parsed_flag(args, "--segment"), USAGE).unwrap_or(1 << 20);
    let wal = or_usage(flag_value(args, "--wal"), USAGE).map(std::path::PathBuf::from);
    let trace_path = or_usage(flag_value(args, "--trace"), USAGE).map(std::path::PathBuf::from);
    let events_path = or_usage(flag_value(args, "--events"), USAGE).map(std::path::PathBuf::from);
    let heartbeat_secs: Option<u64> = or_usage(parsed_flag(args, "--heartbeat"), USAGE);
    let config = SimConfig {
        honest_nodes: 10,
        adversarial_stake: 0.3,
        active_slot_coeff: 0.25,
        delta: 2,
        slots,
        tie_break: TieBreak::AdversarialOrder,
        strategy: Strategy::PrivateWithholding,
    };
    let share = (1.0 - config.adversarial_stake) / config.honest_nodes as f64;
    let probs = LeaderProbs::weighted(
        &vec![share; config.honest_nodes],
        config.adversarial_stake,
        config.active_slot_coeff,
    );
    let opts = HorizonOptions {
        segment_slots: segment,
        ks: vec![16, 32, 64, 128],
        max_live_blocks: 0,
        wal,
    };
    // Observability is opt-in: without --trace/--events/--heartbeat the
    // run takes the plain path with the no-op `()` recorder.
    let observing = trace_path.is_some() || events_path.is_some() || heartbeat_secs.is_some();
    let mut rec = ObsRecorder::new();
    let mut hb = heartbeat_secs.map(Heartbeat::new);
    let start = std::time::Instant::now();
    let run = if observing {
        run_horizon_observed(&config, &probs, seed, &opts, &mut rec, hb.as_mut())
    } else {
        run_horizon(&config, &probs, seed, &opts)
    };
    let report = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: horizon run failed: {e}");
            std::process::exit(1);
        }
    };
    let seconds = start.elapsed().as_secs_f64();
    if let Some(path) = &trace_path {
        std::fs::write(path, rec.chrome_trace_json()).expect("write Chrome trace");
        eprintln!(
            "trace: {} span events -> {} (load in chrome://tracing or Perfetto)",
            rec.events().len(),
            path.display()
        );
    }
    if let Some(path) = &events_path {
        std::fs::write(path, rec.jsonl()).expect("write JSONL event stream");
        eprintln!("events: -> {}", path.display());
    }
    if let Some(at) = report.resumed_at {
        println!("resumed from WAL checkpoint at slot {at}");
    }
    println!(
        "horizon: {} slots in {seconds:.1}s ({:.2} Mslots/s wall, seed {seed}, segment {segment})",
        slots,
        slots as f64 / seconds.max(f64::MIN_POSITIVE) / 1e6
    );
    println!(
        "eviction: {} compactions, peak live blocks {} ({:.1} blocks/Mslot retained)",
        report.compactions,
        report.peak_live_blocks,
        report.peak_live_blocks as f64 / (slots as f64 / 1e6)
    );
    println!(
        "chain: height {}, {} blocks ({:.4} quality), {} rollbacks, max settlement lag {:?}",
        report.metrics.final_height,
        report.metrics.chain_blocks,
        report.metrics.chain_quality(),
        report.metrics.rollback_count,
        report.metrics.max_settlement_lag
    );
    for (i, &k) in opts.ks.iter().enumerate() {
        println!(
            "settlement: k={k:<4} violating anchors {:<12} first {:?}",
            report.violating_anchors[i], report.first_violation[i]
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    or_usage(reject_unknown_flags(&args, &KNOWN_FLAGS), USAGE);
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "horizon") {
        let seed: u64 = or_usage(parsed_flag(&args, "--seed"), USAGE).unwrap_or(9);
        run_horizon_cmd(&args, seed);
        return;
    }
    let report_mode = args.iter().any(|a| a == "bench-report");
    let profile = args.iter().any(|a| a == "--profile");
    let seed: u64 = or_usage(parsed_flag(&args, "--seed"), USAGE).unwrap_or(9);
    let threads = or_usage(parsed_flag(&args, "--threads"), USAGE)
        .unwrap_or_else(multihonest_bench::default_threads);
    // Quick-grid reports default to a separate file: BENCH_scenario.json
    // is the committed full-grid baseline and must not be silently
    // clobbered with incomparable quick-grid numbers.
    let out_path = or_usage(flag_value(&args, "--out"), USAGE).unwrap_or(if quick {
        "BENCH_scenario_quick.json"
    } else {
        "BENCH_scenario.json"
    });

    let report = build_report(quick, seed, threads);

    if report_mode {
        let payload = serde_json::to_string_pretty(&report).expect("serializable");
        std::fs::write(out_path, format!("{payload}\n")).expect("write bench report");
        eprintln!(
            "bench-report: {} scenarios bit-identical at {} slots ({:.1}x vs reference); \
             {}-slot headline {:.2}s ({:.2} Mslots/s) -> {}",
            report.equivalence_scenarios,
            report.equivalence_slots,
            report.speedup,
            report.million_slots,
            report.million_run_seconds,
            report.million_slots_per_second / 1e6,
            out_path
        );
        if profile {
            // Re-run the headline with per-phase counters (instrumented:
            // slower than the plain headline timed above).
            eprintln!("{}", profile_headline(report.million_slots, seed));
        }
        return;
    }

    println!(
        "== scenario grid ({} slots per row, seed {seed}, {} threads) ==",
        report.grid_slots, report.threads
    );
    println!(
        "equivalence: {} scenarios bit-identical to sim::reference at {} slots \
         (reference {:.2}s vs columnar {:.3}s, {:.0}x)",
        report.equivalence_scenarios,
        report.equivalence_slots,
        report.reference_seconds,
        report.columnar_seconds,
        report.speedup
    );
    println!(
        "throughput headline: {} slots of private-withholding in {:.2}s ({:.2} Mslots/s)\n",
        report.million_slots,
        report.million_run_seconds,
        report.million_slots_per_second / 1e6
    );
    println!(
        "{:<24} | {:>8} | {:>9} | {:>7} | {:>9} | {:>7} | {:>8} | {:>12}",
        "scenario",
        "run s",
        "Mslots/s",
        "quality",
        "rollbacks",
        "max lag",
        "viol@k20",
        "fingerprint"
    );
    for row in &report.rows {
        println!(
            "{:<24} | {:>8.3} | {:>9.2} | {:>7.3} | {:>9} | {:>7} | {:>8} | {:>12x}",
            row.name,
            row.run_seconds,
            row.mslots_per_second,
            row.chain_quality,
            row.rollbacks,
            row.max_settlement_lag,
            row.violating_anchors[1],
            row.fingerprint
        );
    }
}
