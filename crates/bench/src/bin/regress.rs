//! The unified bench-regression gate: rebuilds every perf-trajectory
//! report in-process and diffs it against the committed `BENCH_*.json`
//! baselines (schema, key sets, invariants; throughput on full grids).
//!
//! ```bash
//! # the CI gate — quick grids, structure + invariants only:
//! cargo run -p multihonest-bench --release --bin regress -- --quick
//! # the full gate — published grids, plus throughput within tolerance:
//! cargo run -p multihonest-bench --release --bin regress -- --tolerance 0.5
//! # one target against baselines in another directory:
//! cargo run -p multihonest-bench --release --bin regress -- --quick --only sweep --dir snapshots/
//! ```
//!
//! Exits 0 when every check passes, 1 on any check failure or missing
//! baseline, 2 on a malformed command line.

use multihonest_bench::cli::{flag_value, or_usage, parsed_flag, reject_unknown_flags};
use multihonest_bench::regress::{render_outcomes, run_regress, RegressOptions, REGRESS_TARGETS};

const USAGE: &str =
    "regress [--quick] [--tolerance <f64>] [--only <target>] [--dir <path>] [--threads <n>]";

const KNOWN_FLAGS: [&str; 5] = ["--quick", "--tolerance", "--only", "--dir", "--threads"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    or_usage(reject_unknown_flags(&args, &KNOWN_FLAGS), USAGE);
    let mut opts = RegressOptions {
        quick: args.iter().any(|a| a == "--quick"),
        ..RegressOptions::default()
    };
    if let Some(t) = or_usage(parsed_flag(&args, "--tolerance"), USAGE) {
        opts.tolerance = t;
    }
    if !(0.0..1.0).contains(&opts.tolerance) {
        eprintln!("error: --tolerance must be in [0, 1)\nusage: {USAGE}");
        std::process::exit(2);
    }
    if let Some(dir) = or_usage(flag_value(&args, "--dir"), USAGE) {
        opts.baseline_dir = dir.into();
    }
    if let Some(threads) = or_usage(parsed_flag(&args, "--threads"), USAGE) {
        opts.threads = threads;
    }
    let targets: Vec<&'static str> = match or_usage(flag_value(&args, "--only"), USAGE) {
        Some(name) => match REGRESS_TARGETS.iter().find(|t| **t == name) {
            Some(t) => vec![t],
            None => {
                eprintln!(
                    "error: unknown target {name:?} (expected one of {REGRESS_TARGETS:?})\n\
                     usage: {USAGE}"
                );
                std::process::exit(2);
            }
        },
        None => Vec::new(),
    };

    let outcomes = match run_regress(&targets, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", render_outcomes(&outcomes));
    let (passed, total) = (
        outcomes.iter().filter(|o| o.passed()).count(),
        outcomes.len(),
    );
    let checks: usize = outcomes.iter().map(|o| o.checks).sum();
    if passed == total {
        eprintln!(
            "bench-regress: {total} targets ok ({checks} checks, {} grids)",
            if opts.quick { "quick" } else { "full" }
        );
    } else {
        eprintln!(
            "bench-regress: {} of {total} targets FAILED",
            total - passed
        );
        std::process::exit(1);
    }
}
