//! # multihonest-catalan
//!
//! Catalan slots and the Unique Vertex Property (UVP) — Sections 3 and 4 of
//! *Consistency of Proof-of-Stake Blockchains with Concurrent Honest Slot
//! Leaders* (Kiayias, Quader, Russell; ICDCS 2020).
//!
//! A slot `s` of a characteristic string `w` is **Catalan** (Definition 11)
//! when every interval `[ℓ, s]` and `[s, r]` around it is `hH`-heavy. A
//! Catalan slot is a *barrier* for the adversary: every blockchain an
//! honest observer could adopt after `s` contains a block from slot `s`
//! (the bottleneck property), and when `s` is uniquely honest, that block
//! is unique — the **Unique Vertex Property** (Theorem 3). Two consecutive
//! Catalan slots confer the UVP even on multiply honest slots when honest
//! parties break longest-chain ties consistently (Theorem 4).
//!
//! This crate computes all of these predicates in **linear time** via the
//! ±1 walk of [`multihonest_chars::Walk`]:
//!
//! * `s` is left-Catalan ⇔ the walk attains a strict new minimum at `s`;
//! * `s` is right-Catalan ⇔ the walk stays strictly below `S_{s−1}` forever
//!   after.
//!
//! The naive interval definitions are also implemented and cross-checked in
//! tests.
//!
//! ## Example
//!
//! ```
//! use multihonest_catalan::CatalanAnalysis;
//!
//! let w = "hhAhh".parse()?;
//! let c = CatalanAnalysis::new(&w);
//! // Slot 4 is not Catalan: the interval [3, 4] = "Ah" balances.
//! assert_eq!(c.catalan_slots(), vec![1, 5]);
//! assert!(c.is_catalan(5));
//! # Ok::<(), multihonest_chars::ParseCharStringError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use multihonest_chars::{CharString, Symbol, Walk};

/// Linear-time Catalan-slot analysis of a characteristic string.
///
/// Construction is `O(|w|)`; every per-slot query is `O(1)` (the slot-list
/// collectors are `O(|w|)`).
#[derive(Debug, Clone)]
pub struct CatalanAnalysis {
    w: CharString,
    walk: Walk,
}

impl CatalanAnalysis {
    /// Analyses `w`.
    pub fn new(w: &CharString) -> CatalanAnalysis {
        CatalanAnalysis {
            w: w.clone(),
            walk: Walk::new(w),
        }
    }

    /// The string under analysis.
    pub fn string(&self) -> &CharString {
        &self.w
    }

    /// Returns `true` when `s` is **left-Catalan** (Definition 11): every
    /// interval `[ℓ, s]`, `ℓ ∈ [1, s]`, is `hH`-heavy.
    ///
    /// # Panics
    ///
    /// Panics if `s` is 0 or exceeds `|w|`.
    pub fn is_left_catalan(&self, s: usize) -> bool {
        self.walk.is_strict_new_min(s)
    }

    /// Returns `true` when `s` is **right-Catalan** (Definition 11): every
    /// interval `[s, r]`, `r ∈ [s, |w|]`, is `hH`-heavy.
    ///
    /// # Panics
    ///
    /// Panics if `s` is 0 or exceeds `|w|`.
    pub fn is_right_catalan(&self, s: usize) -> bool {
        self.walk.stays_strictly_below_from(s)
    }

    /// Returns `true` when `s` is a **Catalan slot**: both left- and
    /// right-Catalan. Catalan slots are necessarily honest.
    ///
    /// # Panics
    ///
    /// Panics if `s` is 0 or exceeds `|w|`.
    pub fn is_catalan(&self, s: usize) -> bool {
        self.is_left_catalan(s) && self.is_right_catalan(s)
    }

    /// Returns `true` when `s` is Catalan **and** uniquely honest — the
    /// hypothesis of Theorem 3, under which `s` has the UVP.
    pub fn is_uniquely_honest_catalan(&self, s: usize) -> bool {
        self.w.get(s) == Symbol::UniqueHonest && self.is_catalan(s)
    }

    /// All Catalan slots, in increasing order.
    pub fn catalan_slots(&self) -> Vec<usize> {
        (1..=self.w.len()).filter(|s| self.is_catalan(*s)).collect()
    }

    /// All uniquely honest Catalan slots, in increasing order.
    pub fn uniquely_honest_catalan_slots(&self) -> Vec<usize> {
        (1..=self.w.len())
            .filter(|s| self.is_uniquely_honest_catalan(*s))
            .collect()
    }

    /// The first uniquely honest Catalan slot in `from..=to` (inclusive,
    /// clamped to the string), if any.
    pub fn first_uniquely_honest_catalan_in(&self, from: usize, to: usize) -> Option<usize> {
        let to = to.min(self.w.len());
        (from.max(1)..=to).find(|s| self.is_uniquely_honest_catalan(*s))
    }

    /// All slots `s` such that both `s` and `s + 1` are Catalan — the
    /// hypothesis of Theorem 4 (consistent tie-breaking), in increasing
    /// order of `s`.
    pub fn consecutive_catalan_pairs(&self) -> Vec<usize> {
        (1..self.w.len())
            .filter(|s| self.is_catalan(*s) && self.is_catalan(*s + 1))
            .collect()
    }

    /// The first slot `s ∈ from..=to` with both `s` and `s + 1` Catalan.
    pub fn first_consecutive_catalan_in(&self, from: usize, to: usize) -> Option<usize> {
        let to = to.min(self.w.len().saturating_sub(1));
        (from.max(1)..=to).find(|s| self.is_catalan(*s) && self.is_catalan(*s + 1))
    }

    /// Theorem 3 / Equation (1): slot `start` is `k`-settled whenever some
    /// uniquely honest Catalan slot lies in `[start, start + k − 1]`
    /// (the proof of Theorem 1 uses exactly this window).
    pub fn settles_by_unique_catalan(&self, start: usize, k: usize) -> bool {
        self.first_uniquely_honest_catalan_in(start, start + k.saturating_sub(1))
            .is_some()
    }

    /// Theorem 4 analogue of [`Self::settles_by_unique_catalan`] for the
    /// consistent tie-breaking model: slot `start` is `k`-settled whenever
    /// two consecutive Catalan slots begin in `[start, start + k − 1]`.
    pub fn settles_by_consecutive_catalan(&self, start: usize, k: usize) -> bool {
        self.first_consecutive_catalan_in(start, start + k.saturating_sub(1))
            .is_some()
    }

    /// The fraction of slots that are Catalan (density statistic used by
    /// the experiment harness).
    pub fn catalan_density(&self) -> f64 {
        if self.w.is_empty() {
            return 0.0;
        }
        self.catalan_slots().len() as f64 / self.w.len() as f64
    }

    /// The slots guaranteed the UVP **under consistent tie-breaking**
    /// (axiom A0′, Theorem 4): every slot `s` such that both `s` and
    /// `s + 1` are Catalan has the UVP — even when multiply honest —
    /// except that the final slot of the string only gets the (weaker)
    /// bottleneck property and is therefore excluded here.
    ///
    /// For uniquely honest slots this is implied by the stronger
    /// Theorem 3 (no consecutive partner needed); this method reports
    /// only the Theorem-4 mechanism.
    pub fn uvp_slots_consistent_tiebreak(&self) -> Vec<usize> {
        self.consecutive_catalan_pairs()
    }
}

/// The naive interval-based left-Catalan predicate (Definition 11 read
/// literally, `O(|w|)` per query). Used as ground truth in tests and
/// benchmarks.
pub fn is_left_catalan_naive(w: &CharString, s: usize) -> bool {
    let counts = w.prefix_counts();
    (1..=s).all(|l| counts.is_hh_heavy(l, s))
}

/// The naive interval-based right-Catalan predicate.
pub fn is_right_catalan_naive(w: &CharString, s: usize) -> bool {
    let counts = w.prefix_counts();
    (s..=w.len()).all(|r| counts.is_hh_heavy(s, r))
}

/// The naive interval-based Catalan predicate.
pub fn is_catalan_naive(w: &CharString, s: usize) -> bool {
    is_left_catalan_naive(w, s) && is_right_catalan_naive(w, s)
}

/// Enumerates all characteristic strings of length `n` (3^n of them) —
/// shared test helper for exhaustive cross-validation, also used by the
/// `multihonest-margin` test suite.
pub fn exhaustive_strings(n: usize) -> Vec<CharString> {
    let symbols = [
        Symbol::UniqueHonest,
        Symbol::MultiHonest,
        Symbol::Adversarial,
    ];
    let total = 3usize.pow(n as u32);
    let mut out = Vec::with_capacity(total);
    for mut code in 0..total {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(symbols[code % 3]);
            code /= 3;
        }
        out.push(CharString::from_symbols(v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> CharString {
        s.parse().unwrap()
    }

    #[test]
    fn walk_scan_matches_naive_definition_exhaustively() {
        for n in 1..=8 {
            for s in exhaustive_strings(n) {
                let c = CatalanAnalysis::new(&s);
                for t in 1..=n {
                    assert_eq!(
                        c.is_left_catalan(t),
                        is_left_catalan_naive(&s, t),
                        "left mismatch at {t} in {s}"
                    );
                    assert_eq!(
                        c.is_right_catalan(t),
                        is_right_catalan_naive(&s, t),
                        "right mismatch at {t} in {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn catalan_slots_are_honest() {
        for s in exhaustive_strings(7) {
            let c = CatalanAnalysis::new(&s);
            for t in c.catalan_slots() {
                assert!(s.get(t).is_honest(), "adversarial Catalan slot {t} in {s}");
            }
        }
    }

    #[test]
    fn neighbours_of_catalan_slots_are_honest() {
        // Section 3.2: the slots adjacent to a Catalan slot must be honest.
        for s in exhaustive_strings(7) {
            let c = CatalanAnalysis::new(&s);
            for t in c.catalan_slots() {
                if t >= 2 {
                    assert!(s.get(t - 1).is_honest(), "slot before Catalan {t} in {s}");
                }
                if t < s.len() {
                    assert!(s.get(t + 1).is_honest(), "slot after Catalan {t} in {s}");
                }
            }
        }
    }

    #[test]
    fn simple_examples_by_hand() {
        // All-honest string: every slot is Catalan.
        let c = CatalanAnalysis::new(&w("hhhh"));
        assert_eq!(c.catalan_slots(), vec![1, 2, 3, 4]);
        // Alternating hA: no slot is Catalan.
        let c = CatalanAnalysis::new(&w("hAhA"));
        assert_eq!(c.catalan_slots(), Vec::<usize>::new());
        // hhA: slot 1 is Catalan ([1,1], [1,2], [1,3] all heavy); slot 2 is
        // not ([2,3] = hA balances).
        let c = CatalanAnalysis::new(&w("hhA"));
        assert_eq!(c.catalan_slots(), vec![1]);
    }

    #[test]
    fn multi_honest_slots_count_fully() {
        // The whole point of the paper: H slots contribute to heaviness.
        // In HHAHH: slot 1 is Catalan; slot 2 is not ([2,3] = HA balances);
        // slot 4 is not ([3,4] = AH balances); slot 5 is Catalan.
        let c = CatalanAnalysis::new(&w("HHAHH"));
        assert_eq!(c.catalan_slots(), vec![1, 5]);
        assert!(c.uniquely_honest_catalan_slots().is_empty());
        assert!(c.consecutive_catalan_pairs().is_empty());
        // With no adversarial slot every H slot is Catalan and pairs abound.
        let c = CatalanAnalysis::new(&w("HHHH"));
        assert_eq!(c.catalan_slots(), vec![1, 2, 3, 4]);
        assert_eq!(c.consecutive_catalan_pairs(), vec![1, 2, 3]);
    }

    #[test]
    fn uniquely_honest_catalan_filters() {
        let c = CatalanAnalysis::new(&w("hHhAh"));
        assert!(c.is_catalan(1));
        assert!(c.is_catalan(2));
        assert!(!c.is_catalan(3)); // [3,4] = hA balances
        assert!(!c.is_catalan(5)); // [4,5] = Ah balances on the left
        assert_eq!(c.uniquely_honest_catalan_slots(), vec![1]);
        assert_eq!(c.first_uniquely_honest_catalan_in(1, 5), Some(1));
        assert_eq!(c.first_uniquely_honest_catalan_in(2, 5), None);
    }

    #[test]
    fn settlement_windows() {
        let c = CatalanAnalysis::new(&w("AAhAA"));
        assert!(!c.settles_by_unique_catalan(1, 5));
        let c = CatalanAnalysis::new(&w("AhhhA"));
        assert!(c.is_catalan(3));
        assert!(!c.is_catalan(4)); // [4,5] = hA balances
        assert!(!c.is_catalan(2)); // [1,2] = Ah balances
        assert!(c.settles_by_unique_catalan(2, 2)); // window [2,3] contains 3
        assert!(!c.settles_by_unique_catalan(1, 2)); // window [1,2]
                                                     // One more honest slot buys a consecutive Catalan pair at s = 3.
        let c = CatalanAnalysis::new(&w("AhhhhA"));
        assert!(c.is_catalan(3) && c.is_catalan(4));
        assert!(c.settles_by_consecutive_catalan(1, 3));
        assert!(!c.settles_by_consecutive_catalan(1, 2));
    }

    #[test]
    fn density() {
        assert_eq!(CatalanAnalysis::new(&w("hhhh")).catalan_density(), 1.0);
        assert_eq!(CatalanAnalysis::new(&w("AAAA")).catalan_density(), 0.0);
        assert_eq!(
            CatalanAnalysis::new(&CharString::new()).catalan_density(),
            0.0
        );
    }

    #[test]
    fn monotonicity_under_adversarial_upgrades() {
        // Upgrading a symbol (more adversarial) can only destroy Catalan
        // slots at unchanged positions, never create them.
        for s in exhaustive_strings(6) {
            let base = CatalanAnalysis::new(&s);
            for up in multihonest_chars::order::covers(&s) {
                let upped = CatalanAnalysis::new(&up);
                for t in 1..=s.len() {
                    if s.get(t) == up.get(t) && upped.is_catalan(t) {
                        assert!(
                            base.is_catalan(t),
                            "upgrade created Catalan slot {t}: {s} -> {up}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn theorem4_uvp_slots() {
        // Bivalent string with a long honest stretch: pairs inside the
        // stretch get the UVP under A0′.
        let c = CatalanAnalysis::new(&w("AHHHHA"));
        // Walk: 1,0,-1,-2,-3,-2. Catalan slots: 3 ([2,3]? S3=-1 < min(0,1,0)=0 ✓
        // right: suffix max from 3 = -1 < S2 = 0 ✓), 4 ✓; 5: right fails
        // ([5,6] = HA balances). Pairs: s = 3.
        assert_eq!(c.catalan_slots(), vec![3, 4]);
        assert_eq!(c.uvp_slots_consistent_tiebreak(), vec![3]);
        // Under pure A0 (adversarial ties) no margin-based UVP exists for
        // any H slot — exactly the gap Theorem 4 closes.
        for s in c.uvp_slots_consistent_tiebreak() {
            assert!(c.string().get(s).is_honest());
        }
    }

    #[test]
    fn exhaustive_strings_count() {
        assert_eq!(exhaustive_strings(0).len(), 1);
        assert_eq!(exhaustive_strings(3).len(), 27);
        let set: std::collections::HashSet<String> = exhaustive_strings(4)
            .iter()
            .map(|w| w.to_string())
            .collect();
        assert_eq!(set.len(), 81);
    }
}
