//! # multihonest-scenario
//!
//! The scenario engine: a **columnar, million-slot simulation core** plus
//! a library of parameterized adversarial scenarios, layered on the
//! abstract protocol of *Consistency of Proof-of-Stake Blockchains with
//! Concurrent Honest Slot Leaders* (Kiayias, Quader, Russell; ICDCS
//! 2020).
//!
//! ## Why a second engine
//!
//! The paper's guarantees (Definition 3, Theorem 5) are asymptotic:
//! empirical validation only bites at horizons far beyond what an
//! allocation-per-slot execution loop reaches comfortably. The reference
//! engine (`multihonest_sim`, kept verbatim as `sim::reference`) boxes
//! every block, allocates several vectors per slot, and keeps one
//! delivery queue per slot for the whole horizon. This crate replaces
//! all of it with **Structure-of-Arrays** state:
//!
//! | reference | columnar ([`ColumnarSimulation`]) |
//! |---|---|
//! | `Vec<Block>` of structs | flat slot/parent/height/issuer columns over the shared `AncestorIndex` ([`ColumnarStore`]) |
//! | one `Vec<usize>` of leaders per slot | one flat leader column + offsets ([`ColumnarSchedule`]) |
//! | `O(slots)` live delivery queues | a reused ring of `lookahead + 1` buckets ([`DeliveryRing`]) |
//! | `HashSet<BlockId>` known-sets | one transposed known-by mask row per block (all nodes in one word) |
//! | post-hoc index build over retained traces | online [`DivergenceFold`](multihonest_sim::DivergenceFold) + streaming [`MetricsSink`](multihonest_sim::MetricsSink) |
//!
//! A 10⁶-slot withholding execution completes in single-digit seconds
//! (`BENCH_scenario.json` carries the committed numbers), with `O(1)`
//! amortized work per delivery and zero steady-state allocation in the
//! slot loop.
//!
//! ## Equivalence, not divergence
//!
//! Both engines drive the **same** [`AdversaryStrategy`] objects (the
//! open strategy surface of `multihonest_sim::strategy`) through their
//! own `SlotContext`s, sample leader schedules with identical draw
//! orders, and apply the same longest-chain/tie-break rules — so their
//! block arenas, tip trajectories, rollback records and settlement
//! indices are **bit-identical**. `tests/scenario_engine.rs` enforces
//! this exhaustively over a strategy × Δ × seed grid and by proptest; the
//! scenario bench report re-asserts it before publishing any timing.
//!
//! ## The Δ-window clamp invariant
//!
//! Strategies *request* delivery slots; engines *clamp* every honest
//! delivery into `[slot, slot + Δ]` (here in
//! [`DeliveryRing::schedule_honest`]). No scenario — lagged release,
//! burst, jitter, latency profile — can therefore violate axiom A4Δ;
//! `scenario::tests` additionally replays scenario strategies on the
//! reference engine and validates the extracted forks against (F4Δ).
//!
//! [`AdversaryStrategy`]: multihonest_sim::AdversaryStrategy

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod engine;
pub mod horizon;
pub mod pipeline;
pub mod profile;
pub mod report;
pub mod ring;
pub mod scenario;
pub mod schedule;
pub mod store;

pub use crate::batch::{BatchExecution, TrialOutput};
pub use crate::engine::{ColumnarSimulation, ExecutionArena, SlotHook, ENGINE_KERNEL_VERSION};
pub use crate::horizon::{run_horizon, run_horizon_observed, HorizonOptions, HorizonReport};
pub use crate::pipeline::{
    run_streaming_validated, run_streaming_validated_faults_in, ForkPipeline, PipelineOutput,
    ValidatedExecution,
};
pub use crate::profile::{Phase, PhaseTimes};
pub use crate::report::{scenario_bench_report, ScenarioBenchReport, ScenarioRow};
pub use crate::ring::DeliveryRing;
pub use crate::scenario::{
    fault_library, scenario_library, FaultScenario, LaggedWithholding, NetworkSchedule,
    NodeProfile, Scenario, ScheduledHonest,
};
pub use crate::schedule::{ColumnarSchedule, LeaderProbs};
pub use crate::store::ColumnarStore;
pub use multihonest_obs::Recorder;

/// A 64-bit fingerprint of a columnar execution: a SplitMix-style fold
/// over the tip trace, rollback record and headline metrics. Testutil
/// pins these for the preset scenarios (including a 10⁵-slot run), so
/// any drift in leader sampling, delivery scheduling, the longest-chain
/// rule or the fold shows up as a one-word diff.
pub fn execution_fingerprint(sim: &ColumnarSimulation) -> u64 {
    #[inline]
    fn mix(h: u64, v: u64) -> u64 {
        let mut z = h ^ v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut h = 0u64;
    let m = sim.metrics();
    for t in 1..=m.slots {
        for &tip in sim.tips_at(t) {
            h = mix(h, tip as u64);
        }
        h = mix(h, u64::MAX); // slot separator
    }
    for &(t, old, new) in sim.rollbacks() {
        h = mix(h, t as u64);
        h = mix(h, old as u64);
        h = mix(h, new as u64);
    }
    h = mix(h, m.final_height as u64);
    h = mix(h, m.chain_blocks as u64);
    h = mix(h, m.honest_chain_blocks as u64);
    h = mix(h, m.max_slot_divergence as u64);
    h = mix(h, m.rollback_count as u64);
    h = mix(h, m.max_settlement_lag.map_or(u64::MAX, |l| l as u64));
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_sim::{SimConfig, Strategy, TieBreak};

    #[test]
    fn fingerprint_is_deterministic_and_sensitive() {
        let cfg = SimConfig {
            honest_nodes: 5,
            adversarial_stake: 0.3,
            active_slot_coeff: 0.3,
            delta: 1,
            slots: 200,
            tie_break: TieBreak::AdversarialOrder,
            strategy: Strategy::PrivateWithholding,
        };
        let a = execution_fingerprint(&ColumnarSimulation::run(&cfg, 1));
        let b = execution_fingerprint(&ColumnarSimulation::run(&cfg, 1));
        assert_eq!(a, b);
        let c = execution_fingerprint(&ColumnarSimulation::run(&cfg, 2));
        assert_ne!(a, c, "different seeds must fingerprint differently");
    }
}
