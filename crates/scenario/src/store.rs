//! The Structure-of-Arrays block arena of the columnar engine.
//!
//! The reference simulator boxes every block in a `Block` struct inside a
//! `Vec<Block>`; at the million-slot scale the execution loop touches
//! only two or three fields of a few blocks per slot, so the
//! array-of-structs layout drags five cold fields through the cache for
//! every hot one. [`ColumnarStore`] stores each field in its own flat
//! column (`u32` ids throughout) and shares the workspace-wide
//! [`AncestorIndex`] for `O(log n)` ancestry queries — `O(1)` amortized
//! per mint, zero steady-state allocation.

use multihonest_core::AncestorIndex;
use multihonest_sim::consistency::DivergenceOps;

/// Sentinel issuer for adversarial blocks (mirrors the reference engine's
/// `usize::MAX − 1` in `u32` space).
pub const ADVERSARY: u32 = u32::MAX - 1;
/// Sentinel issuer for genesis.
pub const GENESIS_ISSUER: u32 = u32::MAX;

/// An append-only SoA block arena: column `i` of each vector describes
/// block id `i`; id `0` is genesis. Ids are interchangeable with the
/// reference engine's [`BlockId`](multihonest_sim::BlockId) — for
/// identical histories the two arenas assign identical ids.
#[derive(Debug, Clone)]
pub struct ColumnarStore {
    slot: Vec<u32>,
    parent: Vec<u32>,
    height: Vec<u32>,
    issuer: Vec<u32>,
    honest: Vec<bool>,
    anc: AncestorIndex,
}

impl Default for ColumnarStore {
    fn default() -> ColumnarStore {
        ColumnarStore::new()
    }
}

impl ColumnarStore {
    /// A store holding only genesis.
    pub fn new() -> ColumnarStore {
        ColumnarStore::with_capacity(0)
    }

    /// A store holding only genesis, with room for `blocks` more.
    pub fn with_capacity(blocks: usize) -> ColumnarStore {
        let cap = blocks + 1;
        let mut s = ColumnarStore {
            slot: Vec::with_capacity(cap),
            parent: Vec::with_capacity(cap),
            height: Vec::with_capacity(cap),
            issuer: Vec::with_capacity(cap),
            honest: Vec::with_capacity(cap),
            anc: AncestorIndex::new(),
        };
        s.slot.push(0);
        s.parent.push(0); // genesis self-parents, matching AncestorIndex
        s.height.push(0);
        s.issuer.push(GENESIS_ISSUER);
        s.honest.push(true);
        s
    }

    /// Reserves room for at least `additional` more blocks.
    pub fn reserve(&mut self, additional: usize) {
        self.slot.reserve(additional);
        self.parent.reserve(additional);
        self.height.reserve(additional);
        self.issuer.reserve(additional);
        self.honest.reserve(additional);
        self.anc.reserve(additional);
    }

    /// Resets the store to the genesis-only state, keeping every column
    /// allocation — the batch-execution reuse hook: a store that has run
    /// one execution resets in `O(1)` heap traffic for the next seed.
    pub fn reset(&mut self) {
        self.slot.clear();
        self.parent.clear();
        self.height.clear();
        self.issuer.clear();
        self.honest.clear();
        self.anc.clear();
        self.slot.push(0);
        self.parent.push(0);
        self.height.push(0);
        self.issuer.push(GENESIS_ISSUER);
        self.honest.push(true);
    }

    /// Resets the store to hold a single **compacted root** block with
    /// the given absolute coordinates — the store-side half of horizon
    /// compaction. The root takes over id 0 (self-parenting, like
    /// genesis), so every id-0-relative invariant keeps holding, while
    /// its slot and height stay absolute: minting still asserts
    /// `slot > parent_slot` and heights keep accumulating, so a
    /// compacted execution is indistinguishable from the uncompacted one
    /// above the root. Keeps allocations, like
    /// [`reset`](ColumnarStore::reset).
    pub fn reset_to_root(&mut self, slot: usize, height: usize, issuer: u32, honest: bool) {
        self.reset();
        self.slot[0] = slot as u32;
        self.height[0] = height as u32;
        self.issuer[0] = issuer;
        self.honest[0] = honest;
    }

    /// Mints a block on `parent` at `slot` by `issuer` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist or `slot` does not exceed the
    /// parent's slot (hash-chaining makes backdating impossible).
    pub fn mint(&mut self, parent: u32, slot: usize, issuer: u32, honest: bool) -> u32 {
        let p = parent as usize;
        assert!(
            slot > self.slot[p] as usize,
            "child slot {slot} must exceed parent slot {}",
            self.slot[p]
        );
        let id = self.slot.len() as u32;
        self.slot.push(slot as u32);
        self.parent.push(parent);
        self.height.push(self.height[p] + 1);
        self.issuer.push(issuer);
        self.honest.push(honest);
        let idx = self.anc.push(p);
        debug_assert_eq!(idx, id as usize);
        id
    }

    /// Number of blocks including genesis.
    pub fn len(&self) -> usize {
        self.slot.len()
    }

    /// Always `false` (genesis is always present).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The slot of `b`.
    #[inline]
    pub fn slot(&self, b: u32) -> usize {
        self.slot[b as usize] as usize
    }

    /// The chain height of `b` (genesis has 0).
    #[inline]
    pub fn height(&self, b: u32) -> usize {
        self.height[b as usize] as usize
    }

    /// The parent of `b`, or `None` for genesis.
    #[inline]
    pub fn parent(&self, b: u32) -> Option<u32> {
        (b != 0).then(|| self.parent[b as usize])
    }

    /// The issuer of `b` ([`ADVERSARY`]/[`GENESIS_ISSUER`] sentinels).
    #[inline]
    pub fn issuer(&self, b: u32) -> u32 {
        self.issuer[b as usize]
    }

    /// Whether `b` was minted by an honest leader.
    #[inline]
    pub fn is_honest(&self, b: u32) -> bool {
        self.honest[b as usize]
    }

    /// The last common block of the chains at `a` and `b`, `O(log n)`.
    #[inline]
    pub fn last_common_block(&self, a: u32, b: u32) -> u32 {
        self.anc.lca(a as usize, b as usize) as u32
    }

    /// Whether `a` lies on the chain ending at `b` (inclusive) —
    /// equivalent to `last_common_block(a, b) == a` but one directed
    /// skew-binary descent instead of a full meet computation.
    #[inline]
    pub fn is_ancestor(&self, a: u32, b: u32) -> bool {
        self.anc.is_ancestor_or_equal(a as usize, b as usize)
    }

    /// The block at `slot` on the chain ending at `tip`, if any,
    /// `O(log n)` (slots strictly increase towards the tip).
    pub fn block_at_slot(&self, tip: u32, slot: usize) -> Option<u32> {
        let cur = self
            .anc
            .last_key_at_most(tip as usize, slot, |i| self.slot[i] as usize);
        (self.slot[cur] as usize == slot).then_some(cur as u32)
    }

    /// The chain from genesis to `tip`, inclusive.
    pub fn chain(&self, tip: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.height(tip) + 1);
        let mut cur = tip;
        loop {
            out.push(cur);
            match self.parent(cur) {
                Some(p) => cur = p,
                None => break,
            }
        }
        out.reverse();
        out
    }
}

impl DivergenceOps for ColumnarStore {
    fn block_count(&self) -> usize {
        self.len()
    }

    fn slot_of(&self, b: u32) -> usize {
        self.slot(b)
    }

    fn parent_of(&self, b: u32) -> u32 {
        self.parent[b as usize]
    }

    fn lca(&self, a: u32, b: u32) -> u32 {
        self.last_common_block(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_and_minting() {
        let mut s = ColumnarStore::new();
        assert_eq!(s.len(), 1);
        assert_eq!(s.parent(0), None);
        let a = s.mint(0, 1, 0, true);
        let b = s.mint(a, 2, 1, true);
        let c = s.mint(a, 3, ADVERSARY, false);
        assert_eq!(s.height(b), 2);
        assert_eq!(s.parent(c), Some(a));
        assert!(!s.is_honest(c));
        assert_eq!(s.last_common_block(b, c), a);
        assert_eq!(s.chain(b), vec![0, a, b]);
        assert_eq!(s.block_at_slot(b, 2), Some(b));
        assert_eq!(s.block_at_slot(c, 2), None);
    }

    #[test]
    fn reset_matches_fresh_store() {
        let mut s = ColumnarStore::with_capacity(8);
        let a = s.mint(0, 1, 0, true);
        let _ = s.mint(a, 2, ADVERSARY, false);
        s.reset();
        assert_eq!(s.len(), 1);
        assert_eq!(s.parent(0), None);
        assert_eq!(s.issuer(0), GENESIS_ISSUER);
        // Rebuilding after reset gives the same ids and ancestry answers.
        let a = s.mint(0, 1, 0, true);
        let b = s.mint(a, 2, 1, true);
        let c = s.mint(a, 3, ADVERSARY, false);
        assert_eq!((a, b, c), (1, 2, 3));
        assert_eq!(s.last_common_block(b, c), a);
        assert_eq!(s.block_at_slot(b, 2), Some(b));
    }

    #[test]
    #[should_panic(expected = "must exceed parent slot")]
    fn backdating_rejected() {
        let mut s = ColumnarStore::new();
        let a = s.mint(0, 5, 0, true);
        let _ = s.mint(a, 5, 1, true);
    }
}
