//! The scenario-grid bench report (`BENCH_scenario.json`).
//!
//! Mirrors the repo's other perf-trajectory artifacts (`BENCH_margin`,
//! `BENCH_sim`, `BENCH_astar`): a machine-readable record produced by the
//! `scenario` binary's `bench-report` mode, committed at the repo root
//! and structure-diffed by CI against a fresh reduced-grid run. The
//! builder **asserts bit-identical traces** between the columnar engine
//! and `sim::reference` on every scenario of the equivalence grid before
//! reporting any timing — a drifting engine can never produce a
//! plausible-looking baseline.

use serde::Serialize;

use multihonest_sim::{Simulation, Strategy};

use crate::engine::ColumnarSimulation;
use crate::scenario::{scenario_library, Scenario};
use crate::{execution_fingerprint, ColumnarSchedule};

/// One scenario's row in the grid sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioRow {
    /// Scenario name (unique within the library).
    pub name: String,
    /// Compiled strategy name.
    pub strategy: String,
    /// Network schedule name.
    pub schedule: String,
    /// Withholding release lag `L`.
    pub release_lag: usize,
    /// Network delay bound Δ.
    pub delta: usize,
    /// Honest nodes.
    pub honest_nodes: usize,
    /// Simulated slots.
    pub slots: usize,
    /// Wall-clock seconds for the columnar run (including the online
    /// divergence fold).
    pub run_seconds: f64,
    /// Millions of slots executed per wall-clock second.
    pub mslots_per_second: f64,
    /// Blocks minted (excluding genesis).
    pub blocks: usize,
    /// Final best-chain height.
    pub final_height: usize,
    /// Chain quality (honest fraction of the final chain).
    pub chain_quality: f64,
    /// Recorded honest rollbacks.
    pub rollbacks: usize,
    /// Largest observed settlement lag (`-1` when none).
    pub max_settlement_lag: i64,
    /// Violating anchors at each of the report's `ks`.
    pub violating_anchors: Vec<usize>,
    /// The execution fingerprint (see `execution_fingerprint`).
    pub fingerprint: u64,
}

/// The full scenario bench report.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioBenchReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// What was timed.
    pub name: String,
    /// Worker threads used for the grid fan-out.
    pub threads: usize,
    /// Execution seed shared by every run.
    pub seed: u64,
    /// Settlement parameters swept per scenario.
    pub ks: Vec<usize>,
    /// Slots of the equivalence grid replayed on both engines.
    pub equivalence_slots: usize,
    /// Scenarios asserted bit-identical between the engines.
    pub equivalence_scenarios: usize,
    /// Reference-engine seconds summed over the equivalence grid.
    pub reference_seconds: f64,
    /// Columnar-engine seconds summed over the equivalence grid.
    pub columnar_seconds: f64,
    /// `reference_seconds / columnar_seconds` on identical work.
    pub speedup: f64,
    /// Slots of each grid row.
    pub grid_slots: usize,
    /// The thread-parallel scenario sweep.
    pub rows: Vec<ScenarioRow>,
    /// Slots of the single-run throughput headline.
    pub million_slots: usize,
    /// Wall-clock seconds of the throughput headline (a
    /// `PrivateWithholding` execution — the acceptance criterion).
    pub million_run_seconds: f64,
    /// Headline slots per wall-clock second.
    pub million_slots_per_second: f64,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time_seconds: u64,
}

/// Runs jobs `0..n` on up to `threads` scoped workers pulling from a
/// shared atomic counter, returning results in job order (deterministic
/// whatever the parallelism).
fn run_jobs<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let counter = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let counter = &counter;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                loop {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    out.push((i, f(i)));
                }
                out
            }));
        }
        for h in handles {
            for (i, v) in h.join().expect("worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every job ran"))
        .collect()
}

/// Asserts one scenario's columnar run is trace-identical to the
/// reference engine, returning `(reference seconds, columnar seconds)`.
fn assert_equivalent(sc: &Scenario, seed: u64) -> (f64, f64) {
    let ref_schedule = sc.reference_schedule(seed);
    let mut ref_strategy = sc.strategy();
    let ref_start = std::time::Instant::now();
    let reference = Simulation::run_with_schedule(&sc.config, ref_schedule, ref_strategy.as_mut());
    let ref_seconds = ref_start.elapsed().as_secs_f64();

    let col_schedule = sc.schedule(seed);
    let mut col_strategy = sc.strategy();
    let col_start = std::time::Instant::now();
    let columnar =
        ColumnarSimulation::run_with_schedule(&sc.config, &col_schedule, col_strategy.as_mut());
    let col_seconds = col_start.elapsed().as_secs_f64();

    for t in 1..=sc.config.slots {
        let expect: Vec<u32> = reference
            .tips_at(t)
            .iter()
            .map(|b| b.index() as u32)
            .collect();
        assert_eq!(
            columnar.tips_at(t),
            expect.as_slice(),
            "{}: tip trace diverged at slot {t}",
            sc.name
        );
    }
    let expect_rb: Vec<(u32, u32, u32)> = reference
        .rollbacks()
        .iter()
        .map(|&(t, o, n)| (t as u32, o.index() as u32, n.index() as u32))
        .collect();
    assert_eq!(
        columnar.rollbacks(),
        expect_rb.as_slice(),
        "{}: rollback trace diverged",
        sc.name
    );
    assert_eq!(
        columnar.metrics(),
        reference.metrics(),
        "{}: metrics diverged",
        sc.name
    );
    assert_eq!(
        columnar.divergence_index(),
        reference.divergence_index(),
        "{}: settlement index diverged",
        sc.name
    );
    (ref_seconds, col_seconds)
}

/// Builds the scenario bench report: (1) replays every library scenario
/// at `equivalence_slots` on **both** engines and asserts bit-identical
/// tip/rollback/metric/settlement traces, (2) sweeps the grid at
/// `grid_slots` thread-parallel on the columnar engine, and (3) times the
/// acceptance-criterion throughput run (`million_slots` of
/// `PrivateWithholding`).
///
/// # Panics
///
/// Panics if any scenario's traces diverge between the engines.
pub fn scenario_bench_report(
    equivalence_slots: usize,
    grid_slots: usize,
    million_slots: usize,
    seed: u64,
    ks: &[usize],
    threads: usize,
) -> ScenarioBenchReport {
    // 1. Equivalence grid (serial: the reference engine is the cost here,
    //    and the assertion must see deterministic scenario order anyway).
    let equiv = scenario_library(equivalence_slots);
    let mut reference_seconds = 0.0;
    let mut columnar_seconds = 0.0;
    for sc in &equiv {
        let (r, c) = assert_equivalent(sc, seed);
        reference_seconds += r;
        columnar_seconds += c;
    }

    // 2. The thread-parallel scenario sweep.
    let grid = scenario_library(grid_slots);
    let rows = run_jobs(grid.len(), threads, |i| {
        let sc = &grid[i];
        let schedule = sc.schedule(seed);
        let mut strategy = sc.strategy();
        let start = std::time::Instant::now();
        let sim = ColumnarSimulation::run_with_schedule(&sc.config, &schedule, strategy.as_mut());
        let run_seconds = start.elapsed().as_secs_f64();
        let m = *sim.metrics();
        ScenarioRow {
            name: sc.name.to_string(),
            strategy: sc.strategy().name().to_string(),
            schedule: sc.net.name().to_string(),
            release_lag: sc.release_lag,
            delta: sc.config.delta,
            honest_nodes: sc.config.honest_nodes,
            slots: sc.config.slots,
            run_seconds,
            mslots_per_second: sc.config.slots as f64 / 1e6 / run_seconds.max(f64::MIN_POSITIVE),
            blocks: sim.store().len() - 1,
            final_height: m.final_height,
            chain_quality: m.chain_quality(),
            rollbacks: m.rollback_count,
            max_settlement_lag: m.max_settlement_lag.map_or(-1, |l| l as i64),
            violating_anchors: ks
                .iter()
                .map(|&k| sim.count_violating_slots(k, sc.config.slots))
                .collect(),
            fingerprint: execution_fingerprint(&sim),
        }
    });

    // 3. The acceptance-criterion throughput headline: a streaming
    //    million-slot PrivateWithholding execution.
    let headline_cfg = headline_config(million_slots);
    let schedule = headline_schedule(&headline_cfg, seed);
    let mut strategy = headline_cfg.strategy.instantiate();
    let start = std::time::Instant::now();
    let (metrics, _index) =
        ColumnarSimulation::run_streaming(&headline_cfg, &schedule, strategy.as_mut(), &mut ());
    let million_run_seconds = start.elapsed().as_secs_f64();
    assert_eq!(metrics.slots, million_slots);

    ScenarioBenchReport {
        schema: "multihonest-bench-scenario/v1".to_string(),
        name: "scenario_grid".to_string(),
        threads,
        seed,
        ks: ks.to_vec(),
        equivalence_slots,
        equivalence_scenarios: equiv.len(),
        reference_seconds,
        columnar_seconds,
        speedup: reference_seconds / columnar_seconds.max(f64::MIN_POSITIVE),
        grid_slots,
        rows,
        million_slots,
        million_run_seconds,
        million_slots_per_second: million_slots as f64 / million_run_seconds.max(f64::MIN_POSITIVE),
        unix_time_seconds: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    }
}

/// The configuration of the throughput headline: the library's
/// `private-withholding` scenario at `slots` slots.
fn headline_config(slots: usize) -> multihonest_sim::SimConfig {
    let mut cfg = scenario_library(slots)
        .into_iter()
        .find(|s| s.name == "private-withholding")
        .expect("library names the withholding scenario")
        .config;
    cfg.strategy = Strategy::PrivateWithholding;
    cfg
}

/// The headline's leader schedule for `seed`.
fn headline_schedule(cfg: &multihonest_sim::SimConfig, seed: u64) -> ColumnarSchedule {
    ColumnarSchedule::sample(
        cfg.honest_nodes,
        cfg.adversarial_stake,
        cfg.active_slot_coeff,
        cfg.slots,
        seed,
    )
}

/// Re-runs the throughput headline (`slots` of `PrivateWithholding`) with
/// the kernel's per-phase profiler attached — the engine behind `scenario
/// bench-report --profile`. Returns the phase breakdown; note the
/// instrumented run is slower than the plain headline (one timestamp per
/// executed phase per slot), so its total is not a throughput figure.
pub fn profile_headline(slots: usize, seed: u64) -> crate::profile::PhaseTimes {
    let cfg = headline_config(slots);
    let schedule = headline_schedule(&cfg, seed);
    let mut strategy = cfg.strategy.instantiate();
    let mut arena = crate::ExecutionArena::new();
    let mut prof = crate::profile::PhaseTimes::new();
    let (metrics, _index) = ColumnarSimulation::run_streaming_profiled(
        &mut arena,
        &cfg,
        &schedule,
        strategy.as_mut(),
        &mut (),
        &mut prof,
    );
    assert_eq!(metrics.slots, slots);
    prof
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_well_formed_and_equivalence_holds() {
        // A reduced grid of the acceptance sweep: equivalence is asserted
        // inside scenario_bench_report on every scenario.
        let report = scenario_bench_report(250, 400, 2_000, 7, &[5, 20], 2);
        assert_eq!(report.schema, "multihonest-bench-scenario/v1");
        assert_eq!(report.equivalence_scenarios, scenario_library(1).len());
        assert_eq!(report.rows.len(), report.equivalence_scenarios);
        assert!(report.million_run_seconds > 0.0);
        for row in &report.rows {
            assert_eq!(row.violating_anchors.len(), 2, "{}", row.name);
            assert!(row.blocks > 0, "{}", row.name);
        }
        // The withholding attack must bite harder than the honest-mirror
        // baseline (the adversary holds stake in both, so neither has
        // perfect chain quality — but only withholding rolls chains back
        // at depth).
        let honest = report.rows.iter().find(|r| r.name == "honest").unwrap();
        let wh = report
            .rows
            .iter()
            .find(|r| r.name == "private-withholding")
            .unwrap();
        assert!(wh.chain_quality < 1.0);
        assert!(wh.rollbacks > 0);
        assert!(
            wh.violating_anchors[1] >= honest.violating_anchors[1],
            "withholding must violate at least as much as honest play: {:?} vs {:?}",
            wh.violating_anchors,
            honest.violating_anchors
        );
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        assert!(json.contains("multihonest-bench-scenario/v1"));
        assert!(json.contains("\"million_slots_per_second\""));
    }
}
