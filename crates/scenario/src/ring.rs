//! The ring-buffer delivery queue of the columnar engine.
//!
//! The reference [`Network`](multihonest_sim::network::Network) keeps one
//! `Vec` per simulated slot for the whole horizon — `O(slots)` queues
//! alive at once, each heap-allocated on first use. Every strategy's
//! deliveries land within a bounded window of the current slot
//! (`AdversaryStrategy::lookahead`), so the columnar engine keeps only
//! `window` bucket vectors and reuses them as the execution sweeps
//! forward: `O(1)` amortized work and zero steady-state allocation per
//! delivery.
//!
//! Like the reference network, [`DeliveryRing::schedule_honest`]
//! **clamps** every requested slot into `[broadcast, broadcast + Δ]` and
//! the horizon — the engine-side enforcement of axiom A4Δ that no
//! strategy can bypass.

/// A bounded-lookahead delivery queue over `(recipient, block)` pairs.
#[derive(Debug, Clone)]
pub struct DeliveryRing {
    delta: usize,
    slots: usize,
    /// `buckets[t % window]` holds the deliveries due at the end of slot
    /// `t`, for the `window` slots starting at the current one.
    buckets: Vec<Vec<(u32, u32)>>,
}

impl DeliveryRing {
    /// A ring covering deliveries up to `lookahead` slots ahead, with
    /// delay bound `delta`, over a horizon of `slots`.
    pub fn new(delta: usize, lookahead: usize, slots: usize) -> DeliveryRing {
        let window = lookahead.max(delta) + 1;
        DeliveryRing {
            delta,
            slots,
            buckets: vec![Vec::new(); window],
        }
    }

    /// The ring's window (maximum schedulable offset + 1).
    pub fn window(&self) -> usize {
        self.buckets.len()
    }

    /// Reconfigures the ring in place for a new execution, clearing every
    /// bucket but keeping their allocations — the batch-execution reuse
    /// hook mirroring [`ColumnarStore::reset`](crate::ColumnarStore::reset).
    pub fn reset(&mut self, delta: usize, lookahead: usize, slots: usize) {
        self.delta = delta;
        self.slots = slots;
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.buckets.resize(lookahead.max(delta) + 1, Vec::new());
    }

    /// Whether every bucket is empty — nothing scheduled and not yet
    /// drained. Used by the arena's reuse audit between executions.
    pub fn is_idle(&self) -> bool {
        self.buckets.iter().all(|b| b.is_empty())
    }

    /// Whether nothing is due at the end of `slot` — the engine's fully
    /// quiet-slot precheck, one load instead of a drain of an empty
    /// bucket. (Skipping the drain of an empty bucket is sound: buckets
    /// only ever hold *future* deliveries within the window, so an empty
    /// bucket needs no clearing before its index comes around again.)
    #[inline]
    pub fn bucket_is_empty(&self, slot: usize) -> bool {
        self.buckets[slot % self.buckets.len()].is_empty()
    }

    /// Schedules an honest broadcast from `broadcast_slot` to `recipient`
    /// at the end of `requested_slot`, clamped into
    /// `[broadcast_slot, broadcast_slot + Δ]` and the horizon — identical
    /// semantics to the reference network's `schedule_honest`.
    pub fn schedule_honest(
        &mut self,
        broadcast_slot: usize,
        requested_slot: usize,
        recipient: usize,
        block: u32,
    ) {
        let latest = (broadcast_slot + self.delta).min(self.slots);
        let at = requested_slot.clamp(broadcast_slot, latest);
        debug_assert!(at - broadcast_slot < self.window());
        let w = self.window();
        self.buckets[at % w].push((recipient as u32, block));
    }

    /// Batch form of [`DeliveryRing::schedule_honest`]: the same clamp,
    /// recipients `0..nodes` ascending, one bucket append — what the
    /// columnar engine's `deliver_honest_to_all` override lands on
    /// instead of `nodes` separate dispatches.
    pub fn schedule_honest_all(
        &mut self,
        broadcast_slot: usize,
        requested_slot: usize,
        nodes: usize,
        block: u32,
    ) {
        let latest = (broadcast_slot + self.delta).min(self.slots);
        let at = requested_slot.clamp(broadcast_slot, latest);
        debug_assert!(at - broadcast_slot < self.window());
        let w = self.window();
        self.buckets[at % w].extend((0..nodes as u32).map(|r| (r, block)));
    }

    /// Batch form of [`DeliveryRing::schedule_adversarial`]: identical
    /// window/horizon semantics, recipients `0..nodes` ascending.
    ///
    /// # Panics
    ///
    /// Panics if `at_slot` lies beyond the ring's window, like the
    /// per-recipient form.
    pub fn schedule_adversarial_all(
        &mut self,
        now: usize,
        at_slot: usize,
        nodes: usize,
        block: u32,
    ) {
        if at_slot < now || at_slot > self.slots {
            return;
        }
        assert!(
            at_slot - now < self.window(),
            "delivery at slot {at_slot} exceeds the ring window ({} from {now}); \
             raise the strategy's lookahead",
            self.window()
        );
        let w = self.window();
        self.buckets[at_slot % w].extend((0..nodes as u32).map(|r| (r, block)));
    }

    /// Schedules an adversarial delivery at `at_slot` (which must be at
    /// or after the current slot `now` and within the ring's window);
    /// requests beyond the horizon or before `now` are dropped, matching
    /// the reference network's effective semantics.
    ///
    /// # Panics
    ///
    /// Panics if `at_slot` lies beyond the ring's window — a strategy
    /// scheduling further ahead must raise its
    /// [`lookahead`](multihonest_sim::AdversaryStrategy::lookahead).
    pub fn schedule_adversarial(
        &mut self,
        now: usize,
        at_slot: usize,
        recipient: usize,
        block: u32,
    ) {
        if at_slot < now || at_slot > self.slots {
            return;
        }
        assert!(
            at_slot - now < self.window(),
            "delivery at slot {at_slot} exceeds the ring window ({} from {now}); \
             raise the strategy's lookahead",
            self.window()
        );
        let w = self.window();
        self.buckets[at_slot % w].push((recipient as u32, block));
    }

    /// Swaps the deliveries due at the end of `slot` into `out` (cleared
    /// first) and leaves the bucket empty for reuse one window later.
    /// Must be called once per slot, in increasing order.
    pub fn drain_into(&mut self, slot: usize, out: &mut Vec<(u32, u32)>) {
        out.clear();
        let w = self.window();
        std::mem::swap(&mut self.buckets[slot % w], out);
        self.buckets[slot % w].clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_delivery_is_clamped_to_delta() {
        let mut ring = DeliveryRing::new(2, 2, 10);
        let mut out = Vec::new();
        ring.schedule_honest(3, 9, 0, 7); // clamped to 5
        ring.drain_into(4, &mut out);
        assert!(out.is_empty());
        ring.drain_into(5, &mut out);
        assert_eq!(out, vec![(0, 7)]);
        ring.schedule_honest(6, 1, 1, 8); // clamped up to broadcast slot
        ring.drain_into(6, &mut out);
        assert_eq!(out, vec![(1, 8)]);
    }

    #[test]
    fn adversarial_outside_window_or_horizon() {
        let mut ring = DeliveryRing::new(0, 4, 5);
        let mut out = Vec::new();
        ring.schedule_adversarial(2, 1, 0, 1); // past: dropped
        ring.schedule_adversarial(2, 9, 0, 2); // beyond horizon: dropped
        ring.schedule_adversarial(2, 5, 0, 3);
        for t in 2..5 {
            ring.drain_into(t, &mut out);
            assert!(out.is_empty(), "slot {t}");
        }
        ring.drain_into(5, &mut out);
        assert_eq!(out, vec![(0, 3)]);
    }

    #[test]
    fn order_is_preserved_and_buckets_are_reused() {
        let mut ring = DeliveryRing::new(1, 1, 20);
        let mut out = Vec::new();
        ring.schedule_adversarial(3, 3, 0, 1); // rushing: injected first
        ring.schedule_honest(3, 3, 0, 2);
        ring.drain_into(3, &mut out);
        assert_eq!(out, vec![(0, 1), (0, 2)]);
        // One window later, the same bucket serves a new slot cleanly.
        ring.schedule_honest(5, 5, 1, 9);
        ring.drain_into(4, &mut out);
        assert!(out.is_empty());
        ring.drain_into(5, &mut out);
        assert_eq!(out, vec![(1, 9)]);
    }

    #[test]
    #[should_panic(expected = "raise the strategy's lookahead")]
    fn window_overflow_panics() {
        let mut ring = DeliveryRing::new(1, 1, 100);
        ring.schedule_adversarial(3, 8, 0, 1);
    }
}
