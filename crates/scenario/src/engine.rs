//! The columnar execution engine: million-slot runs in seconds.
//!
//! [`ColumnarSimulation`] replays exactly the abstract protocol of the
//! reference engine ([`multihonest_sim::Simulation`], kept as
//! `sim::reference`) over the SoA arenas of this crate:
//!
//! * blocks live in a [`ColumnarStore`] (flat `u32` columns over the
//!   shared `AncestorIndex`) instead of per-block structs;
//! * the leader schedule is a [`ColumnarSchedule`] (flat leader column)
//!   instead of one heap `Vec` per slot;
//! * deliveries flow through a [`DeliveryRing`] (bounded window of reused
//!   buckets) instead of `O(slots)` live queues;
//! * per-node known-sets are growable bitsets instead of hash sets;
//! * the consistency index is folded **online** through the shared
//!   [`DivergenceFold`], and metrics stream through
//!   [`MetricsSink`]/[`MetricsAccumulator`] — a streaming run retains no
//!   per-slot state at all.
//!
//! Both engines drive the *same* [`AdversaryStrategy`] objects through
//! their own [`SlotContext`]s, and both contexts clamp honest deliveries
//! into the `[slot, slot + Δ]` window (axiom A4Δ) — the **Δ-window clamp
//! invariant**: no strategy, built-in or user-supplied, can break the Δ
//! axiom, because the clamp is engine-side. Identical strategy decisions
//! over identical schedules therefore give identical block arenas,
//! delivery orders, tip trajectories and rollback records — the
//! bit-identical-trace guarantee that `tests/scenario_engine.rs` and the
//! committed `BENCH_scenario.json` both enforce against the reference.

use multihonest_sim::consistency::{DivergenceFold, DivergenceIndex};
use multihonest_sim::fault::{DegradationLedger, DeliveryMeta, FaultPlan, FaultRuntime};
use multihonest_sim::metrics::{Metrics, MetricsAccumulator, MetricsSink, TeeSink};
use multihonest_sim::strategy::{AdversaryStrategy, SlotContext};
use multihonest_sim::{BlockId, SimConfig, TieBreak};

use crate::ring::DeliveryRing;
use crate::schedule::ColumnarSchedule;
use crate::store::{ColumnarStore, ADVERSARY};

/// A growable bitset over block ids — the columnar engine's per-node
/// known-set (the reference engine uses a `HashSet<BlockId>`).
#[derive(Debug, Clone, Default)]
struct BlockSet {
    words: Vec<u64>,
}

impl BlockSet {
    /// Inserts `b`; returns `true` when it was newly inserted.
    #[inline]
    fn insert(&mut self, b: u32) -> bool {
        let (word, bit) = (b as usize / 64, b as usize % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        fresh
    }

    /// Empties the set, keeping its allocation (re-inserts re-zero it).
    #[inline]
    fn clear(&mut self) {
        self.words.clear();
    }

    #[cfg(test)]
    fn contains(&self, b: u32) -> bool {
        let (word, bit) = (b as usize / 64, b as usize % 64);
        self.words.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }
}

/// The engine-side [`SlotContext`] of the columnar core: mints into the
/// [`ColumnarStore`] and schedules through the [`DeliveryRing`] (whose
/// honest path clamps into the Δ window, enforcing axiom A4Δ).
struct ColumnarSlotContext<'a> {
    store: &'a mut ColumnarStore,
    ring: &'a mut DeliveryRing,
    delta: usize,
    honest_nodes: usize,
    faults: &'a FaultRuntime<'a>,
    slot: usize,
    adversarial_leader: bool,
}

impl SlotContext for ColumnarSlotContext<'_> {
    fn slot(&self) -> usize {
        self.slot
    }

    fn delta(&self) -> usize {
        self.delta
    }

    fn honest_nodes(&self) -> usize {
        self.honest_nodes
    }

    fn adversarial_leader(&self) -> bool {
        self.adversarial_leader
    }

    fn height_of(&self, block: BlockId) -> usize {
        self.store.height(block.index() as u32)
    }

    fn parent_of(&self, block: BlockId) -> Option<BlockId> {
        self.store
            .parent(block.index() as u32)
            .map(|p| BlockId::from_index(p as usize))
    }

    fn mint_adversarial(&mut self, parent: BlockId) -> BlockId {
        let id = self
            .store
            .mint(parent.index() as u32, self.slot, ADVERSARY, false);
        BlockId::from_index(id as usize)
    }

    fn deliver_honest(&mut self, requested_slot: usize, recipient: usize, block: BlockId) {
        self.ring
            .schedule_honest(self.slot, requested_slot, recipient, block.index() as u32);
    }

    fn deliver_adversarial(&mut self, at_slot: usize, recipient: usize, block: BlockId) {
        self.ring
            .schedule_adversarial(self.slot, at_slot, recipient, block.index() as u32);
    }

    fn node_is_live(&self, node: usize) -> bool {
        self.faults.node_is_live(self.slot, node)
    }

    fn node_is_reachable(&self, node: usize) -> bool {
        self.faults.node_is_reachable(self.slot, node)
    }
}

/// A per-slot observer threaded through the columnar engine loop — the
/// attachment point of the streaming fork pipeline
/// ([`crate::pipeline::ForkPipeline`]) and any other consumer that wants
/// the block arena slot by slot instead of post-hoc.
///
/// [`on_slot_end`](SlotHook::on_slot_end) fires once per slot, after the
/// slot's minting, adversarial moves, deliveries and metrics fold: the
/// store contains every block minted up to and including `slot`, and the
/// hook may emit derived observations through the sink (which is why the
/// sink is passed in rather than captured — the engine and the hook share
/// it without a double borrow).
///
/// The trait is generic over the sink so hook implementations can call
/// statically-dispatched sink methods; `()` is the no-op hook every
/// plain entry point uses, costing nothing in the loop.
pub trait SlotHook<S: MetricsSink> {
    /// Observes the end of `slot` (1-based).
    fn on_slot_end(&mut self, slot: usize, store: &ColumnarStore, sink: &mut S);
}

/// The no-op hook: plain runs pay nothing per slot.
impl<S: MetricsSink> SlotHook<S> for () {
    #[inline]
    fn on_slot_end(&mut self, _slot: usize, _store: &ColumnarStore, _sink: &mut S) {}
}

/// The longest-chain rule of one columnar honest node, bit-compatible
/// with the reference `HonestNode::receive`.
#[inline]
fn receive(
    store: &ColumnarStore,
    tie_break: TieBreak,
    known: &mut BlockSet,
    tip: &mut u32,
    block: u32,
) {
    if !known.insert(block) {
        return;
    }
    // Receiving a chain means knowing every block on it.
    let mut cur = store.parent(block);
    while let Some(b) = cur {
        if !known.insert(b) {
            break;
        }
        cur = store.parent(b);
    }
    let new_height = store.height(block);
    let cur_height = store.height(*tip);
    let adopt = match new_height.cmp(&cur_height) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => match tie_break {
            TieBreak::AdversarialOrder => false, // first seen stays
            TieBreak::Consistent => {
                multihonest_sim::block::tie_hash(block) < multihonest_sim::block::tie_hash(*tip)
            }
        },
    };
    if adopt {
        *tip = block;
    }
}

/// A finished columnar execution with full traces retained — the
/// query-compatible counterpart of the reference `Simulation`, produced
/// by [`ColumnarSimulation::run`]. For runs where no per-slot trace is
/// wanted (the million-slot regime), use
/// [`ColumnarSimulation::run_streaming`].
#[derive(Debug, Clone)]
pub struct ColumnarSimulation {
    config: SimConfig,
    store: ColumnarStore,
    /// Distinct honest tips per slot, flattened; slot `t` (1-based) owns
    /// `tips_flat[tips_end[t − 1] as usize..tips_end[t] as usize]`.
    tips_flat: Vec<u32>,
    tips_end: Vec<u32>,
    rollbacks: Vec<(u32, u32, u32)>,
    divergence: DivergenceIndex,
    metrics: Metrics,
}

impl ColumnarSimulation {
    /// Runs an execution with the given seed, instantiating the
    /// configured built-in strategy — the drop-in columnar counterpart of
    /// `Simulation::run`, with bit-identical traces.
    pub fn run(config: &SimConfig, seed: u64) -> ColumnarSimulation {
        let mut strategy = config.strategy.instantiate();
        ColumnarSimulation::run_with(config, seed, strategy.as_mut())
    }

    /// Runs an execution with an arbitrary [`AdversaryStrategy`].
    pub fn run_with(
        config: &SimConfig,
        seed: u64,
        strategy: &mut dyn AdversaryStrategy,
    ) -> ColumnarSimulation {
        let schedule = ColumnarSchedule::sample(
            config.honest_nodes,
            config.adversarial_stake,
            config.active_slot_coeff,
            config.slots,
            seed,
        );
        ColumnarSimulation::run_with_schedule(config, &schedule, strategy)
    }

    /// Runs an execution over an explicit columnar schedule
    /// (heterogeneous stake profiles sample theirs with
    /// [`ColumnarSchedule::sample_weighted`]) and an arbitrary strategy,
    /// retaining the full tip/rollback traces.
    pub fn run_with_schedule(
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
    ) -> ColumnarSimulation {
        let empty = FaultPlan::default();
        ColumnarSimulation::run_with_schedule_faults(config, schedule, strategy, &empty).0
    }

    /// Runs a trace-retaining execution under a [`FaultPlan`]: crashed
    /// nodes skip their leadership slots and every due delivery passes
    /// through the plan's predicate, exactly as in the reference engine's
    /// `run_with_schedule_faults` — faulty executions stay
    /// trace-identical across engines. The empty plan is bit-identical to
    /// [`ColumnarSimulation::run_with_schedule`]. Returns the execution
    /// together with its [`DegradationLedger`].
    pub fn run_with_schedule_faults(
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
        plan: &FaultPlan,
    ) -> (ColumnarSimulation, DegradationLedger) {
        let mut arena = ExecutionArena::new();
        let mut faults = FaultRuntime::new(plan, config.honest_nodes, config.slots);
        let out = execute(
            &mut arena,
            config,
            schedule,
            strategy,
            true,
            &mut (),
            &mut (),
            &mut faults,
        );
        (
            ColumnarSimulation {
                config: *config,
                store: arena.store,
                tips_flat: out.tips_flat,
                tips_end: out.tips_end,
                rollbacks: out.rollbacks,
                divergence: out.divergence,
                metrics: out.metrics,
            },
            faults.finish(),
        )
    }

    /// Runs a **streaming** execution: no per-slot traces are retained —
    /// constant-size working state beyond the block arena and the
    /// `O(slots)` divergence index — and every per-slot observation is
    /// forwarded to `sink`. Returns the end-of-run metrics and the
    /// settlement index.
    pub fn run_streaming<S: MetricsSink>(
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
        sink: &mut S,
    ) -> (Metrics, DivergenceIndex) {
        let mut arena = ExecutionArena::new();
        ColumnarSimulation::run_streaming_in(&mut arena, config, schedule, strategy, sink)
    }

    /// The **batch** entry point: a streaming execution that reuses the
    /// caller's [`ExecutionArena`] instead of allocating block/delivery
    /// arenas afresh — trace-identical to [`run_streaming`], amortizing
    /// heap traffic to zero across a campaign of seeds. This is the
    /// kernel campaign sweeps drive once per trial.
    ///
    /// [`run_streaming`]: ColumnarSimulation::run_streaming
    pub fn run_streaming_in<S: MetricsSink>(
        arena: &mut ExecutionArena,
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
        sink: &mut S,
    ) -> (Metrics, DivergenceIndex) {
        let empty = FaultPlan::default();
        let (metrics, divergence, _) = ColumnarSimulation::run_streaming_faults_in(
            arena, config, schedule, strategy, &empty, sink,
        );
        (metrics, divergence)
    }

    /// A streaming execution under a [`FaultPlan`] — the fault-aware
    /// sibling of [`ColumnarSimulation::run_streaming`]. Deferral events
    /// reach the sink through
    /// [`MetricsSink::on_fault_deferral`].
    pub fn run_streaming_faults<S: MetricsSink>(
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
        plan: &FaultPlan,
        sink: &mut S,
    ) -> (Metrics, DivergenceIndex, DegradationLedger) {
        let mut arena = ExecutionArena::new();
        ColumnarSimulation::run_streaming_faults_in(
            &mut arena, config, schedule, strategy, plan, sink,
        )
    }

    /// The batch fault-aware entry point: a streaming faulty execution
    /// over a reused [`ExecutionArena`] — what the campaign sweep drives
    /// when its fault axis is non-empty.
    pub fn run_streaming_faults_in<S: MetricsSink>(
        arena: &mut ExecutionArena,
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
        plan: &FaultPlan,
        sink: &mut S,
    ) -> (Metrics, DivergenceIndex, DegradationLedger) {
        let mut faults = FaultRuntime::new(plan, config.honest_nodes, config.slots);
        let out = execute(
            arena,
            config,
            schedule,
            strategy,
            false,
            sink,
            &mut (),
            &mut faults,
        );
        (out.metrics, out.divergence, faults.finish())
    }

    /// A streaming execution with a [`SlotHook`] attached: identical to
    /// [`run_streaming_faults_in`](Self::run_streaming_faults_in) except
    /// that `hook` observes the block arena at the end of every slot —
    /// the entry point of the streaming fork pipeline (see
    /// [`crate::pipeline`]). The hook cannot perturb the execution (it
    /// sees the store read-only), so a hooked run stays trace-identical
    /// to its unhooked sibling.
    pub fn run_streaming_hooked<S: MetricsSink, H: SlotHook<S>>(
        arena: &mut ExecutionArena,
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
        plan: &FaultPlan,
        sink: &mut S,
        hook: &mut H,
    ) -> (Metrics, DivergenceIndex, DegradationLedger) {
        let mut faults = FaultRuntime::new(plan, config.honest_nodes, config.slots);
        let out = execute(
            arena,
            config,
            schedule,
            strategy,
            false,
            sink,
            hook,
            &mut faults,
        );
        (out.metrics, out.divergence, faults.finish())
    }

    /// The configuration used.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The SoA block arena.
    pub fn store(&self) -> &ColumnarStore {
        &self.store
    }

    /// Execution metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Distinct honest tips at the end of `slot` (1-based; slot 0 reports
    /// none), matching the reference `Simulation::tips_at`.
    pub fn tips_at(&self, slot: usize) -> &[u32] {
        if slot == 0 {
            return &[];
        }
        &self.tips_flat[self.tips_end[slot - 1] as usize..self.tips_end[slot] as usize]
    }

    /// All recorded rollbacks: `(slot, previous tip, new tip)`.
    pub fn rollbacks(&self) -> &[(u32, u32, u32)] {
        &self.rollbacks
    }

    /// The execution's settlement index.
    pub fn divergence_index(&self) -> &DivergenceIndex {
        &self.divergence
    }

    /// Whether the execution exhibits a `(slot, k)`-settlement violation
    /// (paper Definition 3, observed) — `O(1)`.
    pub fn settlement_violation(&self, slot: usize, k: usize) -> bool {
        self.divergence.violates(slot, k)
    }

    /// The full settlement sweep at parameter `k`; `O(slots)`.
    pub fn settlement_violations(&self, k: usize) -> Vec<bool> {
        self.divergence.violations(k)
    }

    /// Number of violating anchors `s ≤ upto` at parameter `k`.
    pub fn count_violating_slots(&self, k: usize, upto: usize) -> usize {
        self.divergence.count_violations(k, upto)
    }

    /// The smallest violating anchor at parameter `k`, if any.
    pub fn first_violating_slot(&self, k: usize) -> Option<usize> {
        self.divergence.first_violation(k)
    }
}

/// Reusable working state for batch execution: the block store, delivery
/// ring, per-node views and per-slot scratch buffers of one execution,
/// reset in place between seeds. One arena per worker thread turns a
/// campaign of millions of executions into zero steady-state allocation —
/// see [`ColumnarSimulation::run_streaming_in`].
#[derive(Debug)]
pub struct ExecutionArena {
    store: ColumnarStore,
    ring: DeliveryRing,
    tips: Vec<u32>,
    known: Vec<BlockSet>,
    minted: Vec<BlockId>,
    before: Vec<u32>,
    due: Vec<(u32, u32)>,
    uniq: Vec<u32>,
}

impl Default for ExecutionArena {
    fn default() -> ExecutionArena {
        ExecutionArena::new()
    }
}

impl ExecutionArena {
    /// An empty arena; the first execution sizes it, later ones reuse it.
    pub fn new() -> ExecutionArena {
        ExecutionArena {
            store: ColumnarStore::new(),
            ring: DeliveryRing::new(0, 0, 0),
            tips: Vec::new(),
            known: Vec::new(),
            minted: Vec::new(),
            before: Vec::new(),
            due: Vec::new(),
            uniq: Vec::new(),
        }
    }

    /// Resets every component for a fresh execution, keeping allocations.
    fn reset(&mut self, config: &SimConfig, lookahead: usize, expected_blocks: usize) {
        let n = config.honest_nodes;
        self.store.reset();
        self.store.reserve(expected_blocks);
        self.ring.reset(config.delta, lookahead, config.slots);
        self.tips.clear();
        self.tips.resize(n, 0);
        self.known.truncate(n);
        for k in &mut self.known {
            k.clear();
        }
        self.known.resize_with(n, BlockSet::default);
        for k in &mut self.known {
            k.insert(0); // genesis
        }
        self.before.clear();
        self.before.resize(n, 0);
        self.uniq.reserve(n);
    }
}

/// The per-run outputs of [`execute`] (the block store stays in the
/// arena; trace columns are empty in streaming mode).
struct ExecOutput {
    tips_flat: Vec<u32>,
    tips_end: Vec<u32>,
    rollbacks: Vec<(u32, u32, u32)>,
    divergence: DivergenceIndex,
    metrics: Metrics,
}

/// The engine loop shared by the trace-retaining and streaming modes.
// Private fan-in of every public entry point: each parameter is one
// caller-facing knob, and bundling them into a struct would only move
// the argument list one call up.
#[allow(clippy::too_many_arguments)]
fn execute<S: MetricsSink, H: SlotHook<S>>(
    arena: &mut ExecutionArena,
    config: &SimConfig,
    schedule: &ColumnarSchedule,
    strategy: &mut dyn AdversaryStrategy,
    keep_trace: bool,
    sink: &mut S,
    hook: &mut H,
    faults: &mut FaultRuntime<'_>,
) -> ExecOutput {
    assert_eq!(
        schedule.len(),
        config.slots,
        "schedule must cover the configured horizon"
    );
    let n = config.honest_nodes;
    assert!(n > 0, "need at least one honest node");
    // Expected blocks ≈ one per leader flag; reserve with headroom.
    let expected = schedule.active_slots() + schedule.len() / 8 + 16;
    arena.reset(config, strategy.lookahead(config.delta), expected);
    let ExecutionArena {
        store,
        ring,
        tips,
        known,
        minted,
        before,
        due,
        uniq,
    } = arena;
    let mut fold = DivergenceFold::new(config.slots);
    let mut acc = MetricsAccumulator::new();
    let mut rollbacks: Vec<(u32, u32, u32)> = Vec::new();
    let mut tips_flat: Vec<u32> = Vec::new();
    let mut tips_end: Vec<u32> = Vec::with_capacity(if keep_trace { config.slots + 1 } else { 1 });
    tips_end.push(0);

    for slot in 1..=config.slots {
        // 1. Honest leaders mint on their current tips and adopt their
        //    own block at mint time (no rushed same-height injection can
        //    win the first-seen tie against a minter).
        minted.clear();
        for &leader in schedule.leaders(slot) {
            let l = leader as usize;
            if !faults.can_mint(slot, l) {
                continue;
            }
            let b = store.mint(tips[l], slot, leader, true);
            receive(store, config.tie_break, &mut known[l], &mut tips[l], b);
            minted.push(BlockId::from_index(b as usize));
        }
        // 2. The rushing adversary observes the minted blocks and acts —
        //    through the same trait the reference engine drives.
        let mut ctx = ColumnarSlotContext {
            store: &mut *store,
            ring: &mut *ring,
            delta: config.delta,
            honest_nodes: n,
            faults: &*faults,
            slot,
            adversarial_leader: schedule.adversarial(slot),
        };
        strategy.on_slot(&mut ctx, minted);
        // 3. Apply this slot's deliveries in scheduled order — filtered
        //    through the fault plan when one is active — recording chain
        //    rollbacks.
        before.copy_from_slice(tips);
        ring.drain_into(slot, due);
        if !faults.is_empty() {
            let mut tee = TeeSink {
                a: &mut acc,
                b: &mut *sink,
            };
            faults.apply(
                slot,
                due,
                |b| DeliveryMeta {
                    src: store.issuer(b) as usize,
                    honest: store.is_honest(b),
                    broadcast_slot: store.slot(b),
                },
                &mut tee,
            );
        }
        for &(recipient, block) in due.iter() {
            let r = recipient as usize;
            receive(store, config.tie_break, &mut known[r], &mut tips[r], block);
        }
        for i in 0..n {
            let (old, new) = (before[i], tips[i]);
            if new != old && store.last_common_block(old, new) != old {
                if keep_trace {
                    rollbacks.push((slot as u32, old, new));
                }
                fold.observe_rollback(store, slot, old, new);
                TeeSink {
                    a: &mut acc,
                    b: &mut *sink,
                }
                .on_rollback(slot, store.height(old), store.height(new));
            }
        }
        if config.tie_break == TieBreak::AdversarialOrder {
            for &b in minted.iter() {
                let leader = store.issuer(b.index() as u32) as usize;
                let tip = tips[leader];
                debug_assert!(
                    tip == b.index() as u32 || store.height(tip) > store.height(b.index() as u32),
                    "leader {leader} lost its own slot-{slot} block to an equal-height tie"
                );
            }
        }
        // 4. Fold the distinct honest views.
        uniq.clear();
        uniq.extend_from_slice(tips);
        uniq.sort_unstable();
        uniq.dedup();
        let mut div = 0usize;
        let mut best_height = 0usize;
        for (i, &a) in uniq.iter().enumerate() {
            best_height = best_height.max(store.height(a));
            for &b in &uniq[i + 1..] {
                let lca = store.last_common_block(a, b);
                let first = store.slot(a).min(store.slot(b));
                div = div.max(first.saturating_sub(store.slot(lca)));
            }
        }
        fold.observe_tips(store, slot, uniq);
        TeeSink {
            a: &mut acc,
            b: &mut *sink,
        }
        .on_slot(slot, uniq.len(), best_height, div);
        if keep_trace {
            tips_flat.extend_from_slice(uniq);
            tips_end.push(tips_flat.len() as u32);
        }
        hook.on_slot_end(slot, store, sink);
    }

    // Final metrics: best tip over node views, later nodes winning height
    // ties (matching the reference's `max_by_key`).
    let mut best_tip = tips[0];
    for &t in tips.iter() {
        if store.height(t) >= store.height(best_tip) {
            best_tip = t;
        }
    }
    let mut chain_blocks = 0usize;
    let mut honest_chain_blocks = 0usize;
    let mut cur = best_tip;
    while let Some(p) = store.parent(cur) {
        chain_blocks += 1;
        honest_chain_blocks += usize::from(store.is_honest(cur));
        cur = p;
    }
    let divergence = fold.finish();
    let metrics = acc.finish(
        schedule.active_slots(),
        store.height(best_tip),
        chain_blocks,
        honest_chain_blocks,
        divergence.max_settlement_lag(),
    );
    ExecOutput {
        tips_flat,
        tips_end,
        rollbacks,
        divergence,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_sim::{FaultDirective, Simulation, Strategy};

    fn cfg(strategy: Strategy, delta: usize, slots: usize) -> SimConfig {
        SimConfig {
            honest_nodes: 6,
            adversarial_stake: 0.3,
            active_slot_coeff: 0.3,
            delta,
            slots,
            tie_break: TieBreak::AdversarialOrder,
            strategy,
        }
    }

    /// Asserts a columnar run is trace-identical to the reference engine.
    fn assert_matches_reference(config: &SimConfig, seed: u64) {
        let cols = ColumnarSimulation::run(config, seed);
        let refr = Simulation::run(config, seed);
        for t in 0..=config.slots {
            let expect: Vec<u32> = refr.tips_at(t).iter().map(|b| b.index() as u32).collect();
            assert_eq!(cols.tips_at(t), expect.as_slice(), "tips at slot {t}");
        }
        let expect_rb: Vec<(u32, u32, u32)> = refr
            .rollbacks()
            .iter()
            .map(|&(t, o, n)| (t as u32, o.index() as u32, n.index() as u32))
            .collect();
        assert_eq!(cols.rollbacks(), expect_rb.as_slice(), "rollbacks");
        assert_eq!(cols.metrics(), refr.metrics(), "metrics");
        assert_eq!(cols.divergence_index(), refr.divergence_index(), "index");
        for k in [0usize, 1, 5, 20] {
            assert_eq!(
                cols.settlement_violations(k),
                refr.settlement_violations(k),
                "violations at k = {k}"
            );
        }
    }

    #[test]
    fn matches_reference_on_all_builtin_strategies() {
        for strategy in Strategy::ALL {
            for delta in [0usize, 2] {
                assert_matches_reference(&cfg(strategy, delta, 300), 11);
            }
        }
    }

    #[test]
    fn streaming_mode_matches_trace_mode() {
        let config = cfg(Strategy::PrivateWithholding, 2, 500);
        let schedule = ColumnarSchedule::sample(
            config.honest_nodes,
            config.adversarial_stake,
            config.active_slot_coeff,
            config.slots,
            3,
        );
        let mut s1 = config.strategy.instantiate();
        let traced = ColumnarSimulation::run_with_schedule(&config, &schedule, s1.as_mut());
        let mut s2 = config.strategy.instantiate();
        let mut acc = MetricsAccumulator::new();
        let (metrics, index) =
            ColumnarSimulation::run_streaming(&config, &schedule, s2.as_mut(), &mut acc);
        assert_eq!(&metrics, traced.metrics());
        assert_eq!(&index, traced.divergence_index());
        assert_eq!(acc.max_slot_divergence(), metrics.max_slot_divergence);
    }

    #[test]
    fn arena_reuse_matches_fresh_runs() {
        // One arena driven across runs with different seeds, strategies,
        // Δs and node counts (the shape of a campaign cell sweep) must
        // reproduce each fresh streaming run exactly.
        let mut arena = ExecutionArena::new();
        for (seed, strategy, delta, nodes) in [
            (1u64, Strategy::PrivateWithholding, 2usize, 6usize),
            (2, Strategy::BalanceAttack, 0, 6),
            (3, Strategy::Honest, 4, 3),
            (4, Strategy::PrivateWithholding, 1, 9),
        ] {
            let mut config = cfg(strategy, delta, 350);
            config.honest_nodes = nodes;
            let schedule = ColumnarSchedule::sample(
                config.honest_nodes,
                config.adversarial_stake,
                config.active_slot_coeff,
                config.slots,
                seed,
            );
            let mut s1 = strategy.instantiate();
            let fresh = ColumnarSimulation::run_streaming(&config, &schedule, s1.as_mut(), &mut ());
            let mut s2 = strategy.instantiate();
            let reused = ColumnarSimulation::run_streaming_in(
                &mut arena,
                &config,
                &schedule,
                s2.as_mut(),
                &mut (),
            );
            assert_eq!(fresh.0, reused.0, "metrics diverged at seed {seed}");
            assert_eq!(fresh.1, reused.1, "index diverged at seed {seed}");
        }
    }

    /// Asserts a *faulty* columnar run is trace-identical to the
    /// reference engine under the same plan — including the degradation
    /// ledgers.
    fn assert_faulty_matches_reference(config: &SimConfig, plan: &FaultPlan, seed: u64) {
        let cs = ColumnarSchedule::sample(
            config.honest_nodes,
            config.adversarial_stake,
            config.active_slot_coeff,
            config.slots,
            seed,
        );
        let rs = multihonest_sim::LeaderSchedule::sample(
            config.honest_nodes,
            config.adversarial_stake,
            config.active_slot_coeff,
            config.slots,
            seed,
        );
        let mut s1 = config.strategy.instantiate();
        let (cols, cl) =
            ColumnarSimulation::run_with_schedule_faults(config, &cs, s1.as_mut(), plan);
        let mut s2 = config.strategy.instantiate();
        let (refr, rl) = Simulation::run_with_schedule_faults(config, rs, s2.as_mut(), plan);
        for t in 0..=config.slots {
            let expect: Vec<u32> = refr.tips_at(t).iter().map(|b| b.index() as u32).collect();
            assert_eq!(cols.tips_at(t), expect.as_slice(), "tips at slot {t}");
        }
        let expect_rb: Vec<(u32, u32, u32)> = refr
            .rollbacks()
            .iter()
            .map(|&(t, o, n)| (t as u32, o.index() as u32, n.index() as u32))
            .collect();
        assert_eq!(cols.rollbacks(), expect_rb.as_slice(), "rollbacks");
        assert_eq!(cols.metrics(), refr.metrics(), "metrics");
        assert_eq!(cols.divergence_index(), refr.divergence_index(), "index");
        assert_eq!(cl, rl, "degradation ledgers");
    }

    #[test]
    fn faulty_runs_match_reference_on_all_builtin_strategies() {
        let plan = FaultPlan::new()
            .with(FaultDirective::Partition {
                groups: vec![vec![0, 1, 2], vec![3, 4, 5]],
                start: 40,
                heal_slot: 44,
            })
            .with(FaultDirective::Eclipse {
                node: 2,
                start: 90,
                until: 95,
            })
            .with(FaultDirective::Crash {
                node: 5,
                at: 150,
                recover_slot: 156,
            })
            .with(FaultDirective::MessageLoss {
                p: 0.5,
                salt: 0xFA11,
                start: 200,
                until: 205,
            });
        for strategy in Strategy::ALL {
            for delta in [0usize, 2] {
                assert_faulty_matches_reference(&cfg(strategy, delta, 300), &plan, 13);
            }
        }
    }

    #[test]
    fn never_recovering_crash_matches_reference() {
        let plan = FaultPlan::new().with(FaultDirective::Crash {
            node: 0,
            at: 50,
            recover_slot: usize::MAX,
        });
        assert_faulty_matches_reference(&cfg(Strategy::PrivateWithholding, 2, 250), &plan, 5);
    }

    #[test]
    fn streaming_faulty_mode_matches_traced_faulty_mode() {
        let config = cfg(Strategy::PrivateWithholding, 2, 400);
        let plan = FaultPlan::new().with(FaultDirective::Partition {
            groups: vec![vec![0, 1, 2], vec![3, 4, 5]],
            start: 60,
            heal_slot: 66,
        });
        let schedule = ColumnarSchedule::sample(
            config.honest_nodes,
            config.adversarial_stake,
            config.active_slot_coeff,
            config.slots,
            17,
        );
        let mut s1 = config.strategy.instantiate();
        let (traced, tl) =
            ColumnarSimulation::run_with_schedule_faults(&config, &schedule, s1.as_mut(), &plan);
        let mut s2 = config.strategy.instantiate();
        let mut deferrals = 0u64;
        struct CountSink<'a>(&'a mut u64);
        impl MetricsSink for CountSink<'_> {
            fn on_fault_deferral(&mut self, _slot: usize, _recipient: usize, _to: usize) {
                *self.0 += 1;
            }
        }
        let mut sink = CountSink(&mut deferrals);
        let (metrics, index, sl) = ColumnarSimulation::run_streaming_faults(
            &config,
            &schedule,
            s2.as_mut(),
            &plan,
            &mut sink,
        );
        assert_eq!(&metrics, traced.metrics());
        assert_eq!(&index, traced.divergence_index());
        assert_eq!(tl, sl, "ledgers across modes");
        assert_eq!(deferrals, sl.deferred, "sink sees every deferral");
        assert!(deferrals > 0, "the partition must bite");
    }

    #[test]
    fn consistent_tie_break_matches_reference() {
        let mut config = cfg(Strategy::BalanceAttack, 1, 400);
        config.tie_break = TieBreak::Consistent;
        config.active_slot_coeff = 0.5;
        assert_matches_reference(&config, 7);
    }

    #[test]
    fn block_set_semantics() {
        let mut s = BlockSet::default();
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(1000));
        assert!(s.contains(1000));
        assert!(!s.contains(999));
    }
}
