//! The columnar execution engine: million-slot runs in seconds.
//!
//! [`ColumnarSimulation`] replays exactly the abstract protocol of the
//! reference engine ([`multihonest_sim::Simulation`], kept as
//! `sim::reference`) over the SoA arenas of this crate:
//!
//! * blocks live in a [`ColumnarStore`] (flat `u32` columns over the
//!   shared `AncestorIndex`) instead of per-block structs;
//! * the leader schedule is a [`ColumnarSchedule`] (flat leader column)
//!   instead of one heap `Vec` per slot;
//! * deliveries flow through a [`DeliveryRing`] (bounded window of reused
//!   buckets) instead of `O(slots)` live queues;
//! * per-node known-sets are growable bitsets instead of hash sets;
//! * the consistency index is folded **online** through the shared
//!   [`DivergenceFold`], and metrics stream through
//!   [`MetricsSink`]/[`MetricsAccumulator`] — a streaming run retains no
//!   per-slot state at all.
//!
//! Both engines drive the *same* [`AdversaryStrategy`] objects through
//! their own [`SlotContext`]s, and both contexts clamp honest deliveries
//! into the `[slot, slot + Δ]` window (axiom A4Δ) — the **Δ-window clamp
//! invariant**: no strategy, built-in or user-supplied, can break the Δ
//! axiom, because the clamp is engine-side. Identical strategy decisions
//! over identical schedules therefore give identical block arenas,
//! delivery orders, tip trajectories and rollback records — the
//! bit-identical-trace guarantee that `tests/scenario_engine.rs` and the
//! committed `BENCH_scenario.json` both enforce against the reference.

use multihonest_sim::consistency::{DivergenceFold, DivergenceIndex};
use multihonest_sim::fault::{DegradationLedger, DeliveryMeta, FaultPlan, FaultRuntime};
use multihonest_sim::metrics::{Metrics, MetricsAccumulator, MetricsSink, TeeSink};
use multihonest_sim::strategy::{AdversaryStrategy, SlotContext};
use multihonest_sim::{BlockId, SimConfig, TieBreak};

use multihonest_obs::Recorder;

use crate::profile::Phase;
use crate::ring::DeliveryRing;
use crate::schedule::ColumnarSchedule;
use crate::store::{ColumnarStore, ADVERSARY};

/// Version tag of the columnar slot kernel's **observable execution
/// semantics**. Campaign checkpoints and horizon WALs fingerprint it:
/// artifacts produced by one kernel generation must never be silently
/// merged with executions of another. Bump on any change that could
/// alter an execution's outputs (traces, metrics, divergence indices) —
/// pure performance work that stays bit-identical keeps the version.
pub const ENGINE_KERNEL_VERSION: u32 = 1;

/// The transposed known-set of all honest nodes at once: one mask word
/// row per **block**, bit `r` set when node `r` knows the block (the
/// reference engine keeps a `HashSet<BlockId>` per node; an earlier
/// columnar revision kept one bitset-over-blocks per node).
///
/// The transposed layout is what makes the known-set merge of the slot
/// kernel word-at-a-time and cache-local: every delivery of the same
/// block — and every chain walk under it — touches the *same* mask row
/// regardless of recipient, so a broadcast that used to stride across
/// `n` separate bitsets now hammers one hot cache line, and the
/// ancestor scan's early exit ("node already knows this suffix") is a
/// single AND per step.
///
/// Rows are `words_per_block` `u64`s (1 for up to 64 honest nodes — every
/// preset scenario; larger node counts grow the stride, not the code
/// path). Rows are materialized lazily on first insert, so withheld
/// private chains cost nothing until they are released.
#[derive(Debug, Clone, Default)]
pub(crate) struct KnownMatrix {
    words_per_block: usize,
    words: Vec<u64>,
}

impl KnownMatrix {
    /// Re-shapes for a fresh execution over `nodes` honest nodes: every
    /// mask cleared, allocation kept, genesis known to everyone.
    fn reset(&mut self, nodes: usize) {
        self.words_per_block = nodes.div_ceil(64).max(1);
        self.words.clear();
        // Genesis (block 0) is known to every node from slot 0.
        self.words.resize(self.words_per_block, 0);
        for node in 0..nodes {
            self.words[node / 64] |= 1u64 << (node % 64);
        }
    }

    /// Marks `b` known to `node`; returns `true` when it was fresh.
    #[inline]
    fn insert(&mut self, b: u32, node: usize) -> bool {
        let row = b as usize * self.words_per_block;
        let idx = row + node / 64;
        if idx >= self.words.len() {
            self.words.resize(row + self.words_per_block, 0);
        }
        let mask = 1u64 << (node % 64);
        let fresh = self.words[idx] & mask == 0;
        self.words[idx] |= mask;
        fresh
    }

    /// Marks `b` known to every node `0..nodes` at once — word-at-a-time
    /// form of `nodes` separate [`KnownMatrix::insert`] calls, used by the
    /// engine's broadcast-collapse fast path.
    #[inline]
    fn insert_all(&mut self, b: u32, nodes: usize) {
        let row = b as usize * self.words_per_block;
        if row + self.words_per_block > self.words.len() {
            self.words.resize(row + self.words_per_block, 0);
        }
        let (full, rem) = (nodes / 64, nodes % 64);
        for w in &mut self.words[row..row + full] {
            *w = u64::MAX;
        }
        if rem > 0 {
            self.words[row + full] |= (1u64 << rem) - 1;
        }
    }

    #[cfg(test)]
    fn contains(&self, b: u32, node: usize) -> bool {
        let idx = b as usize * self.words_per_block + node / 64;
        self.words
            .get(idx)
            .is_some_and(|w| w & (1u64 << (node % 64)) != 0)
    }
}

/// The engine-side [`SlotContext`] of the columnar core: mints into the
/// [`ColumnarStore`] and schedules through the [`DeliveryRing`] (whose
/// honest path clamps into the Δ window, enforcing axiom A4Δ).
struct ColumnarSlotContext<'a> {
    store: &'a mut ColumnarStore,
    ring: &'a mut DeliveryRing,
    delta: usize,
    honest_nodes: usize,
    faults: &'a FaultRuntime<'a>,
    slot: usize,
    adversarial_leader: bool,
}

impl SlotContext for ColumnarSlotContext<'_> {
    fn slot(&self) -> usize {
        self.slot
    }

    fn delta(&self) -> usize {
        self.delta
    }

    fn honest_nodes(&self) -> usize {
        self.honest_nodes
    }

    fn adversarial_leader(&self) -> bool {
        self.adversarial_leader
    }

    fn height_of(&self, block: BlockId) -> usize {
        self.store.height(block.index() as u32)
    }

    fn parent_of(&self, block: BlockId) -> Option<BlockId> {
        self.store
            .parent(block.index() as u32)
            .map(|p| BlockId::from_index(p as usize))
    }

    fn mint_adversarial(&mut self, parent: BlockId) -> BlockId {
        let id = self
            .store
            .mint(parent.index() as u32, self.slot, ADVERSARY, false);
        BlockId::from_index(id as usize)
    }

    fn deliver_honest(&mut self, requested_slot: usize, recipient: usize, block: BlockId) {
        self.ring
            .schedule_honest(self.slot, requested_slot, recipient, block.index() as u32);
    }

    fn deliver_adversarial(&mut self, at_slot: usize, recipient: usize, block: BlockId) {
        self.ring
            .schedule_adversarial(self.slot, at_slot, recipient, block.index() as u32);
    }

    fn deliver_honest_to_all(&mut self, requested_slot: usize, block: BlockId) {
        self.ring.schedule_honest_all(
            self.slot,
            requested_slot,
            self.honest_nodes,
            block.index() as u32,
        );
    }

    fn deliver_adversarial_to_all(&mut self, at_slot: usize, block: BlockId) {
        self.ring.schedule_adversarial_all(
            self.slot,
            at_slot,
            self.honest_nodes,
            block.index() as u32,
        );
    }

    fn node_is_live(&self, node: usize) -> bool {
        self.faults.node_is_live(self.slot, node)
    }

    fn node_is_reachable(&self, node: usize) -> bool {
        self.faults.node_is_reachable(self.slot, node)
    }
}

/// A per-slot observer threaded through the columnar engine loop — the
/// attachment point of the streaming fork pipeline
/// ([`crate::pipeline::ForkPipeline`]) and any other consumer that wants
/// the block arena slot by slot instead of post-hoc.
///
/// [`on_slot_end`](SlotHook::on_slot_end) fires once per slot, after the
/// slot's minting, adversarial moves, deliveries and metrics fold: the
/// store contains every block minted up to and including `slot`, and the
/// hook may emit derived observations through the sink (which is why the
/// sink is passed in rather than captured — the engine and the hook share
/// it without a double borrow).
///
/// The trait is generic over the sink so hook implementations can call
/// statically-dispatched sink methods; `()` is the no-op hook every
/// plain entry point uses, costing nothing in the loop.
pub trait SlotHook<S: MetricsSink> {
    /// Observes the end of `slot` (1-based).
    fn on_slot_end(&mut self, slot: usize, store: &ColumnarStore, sink: &mut S);
}

/// The no-op hook: plain runs pay nothing per slot.
impl<S: MetricsSink> SlotHook<S> for () {
    #[inline]
    fn on_slot_end(&mut self, _slot: usize, _store: &ColumnarStore, _sink: &mut S) {}
}

/// The longest-chain rule of one columnar honest node, bit-compatible
/// with the reference `HonestNode::receive`.
#[inline]
fn receive(
    store: &ColumnarStore,
    tie_break: TieBreak,
    known: &mut KnownMatrix,
    node: usize,
    tip: &mut u32,
    block: u32,
) {
    if !known.insert(block, node) {
        return;
    }
    // Receiving a chain means knowing every block on it.
    let mut cur = store.parent(block);
    while let Some(b) = cur {
        if !known.insert(b, node) {
            break;
        }
        cur = store.parent(b);
    }
    let new_height = store.height(block);
    let cur_height = store.height(*tip);
    let adopt = match new_height.cmp(&cur_height) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => match tie_break {
            TieBreak::AdversarialOrder => false, // first seen stays
            TieBreak::Consistent => {
                multihonest_sim::block::tie_hash(block) < multihonest_sim::block::tie_hash(*tip)
            }
        },
    };
    if adopt {
        *tip = block;
    }
}

/// A finished columnar execution with full traces retained — the
/// query-compatible counterpart of the reference `Simulation`, produced
/// by [`ColumnarSimulation::run`]. For runs where no per-slot trace is
/// wanted (the million-slot regime), use
/// [`ColumnarSimulation::run_streaming`].
#[derive(Debug, Clone)]
pub struct ColumnarSimulation {
    config: SimConfig,
    store: ColumnarStore,
    /// Distinct honest tips per slot, flattened; slot `t` (1-based) owns
    /// `tips_flat[tips_end[t − 1] as usize..tips_end[t] as usize]`.
    tips_flat: Vec<u32>,
    tips_end: Vec<u32>,
    rollbacks: Vec<(u32, u32, u32)>,
    divergence: DivergenceIndex,
    metrics: Metrics,
}

impl ColumnarSimulation {
    /// Runs an execution with the given seed, instantiating the
    /// configured built-in strategy — the drop-in columnar counterpart of
    /// `Simulation::run`, with bit-identical traces.
    pub fn run(config: &SimConfig, seed: u64) -> ColumnarSimulation {
        let mut strategy = config.strategy.instantiate();
        ColumnarSimulation::run_with(config, seed, strategy.as_mut())
    }

    /// Runs an execution with an arbitrary [`AdversaryStrategy`].
    pub fn run_with(
        config: &SimConfig,
        seed: u64,
        strategy: &mut dyn AdversaryStrategy,
    ) -> ColumnarSimulation {
        let schedule = ColumnarSchedule::sample(
            config.honest_nodes,
            config.adversarial_stake,
            config.active_slot_coeff,
            config.slots,
            seed,
        );
        ColumnarSimulation::run_with_schedule(config, &schedule, strategy)
    }

    /// Runs an execution over an explicit columnar schedule
    /// (heterogeneous stake profiles sample theirs with
    /// [`ColumnarSchedule::sample_weighted`]) and an arbitrary strategy,
    /// retaining the full tip/rollback traces.
    pub fn run_with_schedule(
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
    ) -> ColumnarSimulation {
        let empty = FaultPlan::default();
        ColumnarSimulation::run_with_schedule_faults(config, schedule, strategy, &empty).0
    }

    /// Runs a trace-retaining execution under a [`FaultPlan`]: crashed
    /// nodes skip their leadership slots and every due delivery passes
    /// through the plan's predicate, exactly as in the reference engine's
    /// `run_with_schedule_faults` — faulty executions stay
    /// trace-identical across engines. The empty plan is bit-identical to
    /// [`ColumnarSimulation::run_with_schedule`]. Returns the execution
    /// together with its [`DegradationLedger`].
    pub fn run_with_schedule_faults(
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
        plan: &FaultPlan,
    ) -> (ColumnarSimulation, DegradationLedger) {
        ColumnarSimulation::run_with_schedule_faults_recorded(
            config,
            schedule,
            strategy,
            plan,
            &mut (),
            &mut (),
        )
    }

    /// The fully-instrumented trace-retaining entry point: identical to
    /// [`run_with_schedule_faults`](Self::run_with_schedule_faults) with
    /// a [`MetricsSink`] and an obs [`Recorder`] attached. The recorder
    /// only observes (spans, laps, registry updates), so an instrumented
    /// run reproduces the plain run's fingerprints bit-for-bit — the
    /// bit-identity law `tests/observability.rs` pins. Sink and recorder
    /// are separate generic parameters so callers can pass an obs-backed
    /// sink and a recorder without a double borrow.
    pub fn run_with_schedule_faults_recorded<S: MetricsSink, R: Recorder>(
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
        plan: &FaultPlan,
        sink: &mut S,
        rec: &mut R,
    ) -> (ColumnarSimulation, DegradationLedger) {
        let mut arena = ExecutionArena::new();
        let mut faults = FaultRuntime::new(plan, config.honest_nodes, config.slots);
        rec.span_begin("scenario.execute");
        let out = execute(
            &mut arena,
            config,
            schedule,
            strategy,
            true,
            sink,
            &mut (),
            &mut faults,
            rec,
        );
        rec.span_end("scenario.execute");
        (
            ColumnarSimulation {
                config: *config,
                store: arena.store,
                tips_flat: out.tips_flat,
                tips_end: out.tips_end,
                rollbacks: out.rollbacks,
                divergence: out.divergence,
                metrics: out.metrics,
            },
            faults.finish(),
        )
    }

    /// Runs a **streaming** execution: no per-slot traces are retained —
    /// constant-size working state beyond the block arena and the
    /// `O(slots)` divergence index — and every per-slot observation is
    /// forwarded to `sink`. Returns the end-of-run metrics and the
    /// settlement index.
    pub fn run_streaming<S: MetricsSink>(
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
        sink: &mut S,
    ) -> (Metrics, DivergenceIndex) {
        let mut arena = ExecutionArena::new();
        ColumnarSimulation::run_streaming_in(&mut arena, config, schedule, strategy, sink)
    }

    /// The **batch** entry point: a streaming execution that reuses the
    /// caller's [`ExecutionArena`] instead of allocating block/delivery
    /// arenas afresh — trace-identical to [`run_streaming`], amortizing
    /// heap traffic to zero across a campaign of seeds. This is the
    /// kernel campaign sweeps drive once per trial.
    ///
    /// [`run_streaming`]: ColumnarSimulation::run_streaming
    pub fn run_streaming_in<S: MetricsSink>(
        arena: &mut ExecutionArena,
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
        sink: &mut S,
    ) -> (Metrics, DivergenceIndex) {
        let empty = FaultPlan::default();
        let (metrics, divergence, _) = ColumnarSimulation::run_streaming_faults_in(
            arena, config, schedule, strategy, &empty, sink,
        );
        (metrics, divergence)
    }

    /// A streaming execution under a [`FaultPlan`] — the fault-aware
    /// sibling of [`ColumnarSimulation::run_streaming`]. Deferral events
    /// reach the sink through
    /// [`MetricsSink::on_fault_deferral`].
    pub fn run_streaming_faults<S: MetricsSink>(
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
        plan: &FaultPlan,
        sink: &mut S,
    ) -> (Metrics, DivergenceIndex, DegradationLedger) {
        let mut arena = ExecutionArena::new();
        ColumnarSimulation::run_streaming_faults_in(
            &mut arena, config, schedule, strategy, plan, sink,
        )
    }

    /// The batch fault-aware entry point: a streaming faulty execution
    /// over a reused [`ExecutionArena`] — what the campaign sweep drives
    /// when its fault axis is non-empty.
    pub fn run_streaming_faults_in<S: MetricsSink>(
        arena: &mut ExecutionArena,
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
        plan: &FaultPlan,
        sink: &mut S,
    ) -> (Metrics, DivergenceIndex, DegradationLedger) {
        let mut faults = FaultRuntime::new(plan, config.honest_nodes, config.slots);
        let out = execute(
            arena,
            config,
            schedule,
            strategy,
            false,
            sink,
            &mut (),
            &mut faults,
            &mut (),
        );
        (out.metrics, out.divergence, faults.finish())
    }

    /// A streaming execution with an obs [`Recorder`] attached: identical
    /// traces to [`run_streaming_in`](Self::run_streaming_in), with the
    /// kernel charging wall-clock laps under [`Phase::label`] names at
    /// every phase boundary — the engine behind `scenario bench-report
    /// --profile`. Plain entry points thread the no-op `()` recorder
    /// through the same generic parameter and pay nothing.
    pub fn run_streaming_profiled<S: MetricsSink, P: Recorder>(
        arena: &mut ExecutionArena,
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
        sink: &mut S,
        prof: &mut P,
    ) -> (Metrics, DivergenceIndex) {
        let empty = FaultPlan::default();
        let mut faults = FaultRuntime::new(&empty, config.honest_nodes, config.slots);
        let out = execute(
            arena,
            config,
            schedule,
            strategy,
            false,
            sink,
            &mut (),
            &mut faults,
            prof,
        );
        (out.metrics, out.divergence)
    }

    /// A streaming execution with a [`SlotHook`] attached: identical to
    /// [`run_streaming_faults_in`](Self::run_streaming_faults_in) except
    /// that `hook` observes the block arena at the end of every slot —
    /// the entry point of the streaming fork pipeline (see
    /// [`crate::pipeline`]). The hook cannot perturb the execution (it
    /// sees the store read-only), so a hooked run stays trace-identical
    /// to its unhooked sibling.
    pub fn run_streaming_hooked<S: MetricsSink, H: SlotHook<S>>(
        arena: &mut ExecutionArena,
        config: &SimConfig,
        schedule: &ColumnarSchedule,
        strategy: &mut dyn AdversaryStrategy,
        plan: &FaultPlan,
        sink: &mut S,
        hook: &mut H,
    ) -> (Metrics, DivergenceIndex, DegradationLedger) {
        let mut faults = FaultRuntime::new(plan, config.honest_nodes, config.slots);
        let out = execute(
            arena,
            config,
            schedule,
            strategy,
            false,
            sink,
            hook,
            &mut faults,
            &mut (),
        );
        (out.metrics, out.divergence, faults.finish())
    }

    /// The configuration used.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The SoA block arena.
    pub fn store(&self) -> &ColumnarStore {
        &self.store
    }

    /// Execution metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Distinct honest tips at the end of `slot` (1-based; slot 0 reports
    /// none), matching the reference `Simulation::tips_at`.
    pub fn tips_at(&self, slot: usize) -> &[u32] {
        if slot == 0 {
            return &[];
        }
        &self.tips_flat[self.tips_end[slot - 1] as usize..self.tips_end[slot] as usize]
    }

    /// All recorded rollbacks: `(slot, previous tip, new tip)`.
    pub fn rollbacks(&self) -> &[(u32, u32, u32)] {
        &self.rollbacks
    }

    /// The execution's settlement index.
    pub fn divergence_index(&self) -> &DivergenceIndex {
        &self.divergence
    }

    /// Whether the execution exhibits a `(slot, k)`-settlement violation
    /// (paper Definition 3, observed) — `O(1)`.
    pub fn settlement_violation(&self, slot: usize, k: usize) -> bool {
        self.divergence.violates(slot, k)
    }

    /// The full settlement sweep at parameter `k`; `O(slots)`.
    pub fn settlement_violations(&self, k: usize) -> Vec<bool> {
        self.divergence.violations(k)
    }

    /// Number of violating anchors `s ≤ upto` at parameter `k`.
    pub fn count_violating_slots(&self, k: usize, upto: usize) -> usize {
        self.divergence.count_violations(k, upto)
    }

    /// The smallest violating anchor at parameter `k`, if any.
    pub fn first_violating_slot(&self, k: usize) -> Option<usize> {
        self.divergence.first_violation(k)
    }
}

/// Reusable working state for batch execution: the block store, delivery
/// ring, per-node views and per-slot scratch buffers of one execution,
/// reset in place between seeds. One arena per worker thread turns a
/// campaign of millions of executions into zero steady-state allocation —
/// see [`ColumnarSimulation::run_streaming_in`].
#[derive(Debug)]
pub struct ExecutionArena {
    pub(crate) store: ColumnarStore,
    pub(crate) ring: DeliveryRing,
    pub(crate) tips: Vec<u32>,
    pub(crate) known: KnownMatrix,
    pub(crate) minted: Vec<BlockId>,
    pub(crate) before: Vec<u32>,
    pub(crate) due: Vec<(u32, u32)>,
    pub(crate) uniq: Vec<u32>,
}

impl Default for ExecutionArena {
    fn default() -> ExecutionArena {
        ExecutionArena::new()
    }
}

impl ExecutionArena {
    /// An empty arena; the first execution sizes it, later ones reuse it.
    pub fn new() -> ExecutionArena {
        ExecutionArena {
            store: ColumnarStore::new(),
            ring: DeliveryRing::new(0, 0, 0),
            tips: Vec::new(),
            known: KnownMatrix::default(),
            minted: Vec::new(),
            before: Vec::new(),
            due: Vec::new(),
            uniq: Vec::new(),
        }
    }

    /// Resets every component for a fresh execution, keeping allocations.
    pub(crate) fn reset(&mut self, config: &SimConfig, lookahead: usize, expected_blocks: usize) {
        let n = config.honest_nodes;
        self.store.reset();
        self.store.reserve(expected_blocks);
        self.ring.reset(config.delta, lookahead, config.slots);
        self.tips.clear();
        self.tips.resize(n, 0);
        self.known.reset(n);
        self.minted.clear();
        self.before.clear();
        self.before.resize(n, 0);
        self.due.clear();
        self.uniq.clear();
        self.uniq.reserve(n);
        self.debug_audit(n);
    }

    /// Compacts the arena around the **unanimous tip** `root`: the store
    /// resets to a single root block carrying the tip's absolute slot,
    /// height, issuer and honesty (so minting and height accounting
    /// continue seamlessly above it), the known-matrix re-seeds with the
    /// root known to everyone (true of a unanimous tip by definition),
    /// and every node's view plus the cached `uniq` scratch move to the
    /// root's new id 0. The horizon driver calls this at fully settled
    /// points; the required preconditions — all tips equal `root`, the
    /// delivery ring idle — are debug-asserted.
    pub(crate) fn compact_to_root(&mut self, n: usize, root: u32) {
        debug_assert!(
            self.tips.iter().all(|&t| t == root),
            "compaction requires a unanimous tip"
        );
        debug_assert!(self.ring.is_idle(), "compaction requires an idle ring");
        let (slot, height) = (self.store.slot(root), self.store.height(root));
        let (issuer, honest) = (self.store.issuer(root), self.store.is_honest(root));
        self.store.reset_to_root(slot, height, issuer, honest);
        self.known.reset(n);
        self.tips.fill(0);
        self.uniq.clear();
        self.uniq.push(0);
    }

    /// Debug-asserts that every column and ring buffer is length-reset —
    /// no stale tail state from a previous (possibly longer) execution
    /// can leak into this one. Compiled out of release builds.
    pub(crate) fn debug_audit(&self, n: usize) {
        debug_assert_eq!(self.store.len(), 1, "store must hold only genesis");
        debug_assert!(self.ring.is_idle(), "ring buckets must be drained");
        debug_assert_eq!(self.tips.len(), n, "one tip per honest node");
        debug_assert!(self.tips.iter().all(|&t| t == 0), "tips must be genesis");
        debug_assert_eq!(
            self.known.words.len(),
            self.known.words_per_block,
            "known matrix must cover exactly genesis"
        );
        debug_assert!(self.minted.is_empty(), "minted scratch must be empty");
        debug_assert_eq!(self.before.len(), n, "one before-tip per node");
        debug_assert!(self.due.is_empty(), "due scratch must be empty");
        debug_assert!(self.uniq.is_empty(), "uniq scratch must be empty");
    }
}

/// The per-run outputs of [`execute`] (the block store stays in the
/// arena; trace columns are empty in streaming mode).
struct ExecOutput {
    tips_flat: Vec<u32>,
    tips_end: Vec<u32>,
    rollbacks: Vec<(u32, u32, u32)>,
    divergence: DivergenceIndex,
    metrics: Metrics,
}

/// The cross-segment mutable state of one execution that is **not** the
/// arena: the online divergence fold, the metrics accumulator, the
/// rollback record, the trace columns of trace-retaining mode, and the
/// cached end-of-slot observation the quiet path replays. [`execute`]
/// owns one per run; the horizon driver keeps one alive across segments
/// and compacts its fold at settled points.
pub(crate) struct EngineCore {
    pub(crate) fold: DivergenceFold,
    pub(crate) acc: MetricsAccumulator,
    pub(crate) rollbacks: Vec<(u32, u32, u32)>,
    pub(crate) tips_flat: Vec<u32>,
    pub(crate) tips_end: Vec<u32>,
    /// Distinct-tip count of the cached end-of-slot observation.
    pub(crate) cached_tips: usize,
    /// Best height of the cached observation.
    pub(crate) cached_height: usize,
    /// Slot divergence of the cached observation.
    pub(crate) cached_div: usize,
    /// The unanimous tip block behind `cached_tips == 1` — what the
    /// single-mint fold fast case forks from.
    pub(crate) cached_tip_block: u32,
}

impl EngineCore {
    /// State for a fresh full-horizon execution: a fold over `1..=slots`
    /// and every cache at its slot-0 value (all nodes on genesis).
    pub(crate) fn new(slots: usize, keep_trace: bool) -> EngineCore {
        EngineCore::with_fold(DivergenceFold::new(slots), keep_trace, slots)
    }

    /// State over a caller-built fold (the horizon driver passes a
    /// windowed one).
    pub(crate) fn with_fold(fold: DivergenceFold, keep_trace: bool, slots: usize) -> EngineCore {
        let mut tips_end = Vec::with_capacity(if keep_trace { slots + 1 } else { 1 });
        tips_end.push(0);
        EngineCore {
            fold,
            acc: MetricsAccumulator::new(),
            rollbacks: Vec::new(),
            tips_flat: Vec::new(),
            tips_end,
            cached_tips: 1,
            cached_height: 0,
            cached_div: 0,
            cached_tip_block: 0,
        }
    }
}

// Private fan-in of every public entry point: each parameter is one
// caller-facing knob, and bundling them into a struct would only move
// the argument list one call up.
#[allow(clippy::too_many_arguments)]
fn execute<S: MetricsSink, H: SlotHook<S>, P: Recorder>(
    arena: &mut ExecutionArena,
    config: &SimConfig,
    schedule: &ColumnarSchedule,
    strategy: &mut dyn AdversaryStrategy,
    keep_trace: bool,
    sink: &mut S,
    hook: &mut H,
    faults: &mut FaultRuntime<'_>,
    prof: &mut P,
) -> ExecOutput {
    assert_eq!(
        schedule.len(),
        config.slots,
        "schedule must cover the configured horizon"
    );
    // Expected blocks ≈ one per leader flag; reserve with headroom.
    let expected = schedule.active_slots() + schedule.len() / 8 + 16;
    arena.reset(config, strategy.lookahead(config.delta), expected);
    // The cached end-of-slot observation the quiet path replays: at slot
    // 0 every node sits on genesis — one distinct tip, height 0, no
    // divergence — and `uniq` mirrors it for the trace writer.
    arena.uniq.push(0);
    let mut core = EngineCore::new(config.slots, keep_trace);
    run_slots(
        arena,
        &mut core,
        config,
        schedule,
        0,
        1,
        config.slots,
        strategy,
        keep_trace,
        sink,
        hook,
        faults,
        prof,
    );
    finish_full(arena, core, schedule)
}

/// The engine loop shared by the trace-retaining and streaming modes.
///
/// The loop is a **two-path slot kernel**. A slot is *quiet* when its
/// honest mint list and (post-fault) due-delivery list are both empty:
/// honest tips can only move through [`receive`], which is called
/// exactly from those two places, so on a quiet slot every tip — and
/// therefore the distinct-tip set, best height, slot divergence and
/// rollback record — is provably unchanged from the previous slot. The
/// quiet path replays the cached fold observation in O(1) and skips the
/// before-copy, the rollback scan, the uniq sort and the pairwise LCA
/// loop entirely. Under sparse leader schedules (`f` well below 1) the
/// quiet path covers the majority of slots, which is where the columnar
/// engine's throughput comes from; the busy path additionally
/// fast-cases the unanimous-tip slot (all nodes agree: no sort, no
/// pairwise walk). Both paths feed the same sinks in the same order, so
/// the split is invisible to every observer — bit-identical traces,
/// metrics, fold state and hook observations.
///
/// `run_slots` executes slots `first_slot..=last_slot` of an execution
/// whose mutable state lives in `arena` + `core`, making the loop
/// **re-enterable**: [`execute`] calls it once over the full horizon,
/// while the segmented horizon driver calls it per schedule segment with
/// compaction in between. `schedule` covers the absolute slots
/// `(sched_base, sched_base + schedule.len()]`; slot numbers stay
/// absolute throughout (strategies, the ring, the fold and every sink
/// see the global slot clock), so a segmented run is
/// observation-identical to a monolithic one.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_slots<S: MetricsSink, H: SlotHook<S>, P: Recorder>(
    arena: &mut ExecutionArena,
    core: &mut EngineCore,
    config: &SimConfig,
    schedule: &ColumnarSchedule,
    sched_base: usize,
    first_slot: usize,
    last_slot: usize,
    strategy: &mut dyn AdversaryStrategy,
    keep_trace: bool,
    sink: &mut S,
    hook: &mut H,
    faults: &mut FaultRuntime<'_>,
    prof: &mut P,
) {
    let n = config.honest_nodes;
    assert!(n > 0, "need at least one honest node");
    let ExecutionArena {
        store,
        ring,
        tips,
        known,
        minted,
        before,
        due,
        uniq,
    } = arena;
    let EngineCore {
        fold,
        acc,
        rollbacks,
        tips_flat,
        tips_end,
        cached_tips,
        cached_height,
        cached_div,
        cached_tip_block,
    } = core;
    let have_faults = !faults.is_empty();
    // A passive strategy on a leaderless slot provably does nothing, so
    // such a slot with an empty delivery bucket needs no context, no
    // strategy dispatch and no drain at all — the short-circuit below.
    // Fault plans act every slot (deferred re-injection), so they opt
    // the execution out of the short-circuit wholesale.
    let passive = !have_faults && strategy.passive_without_leaders();

    for slot in first_slot..=last_slot {
        prof.lap_start();
        // 1. Honest leaders mint on their current tips and adopt their
        //    own block at mint time (no rushed same-height injection can
        //    win the first-seen tie against a minter).
        let leaders = schedule.leaders(slot - sched_base);
        if passive
            && leaders.is_empty()
            && !schedule.adversarial(slot - sched_base)
            && ring.bucket_is_empty(slot)
        {
            // Fully quiet slot: nothing minted, nothing due, strategy
            // provably inert — replay the cached observation and move on.
            fold.observe_tips_unchanged(slot);
            TeeSink {
                a: &mut *acc,
                b: &mut *sink,
            }
            .on_slot(slot, *cached_tips, *cached_height, *cached_div);
            if keep_trace {
                tips_flat.extend_from_slice(uniq);
                tips_end.push(tips_flat.len() as u32);
            }
            prof.lap(Phase::Fold.label());
            hook.on_slot_end(slot, store, sink);
            prof.lap(Phase::Hook.label());
            continue;
        }
        minted.clear();
        if !leaders.is_empty() {
            for &leader in leaders {
                let l = leader as usize;
                if have_faults && !faults.can_mint(slot, l) {
                    continue;
                }
                // Mint-time adoption, specialised: the fresh block's
                // parent is the minter's own (known) tip and its height
                // strictly exceeds it, so `receive` reduces to one
                // known-bit insert and the tip store.
                let b = store.mint(tips[l], slot, leader, true);
                let fresh = known.insert(b, l);
                debug_assert!(fresh, "a minted block is new to its minter");
                tips[l] = b;
                minted.push(BlockId::from_index(b as usize));
            }
            prof.lap(Phase::Mint.label());
        }
        // 2. The rushing adversary observes the minted blocks and acts —
        //    through the same trait the reference engine drives.
        let mut ctx = ColumnarSlotContext {
            store: &mut *store,
            ring: &mut *ring,
            delta: config.delta,
            honest_nodes: n,
            faults: &*faults,
            slot,
            adversarial_leader: schedule.adversarial(slot - sched_base),
        };
        strategy.on_slot(&mut ctx, minted);
        prof.lap(Phase::Strategy.label());
        // 3. Drain this slot's deliveries — filtered through the fault
        //    plan when one is active (which may also re-inject previously
        //    deferred deliveries, so the plan runs even on empty drains).
        ring.drain_into(slot, due);
        if have_faults {
            let mut tee = TeeSink {
                a: &mut *acc,
                b: &mut *sink,
            };
            faults.apply(
                slot,
                due,
                |b| DeliveryMeta {
                    src: store.issuer(b) as usize,
                    honest: store.is_honest(b),
                    broadcast_slot: store.slot(b),
                },
                &mut tee,
            );
        }
        prof.lap(Phase::Drain.label());
        let quiet = due.is_empty() && minted.is_empty();
        if quiet {
            // Quiet slot: no receive() ran, so every tip is unchanged.
            // Replay the cached observation and keep the fold's run open.
            fold.observe_tips_unchanged(slot);
            TeeSink {
                a: &mut *acc,
                b: &mut *sink,
            }
            .on_slot(slot, *cached_tips, *cached_height, *cached_div);
            if keep_trace {
                tips_flat.extend_from_slice(uniq);
                tips_end.push(tips_flat.len() as u32);
            }
            prof.lap(Phase::Fold.label());
            hook.on_slot_end(slot, store, sink);
            prof.lap(Phase::Hook.label());
            continue;
        }
        // 4. Apply due deliveries in scheduled order, recording chain
        //    rollbacks (only deliveries can cause them: minting extends
        //    the minter's own chain).
        //
        // `collapsed` records the broadcast-collapse fast path: a
        // broadcast of `b` onto the distinct tip set `{parent(b), b}`
        // provably leaves every node unanimous on `b` with no rollbacks,
        // so both the per-node merge and the fold are replaced by
        // structural updates.
        let mut collapsed = None;
        if !due.is_empty() {
            let b = due[0].1;
            // Broadcast fast path: the dominant due-list shape is one
            // block reaching every node in ascending recipient order
            // (what the batched `deliver_*_to_all` scheduling produces).
            // With a single delivered block, per-node receives are
            // independent, so apply + rollback-check fuse into one pass:
            // a node sitting on the block's parent extends its chain —
            // one known-bit and the tip store, no heights, no ancestry —
            // and only cross-branch nodes take the general `receive`.
            let broadcast = due.len() == n
                && due
                    .iter()
                    .enumerate()
                    .all(|(i, &(r, blk))| r as usize == i && blk == b);
            if broadcast {
                let pb = store.parent(b).expect("a delivered block is never genesis");
                // Collapse fast path: when the previous distinct tips are
                // exactly `{pb, b}` and no new block was minted this slot,
                // every node either sits on `pb` (and adopts the strictly
                // taller child `b` — the direct extension above, no
                // heights, no rollback) or already sits on `b` (the
                // minter; a receive would dedup out). The whole merge is
                // one word-at-a-time known-row fill and a tip fill, and
                // the resulting views are unanimous on `b`.
                if minted.is_empty() && (*cached_tips) == 2 && uniq[0] == pb && uniq[1] == b {
                    known.insert_all(b, n);
                    tips.fill(b);
                    collapsed = Some(b);
                } else {
                    for (r, tip) in tips.iter_mut().enumerate() {
                        let old = *tip;
                        if old == pb {
                            // Direct extension: the parent is the node's own
                            // (known) tip, the child strictly taller — adopt.
                            known.insert(b, r);
                            *tip = b;
                            continue;
                        }
                        if old == b {
                            continue; // the minter; a receive would dedup out
                        }
                        receive(store, config.tie_break, known, r, tip, b);
                        let new = *tip;
                        if new != old
                            && store.parent(new) != Some(old)
                            && !store.is_ancestor(old, new)
                        {
                            if keep_trace {
                                rollbacks.push((slot as u32, old, new));
                            }
                            fold.observe_rollback(store, slot, old, new);
                            TeeSink {
                                a: &mut *acc,
                                b: &mut *sink,
                            }
                            .on_rollback(
                                slot,
                                store.height(old),
                                store.height(new),
                            );
                        }
                    }
                }
            } else {
                before.copy_from_slice(tips);
                for &(recipient, block) in due.iter() {
                    let r = recipient as usize;
                    receive(store, config.tie_break, known, r, &mut tips[r], block);
                }
                for i in 0..n {
                    let (old, new) = (before[i], tips[i]);
                    // Adoption only ever raises height, and the dominant
                    // case is adopting a direct child of the old tip — one
                    // parent load rules the rollback out before any
                    // ancestry descent.
                    if new != old && store.parent(new) != Some(old) && !store.is_ancestor(old, new)
                    {
                        if keep_trace {
                            rollbacks.push((slot as u32, old, new));
                        }
                        fold.observe_rollback(store, slot, old, new);
                        TeeSink {
                            a: &mut *acc,
                            b: &mut *sink,
                        }
                        .on_rollback(
                            slot,
                            store.height(old),
                            store.height(new),
                        );
                    }
                }
            }
        }
        if config.tie_break == TieBreak::AdversarialOrder {
            for &b in minted.iter() {
                let leader = store.issuer(b.index() as u32) as usize;
                let tip = tips[leader];
                debug_assert!(
                    tip == b.index() as u32 || store.height(tip) > store.height(b.index() as u32),
                    "leader {leader} lost its own slot-{slot} block to an equal-height tie"
                );
            }
        }
        prof.lap(Phase::Merge.label());
        // 5. Fold the distinct honest views.
        //
        // Broadcast-collapse fast case: the merge above proved the views
        // unanimous on `nb` structurally. The best height is unchanged
        // (it was already `height(nb)`, the taller of `{parent, nb}`),
        // the slot divergence of a unanimous set is zero, and the fold
        // sees the (cheap) single-tip set.
        if let Some(nb) = collapsed {
            uniq.clear();
            uniq.push(nb);
            (*cached_tips) = 1;
            (*cached_tip_block) = nb;
            (*cached_div) = 0;
            debug_assert_eq!((*cached_height), store.height(nb));
            fold.observe_tips(store, slot, uniq);
            TeeSink {
                a: &mut *acc,
                b: &mut *sink,
            }
            .on_slot(slot, 1, *cached_height, 0);
            if keep_trace {
                tips_flat.extend_from_slice(uniq);
                tips_end.push(tips_flat.len() as u32);
            }
            prof.lap(Phase::Fold.label());
            hook.on_slot_end(slot, store, sink);
            prof.lap(Phase::Hook.label());
            continue;
        }
        // Single-mint fast case first: one fresh honest block on the
        // previous slot's unanimous tip (no deliveries) splits the views
        // into exactly `{parent, child}` — already id-sorted, meeting at
        // the parent, zero slot divergence, best height one up. Every
        // fold quantity is structural; no sort, no LCA, no chain walk.
        if due.is_empty() && minted.len() == 1 && (*cached_tips) == 1 && n > 1 {
            let child = minted[0].index() as u32;
            let parent = *cached_tip_block;
            debug_assert_eq!(store.parent(child), Some(parent));
            uniq.clear();
            uniq.push(parent);
            uniq.push(child);
            (*cached_tips) = 2;
            (*cached_height) += 1;
            (*cached_div) = 0;
            fold.observe_fresh_child(slot, parent, child, slot);
            TeeSink {
                a: &mut *acc,
                b: &mut *sink,
            }
            .on_slot(slot, 2, *cached_height, 0);
            if keep_trace {
                tips_flat.extend_from_slice(uniq);
                tips_end.push(tips_flat.len() as u32);
            }
            prof.lap(Phase::Fold.label());
            hook.on_slot_end(slot, store, sink);
            prof.lap(Phase::Hook.label());
            continue;
        }
        // The unanimous case (every node on one tip — the common case
        // between forks) needs no sort and no pairwise divergence walk.
        let first = tips[0];
        uniq.clear();
        let mut div = 0usize;
        let mut best_height = 0usize;
        if tips.iter().all(|&t| t == first) {
            uniq.push(first);
            (*cached_tip_block) = first;
            best_height = store.height(first);
        } else {
            uniq.extend_from_slice(tips);
            uniq.sort_unstable();
            uniq.dedup();
            for (i, &a) in uniq.iter().enumerate() {
                best_height = best_height.max(store.height(a));
                for &b in &uniq[i + 1..] {
                    let lca = store.last_common_block(a, b);
                    let first = store.slot(a).min(store.slot(b));
                    div = div.max(first.saturating_sub(store.slot(lca)));
                }
            }
        }
        fold.observe_tips(store, slot, uniq);
        (*cached_tips) = uniq.len();
        (*cached_height) = best_height;
        (*cached_div) = div;
        TeeSink {
            a: &mut *acc,
            b: &mut *sink,
        }
        .on_slot(slot, uniq.len(), best_height, div);
        if keep_trace {
            tips_flat.extend_from_slice(uniq);
            tips_end.push(tips_flat.len() as u32);
        }
        prof.lap(Phase::Fold.label());
        hook.on_slot_end(slot, store, sink);
        prof.lap(Phase::Hook.label());
    }
}

/// Folds the end-of-run state of a **full** (unsegmented) execution into
/// its output: best-tip chain walk down to genesis plus the fold's final
/// index. The horizon driver has its own finish (evicted-prefix counters
/// plus a windowed fold drain).
fn finish_full(
    arena: &mut ExecutionArena,
    core: EngineCore,
    schedule: &ColumnarSchedule,
) -> ExecOutput {
    let EngineCore {
        fold,
        acc,
        rollbacks,
        tips_flat,
        tips_end,
        ..
    } = core;
    let store = &arena.store;
    let tips = &arena.tips;
    // Best tip over node views, later nodes winning height
    // ties (matching the reference's `max_by_key`).
    let mut best_tip = tips[0];
    for &t in tips.iter() {
        if store.height(t) >= store.height(best_tip) {
            best_tip = t;
        }
    }
    let mut chain_blocks = 0usize;
    let mut honest_chain_blocks = 0usize;
    let mut cur = best_tip;
    while let Some(p) = store.parent(cur) {
        chain_blocks += 1;
        honest_chain_blocks += usize::from(store.is_honest(cur));
        cur = p;
    }
    let divergence = fold.finish();
    let metrics = acc.finish(
        schedule.active_slots(),
        store.height(best_tip),
        chain_blocks,
        honest_chain_blocks,
        divergence.max_settlement_lag(),
    );
    ExecOutput {
        tips_flat,
        tips_end,
        rollbacks,
        divergence,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_sim::{FaultDirective, Simulation, Strategy};

    fn cfg(strategy: Strategy, delta: usize, slots: usize) -> SimConfig {
        SimConfig {
            honest_nodes: 6,
            adversarial_stake: 0.3,
            active_slot_coeff: 0.3,
            delta,
            slots,
            tie_break: TieBreak::AdversarialOrder,
            strategy,
        }
    }

    /// Asserts a columnar run is trace-identical to the reference engine.
    fn assert_matches_reference(config: &SimConfig, seed: u64) {
        let cols = ColumnarSimulation::run(config, seed);
        let refr = Simulation::run(config, seed);
        for t in 0..=config.slots {
            let expect: Vec<u32> = refr.tips_at(t).iter().map(|b| b.index() as u32).collect();
            assert_eq!(cols.tips_at(t), expect.as_slice(), "tips at slot {t}");
        }
        let expect_rb: Vec<(u32, u32, u32)> = refr
            .rollbacks()
            .iter()
            .map(|&(t, o, n)| (t as u32, o.index() as u32, n.index() as u32))
            .collect();
        assert_eq!(cols.rollbacks(), expect_rb.as_slice(), "rollbacks");
        assert_eq!(cols.metrics(), refr.metrics(), "metrics");
        assert_eq!(cols.divergence_index(), refr.divergence_index(), "index");
        for k in [0usize, 1, 5, 20] {
            assert_eq!(
                cols.settlement_violations(k),
                refr.settlement_violations(k),
                "violations at k = {k}"
            );
        }
    }

    #[test]
    fn matches_reference_on_all_builtin_strategies() {
        for strategy in Strategy::ALL {
            for delta in [0usize, 2] {
                assert_matches_reference(&cfg(strategy, delta, 300), 11);
            }
        }
    }

    #[test]
    fn streaming_mode_matches_trace_mode() {
        let config = cfg(Strategy::PrivateWithholding, 2, 500);
        let schedule = ColumnarSchedule::sample(
            config.honest_nodes,
            config.adversarial_stake,
            config.active_slot_coeff,
            config.slots,
            3,
        );
        let mut s1 = config.strategy.instantiate();
        let traced = ColumnarSimulation::run_with_schedule(&config, &schedule, s1.as_mut());
        let mut s2 = config.strategy.instantiate();
        let mut acc = MetricsAccumulator::new();
        let (metrics, index) =
            ColumnarSimulation::run_streaming(&config, &schedule, s2.as_mut(), &mut acc);
        assert_eq!(&metrics, traced.metrics());
        assert_eq!(&index, traced.divergence_index());
        assert_eq!(acc.max_slot_divergence(), metrics.max_slot_divergence);
    }

    #[test]
    fn arena_reuse_matches_fresh_runs() {
        // One arena driven across runs with different seeds, strategies,
        // Δs and node counts (the shape of a campaign cell sweep) must
        // reproduce each fresh streaming run exactly.
        let mut arena = ExecutionArena::new();
        for (seed, strategy, delta, nodes) in [
            (1u64, Strategy::PrivateWithholding, 2usize, 6usize),
            (2, Strategy::BalanceAttack, 0, 6),
            (3, Strategy::Honest, 4, 3),
            (4, Strategy::PrivateWithholding, 1, 9),
        ] {
            let mut config = cfg(strategy, delta, 350);
            config.honest_nodes = nodes;
            let schedule = ColumnarSchedule::sample(
                config.honest_nodes,
                config.adversarial_stake,
                config.active_slot_coeff,
                config.slots,
                seed,
            );
            let mut s1 = strategy.instantiate();
            let fresh = ColumnarSimulation::run_streaming(&config, &schedule, s1.as_mut(), &mut ());
            let mut s2 = strategy.instantiate();
            let reused = ColumnarSimulation::run_streaming_in(
                &mut arena,
                &config,
                &schedule,
                s2.as_mut(),
                &mut (),
            );
            assert_eq!(fresh.0, reused.0, "metrics diverged at seed {seed}");
            assert_eq!(fresh.1, reused.1, "index diverged at seed {seed}");
        }
    }

    /// Asserts a *faulty* columnar run is trace-identical to the
    /// reference engine under the same plan — including the degradation
    /// ledgers.
    fn assert_faulty_matches_reference(config: &SimConfig, plan: &FaultPlan, seed: u64) {
        let cs = ColumnarSchedule::sample(
            config.honest_nodes,
            config.adversarial_stake,
            config.active_slot_coeff,
            config.slots,
            seed,
        );
        let rs = multihonest_sim::LeaderSchedule::sample(
            config.honest_nodes,
            config.adversarial_stake,
            config.active_slot_coeff,
            config.slots,
            seed,
        );
        let mut s1 = config.strategy.instantiate();
        let (cols, cl) =
            ColumnarSimulation::run_with_schedule_faults(config, &cs, s1.as_mut(), plan);
        let mut s2 = config.strategy.instantiate();
        let (refr, rl) = Simulation::run_with_schedule_faults(config, rs, s2.as_mut(), plan);
        for t in 0..=config.slots {
            let expect: Vec<u32> = refr.tips_at(t).iter().map(|b| b.index() as u32).collect();
            assert_eq!(cols.tips_at(t), expect.as_slice(), "tips at slot {t}");
        }
        let expect_rb: Vec<(u32, u32, u32)> = refr
            .rollbacks()
            .iter()
            .map(|&(t, o, n)| (t as u32, o.index() as u32, n.index() as u32))
            .collect();
        assert_eq!(cols.rollbacks(), expect_rb.as_slice(), "rollbacks");
        assert_eq!(cols.metrics(), refr.metrics(), "metrics");
        assert_eq!(cols.divergence_index(), refr.divergence_index(), "index");
        assert_eq!(cl, rl, "degradation ledgers");
    }

    #[test]
    fn faulty_runs_match_reference_on_all_builtin_strategies() {
        let plan = FaultPlan::new()
            .with(FaultDirective::Partition {
                groups: vec![vec![0, 1, 2], vec![3, 4, 5]],
                start: 40,
                heal_slot: 44,
            })
            .with(FaultDirective::Eclipse {
                node: 2,
                start: 90,
                until: 95,
            })
            .with(FaultDirective::Crash {
                node: 5,
                at: 150,
                recover_slot: 156,
            })
            .with(FaultDirective::MessageLoss {
                p: 0.5,
                salt: 0xFA11,
                start: 200,
                until: 205,
            });
        for strategy in Strategy::ALL {
            for delta in [0usize, 2] {
                assert_faulty_matches_reference(&cfg(strategy, delta, 300), &plan, 13);
            }
        }
    }

    #[test]
    fn never_recovering_crash_matches_reference() {
        let plan = FaultPlan::new().with(FaultDirective::Crash {
            node: 0,
            at: 50,
            recover_slot: usize::MAX,
        });
        assert_faulty_matches_reference(&cfg(Strategy::PrivateWithholding, 2, 250), &plan, 5);
    }

    #[test]
    fn streaming_faulty_mode_matches_traced_faulty_mode() {
        let config = cfg(Strategy::PrivateWithholding, 2, 400);
        let plan = FaultPlan::new().with(FaultDirective::Partition {
            groups: vec![vec![0, 1, 2], vec![3, 4, 5]],
            start: 60,
            heal_slot: 66,
        });
        let schedule = ColumnarSchedule::sample(
            config.honest_nodes,
            config.adversarial_stake,
            config.active_slot_coeff,
            config.slots,
            17,
        );
        let mut s1 = config.strategy.instantiate();
        let (traced, tl) =
            ColumnarSimulation::run_with_schedule_faults(&config, &schedule, s1.as_mut(), &plan);
        let mut s2 = config.strategy.instantiate();
        let mut deferrals = 0u64;
        struct CountSink<'a>(&'a mut u64);
        impl MetricsSink for CountSink<'_> {
            fn on_fault_deferral(&mut self, _slot: usize, _recipient: usize, _to: usize) {
                *self.0 += 1;
            }
        }
        let mut sink = CountSink(&mut deferrals);
        let (metrics, index, sl) = ColumnarSimulation::run_streaming_faults(
            &config,
            &schedule,
            s2.as_mut(),
            &plan,
            &mut sink,
        );
        assert_eq!(&metrics, traced.metrics());
        assert_eq!(&index, traced.divergence_index());
        assert_eq!(tl, sl, "ledgers across modes");
        assert_eq!(deferrals, sl.deferred, "sink sees every deferral");
        assert!(deferrals > 0, "the partition must bite");
    }

    #[test]
    fn consistent_tie_break_matches_reference() {
        let mut config = cfg(Strategy::BalanceAttack, 1, 400);
        config.tie_break = TieBreak::Consistent;
        config.active_slot_coeff = 0.5;
        assert_matches_reference(&config, 7);
    }

    #[test]
    fn known_matrix_semantics() {
        let mut s = KnownMatrix::default();
        s.reset(70); // two words per block
        assert!(!s.insert(0, 3), "genesis pre-seeded for every node");
        assert!(!s.insert(0, 69), "pre-seeding covers the second word");
        assert!(s.insert(1000, 5));
        assert!(!s.insert(1000, 5));
        assert!(s.insert(1000, 68), "per-node bits are independent");
        assert!(s.contains(1000, 5));
        assert!(s.contains(1000, 68));
        assert!(!s.contains(1000, 6));
        assert!(!s.contains(999, 5));
        s.reset(4);
        assert!(!s.contains(1000, 5), "reset clears every mask");
        assert!(s.contains(0, 3), "genesis re-seeded");
        assert!(!s.contains(0, 4), "only configured nodes are seeded");
    }
}
