//! The streaming fork pipeline: online Δ-axiom validation and margin
//! tracking inside the columnar slot loop.
//!
//! A [`ForkPipeline`] rides the engine as a [`SlotHook`]: at the end of
//! every slot it classifies the slot from the schedule, folds the slot's
//! freshly minted blocks into a [`ForkFold`] (the incremental fork
//! builder with its `O(log n)`-per-vertex [`StreamValidator`]), and
//! drives a **margin channel** — the streaming Δ-reduction `ρ_Δ`
//! ([`StreamingReduction`]) feeding the Theorem 5 [`MarginState`]
//! recurrence, with each reduced symbol's `(ρ, µ)` reported through
//! [`MetricsSink::on_margin`].
//!
//! The payoff is the acceptance criterion of the streaming refactor: a
//! 10⁶-slot columnar execution leaves [`run_streaming_validated`] with
//! its fork built, its (F1)–(F3)+(F4Δ) verdict decided and its margin
//! trajectory streamed, in one pass, with **no** reference-engine replay
//! and no post-hoc `validate_delta` sweep over the finished fork.
//!
//! Two invariants make the fold cheap:
//!
//! * the columnar engine mints every block at the *current* slot (the
//!   `SlotContext` pins the mint slot), so the store's tail between two
//!   hook calls is exactly the new slot's blocks, in mint order;
//! * block ids are dense with genesis `0`, so fork vertex ids align 1:1
//!   with block ids and parent lookup is a vector index.
//!
//! [`StreamValidator`]: multihonest_fork::StreamValidator

use multihonest_chars::{Reduction, SemiString, StreamingReduction, Symbol};
use multihonest_fork::{Fork, ForkError, ForkFold, VertexId};
use multihonest_margin::recurrence::MarginState;
use multihonest_sim::consistency::DivergenceIndex;
use multihonest_sim::fault::{DegradationLedger, FaultPlan};
use multihonest_sim::metrics::{Metrics, MetricsSink};
use multihonest_sim::strategy::AdversaryStrategy;
use multihonest_sim::SimConfig;

use crate::engine::{ColumnarSimulation, ExecutionArena, SlotHook};
use crate::schedule::ColumnarSchedule;
use crate::store::ColumnarStore;

/// The streaming fork pipeline: a [`SlotHook`] that builds the
/// execution's fork, validates the Δ-axioms and streams the margin
/// channel while the columnar engine runs.
///
/// Drive it through
/// [`ColumnarSimulation::run_streaming_hooked`] (or the bundled
/// [`run_streaming_validated`] entry point), then call
/// [`finish`](ForkPipeline::finish) for the fork and verdicts.
#[derive(Debug)]
pub struct ForkPipeline<'a> {
    schedule: &'a ColumnarSchedule,
    fold: ForkFold,
    /// Block id → fork vertex id (index 0 is genesis ↔ root). With the
    /// columnar store's dense ids this stays the identity map, which the
    /// fold debug-asserts.
    vertex_of: Vec<VertexId>,
    /// Blocks consumed from the store so far (genesis pre-consumed).
    synced: usize,
    reduction: StreamingReduction,
    margin: MarginState,
    /// Scratch for the reduction's per-push emissions.
    reduced: Vec<(usize, Symbol)>,
}

impl<'a> ForkPipeline<'a> {
    /// A pipeline for delay bound `delta` over `schedule` (which supplies
    /// the per-slot classification the store alone cannot).
    pub fn new(delta: usize, schedule: &'a ColumnarSchedule) -> ForkPipeline<'a> {
        ForkPipeline {
            schedule,
            fold: ForkFold::new(delta),
            vertex_of: vec![VertexId::ROOT],
            synced: 1,
            reduction: Reduction::new(delta).streaming(),
            margin: MarginState::at_split(0),
            reduced: Vec::new(),
        }
    }

    /// The verdict so far (sticky on the first violation).
    pub fn status(&self) -> Result<(), ForkError> {
        self.fold.status()
    }

    /// Finishes the pipeline: flushes the reduction's pending window
    /// (emitting any final margin observations into `sink`), closes the
    /// (F3) completeness check and hands back fork and verdicts.
    pub fn finish<S: MetricsSink>(self, sink: &mut S) -> PipelineOutput {
        let ForkPipeline {
            fold,
            reduction,
            mut margin,
            mut reduced,
            ..
        } = self;
        reduced.clear();
        reduction.finish(&mut reduced);
        for &(slot, sym) in &reduced {
            margin.step(sym);
            sink.on_margin(slot, margin.rho(), margin.mu());
        }
        let streamed = fold.finish();
        PipelineOutput {
            fork: streamed.fork,
            characteristic_string: streamed.semi,
            validation: streamed.validation,
            rho: margin.rho(),
            margin: margin.mu(),
        }
    }
}

impl<S: MetricsSink> SlotHook<S> for ForkPipeline<'_> {
    fn on_slot_end(&mut self, slot: usize, store: &ColumnarStore, sink: &mut S) {
        let sym = self.schedule.classify(slot);
        self.fold.push_symbol(sym);
        // The store's tail since the last call is exactly this slot's
        // mints (engine contexts pin the mint slot to the current slot).
        while self.synced < store.len() {
            let id = self.synced as u32;
            assert_eq!(
                store.slot(id),
                slot,
                "columnar blocks are minted at the current slot"
            );
            let parent = self.vertex_of[store.parent(id).expect("non-genesis") as usize];
            let v = self.fold.push_vertex(parent, slot);
            debug_assert_eq!(v.index(), self.synced, "dense block/vertex id alignment");
            self.vertex_of.push(v);
            self.synced += 1;
        }
        // Margin channel: Δ-reduce this slot's symbol; every reduced
        // symbol it resolves advances the Theorem 5 recurrence.
        self.reduced.clear();
        self.reduction.push(sym, &mut self.reduced);
        for &(original_slot, reduced_sym) in &self.reduced {
            self.margin.step(reduced_sym);
            sink.on_margin(original_slot, self.margin.rho(), self.margin.mu());
        }
    }
}

/// What a finished [`ForkPipeline`] hands back.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The execution's fork (block ids ↔ vertex ids, genesis ↔ root).
    pub fork: Fork,
    /// The execution's semi-synchronous characteristic string.
    pub characteristic_string: SemiString,
    /// The online (F1)–(F3)+(F4Δ) verdict — `validate_delta`-equivalent
    /// at the `is_ok` level, with no second pass over the fork.
    pub validation: Result<(), ForkError>,
    /// Final reach `ρ` of the Δ-reduced characteristic string.
    pub rho: i64,
    /// Final relative margin `µ_ε` of the Δ-reduced string (`≥ 0` means
    /// the string admits two maximum-length tines diverging at genesis).
    pub margin: i64,
}

/// A fully validated streaming execution: engine outputs plus the
/// pipeline's fork and verdicts.
#[derive(Debug, Clone)]
pub struct ValidatedExecution {
    /// End-of-run metrics.
    pub metrics: Metrics,
    /// The settlement index.
    pub divergence: DivergenceIndex,
    /// The fault-degradation ledger (empty for fault-free runs).
    pub ledger: DegradationLedger,
    /// The pipeline's fork and verdicts.
    pub pipeline: PipelineOutput,
}

/// Runs a streaming columnar execution with the fork pipeline attached:
/// one pass over the horizon yields metrics, settlement index, the
/// execution's fork, its online Δ-axiom verdict and the margin
/// trajectory (streamed through `sink`'s
/// [`on_margin`](MetricsSink::on_margin)).
pub fn run_streaming_validated<S: MetricsSink>(
    config: &SimConfig,
    schedule: &ColumnarSchedule,
    strategy: &mut dyn AdversaryStrategy,
    sink: &mut S,
) -> ValidatedExecution {
    let mut arena = ExecutionArena::new();
    let empty = FaultPlan::default();
    run_streaming_validated_faults_in(&mut arena, config, schedule, strategy, &empty, sink)
}

/// The batch fault-aware sibling of [`run_streaming_validated`]: reuses
/// the caller's arena and applies a [`FaultPlan`], for campaign-style
/// validated sweeps.
pub fn run_streaming_validated_faults_in<S: MetricsSink>(
    arena: &mut ExecutionArena,
    config: &SimConfig,
    schedule: &ColumnarSchedule,
    strategy: &mut dyn AdversaryStrategy,
    plan: &FaultPlan,
    sink: &mut S,
) -> ValidatedExecution {
    let mut pipeline = ForkPipeline::new(config.delta, schedule);
    let (metrics, divergence, ledger) = ColumnarSimulation::run_streaming_hooked(
        arena,
        config,
        schedule,
        strategy,
        plan,
        sink,
        &mut pipeline,
    );
    let pipeline = pipeline.finish(sink);
    ValidatedExecution {
        metrics,
        divergence,
        ledger,
        pipeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_fork::validate::validate_delta;
    use multihonest_margin::recurrence;
    use multihonest_sim::{LeaderSchedule, Simulation, Strategy, TieBreak};

    fn cfg(strategy: Strategy, delta: usize, slots: usize) -> SimConfig {
        SimConfig {
            honest_nodes: 6,
            adversarial_stake: 0.3,
            active_slot_coeff: 0.3,
            delta,
            slots,
            tie_break: TieBreak::AdversarialOrder,
            strategy,
        }
    }

    /// Collects the margin channel.
    #[derive(Default)]
    struct MarginLog(Vec<(usize, i64, i64)>);
    impl MetricsSink for MarginLog {
        fn on_margin(&mut self, slot: usize, rho: i64, margin: i64) {
            self.0.push((slot, rho, margin));
        }
    }

    #[test]
    fn validated_run_matches_reference_fork_and_batch_oracle() {
        for strategy in Strategy::ALL {
            for delta in [0usize, 2] {
                let config = cfg(strategy, delta, 300);
                let seed = 11;
                let schedule = ColumnarSchedule::sample(
                    config.honest_nodes,
                    config.adversarial_stake,
                    config.active_slot_coeff,
                    config.slots,
                    seed,
                );
                let mut s1 = config.strategy.instantiate();
                let mut log = MarginLog::default();
                let out = run_streaming_validated(&config, &schedule, s1.as_mut(), &mut log);
                // Online verdict ≡ batch oracle over the streamed fork.
                assert_eq!(
                    out.pipeline.validation.is_ok(),
                    validate_delta(
                        &out.pipeline.fork,
                        &out.pipeline.characteristic_string,
                        delta
                    )
                    .is_ok(),
                    "parity broke for {strategy} delta {delta}"
                );
                assert_eq!(out.pipeline.validation, Ok(()), "{strategy} delta {delta}");
                // The streamed fork is bit-identical to the reference
                // engine's extraction (same mint order, dense ids).
                let refr = Simulation::run(&config, seed);
                assert_eq!(
                    &out.pipeline.fork,
                    refr.fork().fork(),
                    "fork diverged for {strategy} delta {delta}"
                );
                assert_eq!(
                    out.pipeline.characteristic_string,
                    schedule.characteristic_string()
                );
                // Metrics and index are those of the unhooked run — the
                // hook observes, never perturbs.
                let mut s2 = config.strategy.instantiate();
                let (metrics, index) =
                    ColumnarSimulation::run_streaming(&config, &schedule, s2.as_mut(), &mut ());
                assert_eq!(out.metrics, metrics);
                assert_eq!(out.divergence, index);
            }
        }
    }

    #[test]
    fn margin_channel_matches_batch_reduction_and_recurrence() {
        for delta in [0usize, 1, 3] {
            let config = cfg(Strategy::PrivateWithholding, delta, 400);
            let schedule = ColumnarSchedule::sample(
                config.honest_nodes,
                config.adversarial_stake,
                config.active_slot_coeff,
                config.slots,
                23,
            );
            let mut strategy = config.strategy.instantiate();
            let mut log = MarginLog::default();
            let out = run_streaming_validated(&config, &schedule, strategy.as_mut(), &mut log);
            // Expected channel: batch-reduce the characteristic string,
            // then walk the Theorem 5 recurrence prefix by prefix.
            let reduced = Reduction::new(delta).apply(&schedule.characteristic_string());
            let trace = recurrence::margin_trace(reduced.reduced(), 0);
            assert_eq!(log.0.len(), reduced.len(), "one event per reduced symbol");
            let mut reach = recurrence::ReachState::new();
            for (j, &(slot, rho, margin)) in log.0.iter().enumerate() {
                assert_eq!(slot, reduced.original_slot(j + 1), "slot alignment at {j}");
                reach.step(reduced.reduced().get(j + 1));
                assert_eq!(rho, reach.rho(), "ρ at reduced symbol {j}");
                assert_eq!(margin, trace[j + 1], "µ at reduced symbol {j}");
            }
            assert_eq!(out.pipeline.rho, reach.rho());
            assert_eq!(out.pipeline.margin, *trace.last().unwrap());
        }
    }

    #[test]
    fn validated_run_under_faults_stays_consistent() {
        use multihonest_sim::{FaultDirective, FaultPlan};
        // A partition lasting 6 slots: at Δ = 2 it *breaks* Δ-synchrony
        // (honest deliveries stall past the window, so honest blocks stop
        // gaining depth — a genuine (F4Δ) violation the validator must
        // observe), while at Δ = 8 the stalls stay inside the window and
        // the axioms hold. Either way the streaming verdict must agree
        // with the batch oracle and the fork must match the reference
        // engine's extraction.
        let plan = FaultPlan::new().with(FaultDirective::Partition {
            groups: vec![vec![0, 1, 2], vec![3, 4, 5]],
            start: 40,
            heal_slot: 46,
        });
        let mut arena = ExecutionArena::new();
        for (delta, expect_ok) in [(2usize, false), (8, true)] {
            let config = cfg(Strategy::PrivateWithholding, delta, 300);
            let schedule = ColumnarSchedule::sample(
                config.honest_nodes,
                config.adversarial_stake,
                config.active_slot_coeff,
                config.slots,
                13,
            );
            let mut strategy = config.strategy.instantiate();
            let out = run_streaming_validated_faults_in(
                &mut arena,
                &config,
                &schedule,
                strategy.as_mut(),
                &plan,
                &mut (),
            );
            assert_eq!(
                out.pipeline.validation.is_ok(),
                expect_ok,
                "Δ = {delta}: partition vs window"
            );
            assert_eq!(
                out.pipeline.validation.is_ok(),
                validate_delta(
                    &out.pipeline.fork,
                    &out.pipeline.characteristic_string,
                    delta
                )
                .is_ok(),
                "parity broke under faults at Δ = {delta}"
            );
            assert!(out.ledger.deferred > 0, "the partition must bite");
            // Faulty executions stay trace-identical across engines, so
            // the streamed fork still matches the reference extraction.
            let rs = LeaderSchedule::sample(
                config.honest_nodes,
                config.adversarial_stake,
                config.active_slot_coeff,
                config.slots,
                13,
            );
            let mut s2 = config.strategy.instantiate();
            let (refr, _) = Simulation::run_with_schedule_faults(&config, rs, s2.as_mut(), &plan);
            assert_eq!(&out.pipeline.fork, refr.fork().fork());
        }
    }
}
