//! Columnar leader schedules: the flat-array counterpart of
//! [`LeaderSchedule`](multihonest_sim::LeaderSchedule).
//!
//! The reference schedule allocates one `Vec<usize>` per slot; over a
//! million slots that is a million heap objects read once each. The
//! columnar schedule stores all honest leaders in one flat column plus a
//! prefix-offset column, and the adversarial flags in a third — three
//! allocations total, with the **same sampling draw order** as the
//! reference (per-node Bernoulli draws in node order, then the
//! adversarial draw, per slot), so equal seeds give equal schedules.

use multihonest_chars::{SemiString, SemiSymbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The cached per-node slot-leader election probabilities of one
/// campaign cell: `φ(stake) = 1 − (1 − f)^stake` per honest node plus
/// the adversarial aggregate — everything about a stake distribution
/// that schedule sampling actually consumes.
///
/// Sampling a schedule is seed-specific, but the `φ` table is not: a
/// batch of trials over one cell shares stakes, adversarial share and
/// activity coefficient across every seed. Building a [`LeaderProbs`]
/// once and driving [`ColumnarSchedule::resample_from_probs`] with it
/// hoists the `powf` table, its allocation and the stake-partition
/// validation out of the per-seed loop — the shared-sampling half of
/// [`BatchExecution`](crate::BatchExecution).
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderProbs {
    /// `φ(stake_i)` per honest node, node order.
    p_honest: Vec<f64>,
    /// `φ(adversarial stake)`.
    p_adv: f64,
}

impl LeaderProbs {
    /// Probabilities for **heterogeneous** honest stakes — the cached
    /// form of the table [`ColumnarSchedule::resample_weighted`] builds
    /// per call.
    ///
    /// # Panics
    ///
    /// Panics if the parameters leave their documented ranges, a stake
    /// is negative, or the stakes do not sum (with the adversary) to 1 —
    /// the same validation as the sampling entry points.
    pub fn weighted(
        honest_stakes: &[f64],
        adversarial_stake: f64,
        active_slot_coeff: f64,
    ) -> LeaderProbs {
        assert!(!honest_stakes.is_empty(), "need at least one honest node");
        assert!(
            (0.0..1.0).contains(&adversarial_stake),
            "adversarial stake in [0, 1)"
        );
        assert!(
            active_slot_coeff > 0.0 && active_slot_coeff < 1.0,
            "active slot coefficient in (0, 1)"
        );
        // Kahan-compensated, size-scaled validation shared with the
        // reference schedule (the two copies had drifted; see the helper).
        multihonest_sim::validate_stake_partition(honest_stakes, adversarial_stake);
        let phi = |alpha: f64| 1.0 - (1.0 - active_slot_coeff).powf(alpha);
        LeaderProbs {
            p_honest: honest_stakes.iter().map(|&s| phi(s)).collect(),
            p_adv: phi(adversarial_stake),
        }
    }

    /// Probabilities with honest stake split equally — the cached form
    /// of [`ColumnarSchedule::sample`]'s table.
    ///
    /// # Panics
    ///
    /// Panics as [`LeaderProbs::weighted`] does.
    pub fn uniform(
        honest_nodes: usize,
        adversarial_stake: f64,
        active_slot_coeff: f64,
    ) -> LeaderProbs {
        assert!(honest_nodes > 0, "need at least one honest node");
        let share = (1.0 - adversarial_stake) / honest_nodes as f64;
        LeaderProbs::weighted(
            &vec![share; honest_nodes],
            adversarial_stake,
            active_slot_coeff,
        )
    }

    /// The number of honest nodes the table covers.
    pub fn honest_nodes(&self) -> usize {
        self.p_honest.len()
    }
}

/// A full leader schedule in Structure-of-Arrays layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnarSchedule {
    /// All honest leaders, slot-major.
    honest: Vec<u32>,
    /// `start[t − 1]..start[t]` indexes `honest` for slot `t` (1-based);
    /// length `slots + 1`.
    start: Vec<u32>,
    /// Whether adversarial stake leads each slot.
    adversarial: Vec<bool>,
}

impl ColumnarSchedule {
    /// An empty (0-slot) schedule — the placeholder batch drivers hold
    /// before their first [`resample_weighted`] call.
    ///
    /// [`resample_weighted`]: ColumnarSchedule::resample_weighted
    pub fn empty() -> ColumnarSchedule {
        ColumnarSchedule {
            honest: Vec::new(),
            start: vec![0],
            adversarial: Vec::new(),
        }
    }

    /// Samples a schedule with honest stake split equally — draw-for-draw
    /// identical to [`LeaderSchedule::sample`] for the same parameters
    /// and seed.
    ///
    /// [`LeaderSchedule::sample`]: multihonest_sim::LeaderSchedule::sample
    ///
    /// # Panics
    ///
    /// Panics if the parameters leave their documented ranges (matching
    /// the reference schedule's validation).
    pub fn sample(
        honest_nodes: usize,
        adversarial_stake: f64,
        active_slot_coeff: f64,
        slots: usize,
        seed: u64,
    ) -> ColumnarSchedule {
        assert!(honest_nodes > 0, "need at least one honest node");
        let share = (1.0 - adversarial_stake) / honest_nodes as f64;
        ColumnarSchedule::sample_weighted(
            &vec![share; honest_nodes],
            adversarial_stake,
            active_slot_coeff,
            slots,
            seed,
        )
    }

    /// Samples a schedule with **heterogeneous** honest stake — the
    /// columnar counterpart of [`LeaderSchedule::sample_weighted`], with
    /// identical draw order.
    ///
    /// [`LeaderSchedule::sample_weighted`]:
    /// multihonest_sim::LeaderSchedule::sample_weighted
    ///
    /// # Panics
    ///
    /// Panics if the parameters leave their documented ranges, a stake is
    /// negative, or the stakes do not sum (with the adversary) to 1.
    pub fn sample_weighted(
        honest_stakes: &[f64],
        adversarial_stake: f64,
        active_slot_coeff: f64,
        slots: usize,
        seed: u64,
    ) -> ColumnarSchedule {
        let mut schedule = ColumnarSchedule {
            honest: Vec::new(),
            start: Vec::new(),
            adversarial: Vec::new(),
        };
        schedule.resample_weighted(
            honest_stakes,
            adversarial_stake,
            active_slot_coeff,
            slots,
            seed,
        );
        schedule
    }

    /// Resamples `self` in place with the same semantics (and draw order)
    /// as [`ColumnarSchedule::sample_weighted`], reusing the existing
    /// column allocations — the batch entry point campaign sweeps use to
    /// run millions of seeds without re-allocating a schedule per trial.
    ///
    /// # Panics
    ///
    /// Panics if the parameters leave their documented ranges, a stake is
    /// negative, or the stakes do not sum (with the adversary) to 1.
    pub fn resample_weighted(
        &mut self,
        honest_stakes: &[f64],
        adversarial_stake: f64,
        active_slot_coeff: f64,
        slots: usize,
        seed: u64,
    ) {
        let probs = LeaderProbs::weighted(honest_stakes, adversarial_stake, active_slot_coeff);
        self.resample_from_probs(&probs, slots, seed);
    }

    /// Resamples `self` in place from a pre-built probability table —
    /// the seed-loop body of batched sampling, with the `φ` table, its
    /// allocation and the stake validation hoisted into the caller's
    /// [`LeaderProbs`]. Draw-for-draw identical to
    /// [`ColumnarSchedule::resample_weighted`] over the stakes the table
    /// was built from.
    pub fn resample_from_probs(&mut self, probs: &LeaderProbs, slots: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        self.resample_segment(probs, slots, &mut rng);
    }

    /// Resamples `self` as the next `slots`-slot **segment** of a longer
    /// draw sequence: the caller owns the `StdRng` and threads it across
    /// calls. Because every slot consumes exactly `nodes + 1` draws
    /// regardless of outcome, consecutive segments reproduce draw-for-draw
    /// the schedule a single [`ColumnarSchedule::resample_from_probs`]
    /// over the concatenated horizon would produce — the property that
    /// lets the bounded-memory horizon driver sample 10⁸ slots one window
    /// at a time (and re-derive its RNG position on resume by replaying
    /// whole segments).
    pub fn resample_segment(&mut self, probs: &LeaderProbs, slots: usize, rng: &mut StdRng) {
        // Expected leaders ≈ slots × Σ p_i; reserve with headroom so the
        // flat column settles after at most one growth step.
        let expected = (slots as f64 * probs.p_honest.iter().sum::<f64>() * 1.1) as usize + 16;
        self.honest.clear();
        self.honest.reserve(expected);
        self.start.clear();
        self.start.reserve(slots + 1);
        self.adversarial.clear();
        self.adversarial.reserve(slots);
        self.start.push(0);
        for _ in 0..slots {
            for (node, &p) in probs.p_honest.iter().enumerate() {
                if rng.gen::<f64>() < p {
                    self.honest.push(node as u32);
                }
            }
            self.start.push(self.honest.len() as u32);
            self.adversarial.push(rng.gen::<f64>() < probs.p_adv);
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.adversarial.len()
    }

    /// Returns `true` when the schedule covers no slots.
    pub fn is_empty(&self) -> bool {
        self.adversarial.is_empty()
    }

    /// The honest leaders of `slot` (1-based), in node order.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is 0 or exceeds the schedule length.
    #[inline]
    pub fn leaders(&self, slot: usize) -> &[u32] {
        &self.honest[self.start[slot - 1] as usize..self.start[slot] as usize]
    }

    /// Whether adversarial stake leads `slot` (1-based).
    #[inline]
    pub fn adversarial(&self, slot: usize) -> bool {
        self.adversarial[slot - 1]
    }

    /// The characteristic-string classification of `slot`.
    pub fn classify(&self, slot: usize) -> SemiSymbol {
        if self.adversarial(slot) {
            SemiSymbol::Adversarial
        } else {
            match self.leaders(slot).len() {
                0 => SemiSymbol::Empty,
                1 => SemiSymbol::UniqueHonest,
                _ => SemiSymbol::MultiHonest,
            }
        }
    }

    /// Slots with at least one leader.
    pub fn active_slots(&self) -> usize {
        (1..=self.len())
            .filter(|&t| self.adversarial(t) || !self.leaders(t).is_empty())
            .count()
    }

    /// The semi-synchronous characteristic string of the schedule.
    pub fn characteristic_string(&self) -> SemiString {
        (1..=self.len()).map(|t| self.classify(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_sim::LeaderSchedule;

    #[test]
    fn matches_reference_schedule_bit_for_bit() {
        for seed in [0u64, 7, 99] {
            let cols = ColumnarSchedule::sample(6, 0.3, 0.25, 400, seed);
            let aos = LeaderSchedule::sample(6, 0.3, 0.25, 400, seed);
            assert_eq!(cols.len(), aos.len());
            for t in 1..=400 {
                let expect: Vec<u32> = aos.leaders(t).honest.iter().map(|&n| n as u32).collect();
                assert_eq!(cols.leaders(t), expect.as_slice(), "slot {t} seed {seed}");
                assert_eq!(cols.adversarial(t), aos.leaders(t).adversarial);
                assert_eq!(cols.classify(t), aos.leaders(t).classify());
            }
            assert_eq!(
                cols.characteristic_string(),
                aos.characteristic_string(),
                "seed {seed}"
            );
            assert_eq!(
                cols.active_slots(),
                aos.characteristic_string().count_nonempty()
            );
        }
    }

    #[test]
    fn weighted_matches_reference_weighted() {
        let stakes = [0.4, 0.2, 0.1, 0.05];
        let adv = 0.25;
        let cols = ColumnarSchedule::sample_weighted(&stakes, adv, 0.3, 300, 5);
        let aos = LeaderSchedule::sample_weighted(&stakes, adv, 0.3, 300, 5);
        for t in 1..=300 {
            let expect: Vec<u32> = aos.leaders(t).honest.iter().map(|&n| n as u32).collect();
            assert_eq!(cols.leaders(t), expect.as_slice(), "slot {t}");
            assert_eq!(cols.adversarial(t), aos.leaders(t).adversarial);
        }
        // Heavier nodes lead more often.
        let lead_count = |node: u32| {
            (1..=300)
                .filter(|&t| cols.leaders(t).contains(&node))
                .count()
        };
        assert!(lead_count(0) > lead_count(3));
    }

    #[test]
    #[should_panic(expected = "partition the total")]
    fn mismatched_stakes_rejected() {
        let _ = ColumnarSchedule::sample_weighted(&[0.5, 0.4], 0.3, 0.2, 10, 1);
    }
}
