//! Batched multi-seed executions: one arena, one schedule buffer, many
//! trials.
//!
//! A Monte-Carlo campaign runs the *same* configuration over thousands
//! of seeds. Driven naïvely, every trial pays for a fresh block arena, a
//! fresh schedule allocation and a fresh `φ(stake)` table — none of
//! which depend on the seed. [`BatchExecution`] owns the reusable pieces
//! and exposes one entry point that runs a whole seed list through them:
//!
//! * the [`ExecutionArena`] (block store, delivery ring, known-matrix,
//!   scratch buffers) is reset in place between seeds — zero
//!   steady-state allocation, guarded by the arena's debug audit;
//! * the [`ColumnarSchedule`] buffer is resampled in place from a shared
//!   [`LeaderProbs`] table, hoisting the stake validation and `powf`
//!   table out of the seed loop;
//! * each trial gets a fresh strategy from the caller's factory, so no
//!   adversarial state leaks between seeds.
//!
//! **The batch law.** Batching is a pure amortization: for every seed,
//! the produced [`TrialOutput`] is identical to an independent
//! [`ColumnarSimulation::run_streaming_faults`] over a freshly sampled
//! schedule — for any batch size, any trial order within the driving
//! loop, and any arena history (a short horizon after a long one reuses
//! the same buffers). `tests/batch_execution.rs` pins this law, and the
//! campaign sweep builds on it: its reports and checkpoints are
//! byte-identical across batch sizes and thread counts.

use multihonest_sim::consistency::DivergenceIndex;
use multihonest_sim::fault::{DegradationLedger, FaultPlan};
use multihonest_sim::metrics::Metrics;
use multihonest_sim::strategy::AdversaryStrategy;
use multihonest_sim::SimConfig;

use crate::engine::{ColumnarSimulation, ExecutionArena};
use crate::schedule::{ColumnarSchedule, LeaderProbs};

/// The complete observable outcome of one batched trial — exactly what
/// the streaming fault-aware entry point returns, plus the seed that
/// produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutput {
    /// The schedule seed of this trial.
    pub seed: u64,
    /// End-of-run metrics.
    pub metrics: Metrics,
    /// The settlement/divergence index.
    pub divergence: DivergenceIndex,
    /// What fault injection did (empty ledger for the empty plan).
    pub ledger: DegradationLedger,
}

/// Reusable state for running many seeds of one configuration through a
/// single arena. See the module docs for the amortization inventory and
/// the batch law.
#[derive(Debug)]
pub struct BatchExecution {
    arena: ExecutionArena,
    schedule: ColumnarSchedule,
}

impl Default for BatchExecution {
    fn default() -> BatchExecution {
        BatchExecution::new()
    }
}

impl BatchExecution {
    /// An empty batch driver; the first trial sizes its buffers, later
    /// trials reuse them.
    pub fn new() -> BatchExecution {
        BatchExecution {
            arena: ExecutionArena::new(),
            schedule: ColumnarSchedule::empty(),
        }
    }

    /// Runs every seed of `seeds` as one streaming fault-aware execution
    /// and hands each [`TrialOutput`] to `each`, in seed-list order.
    ///
    /// `make_strategy` is called once per seed and must return a fresh
    /// strategy (batching shares buffers, never adversarial state).
    /// `probs` carries the stake distribution; `config.slots` sets the
    /// horizon of every trial.
    ///
    /// # Panics
    ///
    /// Panics if the probability table covers a different node count
    /// than `config` — a mixed-up cell wiring, not a tunable.
    pub fn run<I, F, E>(
        &mut self,
        config: &SimConfig,
        probs: &LeaderProbs,
        plan: &FaultPlan,
        seeds: I,
        mut make_strategy: F,
        mut each: E,
    ) where
        I: IntoIterator<Item = u64>,
        F: FnMut(u64) -> Box<dyn AdversaryStrategy>,
        E: FnMut(TrialOutput),
    {
        assert_eq!(
            probs.honest_nodes(),
            config.honest_nodes,
            "probability table and config disagree on the honest node count"
        );
        for seed in seeds {
            self.schedule.resample_from_probs(probs, config.slots, seed);
            let mut strategy = make_strategy(seed);
            let (metrics, divergence, ledger) = ColumnarSimulation::run_streaming_faults_in(
                &mut self.arena,
                config,
                &self.schedule,
                strategy.as_mut(),
                plan,
                &mut (),
            );
            each(TrialOutput {
                seed,
                metrics,
                divergence,
                ledger,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_sim::{Strategy, TieBreak};

    fn cfg(slots: usize) -> SimConfig {
        SimConfig {
            honest_nodes: 5,
            adversarial_stake: 0.2,
            active_slot_coeff: 0.3,
            delta: 2,
            slots,
            tie_break: TieBreak::AdversarialOrder,
            strategy: Strategy::PrivateWithholding,
        }
    }

    #[test]
    fn probs_table_matches_per_call_sampling() {
        let stakes = [0.3, 0.2, 0.15, 0.1, 0.05];
        let probs = LeaderProbs::weighted(&stakes, 0.2, 0.3);
        let mut reused = ColumnarSchedule::empty();
        for seed in [0u64, 3, 17] {
            reused.resample_from_probs(&probs, 500, seed);
            let fresh = ColumnarSchedule::sample_weighted(&stakes, 0.2, 0.3, 500, seed);
            assert_eq!(reused, fresh, "seed {seed}");
        }
    }

    #[test]
    fn uniform_probs_match_equal_split() {
        let probs = LeaderProbs::uniform(5, 0.2, 0.3);
        let mut sched = ColumnarSchedule::empty();
        sched.resample_from_probs(&probs, 300, 7);
        assert_eq!(sched, ColumnarSchedule::sample(5, 0.2, 0.3, 300, 7));
    }

    #[test]
    #[should_panic(expected = "disagree on the honest node count")]
    fn mismatched_node_count_rejected() {
        let probs = LeaderProbs::uniform(4, 0.2, 0.3);
        BatchExecution::new().run(
            &cfg(50),
            &probs,
            &FaultPlan::default(),
            [1u64],
            |_| Strategy::PrivateWithholding.instantiate(),
            |_| {},
        );
    }

    #[test]
    fn outputs_arrive_in_seed_order() {
        let probs = LeaderProbs::uniform(5, 0.2, 0.3);
        let mut seen = Vec::new();
        BatchExecution::new().run(
            &cfg(200),
            &probs,
            &FaultPlan::default(),
            [9u64, 2, 5],
            |_| Strategy::PrivateWithholding.instantiate(),
            |out| seen.push(out.seed),
        );
        assert_eq!(seen, [9, 2, 5]);
    }
}
