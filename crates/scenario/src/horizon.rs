//! Bounded-memory execution of extreme horizons: segmented schedules,
//! settled-prefix eviction and a crash-safe WAL of compaction points.
//!
//! The streaming engine already folds metrics and the divergence index
//! online, but three pieces of state still grow with the horizon: the
//! block arena (every block ever minted), the divergence fold's
//! per-anchor arrays (`O(slots)` eagerly — ≈ 1.6 GB at 10⁸ slots) and
//! the leader schedule itself. [`run_horizon`] removes all three:
//!
//! * the schedule is sampled **per segment** through
//!   [`ColumnarSchedule::resample_segment`] from one long-lived RNG —
//!   draw-for-draw identical to sampling the whole horizon at once,
//!   because every slot consumes a fixed number of draws;
//! * at each segment boundary the driver looks for a **fully settled
//!   point** — every honest tip unanimous, the delivery ring idle, the
//!   strategy holding no other live block reference
//!   ([`AdversaryStrategy::compact_to_root`]) — and compacts: the
//!   unanimous tip becomes the arena's new root (id 0, absolute slot and
//!   height), the fold drains every anchor at or below the boundary into
//!   per-`k` aggregates ([`DivergenceFold::advance_base`]), and the
//!   evicted chain prefix is folded into running block counters. Live
//!   state after compaction is a single block plus empty scratch — the
//!   execution is indistinguishable above the root, so the final report
//!   is **identical** to an unsegmented run's (pinned by
//!   `tests/horizon_execution.rs`);
//! * every compaction appends one CRC-framed record to a **write-ahead
//!   log**: the root's coordinates, the metric and fold accumulators,
//!   and the strategy's scalar state. A later [`run_horizon`] with the
//!   same parameters resumes from the last intact record — replaying
//!   only the schedule sampling of the completed prefix to re-derive the
//!   RNG position — and produces the same report as the uninterrupted
//!   run. A torn tail (partial last record after a crash) is detected by
//!   the CRC frame and discarded.
//!
//! Compaction is opportunistic, not guaranteed: a strategy that holds
//! arbitrary block references (e.g. the balance attack's branch map)
//! vetoes it and the run degrades to unbounded live state, which
//! [`HorizonOptions::max_live_blocks`] turns into a hard error instead
//! of an OOM kill. The private-withholding and honest strategies — the
//! interesting 10⁸-slot settlement scenarios — compact at almost every
//! boundary under realistic activity levels.
//!
//! [`AdversaryStrategy::compact_to_root`]:
//! multihonest_sim::AdversaryStrategy::compact_to_root
//! [`DivergenceFold::advance_base`]:
//! multihonest_sim::DivergenceFold::advance_base

use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;

use multihonest_obs::{heartbeat_line, Heartbeat, Recorder};
use multihonest_sim::consistency::DivergenceFold;
use multihonest_sim::fault::{FaultPlan, FaultRuntime};
use multihonest_sim::metrics::{Metrics, MetricsAccumulator};
use multihonest_sim::{BlockId, SimConfig};

use crate::engine::{run_slots, EngineCore, ExecutionArena, ENGINE_KERNEL_VERSION};
use crate::schedule::{ColumnarSchedule, LeaderProbs};

/// Tuning and safety knobs of one [`run_horizon`] call.
#[derive(Debug, Clone)]
pub struct HorizonOptions {
    /// Slots per schedule segment (and per compaction attempt). Larger
    /// segments amortize sampling better; smaller ones compact — and
    /// checkpoint — more often. Must be ≥ 1.
    pub segment_slots: usize,
    /// Settlement parameters to aggregate violation counts for.
    pub ks: Vec<usize>,
    /// Hard bound on live arena blocks; exceeded ⇒ the run fails with an
    /// error instead of growing without limit (0 = unbounded).
    pub max_live_blocks: usize,
    /// Write-ahead log to append compaction records to (and resume
    /// from, when it already exists and matches the parameters).
    pub wal: Option<PathBuf>,
}

impl Default for HorizonOptions {
    fn default() -> HorizonOptions {
        HorizonOptions {
            segment_slots: 1 << 20,
            ks: vec![16, 32, 64, 128],
            max_live_blocks: 0,
            wal: None,
        }
    }
}

/// The output of a horizon run: headline metrics plus the per-`k`
/// settlement aggregates that replace the (never materialised)
/// divergence index.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizonReport {
    /// End-of-run metrics, identical to an unsegmented streaming run's.
    pub metrics: Metrics,
    /// Per entry of [`HorizonOptions::ks`]: the number of anchors `s`
    /// with a `(s, k)`-settlement violation.
    pub violating_anchors: Vec<u64>,
    /// Per entry of [`HorizonOptions::ks`]: the smallest violating
    /// anchor, if any.
    pub first_violation: Vec<Option<usize>>,
    /// Compactions performed (resumed ones included).
    pub compactions: u64,
    /// Peak live arena blocks over the whole run (resumed prefix
    /// included) — what [`HorizonOptions::max_live_blocks`] bounds.
    pub peak_live_blocks: usize,
    /// The compaction slot this run resumed from, if it did.
    pub resumed_at: Option<usize>,
}

/// Running per-`k` settlement aggregates, fed by fold drains.
struct Aggregates {
    ks: Vec<usize>,
    counts: Vec<u64>,
    first: Vec<Option<usize>>,
    max_lag: Option<usize>,
}

impl Aggregates {
    fn new(ks: &[usize]) -> Aggregates {
        Aggregates {
            ks: ks.to_vec(),
            counts: vec![0; ks.len()],
            first: vec![None; ks.len()],
            max_lag: None,
        }
    }

    /// Folds one drained anchor: `latest ≥ s + k` is exactly
    /// `DivergenceIndex::violates(s, k)` for an anchor with a diverging
    /// observation.
    fn drain(&mut self, s: usize, _earliest: usize, latest: usize) {
        debug_assert!(latest >= s, "observation precedes its anchor");
        let lag = latest - s;
        self.max_lag = Some(self.max_lag.map_or(lag, |m| m.max(lag)));
        for (i, &k) in self.ks.iter().enumerate() {
            if lag >= k {
                self.counts[i] += 1;
                if self.first[i].is_none_or(|f| s < f) {
                    self.first[i] = Some(s);
                }
            }
        }
    }
}

/// One WAL record: the complete resume state at a compaction point.
struct WalRecord {
    slot: u64,
    root_slot: u64,
    root_height: u64,
    root_issuer: u64,
    root_honest: u64,
    acc_slots: u64,
    acc_max_div: u64,
    acc_rollbacks: u64,
    active_slots: u64,
    prefix_blocks: u64,
    prefix_honest: u64,
    compactions: u64,
    peak_live: u64,
    max_lag: u64, // u64::MAX = none
    counts: Vec<u64>,
    first: Vec<u64>, // u64::MAX = none
    strategy: Vec<u64>,
}

impl WalRecord {
    fn to_words(&self) -> Vec<u64> {
        let mut w = vec![
            self.slot,
            self.root_slot,
            self.root_height,
            self.root_issuer,
            self.root_honest,
            self.acc_slots,
            self.acc_max_div,
            self.acc_rollbacks,
            self.active_slots,
            self.prefix_blocks,
            self.prefix_honest,
            self.compactions,
            self.peak_live,
            self.max_lag,
            self.counts.len() as u64,
        ];
        w.extend_from_slice(&self.counts);
        w.extend_from_slice(&self.first);
        w.push(self.strategy.len() as u64);
        w.extend_from_slice(&self.strategy);
        w
    }

    fn from_words(w: &[u64]) -> Option<WalRecord> {
        if w.len() < 15 {
            return None;
        }
        let nk = w[14] as usize;
        if w.len() < 15 + 2 * nk + 1 {
            return None;
        }
        let ns = w[15 + 2 * nk] as usize;
        if w.len() != 15 + 2 * nk + 1 + ns {
            return None;
        }
        Some(WalRecord {
            slot: w[0],
            root_slot: w[1],
            root_height: w[2],
            root_issuer: w[3],
            root_honest: w[4],
            acc_slots: w[5],
            acc_max_div: w[6],
            acc_rollbacks: w[7],
            active_slots: w[8],
            prefix_blocks: w[9],
            prefix_honest: w[10],
            compactions: w[11],
            peak_live: w[12],
            max_lag: w[13],
            counts: w[15..15 + nk].to_vec(),
            first: w[15 + nk..15 + 2 * nk].to_vec(),
            strategy: w[15 + 2 * nk + 1..].to_vec(),
        })
    }
}

const WAL_MAGIC: &[u8; 8] = b"MHWAL\x01\0\0";

/// CRC-32 (IEEE), bitwise — records are tiny and rare, so no table.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

fn bytes_to_words(bytes: &[u8]) -> Option<Vec<u64>> {
    if !bytes.len().is_multiple_of(8) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect(),
    )
}

/// A parameter fingerprint binding a WAL to one `(config, seed, options,
/// kernel)` tuple — a resume under different parameters is an error, not
/// a silent divergence. Folds the engine kernel version in so a WAL
/// written by an observably different kernel is rejected too.
fn params_hash(config: &SimConfig, seed: u64, opts: &HorizonOptions) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        let mut z = h ^ v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut h = mix(0, u64::from(ENGINE_KERNEL_VERSION));
    for b in format!("{config:?}").bytes() {
        h = mix(h, u64::from(b));
    }
    h = mix(h, seed);
    h = mix(h, opts.segment_slots as u64);
    for &k in &opts.ks {
        h = mix(h, k as u64);
    }
    h
}

/// Parses a WAL file: validates magic and parameter hash, walks the
/// CRC-framed records, and returns the last intact one plus the byte
/// offset right after it (where a torn tail, if any, begins).
fn load_wal(path: &Path, hash: u64) -> io::Result<Option<(WalRecord, u64)>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    if bytes.len() < 16 {
        return Ok(None); // empty or torn header: start fresh
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} is not a horizon WAL", path.display()),
        ));
    }
    let file_hash = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if file_hash != hash {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{} belongs to a different run (parameter/kernel fingerprint mismatch); \
                 delete it or point the run elsewhere",
                path.display()
            ),
        ));
    }
    let mut pos = 16usize;
    let mut last: Option<(WalRecord, u64)> = None;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break; // torn tail: frame truncated
        };
        if crc32(payload) != crc {
            break; // torn tail: frame corrupted
        }
        let Some(rec) = bytes_to_words(payload).and_then(|w| WalRecord::from_words(&w)) else {
            break;
        };
        pos += 8 + len;
        last = Some((rec, pos as u64));
    }
    Ok(last)
}

/// An append handle over the WAL, positioned after the last intact
/// record (any torn tail is truncated away on open).
struct WalWriter {
    file: File,
}

impl WalWriter {
    fn create(path: &Path, hash: u64) -> io::Result<WalWriter> {
        let mut file = File::create(path)?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&hash.to_le_bytes())?;
        file.flush()?;
        Ok(WalWriter { file })
    }

    fn append_to(path: &Path, valid_len: u64) -> io::Result<WalWriter> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = OpenOptions::new().append(true).open(path)?;
        file.flush()?;
        Ok(WalWriter { file })
    }

    fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        let payload = words_to_bytes(&rec.to_words());
        self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.file.write_all(&crc32(&payload).to_le_bytes())?;
        self.file.write_all(&payload)?;
        self.file.flush()
    }
}

/// Runs `config` (with `config.slots` as the — possibly extreme —
/// horizon) under segmented sampling and settled-prefix eviction; see
/// the [module docs](self) for the machinery and its laws. Fault plans
/// are out of scope here: the horizon driver targets the long-run
/// settlement scenarios, which are fault-free.
///
/// # Errors
///
/// Fails when the WAL exists but belongs to different parameters, on any
/// WAL I/O error, or when [`HorizonOptions::max_live_blocks`] is
/// exceeded.
///
/// # Panics
///
/// Panics if `segment_slots` is 0 or the probability table disagrees
/// with `config` on the node count.
pub fn run_horizon(
    config: &SimConfig,
    probs: &LeaderProbs,
    seed: u64,
    opts: &HorizonOptions,
) -> io::Result<HorizonReport> {
    run_horizon_observed(config, probs, seed, opts, &mut (), None)
}

/// [`run_horizon`] with an obs [`Recorder`] and an optional stderr
/// [`Heartbeat`] attached: segment / compaction / WAL-append spans,
/// live-arena and peak-RSS gauges, and a periodic progress line. The
/// recorder only observes, so an instrumented run produces a report
/// bit-identical to [`run_horizon`]'s (the plain entry point delegates
/// here with the `()` recorder, paying nothing).
pub fn run_horizon_observed<R: Recorder>(
    config: &SimConfig,
    probs: &LeaderProbs,
    seed: u64,
    opts: &HorizonOptions,
    rec: &mut R,
    mut heartbeat: Option<&mut Heartbeat>,
) -> io::Result<HorizonReport> {
    assert!(opts.segment_slots > 0, "segment_slots must be positive");
    assert_eq!(
        probs.honest_nodes(),
        config.honest_nodes,
        "probability table and config disagree on the honest node count"
    );
    let total = config.slots;
    let seg = opts.segment_slots;
    let n = config.honest_nodes;
    let hash = params_hash(config, seed, opts);

    let resume = match &opts.wal {
        Some(path) => load_wal(path, hash)?,
        None => None,
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let mut schedule = ColumnarSchedule::empty();
    let mut arena = ExecutionArena::new();
    let mut strategy = config.strategy.instantiate();
    let mut agg = Aggregates::new(&opts.ks);
    let empty_plan = FaultPlan::default();
    let mut faults = FaultRuntime::new(&empty_plan, n, total);

    arena.reset(config, strategy.lookahead(config.delta), seg / 2 + 16);
    arena.uniq.push(0);

    let mut done = 0usize;
    let mut active_slots = 0usize;
    let mut prefix_blocks = 0usize;
    let mut prefix_honest = 0usize;
    let mut compactions = 0u64;
    let mut peak_live = arena.store.len();
    let mut resumed_at = None;

    let mut core = match &resume {
        Some((rec, _)) => {
            let at = rec.slot as usize;
            if !at.is_multiple_of(seg) || at > total || rec.counts.len() != opts.ks.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "WAL record does not fit the horizon grid",
                ));
            }
            // Re-derive the RNG position: replay the schedule sampling
            // of the completed prefix (fixed draws per slot make this
            // exact; no RNG internals ever touch the WAL).
            for _ in 0..at / seg {
                schedule.resample_segment(probs, seg, &mut rng);
            }
            arena.store.reset_to_root(
                rec.root_slot as usize,
                rec.root_height as usize,
                rec.root_issuer as u32,
                rec.root_honest != 0,
            );
            strategy.restore_state(&rec.strategy);
            agg.counts.copy_from_slice(&rec.counts);
            for (slot, &f) in agg.first.iter_mut().zip(&rec.first) {
                *slot = (f != u64::MAX).then_some(f as usize);
            }
            agg.max_lag = (rec.max_lag != u64::MAX).then_some(rec.max_lag as usize);
            active_slots = rec.active_slots as usize;
            prefix_blocks = rec.prefix_blocks as usize;
            prefix_honest = rec.prefix_honest as usize;
            compactions = rec.compactions;
            peak_live = rec.peak_live as usize;
            done = at;
            resumed_at = Some(at);
            let mut core =
                EngineCore::with_fold(DivergenceFold::resume_at(total, at), false, total);
            core.acc = MetricsAccumulator::restore(
                rec.acc_slots as usize,
                rec.acc_max_div as usize,
                rec.acc_rollbacks as usize,
            );
            core.cached_height = rec.root_height as usize;
            core
        }
        None => EngineCore::with_fold(DivergenceFold::windowed(total), false, total),
    };

    let mut wal = match (&opts.wal, &resume) {
        (Some(path), Some((_, valid_len))) => Some(WalWriter::append_to(path, *valid_len)?),
        (Some(path), None) => Some(WalWriter::create(path, hash)?),
        (None, _) => None,
    };

    while done < total {
        let last = (done + seg).min(total);
        rec.span_begin("horizon.segment");
        schedule.resample_segment(probs, last - done, &mut rng);
        active_slots += schedule.active_slots();
        run_slots(
            &mut arena,
            &mut core,
            config,
            &schedule,
            done,
            done + 1,
            last,
            strategy.as_mut(),
            false,
            &mut (),
            &mut (),
            &mut faults,
            &mut (),
        );
        rec.span_end("horizon.segment");
        done = last;
        peak_live = peak_live.max(arena.store.len());
        rec.gauge("horizon.live_blocks", arena.store.len() as i64);
        rec.gauge("horizon.peak_live_blocks", peak_live as i64);
        if let Some(rss) = multihonest_obs::peak_rss_bytes() {
            rec.gauge("process.peak_rss_bytes", rss.min(i64::MAX as u64) as i64);
        }
        if let Some(hb) = heartbeat.as_deref_mut() {
            if let Some(elapsed) = hb.due() {
                // Rate over this run only: exclude any resumed prefix.
                let base = resumed_at.unwrap_or(0);
                eprintln!(
                    "{}",
                    heartbeat_line(
                        "horizon",
                        (done - base) as u64,
                        (total - base) as u64,
                        "slots",
                        elapsed
                    )
                );
            }
        }

        // Compaction attempt: only meaningful mid-run (the final state
        // is drained by the finish below) and only at a fully settled
        // point the strategy agrees to.
        if done < total && done.is_multiple_of(seg) {
            let tip = arena.tips[0];
            if arena.tips.iter().all(|&t| t == tip)
                && arena.ring.is_idle()
                && strategy.compact_to_root(BlockId::from_index(tip as usize), BlockId::GENESIS)
            {
                debug_assert_eq!(core.cached_div, 0, "unanimous tips imply zero divergence");
                rec.span_begin("horizon.compaction");
                core.fold.advance_base(done, |s, e, l| agg.drain(s, e, l));
                core.fold.rebase_unanimous_root();
                let mut cur = tip;
                while let Some(p) = arena.store.parent(cur) {
                    prefix_blocks += 1;
                    prefix_honest += usize::from(arena.store.is_honest(cur));
                    cur = p;
                }
                arena.compact_to_root(n, tip);
                core.cached_tip_block = 0;
                compactions += 1;
                rec.span_end("horizon.compaction");
                rec.counter("horizon.compactions", 1);
                if let Some(w) = &mut wal {
                    rec.span_begin("horizon.wal_append");
                    let (acc_slots, acc_max_div, acc_rollbacks) = core.acc.state();
                    let appended = w.append(&WalRecord {
                        slot: done as u64,
                        root_slot: arena.store.slot(0) as u64,
                        root_height: arena.store.height(0) as u64,
                        root_issuer: u64::from(arena.store.issuer(0)),
                        root_honest: u64::from(arena.store.is_honest(0)),
                        acc_slots: acc_slots as u64,
                        acc_max_div: acc_max_div as u64,
                        acc_rollbacks: acc_rollbacks as u64,
                        active_slots: active_slots as u64,
                        prefix_blocks: prefix_blocks as u64,
                        prefix_honest: prefix_honest as u64,
                        compactions,
                        peak_live: peak_live as u64,
                        max_lag: agg.max_lag.map_or(u64::MAX, |l| l as u64),
                        counts: agg.counts.clone(),
                        first: agg
                            .first
                            .iter()
                            .map(|f| f.map_or(u64::MAX, |s| s as u64))
                            .collect(),
                        strategy: strategy.checkpoint_state(),
                    });
                    rec.span_end("horizon.wal_append");
                    rec.counter("horizon.wal_appends", 1);
                    appended?;
                }
            }
        }

        if opts.max_live_blocks > 0 && arena.store.len() > opts.max_live_blocks {
            return Err(io::Error::new(
                io::ErrorKind::OutOfMemory,
                format!(
                    "live arena exceeded the memory bound at slot {done}: {} blocks > {} \
                     (no settled compaction point accepted recently)",
                    arena.store.len(),
                    opts.max_live_blocks
                ),
            ));
        }
    }

    // Finish: drain the remaining fold window and walk the in-window
    // chain suffix; the evicted prefix lives in the running counters.
    let EngineCore { fold, acc, .. } = core;
    fold.finish_windowed(|s, e, l| agg.drain(s, e, l));
    let mut best_tip = arena.tips[0];
    for &t in &arena.tips {
        if arena.store.height(t) >= arena.store.height(best_tip) {
            best_tip = t;
        }
    }
    let mut chain_blocks = prefix_blocks;
    let mut honest_chain_blocks = prefix_honest;
    let mut cur = best_tip;
    while let Some(p) = arena.store.parent(cur) {
        chain_blocks += 1;
        honest_chain_blocks += usize::from(arena.store.is_honest(cur));
        cur = p;
    }
    let metrics = acc.finish(
        active_slots,
        arena.store.height(best_tip),
        chain_blocks,
        honest_chain_blocks,
        agg.max_lag,
    );
    Ok(HorizonReport {
        metrics,
        violating_anchors: agg.counts,
        first_violation: agg.first,
        compactions,
        peak_live_blocks: peak_live,
        resumed_at,
    })
}
