//! The scenario library: parameterized attacks, network schedules and
//! node profiles, composed into named [`Scenario`]s.
//!
//! A scenario bundles a base [`SimConfig`] with three orthogonal knobs
//! the abstract model grants the adversary:
//!
//! * a **network schedule** ([`NetworkSchedule`]) deciding *when inside
//!   the Δ window* each honest broadcast reaches each node — constant
//!   edge-of-window delays, Δ-bursts, or per-(slot, recipient) jitter;
//! * a **node profile** ([`NodeProfile`]) giving honest nodes
//!   heterogeneous stake (leader-election weight) and per-node extra
//!   latency;
//! * a **release lag** `L` generalising the withholding attack: the
//!   private chain is revealed `L` slots after the adversary decides to
//!   release it.
//!
//! All of it compiles down to an ordinary [`AdversaryStrategy`], so every
//! scenario runs unchanged on both engines — and none of it can break the
//! Δ axiom, because both engines clamp honest deliveries into
//! `[slot, slot + Δ]` regardless of what a strategy requests.

use multihonest_sim::strategy::{AdversaryStrategy, SlotContext};
use multihonest_sim::{BlockId, FaultDirective, FaultPlan, SimConfig, Strategy};

use crate::schedule::ColumnarSchedule;

/// When, inside the Δ window, honest broadcasts reach their recipients.
/// The engines clamp every request into `[slot, slot + Δ]`, so a
/// schedule can only choose *where in the window* a delivery lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkSchedule {
    /// Every delivery at the edge of the window (`slot + Δ`) — the
    /// maximally slow network the withholding attack assumes.
    EdgeOfWindow,
    /// Every delivery immediately (`slot`) — the synchronous best case.
    Immediate,
    /// Δ-bursts: slots with `slot % period < width` suffer the full Δ
    /// delay, all others deliver immediately — modelling periodic
    /// congestion/outage windows.
    Burst {
        /// Burst cycle length in slots.
        period: usize,
        /// Leading slots of each cycle that are delayed.
        width: usize,
    },
    /// Deterministic per-(slot, recipient) jitter uniform over
    /// `0..=Δ` — a well-behaved but non-constant network.
    Jitter {
        /// Salt decorrelating different jitter schedules.
        salt: u64,
    },
}

impl NetworkSchedule {
    /// The requested extra delay (on top of the broadcast slot) for a
    /// delivery to `recipient` broadcast at `slot`, always `≤ delta`.
    pub fn delay(&self, slot: usize, recipient: usize, delta: usize) -> usize {
        match *self {
            NetworkSchedule::EdgeOfWindow => delta,
            NetworkSchedule::Immediate => 0,
            NetworkSchedule::Burst { period, width } => {
                if period > 0 && slot % period < width {
                    delta
                } else {
                    0
                }
            }
            NetworkSchedule::Jitter { salt } => {
                if delta == 0 {
                    return 0;
                }
                let mut z = salt
                    .wrapping_add((slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add((recipient as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z ^ (z >> 31)) % (delta as u64 + 1)) as usize
            }
        }
    }

    /// A short machine-friendly name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            NetworkSchedule::EdgeOfWindow => "edge-of-window",
            NetworkSchedule::Immediate => "immediate",
            NetworkSchedule::Burst { .. } => "burst",
            NetworkSchedule::Jitter { .. } => "jitter",
        }
    }
}

/// Heterogeneous honest-node profile: per-node stake weights (leader
/// election) and per-node extra delivery latency. The default profile is
/// uniform stake and zero latency — exactly the reference setting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeProfile {
    /// Relative per-node stake weights (normalised internally); empty
    /// means uniform.
    pub stake_weights: Vec<f64>,
    /// Per-node extra delivery delay in slots (clamped into the Δ window
    /// by the engines); empty means zero everywhere.
    pub latency: Vec<usize>,
}

impl NodeProfile {
    /// The uniform, zero-latency profile.
    pub fn uniform() -> NodeProfile {
        NodeProfile::default()
    }

    /// A Zipf-like skewed stake profile: node `i` weighs `1 / (i + 1)`.
    pub fn zipf(nodes: usize) -> NodeProfile {
        NodeProfile {
            stake_weights: (0..nodes).map(|i| 1.0 / (i + 1) as f64).collect(),
            latency: Vec::new(),
        }
    }

    /// Adds a per-node latency vector.
    pub fn with_latency(mut self, latency: Vec<usize>) -> NodeProfile {
        self.latency = latency;
        self
    }

    /// The extra latency of `recipient`.
    #[inline]
    pub fn latency_of(&self, recipient: usize) -> usize {
        self.latency.get(recipient).copied().unwrap_or(0)
    }

    /// The absolute honest stake shares for `nodes` honest nodes holding
    /// `1 − adversarial_stake` of the total: normalised weights, or the
    /// uniform split when no weights are set.
    ///
    /// # Panics
    ///
    /// Panics if weights are set but their count differs from `nodes`, or
    /// if any weight is non-positive.
    pub fn stakes(&self, nodes: usize, adversarial_stake: f64) -> Vec<f64> {
        let honest_total = 1.0 - adversarial_stake;
        if self.stake_weights.is_empty() {
            return vec![honest_total / nodes as f64; nodes];
        }
        assert_eq!(
            self.stake_weights.len(),
            nodes,
            "stake weights must cover every honest node"
        );
        assert!(
            self.stake_weights.iter().all(|&w| w > 0.0),
            "stake weights must be positive"
        );
        let sum: f64 = self.stake_weights.iter().sum();
        self.stake_weights
            .iter()
            .map(|&w| honest_total * w / sum)
            .collect()
    }
}

/// The generalized withholding attack: the private chain is grown as in
/// the classic attack, honest broadcasts are routed by a
/// [`NetworkSchedule`] plus per-node latency, and each release is
/// revealed `release_lag` slots after the decision — `L = 0` with the
/// [`NetworkSchedule::EdgeOfWindow`] schedule and zero latency is
/// **exactly** the built-in
/// [`WithholdingStrategy`](multihonest_sim::WithholdingStrategy).
#[derive(Debug, Clone)]
pub struct LaggedWithholding {
    private_tip: BlockId,
    public_best: BlockId,
    /// Slots between the release decision and the delivery of the
    /// withheld chain.
    pub release_lag: usize,
    /// Honest-broadcast routing.
    pub net: NetworkSchedule,
    /// Per-node extra latency.
    pub profile: NodeProfile,
}

impl LaggedWithholding {
    /// A fresh instance.
    pub fn new(
        release_lag: usize,
        net: NetworkSchedule,
        profile: NodeProfile,
    ) -> LaggedWithholding {
        LaggedWithholding {
            private_tip: BlockId::GENESIS,
            public_best: BlockId::GENESIS,
            release_lag,
            net,
            profile,
        }
    }
}

impl AdversaryStrategy for LaggedWithholding {
    fn name(&self) -> &'static str {
        "lagged-withholding"
    }

    fn passive_without_leaders(&self) -> bool {
        true // acts only on minted blocks and adversarial slot wins
    }

    fn lookahead(&self, delta: usize) -> usize {
        delta + self.release_lag
    }

    fn on_slot(&mut self, ctx: &mut dyn SlotContext, minted: &[BlockId]) {
        let slot = ctx.slot();
        let delta = ctx.delta();
        if ctx.adversarial_leader() {
            if ctx.height_of(self.private_tip) + 2 < ctx.height_of(self.public_best) {
                self.private_tip = self.public_best;
            }
            self.private_tip = ctx.mint_adversarial(self.private_tip);
        }
        for &b in minted {
            if ctx.height_of(b) > ctx.height_of(self.public_best) {
                self.public_best = b;
            }
            for r in 0..ctx.honest_nodes() {
                let delay = self.net.delay(slot, r, delta) + self.profile.latency_of(r);
                ctx.deliver_honest(slot + delay, r, b); // clamped into the Δ window
            }
        }
        if ctx.height_of(self.private_tip) > ctx.height_of(self.public_best) {
            let released = self.private_tip;
            for r in 0..ctx.honest_nodes() {
                ctx.deliver_adversarial(slot + self.release_lag, r, released);
            }
            if ctx.height_of(released) > ctx.height_of(self.public_best) {
                self.public_best = released;
            }
        }
    }
}

/// Honest-mirror play over a non-trivial network: adversarial leaders
/// behave honestly, but honest broadcasts are routed by the scenario's
/// [`NetworkSchedule`] and latency profile — isolating the network's
/// contribution to divergence from any chain-level attack.
#[derive(Debug, Clone)]
pub struct ScheduledHonest {
    public_best: BlockId,
    /// Honest-broadcast routing.
    pub net: NetworkSchedule,
    /// Per-node extra latency.
    pub profile: NodeProfile,
}

impl ScheduledHonest {
    /// A fresh instance.
    pub fn new(net: NetworkSchedule, profile: NodeProfile) -> ScheduledHonest {
        ScheduledHonest {
            public_best: BlockId::GENESIS,
            net,
            profile,
        }
    }
}

impl AdversaryStrategy for ScheduledHonest {
    fn name(&self) -> &'static str {
        "scheduled-honest"
    }

    fn passive_without_leaders(&self) -> bool {
        true // acts only on minted blocks and adversarial slot wins
    }

    fn on_slot(&mut self, ctx: &mut dyn SlotContext, minted: &[BlockId]) {
        let slot = ctx.slot();
        let delta = ctx.delta();
        if ctx.adversarial_leader() {
            let b = ctx.mint_adversarial(self.public_best);
            for r in 0..ctx.honest_nodes() {
                ctx.deliver_adversarial(slot, r, b);
            }
            if ctx.height_of(b) > ctx.height_of(self.public_best) {
                self.public_best = b;
            }
        }
        for &b in minted {
            if ctx.height_of(b) > ctx.height_of(self.public_best) {
                self.public_best = b;
            }
            for r in 0..ctx.honest_nodes() {
                let delay = self.net.delay(slot, r, delta) + self.profile.latency_of(r);
                ctx.deliver_honest(slot + delay, r, b);
            }
        }
    }
}

/// A named, fully specified workload: base config plus the scenario
/// knobs. [`Scenario::strategy`] compiles it to a fresh strategy object;
/// [`Scenario::schedule`] samples its (possibly stake-weighted) leader
/// schedule.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Report/table name.
    pub name: &'static str,
    /// Base configuration (nodes, stake, f, Δ, slots, tie-break, base
    /// strategy).
    pub config: SimConfig,
    /// Honest-node stake/latency profile.
    pub profile: NodeProfile,
    /// Honest-broadcast routing.
    pub net: NetworkSchedule,
    /// Withholding release lag `L` (ignored by non-withholding bases).
    pub release_lag: usize,
}

impl Scenario {
    /// A scenario that reproduces a built-in strategy exactly.
    pub fn builtin(name: &'static str, config: SimConfig) -> Scenario {
        let net = match config.strategy {
            Strategy::PrivateWithholding => NetworkSchedule::EdgeOfWindow,
            _ => NetworkSchedule::Immediate,
        };
        Scenario {
            name,
            config,
            profile: NodeProfile::uniform(),
            net,
            release_lag: 0,
        }
    }

    /// Compiles the scenario to a fresh strategy object for one run.
    ///
    /// Withholding bases become [`LaggedWithholding`] (which, at
    /// `L = 0`/edge-of-window/zero-latency, plays identically to the
    /// built-in); honest bases become [`ScheduledHonest`]; the balance
    /// attack keeps its built-in routing (its first-seen races *are* the
    /// attack).
    pub fn strategy(&self) -> Box<dyn AdversaryStrategy> {
        match self.config.strategy {
            Strategy::PrivateWithholding => Box::new(LaggedWithholding::new(
                self.release_lag,
                self.net,
                self.profile.clone(),
            )),
            Strategy::Honest => Box::new(ScheduledHonest::new(self.net, self.profile.clone())),
            Strategy::BalanceAttack => self.config.strategy.instantiate(),
        }
    }

    /// Samples the scenario's columnar leader schedule (stake-weighted
    /// when the profile sets weights).
    pub fn schedule(&self, seed: u64) -> ColumnarSchedule {
        ColumnarSchedule::sample_weighted(
            &self
                .profile
                .stakes(self.config.honest_nodes, self.config.adversarial_stake),
            self.config.adversarial_stake,
            self.config.active_slot_coeff,
            self.config.slots,
            seed,
        )
    }

    /// Samples the same schedule in the reference engine's layout — how
    /// the equivalence harness replays a scenario on `sim::reference`.
    pub fn reference_schedule(&self, seed: u64) -> multihonest_sim::LeaderSchedule {
        multihonest_sim::LeaderSchedule::sample_weighted(
            &self
                .profile
                .stakes(self.config.honest_nodes, self.config.adversarial_stake),
            self.config.adversarial_stake,
            self.config.active_slot_coeff,
            self.config.slots,
            seed,
        )
    }
}

/// The canonical scenario grid swept by the `scenario` binary: the three
/// built-ins plus the new parameterized workloads, all at the same base
/// parameters.
pub fn scenario_library(slots: usize) -> Vec<Scenario> {
    let base = SimConfig {
        honest_nodes: 10,
        adversarial_stake: 0.3,
        active_slot_coeff: 0.25,
        delta: 2,
        slots,
        tie_break: multihonest_sim::TieBreak::AdversarialOrder,
        strategy: Strategy::PrivateWithholding,
    };
    let honest = SimConfig {
        strategy: Strategy::Honest,
        ..base
    };
    let balance = SimConfig {
        strategy: Strategy::BalanceAttack,
        active_slot_coeff: 0.5,
        ..base
    };
    vec![
        Scenario::builtin("honest", honest),
        Scenario::builtin("private-withholding", base),
        Scenario::builtin("balance-attack", balance),
        Scenario {
            name: "withholding-lag4",
            release_lag: 4,
            ..Scenario::builtin("", base)
        },
        Scenario {
            name: "withholding-lag16",
            release_lag: 16,
            ..Scenario::builtin("", base)
        },
        Scenario {
            name: "withholding-burst",
            net: NetworkSchedule::Burst {
                period: 16,
                width: 4,
            },
            ..Scenario::builtin("", base)
        },
        Scenario {
            name: "withholding-jitter",
            net: NetworkSchedule::Jitter { salt: 0xC0FFEE },
            ..Scenario::builtin("", base)
        },
        Scenario {
            name: "honest-jitter",
            net: NetworkSchedule::Jitter { salt: 0xBEEF },
            ..Scenario::builtin("", honest)
        },
        Scenario {
            name: "withholding-zipf-stake",
            profile: NodeProfile::zipf(base.honest_nodes),
            ..Scenario::builtin("", base)
        },
        Scenario {
            name: "withholding-slow-half",
            // Latency only matters under a fast schedule: extra delay on
            // top of edge-of-window delivery would clamp back to Δ.
            net: NetworkSchedule::Immediate,
            profile: NodeProfile::uniform().with_latency(
                (0..base.honest_nodes)
                    .map(|i| (i % 2) * base.delta)
                    .collect(),
            ),
            ..Scenario::builtin("", base)
        },
    ]
}

/// A named faulty workload: a base config plus a [`FaultPlan`]. Unlike
/// [`Scenario`] (whose knobs ride *inside* the Δ window), a fault
/// scenario degrades the network *beyond* Δ — which is exactly what the
/// conservatism harness quantifies: every plan here is **bounded**
/// ([`FaultPlan::worst_case_delta`] is `Some`), and the induced Δ′ stays
/// inside Theorem 7's admissible region for the sparse base parameters
/// (`f = 0.05`, 10% adversarial stake admit `Δ′ ≲ 11`).
#[derive(Debug, Clone)]
pub struct FaultScenario {
    /// Report/table name.
    pub name: &'static str,
    /// Base configuration (sparse `f`, small Δ — see [`fault_library`]).
    pub config: SimConfig,
    /// The injected faults.
    pub plan: FaultPlan,
}

impl FaultScenario {
    /// Samples the scenario's columnar leader schedule.
    pub fn schedule(&self, seed: u64) -> ColumnarSchedule {
        ColumnarSchedule::sample(
            self.config.honest_nodes,
            self.config.adversarial_stake,
            self.config.active_slot_coeff,
            self.config.slots,
            seed,
        )
    }

    /// Samples the same schedule in the reference engine's layout — how
    /// the equivalence harness replays a faulty scenario on
    /// `sim::reference`.
    pub fn reference_schedule(&self, seed: u64) -> multihonest_sim::LeaderSchedule {
        multihonest_sim::LeaderSchedule::sample(
            self.config.honest_nodes,
            self.config.adversarial_stake,
            self.config.active_slot_coeff,
            self.config.slots,
            seed,
        )
    }

    /// The plan's static Δ′ bound over the scenario's base Δ.
    pub fn worst_case_delta(&self) -> Option<usize> {
        self.plan.worst_case_delta(self.config.delta)
    }
}

/// The canonical fault grid swept by the `faults` binary: partitions,
/// eclipses, crash–recovery (including a crash at genesis), windowed
/// message loss, a chained compound window, and one fault × attack
/// combination — all over the same sparse base (10 nodes, 10%
/// adversarial stake, `f = 0.05`, `Δ = 1`) so the Δ′-model stays
/// admissible. Windows are placed at fixed fractions of the horizon and
/// kept short (≤ 6 slots): the static Δ′ bound is a window-run length,
/// not a fraction of the run.
///
/// # Panics
///
/// Panics when `slots < 80` (the windows would collide or escape the
/// horizon).
pub fn fault_library(slots: usize) -> Vec<FaultScenario> {
    assert!(slots >= 80, "fault_library needs at least 80 slots");
    let base = SimConfig {
        honest_nodes: 10,
        adversarial_stake: 0.1,
        active_slot_coeff: 0.05,
        delta: 1,
        slots,
        tie_break: multihonest_sim::TieBreak::AdversarialOrder,
        strategy: Strategy::Honest,
    };
    let withholding = SimConfig {
        strategy: Strategy::PrivateWithholding,
        ..base
    };
    let halves = || {
        vec![
            (0..base.honest_nodes / 2).collect::<Vec<_>>(),
            (base.honest_nodes / 2..base.honest_nodes).collect(),
        ]
    };
    let stride = slots / 8;
    vec![
        FaultScenario {
            name: "partition-halves",
            config: base,
            plan: FaultPlan::new()
                .with(FaultDirective::Partition {
                    groups: halves(),
                    start: stride,
                    heal_slot: stride + 4,
                })
                .with(FaultDirective::Partition {
                    groups: halves(),
                    start: 4 * stride,
                    heal_slot: 4 * stride + 4,
                }),
        },
        FaultScenario {
            name: "eclipse-victim",
            config: base,
            plan: FaultPlan::new()
                .with(FaultDirective::Eclipse {
                    node: 3,
                    start: 2 * stride,
                    until: 2 * stride + 5,
                })
                .with(FaultDirective::Eclipse {
                    node: 3,
                    start: 6 * stride,
                    until: 6 * stride + 3,
                }),
        },
        FaultScenario {
            name: "crash-recover",
            config: base,
            plan: FaultPlan::new().with(FaultDirective::Crash {
                node: 7,
                at: 3 * stride,
                recover_slot: 3 * stride + 6,
            }),
        },
        FaultScenario {
            name: "crash-at-genesis",
            config: base,
            plan: FaultPlan::new().with(FaultDirective::Crash {
                node: 0,
                at: 1,
                recover_slot: 5,
            }),
        },
        FaultScenario {
            name: "lossy-window",
            config: base,
            plan: FaultPlan::new()
                .with(FaultDirective::MessageLoss {
                    p: 0.4,
                    salt: 0xFA17,
                    start: 2 * stride,
                    until: 2 * stride + 5,
                })
                .with(FaultDirective::MessageLoss {
                    p: 0.4,
                    salt: 0x5EED,
                    start: 5 * stride,
                    until: 5 * stride + 5,
                }),
        },
        FaultScenario {
            name: "compound-chain",
            config: base,
            // Eclipse chains into an overlapping loss window: the merged
            // run [stride, stride + 6) bounds the extra delay at 6, not
            // at the longest single window.
            plan: FaultPlan::new()
                .with(FaultDirective::Eclipse {
                    node: 1,
                    start: stride,
                    until: stride + 3,
                })
                .with(FaultDirective::MessageLoss {
                    p: 0.5,
                    salt: 0xC0DE,
                    start: stride + 2,
                    until: stride + 6,
                })
                .with(FaultDirective::Crash {
                    node: 4,
                    at: 5 * stride,
                    recover_slot: 5 * stride + 3,
                }),
        },
        FaultScenario {
            name: "partition-withholding",
            config: withholding,
            plan: FaultPlan::new().with(FaultDirective::Partition {
                groups: halves(),
                start: 3 * stride,
                heal_slot: 3 * stride + 4,
            }),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ColumnarSimulation;
    use multihonest_sim::{Simulation, TieBreak};

    fn base(slots: usize) -> SimConfig {
        SimConfig {
            honest_nodes: 6,
            adversarial_stake: 0.35,
            active_slot_coeff: 0.3,
            delta: 3,
            slots,
            tie_break: TieBreak::AdversarialOrder,
            strategy: Strategy::PrivateWithholding,
        }
    }

    #[test]
    fn lag_zero_plays_identically_to_builtin_withholding() {
        let config = base(400);
        let mut lagged =
            LaggedWithholding::new(0, NetworkSchedule::EdgeOfWindow, NodeProfile::uniform());
        let a = ColumnarSimulation::run_with(&config, 9, &mut lagged);
        let b = ColumnarSimulation::run(&config, 9);
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.rollbacks(), b.rollbacks());
        for t in 1..=config.slots {
            assert_eq!(a.tips_at(t), b.tips_at(t), "slot {t}");
        }
    }

    #[test]
    fn immediate_scheduled_honest_matches_builtin_honest() {
        let mut config = base(300);
        config.strategy = Strategy::Honest;
        let mut sch = ScheduledHonest::new(NetworkSchedule::Immediate, NodeProfile::uniform());
        let a = ColumnarSimulation::run_with(&config, 5, &mut sch);
        let b = ColumnarSimulation::run(&config, 5);
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn release_lag_defers_rollbacks() {
        // A single honest node cannot roll back on its own (its chain
        // only ever extends between adversarial deliveries), so every
        // rollback is a release landing — and a lag-L release cannot land
        // before the eager one it defers.
        let config = SimConfig {
            honest_nodes: 1,
            adversarial_stake: 0.4,
            ..base(2_000)
        };
        let run = |lag: usize| {
            let mut s =
                LaggedWithholding::new(lag, NetworkSchedule::EdgeOfWindow, NodeProfile::uniform());
            ColumnarSimulation::run_with(&config, 3, &mut s)
        };
        let eager = run(0);
        let lagged = run(8);
        assert!(eager.metrics().rollback_count > 0, "attack must bite");
        assert!(
            lagged.metrics().rollback_count > 0,
            "lagged attack must bite"
        );
        // Both runs are identical up to the first release decision; the
        // lagged run delivers nothing adversarial for 8 further slots, so
        // its first rollback comes strictly later.
        assert!(
            lagged.rollbacks()[0].0 >= eager.rollbacks()[0].0 + 8,
            "first rollback must be deferred: {} vs {}",
            eager.rollbacks()[0].0,
            lagged.rollbacks()[0].0
        );
        assert_ne!(eager.rollbacks(), lagged.rollbacks());
    }

    #[test]
    fn network_schedules_respect_delta_on_the_reference_engine() {
        // Run scenario strategies on the *reference* engine and validate
        // the extracted fork against the Δ axioms — no schedule, lag or
        // latency profile can break (F4Δ), because the clamp is
        // engine-side.
        let config = base(250);
        let scenarios = [
            NetworkSchedule::EdgeOfWindow,
            NetworkSchedule::Immediate,
            NetworkSchedule::Burst {
                period: 8,
                width: 3,
            },
            NetworkSchedule::Jitter { salt: 7 },
        ];
        for net in scenarios {
            let profile = NodeProfile::uniform().with_latency(vec![0, 9, 1, 2, 0, 5]);
            let mut s = LaggedWithholding::new(5, net, profile);
            let sim = Simulation::run_with(&config, 21, &mut s);
            assert_eq!(
                sim.fork().validate_against_axioms(),
                Ok(()),
                "schedule {net:?} broke the Δ axioms"
            );
        }
    }

    #[test]
    fn schedule_delays_stay_in_window() {
        for net in [
            NetworkSchedule::EdgeOfWindow,
            NetworkSchedule::Immediate,
            NetworkSchedule::Burst {
                period: 5,
                width: 2,
            },
            NetworkSchedule::Jitter { salt: 99 },
        ] {
            for delta in [0usize, 1, 4] {
                for slot in 1..100 {
                    for r in 0..8 {
                        assert!(net.delay(slot, r, delta) <= delta, "{net:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn zipf_profile_shifts_stake() {
        let p = NodeProfile::zipf(4);
        let stakes = p.stakes(4, 0.2);
        assert!((stakes.iter().sum::<f64>() - 0.8).abs() < 1e-12);
        assert!(stakes[0] > stakes[3]);
        let u = NodeProfile::uniform().stakes(4, 0.2);
        assert!(u.iter().all(|&s| (s - 0.2).abs() < 1e-12));
    }

    #[test]
    fn fault_library_is_bounded_and_admissible() {
        let lib = fault_library(400);
        assert!(lib.len() >= 7);
        let names: std::collections::HashSet<&str> = lib.iter().map(|s| s.name).collect();
        assert_eq!(
            names.len(),
            lib.len(),
            "fault scenario names must be unique"
        );
        for sc in &lib {
            sc.plan.validate(sc.config.honest_nodes);
            assert!(
                !sc.plan.is_empty(),
                "{}: library plans must inject",
                sc.name
            );
            let dp = sc
                .worst_case_delta()
                .unwrap_or_else(|| panic!("{}: library plans must be bounded", sc.name));
            assert!(
                dp <= 11,
                "{}: Δ′ = {dp} escapes the admissible region of the sparse base",
                sc.name
            );
        }
        let compound = lib.iter().find(|s| s.name == "compound-chain").unwrap();
        assert_eq!(
            compound.plan.worst_case_extra_delay(),
            Some(6),
            "chained windows must merge in the bound"
        );
    }

    #[test]
    fn fault_scenarios_degrade_but_stay_within_the_static_bound() {
        for sc in fault_library(400) {
            let schedule = sc.schedule(11);
            let mut strategy = sc.config.strategy.instantiate();
            let (sim, ledger) = ColumnarSimulation::run_with_schedule_faults(
                &sc.config,
                &schedule,
                strategy.as_mut(),
                &sc.plan,
            );
            assert_eq!(sim.metrics().slots, 400, "{}", sc.name);
            assert_eq!(ledger.dropped, 0, "{}: bounded plans drop nothing", sc.name);
            let bound = sc.worst_case_delta().unwrap();
            assert!(
                ledger.worst_effective_delta <= bound,
                "{}: observed effective Δ {} exceeds the static bound {bound}",
                sc.name,
                ledger.worst_effective_delta
            );
            // A chained window may re-park what an earlier one released,
            // so per-window healing is bounded by the latest window end
            // in the plan, not by each window's own end.
            let last_end = ledger.windows.iter().map(|w| w.end).max().unwrap();
            for w in &ledger.windows {
                if let Some(healed) = w.healed_by {
                    assert!(
                        healed <= last_end,
                        "{}: window {} healed at {healed}, after the last window end {last_end}",
                        sc.name,
                        w.directive
                    );
                }
            }
        }
    }

    #[test]
    fn library_covers_the_advertised_grid() {
        let lib = scenario_library(500);
        assert!(lib.len() >= 9);
        let names: std::collections::HashSet<&str> = lib.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), lib.len(), "scenario names must be unique");
        let mut fingerprints = std::collections::HashMap::new();
        for sc in &lib {
            // Every scenario compiles and runs on the columnar engine.
            let mut strategy = sc.strategy();
            let schedule = sc.schedule(2);
            let sim =
                ColumnarSimulation::run_with_schedule(&sc.config, &schedule, strategy.as_mut());
            assert_eq!(sim.metrics().slots, 500, "{}", sc.name);
            // No scenario may be a disguised duplicate of another (e.g. a
            // latency profile swallowed by the Δ clamp).
            if let Some(prev) = fingerprints.insert(crate::execution_fingerprint(&sim), sc.name) {
                panic!("scenarios {prev:?} and {:?} execute identically", sc.name);
            }
        }
    }
}
