//! Per-phase timing instrumentation for the columnar slot kernel,
//! unified onto the [`multihonest_obs::Recorder`] surface.
//!
//! The engine loop is generic over a [`Recorder`]; every plain entry
//! point passes the no-op `()` implementation, which compiles to nothing
//! — the hot loop pays zero instructions for the instrumentation hooks.
//! `scenario bench-report --profile` threads a [`PhaseTimes`] through
//! instead ([`ColumnarSimulation::run_streaming_profiled`]) and prints
//! the per-phase breakdown next to the headline Mslots/s figure.
//!
//! [`PhaseTimes`] is a thin adapter over [`multihonest_obs::LapTimes`]:
//! the kernel charges laps under [`Phase::label`] names, and the adapter
//! renders the fixed six-phase breakdown exactly as the pre-obs profiler
//! did (byte-compatible `--profile` output).
//!
//! Timestamps are taken at phase *boundaries* (one `Instant::now` per
//! executed phase per slot), so a profiled run is slower than a plain one
//! — the breakdown is for finding where the time goes, not for quoting
//! absolute throughput.
//!
//! [`ColumnarSimulation::run_streaming_profiled`]:
//!     crate::ColumnarSimulation::run_streaming_profiled

use multihonest_obs::{LapTimes, Recorder};

/// The phases of one slot of the columnar kernel, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Honest leaders minting and adopting their own blocks.
    Mint,
    /// The adversarial strategy's `on_slot` (observation + scheduling).
    Strategy,
    /// Draining the delivery ring and applying the fault predicate.
    Drain,
    /// Applying due deliveries to node views (known-set merges, adoption,
    /// rollback detection).
    Merge,
    /// Distinct-tip fold: uniq/divergence computation, the streaming
    /// `DivergenceFold`, and the metrics sink.
    Fold,
    /// The attached `SlotHook` (e.g. the streaming fork pipeline).
    Hook,
}

impl Phase {
    /// All phases, in execution order.
    pub const ALL: [Phase; 6] = [
        Phase::Mint,
        Phase::Strategy,
        Phase::Drain,
        Phase::Merge,
        Phase::Fold,
        Phase::Hook,
    ];

    /// A short stable label for reports — also the lap label the kernel
    /// charges through the obs [`Recorder`].
    pub fn label(self) -> &'static str {
        match self {
            Phase::Mint => "mint",
            Phase::Strategy => "strategy",
            Phase::Drain => "drain",
            Phase::Merge => "merge",
            Phase::Fold => "fold",
            Phase::Hook => "hook",
        }
    }

    /// The phase's index into [`Phase::ALL`]-ordered arrays.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            Phase::Mint => 0,
            Phase::Strategy => 1,
            Phase::Drain => 2,
            Phase::Merge => 3,
            Phase::Fold => 4,
            Phase::Hook => 5,
        }
    }
}

/// Accumulated wall-clock time per kernel phase — the `--profile`
/// renderer over an obs lap profile.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimes {
    laps: LapTimes,
}

impl PhaseTimes {
    /// A fresh, empty profile.
    pub fn new() -> PhaseTimes {
        PhaseTimes::default()
    }

    /// Slots observed so far.
    pub fn slots(&self) -> u64 {
        self.laps.starts()
    }

    /// Nanoseconds charged to `phase` so far.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.laps.nanos(phase.label())
    }

    /// Total nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        Phase::ALL.iter().map(|&p| self.phase_nanos(p)).sum()
    }

    /// The underlying obs lap profile.
    pub fn laps(&self) -> &LapTimes {
        &self.laps
    }

    /// The per-phase breakdown as `(label, seconds, share)` rows, shares
    /// summing to 1 (empty profile reports zero shares).
    pub fn rows(&self) -> Vec<(&'static str, f64, f64)> {
        let total = self.total_nanos();
        Phase::ALL
            .iter()
            .map(|&p| {
                let ns = self.phase_nanos(p);
                let share = if total == 0 {
                    0.0
                } else {
                    ns as f64 / total as f64
                };
                (p.label(), ns as f64 / 1e9, share)
            })
            .collect()
    }
}

impl std::fmt::Display for PhaseTimes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "phase breakdown over {} slots:", self.slots())?;
        for (label, secs, share) in self.rows() {
            writeln!(f, "  {label:<8} {secs:>9.4} s  {:>5.1}%", share * 100.0)?;
        }
        let total = self.total_nanos() as f64 / 1e9;
        let mslots = if total > 0.0 {
            self.slots() as f64 / total / 1e6
        } else {
            0.0
        };
        write!(
            f,
            "  total    {total:>9.4} s  ({mslots:.2} Mslots/s instrumented)"
        )
    }
}

impl Recorder for PhaseTimes {
    #[inline]
    fn lap_start(&mut self) {
        self.laps.lap_start();
    }

    #[inline]
    fn lap(&mut self, label: &'static str) {
        self.laps.lap(label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_report() {
        let mut p = PhaseTimes::new();
        p.lap_start();
        p.lap(Phase::Mint.label());
        p.lap(Phase::Fold.label());
        p.lap_start();
        p.lap(Phase::Merge.label());
        assert_eq!(p.slots(), 2);
        let rows = p.rows();
        assert_eq!(rows.len(), 6);
        let shares: f64 = rows.iter().map(|r| r.2).sum();
        assert!(shares == 0.0 || (shares - 1.0).abs() < 1e-9);
        let text = p.to_string();
        assert!(text.contains("mint") && text.contains("Mslots/s"));
    }

    #[test]
    fn labels_are_unique_and_ordered() {
        let labels: Vec<_> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            ["mint", "strategy", "drain", "merge", "fold", "hook"]
        );
    }

    #[test]
    fn display_format_is_byte_stable() {
        // The exact empty-profile rendering `--profile` consumers see;
        // pins the byte-compatibility contract of the obs unification.
        let p = PhaseTimes::new();
        let expect = "phase breakdown over 0 slots:\n\
                      \x20 mint        0.0000 s    0.0%\n\
                      \x20 strategy    0.0000 s    0.0%\n\
                      \x20 drain       0.0000 s    0.0%\n\
                      \x20 merge       0.0000 s    0.0%\n\
                      \x20 fold        0.0000 s    0.0%\n\
                      \x20 hook        0.0000 s    0.0%\n\
                      \x20 total       0.0000 s  (0.00 Mslots/s instrumented)";
        assert_eq!(p.to_string(), expect);
    }
}
