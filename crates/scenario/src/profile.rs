//! Per-phase timing instrumentation for the columnar slot kernel.
//!
//! The engine loop is generic over a [`PhaseProfiler`]; every plain entry
//! point passes the no-op `()` implementation, which compiles to nothing
//! — the hot loop pays zero instructions for the instrumentation hooks.
//! `scenario bench-report --profile` threads a [`PhaseTimes`] through
//! instead ([`ColumnarSimulation::run_streaming_profiled`]) and prints
//! the per-phase breakdown next to the headline Mslots/s figure.
//!
//! Timestamps are taken at phase *boundaries* (one `Instant::now` per
//! executed phase per slot), so a profiled run is slower than a plain one
//! — the breakdown is for finding where the time goes, not for quoting
//! absolute throughput.
//!
//! [`ColumnarSimulation::run_streaming_profiled`]:
//!     crate::ColumnarSimulation::run_streaming_profiled

use std::time::Instant;

/// The phases of one slot of the columnar kernel, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Honest leaders minting and adopting their own blocks.
    Mint,
    /// The adversarial strategy's `on_slot` (observation + scheduling).
    Strategy,
    /// Draining the delivery ring and applying the fault predicate.
    Drain,
    /// Applying due deliveries to node views (known-set merges, adoption,
    /// rollback detection).
    Merge,
    /// Distinct-tip fold: uniq/divergence computation, the streaming
    /// `DivergenceFold`, and the metrics sink.
    Fold,
    /// The attached `SlotHook` (e.g. the streaming fork pipeline).
    Hook,
}

impl Phase {
    /// All phases, in execution order.
    pub const ALL: [Phase; 6] = [
        Phase::Mint,
        Phase::Strategy,
        Phase::Drain,
        Phase::Merge,
        Phase::Fold,
        Phase::Hook,
    ];

    /// A short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Mint => "mint",
            Phase::Strategy => "strategy",
            Phase::Drain => "drain",
            Phase::Merge => "merge",
            Phase::Fold => "fold",
            Phase::Hook => "hook",
        }
    }

    /// The phase's index into [`Phase::ALL`]-ordered arrays.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            Phase::Mint => 0,
            Phase::Strategy => 1,
            Phase::Drain => 2,
            Phase::Merge => 3,
            Phase::Fold => 4,
            Phase::Hook => 5,
        }
    }
}

/// The engine-loop instrumentation surface. The no-op `()` implementation
/// is what every plain entry point uses; it inlines to nothing.
pub trait PhaseProfiler {
    /// Marks the start of a slot.
    #[inline]
    fn slot_start(&mut self) {}

    /// Charges the time since the previous mark to `phase` and re-marks.
    /// Phases skipped by the kernel's fast paths are simply never
    /// charged.
    #[inline]
    fn lap(&mut self, phase: Phase) {
        let _ = phase;
    }
}

/// The zero-cost profiler of the plain entry points.
impl PhaseProfiler for () {}

/// Accumulated wall-clock time per kernel phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimes {
    nanos: [u64; 6],
    slots: u64,
    last: Option<Instant>,
}

impl PhaseTimes {
    /// A fresh, empty profile.
    pub fn new() -> PhaseTimes {
        PhaseTimes::default()
    }

    /// Slots observed so far.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Nanoseconds charged to `phase` so far.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.idx()]
    }

    /// Total nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// The per-phase breakdown as `(label, seconds, share)` rows, shares
    /// summing to 1 (empty profile reports zero shares).
    pub fn rows(&self) -> Vec<(&'static str, f64, f64)> {
        let total = self.total_nanos();
        Phase::ALL
            .iter()
            .map(|&p| {
                let ns = self.phase_nanos(p);
                let share = if total == 0 {
                    0.0
                } else {
                    ns as f64 / total as f64
                };
                (p.label(), ns as f64 / 1e9, share)
            })
            .collect()
    }
}

impl std::fmt::Display for PhaseTimes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "phase breakdown over {} slots:", self.slots)?;
        for (label, secs, share) in self.rows() {
            writeln!(f, "  {label:<8} {secs:>9.4} s  {:>5.1}%", share * 100.0)?;
        }
        let total = self.total_nanos() as f64 / 1e9;
        let mslots = if total > 0.0 {
            self.slots as f64 / total / 1e6
        } else {
            0.0
        };
        write!(
            f,
            "  total    {total:>9.4} s  ({mslots:.2} Mslots/s instrumented)"
        )
    }
}

impl PhaseProfiler for PhaseTimes {
    #[inline]
    fn slot_start(&mut self) {
        self.slots += 1;
        self.last = Some(Instant::now());
    }

    #[inline]
    fn lap(&mut self, phase: Phase) {
        let now = Instant::now();
        if let Some(last) = self.last {
            self.nanos[phase.idx()] += now.duration_since(last).as_nanos() as u64;
        }
        self.last = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_report() {
        let mut p = PhaseTimes::new();
        p.slot_start();
        p.lap(Phase::Mint);
        p.lap(Phase::Fold);
        p.slot_start();
        p.lap(Phase::Merge);
        assert_eq!(p.slots(), 2);
        let rows = p.rows();
        assert_eq!(rows.len(), 6);
        let shares: f64 = rows.iter().map(|r| r.2).sum();
        assert!(shares == 0.0 || (shares - 1.0).abs() < 1e-9);
        let text = p.to_string();
        assert!(text.contains("mint") && text.contains("Mslots/s"));
    }

    #[test]
    fn labels_are_unique_and_ordered() {
        let labels: Vec<_> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            ["mint", "strategy", "drain", "merge", "fold", "hook"]
        );
    }
}
