//! Random and exhaustive fork generation for cross-validation.
//!
//! The margin recurrences of `multihonest-margin` (paper Theorem 5) claim
//! to equal a supremum over **all** forks. These generators provide the
//! other side of that equality in tests:
//!
//! * [`random_fork`] draws a uniformly-haphazard valid fork — every fork it
//!   can emit satisfies (F1)–(F4) — so `µ_x(F) ≤ µ_x(y)` can be asserted on
//!   arbitrary samples;
//! * [`enumerate_forks`] visits **every** closed fork of a tiny string
//!   (with bounded per-slot multiplicities), so the supremum itself can be
//!   checked exhaustively.

use multihonest_chars::{CharString, Symbol};
use rand::Rng;

use crate::fork::{Fork, VertexId};

/// Limits on per-slot vertex multiplicities for generated forks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerateConfig {
    /// Maximum vertices added for a multiply honest (`H`) slot (≥ 1).
    pub max_multi_honest: usize,
    /// Maximum vertices added for an adversarial (`A`) slot (may be 0).
    pub max_adversarial: usize,
}

impl Default for GenerateConfig {
    fn default() -> GenerateConfig {
        GenerateConfig {
            max_multi_honest: 2,
            max_adversarial: 2,
        }
    }
}

/// Candidate parents for a new honest vertex at `slot`: any vertex whose
/// depth is at least the maximum honest depth among earlier slots (so the
/// new vertex's depth strictly exceeds it, satisfying (F4)).
fn honest_parent_candidates(fork: &Fork, slot: usize) -> Vec<VertexId> {
    let d_req = fork.max_honest_depth_before(slot);
    fork.vertices()
        .filter(|v| fork.depth(*v) >= d_req && fork.label(*v) < slot)
        .collect()
}

/// Samples a random valid fork for `w`.
///
/// Honest vertices pick a uniformly random admissible parent; `H` slots add
/// a uniform `1..=max_multi_honest` vertices; `A` slots add a uniform
/// `0..=max_adversarial` vertices under uniformly random parents.
/// The result always satisfies axioms (F1)–(F4), but is **not** necessarily
/// closed (adversarial leaves may remain).
pub fn random_fork<R: Rng + ?Sized>(w: &CharString, rng: &mut R, cfg: GenerateConfig) -> Fork {
    let mut fork = Fork::new(w.clone());
    for (slot, sym) in w.iter_slots() {
        match sym {
            Symbol::UniqueHonest => {
                let cands = honest_parent_candidates(&fork, slot);
                let p = cands[rng.gen_range(0..cands.len())];
                fork.push_vertex(p, slot);
            }
            Symbol::MultiHonest => {
                let count = rng.gen_range(1..=cfg.max_multi_honest.max(1));
                for _ in 0..count {
                    let cands = honest_parent_candidates(&fork, slot);
                    let p = cands[rng.gen_range(0..cands.len())];
                    fork.push_vertex(p, slot);
                }
            }
            Symbol::Adversarial => {
                let count = rng.gen_range(0..=cfg.max_adversarial);
                for _ in 0..count {
                    let cands: Vec<VertexId> =
                        fork.vertices().filter(|v| fork.label(*v) < slot).collect();
                    let p = cands[rng.gen_range(0..cands.len())];
                    fork.push_vertex(p, slot);
                }
            }
        }
    }
    fork
}

/// Prunes adversarial leaves until the fork is closed, returning a closed
/// sub-fork for the same string (every fork contains a maximal closed
/// sub-fork obtained by repeatedly deleting adversarial leaves).
pub fn close(fork: &Fork) -> Fork {
    // Mark vertices to keep: those with an honest descendant-or-self.
    let n = fork.vertex_count();
    let mut keep = vec![false; n];
    // Process in reverse insertion order: children always come after
    // parents, so a reverse scan sees children first.
    for v in fork.vertices().collect::<Vec<_>>().into_iter().rev() {
        let has_kept_child = fork.children(v).iter().any(|c| keep[c.index()]);
        keep[v.index()] = has_kept_child || fork.is_honest(v);
    }
    let mut out = Fork::new(fork.string().clone());
    let mut remap = vec![VertexId::ROOT; n];
    for v in fork.vertices() {
        if v == VertexId::ROOT || !keep[v.index()] {
            continue;
        }
        let p = fork.parent(v).expect("non-root");
        debug_assert!(keep[p.index()], "kept vertex with pruned parent");
        remap[v.index()] = out.push_vertex(remap[p.index()], fork.label(v));
    }
    out
}

/// Visits every closed fork of `w` with per-slot multiplicities bounded by
/// `cfg`, calling `visit` on each.
///
/// Runtime is exponential in `|w|`; intended for `|w| ≤ 5` in tests.
pub fn enumerate_forks<F: FnMut(&Fork)>(w: &CharString, cfg: GenerateConfig, visit: &mut F) {
    let fork = Fork::new(w.clone());
    recurse(&fork, w, 1, cfg, visit);
}

fn recurse<F: FnMut(&Fork)>(
    fork: &Fork,
    w: &CharString,
    slot: usize,
    cfg: GenerateConfig,
    visit: &mut F,
) {
    if slot > w.len() {
        let closed = close(fork);
        visit(&closed);
        return;
    }
    match w.get(slot) {
        Symbol::UniqueHonest => {
            for p in honest_parent_candidates(fork, slot) {
                let mut f = fork.clone();
                f.push_vertex(p, slot);
                recurse(&f, w, slot + 1, cfg, visit);
            }
        }
        Symbol::MultiHonest => {
            // Choose an unordered multiset of parents of size 1..=cap.
            let cands = honest_parent_candidates(fork, slot);
            for count in 1..=cfg.max_multi_honest.max(1) {
                enumerate_multisets(&cands, count, &mut |parents| {
                    let mut f = fork.clone();
                    for &p in parents {
                        f.push_vertex(p, slot);
                    }
                    recurse(&f, w, slot + 1, cfg, visit);
                });
            }
        }
        Symbol::Adversarial => {
            let cands: Vec<VertexId> = fork.vertices().filter(|v| fork.label(*v) < slot).collect();
            for count in 0..=cfg.max_adversarial {
                enumerate_multisets(&cands, count, &mut |parents| {
                    let mut f = fork.clone();
                    for &p in parents {
                        f.push_vertex(p, slot);
                    }
                    recurse(&f, w, slot + 1, cfg, visit);
                });
            }
        }
    }
}

/// Enumerates all non-decreasing index multisets of size `count` over
/// `items`, invoking `visit` with each selection.
fn enumerate_multisets<F: FnMut(&[VertexId])>(items: &[VertexId], count: usize, visit: &mut F) {
    let mut selection = Vec::with_capacity(count);
    fn go<F: FnMut(&[VertexId])>(
        items: &[VertexId],
        count: usize,
        start: usize,
        selection: &mut Vec<VertexId>,
        visit: &mut F,
    ) {
        if selection.len() == count {
            visit(selection);
            return;
        }
        for i in start..items.len() {
            selection.push(items[i]);
            go(items, count, i, selection, visit);
            selection.pop();
        }
    }
    if count == 0 {
        visit(&selection);
    } else {
        go(items, count, 0, &mut selection, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn w(s: &str) -> CharString {
        s.parse().unwrap()
    }

    #[test]
    fn random_forks_are_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        for s in ["hAhAh", "HHAAH", "hHAhHAhA", "AAAA", "hhhh"] {
            let ws = w(s);
            for _ in 0..50 {
                let f = random_fork(&ws, &mut rng, GenerateConfig::default());
                assert!(f.validate().is_ok(), "invalid fork for {s}");
            }
        }
    }

    #[test]
    fn close_produces_closed_subfork() {
        let mut rng = StdRng::seed_from_u64(4);
        let ws = w("hAhAAhA");
        for _ in 0..50 {
            let f = random_fork(&ws, &mut rng, GenerateConfig::default());
            let c = close(&f);
            assert!(c.is_closed());
            assert!(c.validate().is_ok());
            assert!(c.vertex_count() <= f.vertex_count());
            assert!(
                c.is_fork_prefix_of(&f),
                "closed sub-fork embeds into original"
            );
        }
    }

    #[test]
    fn enumeration_counts_small_cases() {
        // w = "h": exactly one fork (root + the honest vertex).
        let mut count = 0;
        enumerate_forks(&w("h"), GenerateConfig::default(), &mut |f| {
            assert!(f.is_closed());
            assert!(f.validate().is_ok());
            count += 1;
        });
        assert_eq!(count, 1);
        // w = "A": adversarial multiplicity 0..=2, but closing prunes all
        // adversarial leaves → all collapse to the trivial fork (visited
        // once per raw shape).
        let mut shapes = std::collections::HashSet::new();
        enumerate_forks(&w("A"), GenerateConfig::default(), &mut |f| {
            shapes.insert(f.vertex_count());
        });
        assert_eq!(shapes.len(), 1);
        // w = "hH": honest vertex at slot 1; H slot may add 1 or 2 vertices,
        // parents must have depth ≥ 1 (only the slot-1 vertex) → exactly
        // two closed forks (one or two vertices at slot 2).
        let mut count = 0;
        enumerate_forks(&w("hH"), GenerateConfig::default(), &mut |f| {
            assert!(f.validate().is_ok());
            count += 1;
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn enumerated_forks_are_all_valid_and_closed() {
        for s in ["hAh", "HAH", "AhH", "hHA"] {
            enumerate_forks(&w(s), GenerateConfig::default(), &mut |f| {
                assert!(f.is_closed(), "{s}");
                assert!(f.validate().is_ok(), "{s}");
            });
        }
    }
}
