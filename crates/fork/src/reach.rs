//! Gap, reserve, reach and (relative) margin computed **by definition** on
//! closed forks (paper Definitions 13, 14, 16, 17).
//!
//! These quantities drive the optimal-adversary analysis of Section 6:
//!
//! * `gap(t)` — how far the tine `t` trails the longest tine;
//! * `reserve(t)` — how many adversarial slots remain after `t`'s tip;
//! * `reach(t) = reserve(t) − gap(t)` — the adversary's budget for
//!   extending `t` into a maximum-length competitor;
//! * `ρ(F) = max_t reach(t)`;
//! * `µ_x(F)` — the *relative margin*: the best second reach among pairs of
//!   tines that are disjoint over the suffix `y` of `w = xy`.
//!
//! The computations here are deliberately naive (quadratic pair scans):
//! they transcribe the definitions and serve as ground truth for the O(n)
//! recurrences in `multihonest-margin` (paper Theorem 5).

use crate::fork::{Fork, VertexId};

/// Reach/margin analysis of a **closed** fork.
///
/// # Examples
///
/// ```
/// use multihonest_fork::{Fork, ReachAnalysis, VertexId};
///
/// // w = hA: one honest vertex; the adversarial slot contributes reserve.
/// let mut f = Fork::new("hA".parse()?);
/// let a = f.push_vertex(VertexId::ROOT, 1);
/// let r = ReachAnalysis::new(&f);
/// // Tine at `a`: gap 0 (it is longest), reserve 1 (slot 2 is A) → reach 1.
/// assert_eq!(r.reach(a), 1);
/// // The root tine: gap 1, reserve 1 → reach 0.
/// assert_eq!(r.reach(VertexId::ROOT), 0);
/// assert_eq!(r.rho(), 1);
/// # Ok::<(), multihonest_chars::ParseCharStringError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReachAnalysis<'a> {
    fork: &'a Fork,
    height: usize,
    /// `suffix_adversarial[t]` = #A among slots `t+1 ..= n`.
    suffix_adversarial: Vec<i64>,
    reach: Vec<i64>,
}

impl<'a> ReachAnalysis<'a> {
    /// Analyses a closed fork.
    ///
    /// # Panics
    ///
    /// Panics if the fork is not closed (paper Definition 13 defines gap —
    /// hence reach — only for closed forks).
    pub fn new(fork: &'a Fork) -> ReachAnalysis<'a> {
        assert!(fork.is_closed(), "reach analysis requires a closed fork");
        let n = fork.string().len();
        let mut suffix_adversarial = vec![0i64; n + 2];
        for t in (1..=n).rev() {
            suffix_adversarial[t] =
                suffix_adversarial[t + 1] + i64::from(fork.string().get(t).is_adversarial());
        }
        let height = fork.height();
        let reach = fork
            .vertices()
            .map(|v| {
                let gap = (height - fork.depth(v)) as i64;
                let reserve = suffix_adversarial[fork.label(v) + 1];
                reserve - gap
            })
            .collect();
        ReachAnalysis {
            fork,
            height,
            suffix_adversarial,
            reach,
        }
    }

    /// The fork under analysis.
    pub fn fork(&self) -> &Fork {
        self.fork
    }

    /// `gap(t)` for the tine ending at `v`.
    pub fn gap(&self, v: VertexId) -> i64 {
        (self.height - self.fork.depth(v)) as i64
    }

    /// `reserve(t)` for the tine ending at `v`.
    pub fn reserve(&self, v: VertexId) -> i64 {
        self.suffix_adversarial[self.fork.label(v) + 1]
    }

    /// `reach(t) = reserve(t) − gap(t)` for the tine ending at `v`.
    pub fn reach(&self, v: VertexId) -> i64 {
        self.reach[v.index()]
    }

    /// `ρ(F) = max_t reach(t)` (paper Definition 14). Never negative: the
    /// longest tine has gap 0 and non-negative reserve.
    pub fn rho(&self) -> i64 {
        *self.reach.iter().max().expect("fork has at least the root")
    }

    /// All tines (vertex ids) achieving reach exactly `r`.
    pub fn tines_with_reach(&self, r: i64) -> Vec<VertexId> {
        self.fork
            .vertices()
            .filter(|v| self.reach(*v) == r)
            .collect()
    }

    /// The relative margin `µ_x(F)` where `x` is the length-`cut` prefix of
    /// the fork's string (paper Definition 17): the maximum over pairs of
    /// tines `t1 ≁_x t2` of `min(reach(t1), reach(t2))`.
    ///
    /// Two tines are `∼_x`-related iff they share an edge terminating at a
    /// vertex labelled in `y` — for tree paths, iff their last common
    /// vertex has label `> cut`. A tine pairs with *itself* iff it has no
    /// edge into `y`, i.e. its own label is `≤ cut`.
    ///
    /// # Panics
    ///
    /// Panics if `cut > |w|`.
    pub fn relative_margin(&self, cut: usize) -> i64 {
        self.relative_margins()[cut]
    }

    /// `µ(F) = µ_ε(F)`: the plain margin (maximum second reach among
    /// edge-disjoint tine pairs).
    pub fn margin(&self) -> i64 {
        self.relative_margin(0)
    }

    /// The relative margin for **every** cut `0..=|w|` in one pass,
    /// as a vector indexed by `cut`.
    ///
    /// A pair with last common vertex labelled `L` is disjoint over the
    /// suffix for every cut `≥ L`, so `µ_cut` is the prefix maximum over
    /// `L ≤ cut` of the best pair with that meeting label.
    ///
    /// This is the serial, definitional `O(V²)` pair scan — retained as
    /// the oracle for [`ReachAnalysis::relative_margins_threads`], which
    /// parallelises the scan for the long canonical forks where verifying
    /// `µ` is the bottleneck.
    pub fn relative_margins(&self) -> Vec<i64> {
        let n = self.fork.string().len();
        let mut best_at_label = vec![i64::MIN; n + 1];
        let ids: Vec<VertexId> = self.fork.vertices().collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i..] {
                let lca = self.fork.last_common_vertex(a, b);
                // (a, a) pairs: lca = a; it self-pairs over suffixes that
                // exclude all its edges, i.e. cuts ≥ ℓ(a). Distinct pairs:
                // disjoint over cuts ≥ ℓ(lca).
                let l = self.fork.label(lca);
                let m = self.reach(a).min(self.reach(b));
                if m > best_at_label[l] {
                    best_at_label[l] = m;
                }
            }
        }
        Self::prefix_max(&best_at_label, n)
    }

    /// [`ReachAnalysis::relative_margins`] with the `O(V²)` pair scan
    /// fanned out over up to `threads` scoped workers. Workers claim
    /// row blocks from a shared atomic counter (rows shrink with `i`, so
    /// dynamic claiming load-balances the triangle) and fold private
    /// `best_at_label` tables that are merged by `max` — an exact integer
    /// reduction, so the result is **identical to the serial oracle for
    /// every thread count**.
    pub fn relative_margins_threads(&self, threads: usize) -> Vec<i64> {
        let n = self.fork.string().len();
        let ids: Vec<VertexId> = self.fork.vertices().collect();
        let v = ids.len();
        let threads = threads.max(1).min(v.max(1));
        if threads <= 1 {
            return self.relative_margins();
        }
        // Enough rows per claim to amortise the atomic, few enough that
        // the shrinking triangle still balances.
        let block = (v / (threads * 8)).max(1);
        let blocks = v.div_ceil(block);
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let mut best_at_label = vec![i64::MIN; n + 1];
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..threads {
                let counter = &counter;
                let ids = &ids;
                let this = &*self;
                handles.push(scope.spawn(move || {
                    let mut local = vec![i64::MIN; n + 1];
                    loop {
                        let blk = counter.fetch_add(1, Ordering::Relaxed);
                        if blk >= blocks {
                            break;
                        }
                        for i in blk * block..((blk + 1) * block).min(v) {
                            let a = ids[i];
                            let ra = this.reach(a);
                            for &b in &ids[i..] {
                                let lca = this.fork.last_common_vertex(a, b);
                                let l = this.fork.label(lca);
                                let m = ra.min(this.reach(b));
                                if m > local[l] {
                                    local[l] = m;
                                }
                            }
                        }
                    }
                    local
                }));
            }
            for h in handles {
                let local = h.join().expect("worker panicked");
                for (best, l) in best_at_label.iter_mut().zip(local) {
                    *best = (*best).max(l);
                }
            }
        });
        Self::prefix_max(&best_at_label, n)
    }

    /// [`ReachAnalysis::relative_margins_threads`] at the machine's full
    /// parallelism — with a serial cutoff: below a few thousand vertices
    /// the whole `O(V²)` scan costs less than spawning a thread team, so
    /// small forks (the exhaustive/proptest grids, the golden pins) take
    /// the serial path unchanged.
    pub fn relative_margins_parallel(&self) -> Vec<i64> {
        const SERIAL_CUTOFF_VERTICES: usize = 4_096;
        if self.fork.vertex_count() < SERIAL_CUTOFF_VERTICES {
            return self.relative_margins();
        }
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        self.relative_margins_threads(threads)
    }

    /// Folds a per-meeting-label best table into the cut-indexed margins.
    fn prefix_max(best_at_label: &[i64], n: usize) -> Vec<i64> {
        let mut out = Vec::with_capacity(n + 1);
        let mut acc = i64::MIN;
        for &best in best_at_label.iter().take(n + 1) {
            acc = acc.max(best);
            out.push(acc);
        }
        out
    }

    /// A witness pair for `µ_x(F)` at the given cut: two tine endpoints,
    /// disjoint over the suffix, whose min-reach equals the relative
    /// margin. Returns `None` when the cut is empty — `cut > |w|`, where
    /// no relative margin (and hence no witness pair) is defined.
    pub fn margin_witness(&self, cut: usize) -> Option<(VertexId, VertexId)> {
        let target = *self.relative_margins().get(cut)?;
        let ids: Vec<VertexId> = self.fork.vertices().collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i..] {
                let lca = self.fork.last_common_vertex(a, b);
                if self.fork.label(lca) <= cut && self.reach(a).min(self.reach(b)) == target {
                    return Some((a, b));
                }
            }
        }
        // Defensively unreachable for in-range cuts: the margin value is by
        // definition attained by some qualifying pair.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_chars::CharString;

    fn w(s: &str) -> CharString {
        s.parse().unwrap()
    }

    #[test]
    #[should_panic(expected = "closed fork")]
    fn rejects_open_fork() {
        let mut f = Fork::new(w("hA"));
        let a = f.push_vertex(VertexId::ROOT, 1);
        let _adv = f.push_vertex(a, 2); // adversarial leaf → not closed
        let _ = ReachAnalysis::new(&f);
    }

    #[test]
    fn trivial_fork_reach() {
        let f = Fork::new(w("A"));
        let r = ReachAnalysis::new(&f);
        assert_eq!(r.reach(VertexId::ROOT), 1); // reserve 1, gap 0
        assert_eq!(r.rho(), 1);
        // margin: the root pairs with itself (no edges at all).
        assert_eq!(r.margin(), 1);
    }

    #[test]
    fn empty_string_reach_is_zero() {
        let f = Fork::trivial();
        let r = ReachAnalysis::new(&f);
        assert_eq!(r.rho(), 0);
        assert_eq!(r.margin(), 0); // µ_ε(ε) = ρ(ε) = 0
    }

    #[test]
    fn gap_reserve_reach_by_hand() {
        // w = hhA; chain root -> 1 -> 2, slot 3 adversarial unused.
        let mut f = Fork::new(w("hhA"));
        let a = f.push_vertex(VertexId::ROOT, 1);
        let b = f.push_vertex(a, 2);
        let r = ReachAnalysis::new(&f);
        assert_eq!(r.gap(b), 0);
        assert_eq!(r.reserve(b), 1);
        assert_eq!(r.reach(b), 1);
        assert_eq!(r.gap(a), 1);
        assert_eq!(r.reserve(a), 1);
        assert_eq!(r.reach(a), 0);
        assert_eq!(r.gap(VertexId::ROOT), 2);
        assert_eq!(r.reserve(VertexId::ROOT), 1);
        assert_eq!(r.reach(VertexId::ROOT), -1);
        assert_eq!(r.rho(), 1);
    }

    #[test]
    fn margin_distinguishes_disjoint_pairs() {
        // Balanced structure on w = hAhA... the two-branch fork:
        // root -> a(1) -> c(3) and root -> b(2,A) -> d(4,A)? Keep closed:
        // use root -> a(1) -> c(3), root -> b(3)?? slot 3 is h (unique) —
        // cannot duplicate. Use w = hAHA and two honest branches.
        let mut f = Fork::new(w("hAHA"));
        let a = f.push_vertex(VertexId::ROOT, 1);
        let c = f.push_vertex(a, 3); // honest H vertex
        let c2 = f.push_vertex(a, 3); // concurrent honest H vertex
        let r = ReachAnalysis::new(&f);
        // heights: a=1, c=c2=2; reserves: ℓ=3 → 1 A after (slot 4).
        assert_eq!(r.reach(c), 1);
        assert_eq!(r.reach(c2), 1);
        // c and c2 share the edge root->a (label 1). For cut 0 they are NOT
        // disjoint... wait, their last common vertex is a (label 1), so for
        // cut ≥ 1 they are disjoint. For cut 0, disjoint pairs must meet at
        // the root.
        assert_eq!(r.relative_margin(1), 1);
        // At cut 0 the best root-meeting pair involves the root tine itself
        // (reach = reserve(root) − gap = 2 − 2 = 0).
        assert_eq!(r.relative_margin(0), 0);
        let (p, q) = r.margin_witness(1).expect("in-range cut has a witness");
        assert_eq!(r.reach(p).min(r.reach(q)), 1);
    }

    #[test]
    fn margin_witness_on_empty_cut_is_none() {
        // Regression: cuts beyond |w| used to take an `unreachable!` panic
        // path (via an out-of-bounds margin lookup); they are simply
        // witness-free.
        let mut f = Fork::new(w("hA"));
        let a = f.push_vertex(VertexId::ROOT, 1);
        let _ = f.push_vertex(a, 2);
        let f = crate::generate::close(&f);
        let r = ReachAnalysis::new(&f);
        for cut in 0..=f.string().len() {
            let (p, q) = r.margin_witness(cut).expect("in-range cut");
            let lca = f.last_common_vertex(p, q);
            assert!(f.label(lca) <= cut);
            assert_eq!(r.reach(p).min(r.reach(q)), r.relative_margin(cut));
        }
        assert_eq!(r.margin_witness(f.string().len() + 1), None);
        assert_eq!(r.margin_witness(usize::MAX), None);
    }

    #[test]
    fn parallel_margins_match_the_serial_oracle() {
        use crate::generate::{close, random_fork, GenerateConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Hand-built and random closed forks, several sizes: the
        // thread-parallel pair scan must reproduce the serial oracle
        // exactly, for every thread count.
        let mut forks = vec![
            crate::generate::close(&crate::figures::figure1()),
            Fork::trivial(),
            Fork::new(w("A")),
        ];
        let mut rng = StdRng::seed_from_u64(42);
        let cond = multihonest_chars::BernoulliCondition::new(0.25, 0.35).unwrap();
        for len in [30usize, 90, 240] {
            let s = cond.sample(&mut rng, len);
            forks.push(close(&random_fork(&s, &mut rng, GenerateConfig::default())));
        }
        for fork in &forks {
            let r = ReachAnalysis::new(fork);
            let oracle = r.relative_margins();
            for threads in [1usize, 2, 3, 8] {
                assert_eq!(
                    r.relative_margins_threads(threads),
                    oracle,
                    "thread count {threads} changed the margins"
                );
            }
            assert_eq!(r.relative_margins_parallel(), oracle);
        }
    }

    #[test]
    fn relative_margins_are_monotone_in_cut() {
        let f = crate::generate::close(&crate::figures::figure1());
        let r = ReachAnalysis::new(&f);
        let ms = r.relative_margins();
        for c in 1..ms.len() {
            assert!(ms[c] >= ms[c - 1], "margin must be monotone in cut");
        }
        assert_eq!(*ms.last().unwrap(), r.rho(), "µ_w(ε) = ρ(w)");
    }

    #[test]
    fn adversarial_children_never_gain_reach() {
        // Section 6.1's consequence: the reach of an adversarial tine is at
        // most the reach of its last honest vertex. Along an edge to an
        // adversarial child, gap shrinks by 1 but reserve shrinks by at
        // least 1 (the child's own slot), so reach cannot increase.
        let f = crate::generate::close(&crate::figures::figure1());
        let r = ReachAnalysis::new(&f);
        for v in f.vertices() {
            if let Some(p) = f.parent(v) {
                if !f.is_honest(v) {
                    assert!(
                        r.reach(v) <= r.reach(p),
                        "adversarial child gained reach: {p:?} -> {v:?}"
                    );
                }
            }
        }
        // And consequently every adversarial tine is bounded by its last
        // honest ancestor's reach.
        for v in f.vertices() {
            if !f.is_honest(v) {
                let mut u = v;
                while !f.is_honest(u) {
                    u = f.parent(u).expect("root is honest");
                }
                assert!(r.reach(v) <= r.reach(u));
            }
        }
    }
}
