//! Incremental reach bookkeeping for growing forks.
//!
//! [`ReachAnalysis`](crate::ReachAnalysis) transcribes the paper's
//! definitions and rebuilds everything from scratch on each call — the
//! right shape for an oracle, the wrong one for the optimal adversary
//! `A*`, which needs reach values, the zero/maximum-reach tine sets and an
//! earliest-divergence query after *every* honest symbol. [`ReachEngine`]
//! maintains all of that **across** [`push_symbol`]/[`push_vertex`] calls.
//!
//! The key observation making reach incremental: for a fork `F ⊢ w` with
//! `|w| = n`,
//!
//! ```text
//! reach(v) = reserve(v) − gap(v)
//!          = #A(ℓ(v)+1 ..= n) − (height(F) − depth(v))
//!          = σ(v) + #A(1 ..= n) − height(F),   σ(v) = depth(v) − #A(1 ..= ℓ(v))
//! ```
//!
//! and `σ(v)` is **fixed at insertion time** — `depth(v)` and `ℓ(v)` never
//! change, and slots `≤ ℓ(v)` are already part of `w` when `v` is pushed.
//! So the engine buckets vertices by `σ`, and the set of tines with any
//! given reach `r` is the bucket at `σ = r + height − #A`, found in `O(1)`
//! however the string and the fork have grown since.
//!
//! The second hot query, `A*`'s *earliest-diverging pair* — the pair
//! `(r₁, z₁)` over the maximum-reach set `R` and zero-reach set `Z`
//! minimising `ℓ(r₁ ∩ z₁)` — is answered through per-bucket LCA
//! aggregates: the minimum cross-pair meet label is `ℓ(lca(R ∪ Z))` and a
//! fixed row's minimum is `ℓ(lca(r, lca(Z)))`, so each bucket lazily
//! folds the LCA of its members (one `O(log n)` meet per member, through
//! the fork's shared [`AncestorIndex`]) and the query needs `O(1)` LCAs
//! plus a short witness scan instead of the `|R|·|Z|` pair walk of the
//! definitional path.
//!
//! [`push_symbol`]: ReachEngine::push_symbol
//! [`push_vertex`]: ReachEngine::push_vertex

use multihonest_chars::Symbol;
use multihonest_core::AncestorIndex;

use crate::fork::{Fork, VertexId};

/// Below this many `R × Z` pairs the diverging-pair query scans pairs
/// directly (a handful of `O(log n)` meets) instead of paying the
/// pre-order extreme machinery.
const DIRECT_SCAN_PAIRS: usize = 16;

/// One `σ`-bucket: every vertex with the same insertion-time score, in
/// insertion (= ascending id) order, plus a lazily folded aggregate: the
/// LCA of all members.
///
/// The aggregate is only needed by the diverging-pair query, and only for
/// the two buckets it touches per honest symbol — so instead of paying an
/// `O(log n)` LCA fold on **every** insert, the bucket keeps a `scanned`
/// watermark and folds members in on demand. LCAs of existing vertices
/// never change under appends, so the aggregate stays valid forever; each
/// member is folded exactly once, and members of buckets the query never
/// visits cost nothing at all.
#[derive(Debug, Clone, Default)]
struct Bucket {
    members: Vec<VertexId>,
    /// How many of `members` have been folded into the aggregate.
    scanned: usize,
    /// The LCA of `members[..scanned]` (`None` while nothing is folded).
    lca_all: Option<VertexId>,
}

impl Bucket {
    /// Folds unscanned members into the all-members LCA.
    fn catch_up(&mut self, anc: &AncestorIndex) {
        while self.scanned < self.members.len() {
            let v = self.members[self.scanned];
            self.scanned += 1;
            self.lca_all = Some(match self.lca_all {
                None => v,
                Some(c) => VertexId(anc.lca(c.index(), v.index()) as u32),
            });
        }
    }
}

static EMPTY: &[VertexId] = &[];

/// Incrementally maintained relative-margin state for one tracked cut `x`.
///
/// `µ_x(F) = max min(reach(t₁), reach(t₂))` over tine pairs whose meet has
/// label `≤ x` (self-pairs qualify iff `ℓ(t) ≤ x`). In `σ`-space that is
/// `W_x + #A − height` where `W_x = max min(σ(t₁), σ(t₂))` over the same
/// pairs — and `W_x` only depends on insertion-time constants, so it is
/// **monotone** under growth and maintainable by considering, at each
/// insert, only pairs containing the new vertex.
///
/// The partner search is `O(log n)` through a partition of the fork by the
/// cut: vertices labelled `≤ x` form a subtree `T_x`, and every other
/// vertex belongs to exactly one *gateway* subtree — rooted at its
/// shallowest ancestor labelled `> x`. A pair of outside vertices meets at
/// label `≤ x` **iff their gateways differ** (the first `> x` crossing on
/// the path to a vertex is shared exactly when the meet is below the cut),
/// and a pair involving a `T_x` vertex always qualifies. So the tracker
/// keeps the best `σ` inside `T_x` and the top two gateway-distinct `σ`
/// entries outside it; the best qualifying partner of any new vertex is
/// read off those three entries.
#[derive(Debug, Clone)]
struct CutTracker {
    cut: usize,
    /// `W_x`: best min-σ over qualifying pairs seen so far.
    w_best: i64,
    /// A pair attaining `w_best` (`(ROOT, ROOT)` initially: the root
    /// self-pairs at every cut with `σ(root) = 0`).
    witness: (VertexId, VertexId),
    /// Best `σ` among vertices labelled `≤ cut`, with its vertex.
    best_in_cut: (i64, VertexId),
    /// Top two `(gateway, σ, vertex)` entries with distinct gateways
    /// among vertices labelled `> cut`.
    top_out: [Option<(VertexId, i64, VertexId)>; 2],
}

impl CutTracker {
    fn new(cut: usize) -> CutTracker {
        CutTracker {
            cut,
            w_best: 0,
            witness: (VertexId::ROOT, VertexId::ROOT),
            best_in_cut: (0, VertexId::ROOT),
            top_out: [None, None],
        }
    }

    /// Folds an outside vertex into the top-two gateway table.
    fn bump(&mut self, g: VertexId, s: i64, v: VertexId) {
        match self.top_out[0] {
            None => self.top_out[0] = Some((g, s, v)),
            Some((g0, s0, _)) if g0 == g => {
                if s > s0 {
                    self.top_out[0] = Some((g, s, v));
                }
            }
            Some((_, s0, _)) if s > s0 => {
                self.top_out[1] = self.top_out[0];
                self.top_out[0] = Some((g, s, v));
            }
            Some(_) => match self.top_out[1] {
                Some((_, s1, _)) if s <= s1 => {}
                _ => self.top_out[1] = Some((g, s, v)),
            },
        }
    }
}

/// Incrementally maintained reach state over a growing [`Fork`].
///
/// The engine owns the fork; grow both together through
/// [`push_symbol`](Self::push_symbol) and
/// [`push_vertex`](Self::push_vertex). All reach quantities refer to the
/// fork's *current* string, exactly like a fresh
/// [`ReachAnalysis`](crate::ReachAnalysis) would — and like the
/// definitional analysis they are meaningful when the fork is closed.
///
/// # Examples
///
/// ```
/// use multihonest_fork::{Fork, ReachEngine, VertexId};
///
/// let mut eng = ReachEngine::new(Fork::new("hA".parse()?));
/// let a = eng.push_vertex(VertexId::ROOT, 1);
/// assert_eq!(eng.reach(a), 1); // gap 0, reserve 1 (slot 2 is A)
/// assert_eq!(eng.reach(VertexId::ROOT), 0);
/// assert_eq!(eng.rho(), 1);
/// assert_eq!(eng.tines_with_reach(1), &[a]);
/// # Ok::<(), multihonest_chars::ParseCharStringError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReachEngine {
    fork: Fork,
    /// `a_upto[l]` = #A among slots `1..=l`; `a_upto.len() = |w| + 1`.
    a_upto: Vec<i64>,
    /// Adversarial slot indices, ascending.
    adv_slots: Vec<usize>,
    /// `σ(v) = depth(v) − a_upto[ℓ(v)]`, fixed at insertion.
    sigma: Vec<i64>,
    /// Buckets for `σ ≥ 0`, indexed by `σ`.
    buckets_pos: Vec<Bucket>,
    /// Buckets for `σ < 0`, indexed by `−σ − 1`.
    buckets_neg: Vec<Bucket>,
    /// Maximum `σ` over all vertices (monotone: vertices never leave).
    sigma_max: i64,
    /// Incremental relative-margin state, one entry per tracked cut.
    trackers: Vec<CutTracker>,
}

impl ReachEngine {
    /// Wraps an existing fork, replaying its string and vertices into the
    /// incremental state (`O(V log V + |w|)`).
    pub fn new(fork: Fork) -> ReachEngine {
        let n = fork.string().len();
        let mut a_upto = Vec::with_capacity(n + 1);
        a_upto.push(0);
        let mut adv_slots = Vec::new();
        for (slot, sym) in fork.string().iter_slots() {
            a_upto.push(a_upto[slot - 1] + i64::from(sym.is_adversarial()));
            if sym.is_adversarial() {
                adv_slots.push(slot);
            }
        }
        let mut engine = ReachEngine {
            fork,
            a_upto,
            adv_slots,
            sigma: Vec::new(),
            buckets_pos: Vec::new(),
            buckets_neg: Vec::new(),
            sigma_max: i64::MIN,
            trackers: Vec::new(),
        };
        for v in engine.fork.vertices().collect::<Vec<_>>() {
            engine.index_vertex(v);
        }
        engine
    }

    /// The fork under analysis.
    pub fn fork(&self) -> &Fork {
        &self.fork
    }

    /// Unwraps the fork.
    pub fn into_fork(self) -> Fork {
        self.fork
    }

    /// Extends the underlying characteristic string by one symbol,
    /// updating the adversarial prefix counts in `O(1)`.
    pub fn push_symbol(&mut self, s: Symbol) {
        self.fork.push_symbol(s);
        let slot = self.fork.string().len();
        self.a_upto
            .push(self.a_upto[slot - 1] + i64::from(s.is_adversarial()));
        if s.is_adversarial() {
            self.adv_slots.push(slot);
        }
    }

    /// Adds a vertex labelled `label` under `parent` (see
    /// [`Fork::push_vertex`] for the panics) and indexes it in `O(log n)`.
    pub fn push_vertex(&mut self, parent: VertexId, label: usize) -> VertexId {
        let v = self.fork.push_vertex(parent, label);
        self.index_vertex(v);
        let (fork, sigma) = (&self.fork, &self.sigma);
        for t in &mut self.trackers {
            Self::tracker_update(fork, sigma, t, v);
        }
        v
    }

    /// Starts (or re-confirms) incremental maintenance of `µ_cut`,
    /// replaying already-present vertices once; subsequent
    /// [`push_vertex`](Self::push_vertex) calls keep it current in
    /// `O(log n)` each. [`margin`](Self::margin) /
    /// [`margin_witness`](Self::margin_witness) then answer in `O(1)`.
    pub fn track_cut(&mut self, cut: usize) {
        if self.trackers.iter().any(|t| t.cut == cut) {
            return;
        }
        let mut tracker = CutTracker::new(cut);
        for v in self.fork.vertices().skip(1) {
            Self::tracker_update(&self.fork, &self.sigma, &mut tracker, v);
        }
        self.trackers.push(tracker);
    }

    /// The cuts currently maintained incrementally.
    pub fn tracked_cuts(&self) -> impl Iterator<Item = usize> + '_ {
        self.trackers.iter().map(|t| t.cut)
    }

    /// `µ_cut(F)` for a tracked cut (`None` if the cut is not tracked).
    ///
    /// Matches [`ReachAnalysis::relative_margin`] exactly — for cuts
    /// beyond the current string every pair qualifies, so the value
    /// saturates at `ρ(F)`.
    ///
    /// [`ReachAnalysis::relative_margin`]:
    /// crate::ReachAnalysis::relative_margin
    pub fn margin(&self, cut: usize) -> Option<i64> {
        let t = self.trackers.iter().find(|t| t.cut == cut)?;
        Some(t.w_best + self.a_total() - self.fork.height() as i64)
    }

    /// A concrete witness pair for [`margin`](Self::margin): two tine
    /// endpoints meeting at label `≤ cut` whose min-reach equals `µ_cut`
    /// (equal endpoints encode a qualifying self-pair). `None` if the cut
    /// is not tracked.
    pub fn margin_witness(&self, cut: usize) -> Option<(VertexId, VertexId)> {
        let t = self.trackers.iter().find(|t| t.cut == cut)?;
        Some(t.witness)
    }

    /// Folds the new vertex `v` into one tracker: the best qualifying
    /// pair containing `v` is read off the tracker's partition tables
    /// (see [`CutTracker`]), and `v` then joins the tables itself.
    fn tracker_update(fork: &Fork, sigma: &[i64], t: &mut CutTracker, v: VertexId) {
        let sv = sigma[v.index()];
        if fork.label(v) <= t.cut {
            // Inside the cut subtree: v qualifies with everything, and its
            // self-pair min(σ, σ) = σ dominates every pair containing it.
            if sv > t.best_in_cut.0 {
                t.best_in_cut = (sv, v);
            }
            if sv > t.w_best {
                t.w_best = sv;
                t.witness = (v, v);
            }
            return;
        }
        // Outside: find v's gateway (shallowest ancestor labelled > cut).
        let p = fork.truncate_to_label(v, t.cut);
        let g = fork.ancestor_at_depth(v, fork.depth(p) + 1);
        let mut cand = (sv.min(t.best_in_cut.0), t.best_in_cut.1);
        match t.top_out[0] {
            Some((g0, s0, u0)) if g0 != g => {
                let c = sv.min(s0);
                if c > cand.0 {
                    cand = (c, u0);
                }
            }
            Some(_) => {
                if let Some((_, s1, u1)) = t.top_out[1] {
                    let c = sv.min(s1);
                    if c > cand.0 {
                        cand = (c, u1);
                    }
                }
            }
            None => {}
        }
        if cand.0 > t.w_best {
            t.w_best = cand.0;
            t.witness = (cand.1, v);
        }
        t.bump(g, sv, v);
    }

    fn index_vertex(&mut self, v: VertexId) {
        let s = self.fork.depth(v) as i64 - self.a_upto[self.fork.label(v)];
        debug_assert_eq!(self.sigma.len(), v.index());
        self.sigma.push(s);
        self.sigma_max = self.sigma_max.max(s);
        // Membership only: extremes are folded in lazily by the
        // diverging-pair query, so inserts stay O(1).
        let slot = if s >= 0 {
            let i = s as usize;
            if i >= self.buckets_pos.len() {
                self.buckets_pos.resize_with(i + 1, Bucket::default);
            }
            &mut self.buckets_pos[i]
        } else {
            let i = (-s - 1) as usize;
            if i >= self.buckets_neg.len() {
                self.buckets_neg.resize_with(i + 1, Bucket::default);
            }
            &mut self.buckets_neg[i]
        };
        slot.members.push(v);
    }

    /// The bucket at score `s`, if any vertex ever landed there.
    fn bucket(&self, s: i64) -> Option<&Bucket> {
        let b = if s >= 0 {
            self.buckets_pos.get(s as usize)
        } else {
            self.buckets_neg.get((-s - 1) as usize)
        };
        b.filter(|b| !b.members.is_empty())
    }

    /// Folds any new members of the bucket at `s` into its pre-order
    /// extremes (no-op when the bucket is absent).
    fn catch_up_bucket(&mut self, s: i64) {
        let anc = self.fork.ancestry();
        let b = if s >= 0 {
            self.buckets_pos.get_mut(s as usize)
        } else {
            self.buckets_neg.get_mut((-s - 1) as usize)
        };
        if let Some(b) = b {
            b.catch_up(anc);
        }
    }

    /// Total adversarial slots in the current string.
    fn a_total(&self) -> i64 {
        *self.a_upto.last().expect("a_upto holds at least slot 0")
    }

    /// The `σ`-bucket holding all tines of reach `r`.
    fn sigma_of_reach(&self, r: i64) -> i64 {
        r + self.fork.height() as i64 - self.a_total()
    }

    /// `gap(t)` for the tine ending at `v`.
    pub fn gap(&self, v: VertexId) -> i64 {
        (self.fork.height() - self.fork.depth(v)) as i64
    }

    /// `reserve(t)` for the tine ending at `v`.
    pub fn reserve(&self, v: VertexId) -> i64 {
        self.a_total() - self.a_upto[self.fork.label(v)]
    }

    /// `reach(t) = reserve(t) − gap(t)` for the tine ending at `v`.
    pub fn reach(&self, v: VertexId) -> i64 {
        self.sigma[v.index()] + self.a_total() - self.fork.height() as i64
    }

    /// `ρ(F) = max_t reach(t)`.
    pub fn rho(&self) -> i64 {
        self.sigma_max + self.a_total() - self.fork.height() as i64
    }

    /// All tines with reach exactly `r`, in ascending vertex-id order
    /// (matching [`ReachAnalysis::tines_with_reach`]), as an `O(1)`
    /// bucket lookup.
    ///
    /// [`ReachAnalysis::tines_with_reach`]:
    /// crate::ReachAnalysis::tines_with_reach
    pub fn tines_with_reach(&self, r: i64) -> &[VertexId] {
        self.bucket(self.sigma_of_reach(r))
            .map_or(EMPTY, |b| &b.members)
    }

    /// The zero-reach tine set `Z` of `A*`'s honest move.
    pub fn zero_reach_tines(&self) -> &[VertexId] {
        self.tines_with_reach(0)
    }

    /// The maximum-reach tine set `R` (never empty).
    pub fn max_reach_tines(&self) -> &[VertexId] {
        &self
            .bucket(self.sigma_max)
            .expect("fork has vertices")
            .members
    }

    /// The `gap` latest adversarial slots of the current string,
    /// ascending — the reserve slots a conservative extension materialises
    /// (Definition 15 consumes the *latest* available reserve).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` adversarial slots exist.
    pub fn latest_adversarial_slots(&self, count: usize) -> &[usize] {
        assert!(
            count <= self.adv_slots.len(),
            "requested {count} reserve slots, only {} adversarial slots exist",
            self.adv_slots.len()
        );
        &self.adv_slots[self.adv_slots.len() - count..]
    }

    /// `ℓ(a ∩ b)` — the label of the last common vertex.
    fn meet_label(&self, a: VertexId, b: VertexId) -> usize {
        self.fork.label(self.fork.last_common_vertex(a, b))
    }

    /// Finds `(r₁, z₁) ∈ R × Z` minimising `ℓ(r₁ ∩ z₁)` over *distinct*
    /// pairs, where `R` is the maximum-reach set and `Z` the zero-reach
    /// set — `A*`'s tine selection (paper Figure 4). Ties resolve exactly
    /// as the definitional pair scan does (first minimising pair in
    /// `R`-major, ascending-id iteration order), so forks built from this
    /// query are bit-identical to the oracle's. Returns an equal pair
    /// `(z, z)` only when `R = Z = {z}`.
    ///
    /// The query leans on two exact identities (labels are monotone along
    /// tines, so comparing meet labels is comparing meet depths):
    ///
    /// * the minimum meet label over distinct cross pairs is
    ///   `ℓ(lca(R ∪ Z))` — below the set's LCA the members split into at
    ///   least two child subtrees, and some cross pair must straddle the
    ///   split;
    /// * for a fixed `r`, the minimum over `z ∈ Z` of `ℓ(r ∩ z)` is
    ///   `ℓ(lca(r, lca(Z)))` — if `r` leaves the `Z`-subtree at or above
    ///   `lca(Z)` every `z` meets it exactly there, and otherwise some
    ///   `z` sits in a different child subtree of `lca(Z)` than `r`.
    ///
    /// So the engine maintains a lazily folded per-bucket LCA and answers
    /// with a handful of `O(log n)` meets plus short witness scans.
    /// Takes `&mut self` because the folds advance bucket watermarks;
    /// small instances short-circuit into a direct pair scan instead.
    ///
    /// # Panics
    ///
    /// Panics if the zero-reach set is empty (the caller handles that case
    /// by extending a maximum-reach tine instead).
    pub fn earliest_diverging_pair(&mut self) -> (VertexId, VertexId) {
        let sigma_zero = self.sigma_of_reach(0);
        let z_len = self.bucket(sigma_zero).map_or(0, |b| b.members.len());
        assert!(z_len > 0, "no zero-reach tine");
        if self.rho() == 0 {
            // R and Z are the same bucket: distinct pairs from one set.
            if z_len == 1 {
                let z = self.bucket(sigma_zero).expect("non-empty").members[0];
                return (z, z);
            }
            if z_len * z_len <= DIRECT_SCAN_PAIRS {
                let zb = self.bucket(sigma_zero).expect("non-empty");
                return self.scan_pairs(&zb.members, &zb.members);
            }
            self.catch_up_bucket(sigma_zero);
            let zb = self.bucket(sigma_zero).expect("non-empty");
            let best = self
                .fork
                .label(zb.lca_all.expect("caught-up non-empty bucket"));
            // Every row attains ℓ(lca(S)): for any r,
            // min_z ℓ(r ∩ z) = ℓ(lca(r, lca(S \ {r}))) = ℓ(lca(S)).
            let r1 = zb.members[0];
            let z1 = self
                .first_witness_at_most(&zb.members, r1, best, true)
                .expect("the minimising row must contain a witness");
            (r1, z1)
        } else {
            let r_len = self
                .bucket(self.sigma_max)
                .expect("fork has vertices")
                .members
                .len();
            if r_len * z_len <= DIRECT_SCAN_PAIRS {
                let rb = self.bucket(self.sigma_max).expect("non-empty");
                let zb = self.bucket(sigma_zero).expect("non-empty");
                return self.scan_pairs(&rb.members, &zb.members);
            }
            self.catch_up_bucket(sigma_zero);
            self.catch_up_bucket(self.sigma_max);
            let rb = self.bucket(self.sigma_max).expect("non-empty");
            let zb = self.bucket(sigma_zero).expect("non-empty");
            let z_lca = zb.lca_all.expect("caught-up non-empty bucket");
            let r_lca = rb.lca_all.expect("caught-up non-empty bucket");
            let best = self.meet_label(r_lca, z_lca);
            // First row whose minimum — ℓ(lca(r, lca(Z))) — attains it.
            // `best` is the minimum over rows, so "≤ best" is "= best".
            let r1 = self
                .first_witness_at_most(&rb.members, z_lca, best, false)
                .expect("some row attains the overall minimum meet label");
            let z1 = self
                .first_witness_at_most(&zb.members, r1, best, false)
                .expect("the minimising row must contain a witness");
            (r1, z1)
        }
    }

    /// The definitional pair scan over small `R × Z` (identical iteration
    /// order to the oracle; also its tie-breaking).
    fn scan_pairs(&self, max_reach: &[VertexId], zero: &[VertexId]) -> (VertexId, VertexId) {
        let mut best: Option<(usize, VertexId, VertexId)> = None;
        for &r in max_reach {
            for &z in zero {
                if r == z {
                    continue;
                }
                let l = self.meet_label(r, z);
                if best.is_none_or(|(bl, _, _)| l < bl) {
                    best = Some((l, r, z));
                }
            }
        }
        let (_, r1, z1) = best.expect("caller rules out the singleton case");
        (r1, z1)
    }

    /// The single witness-resolution scan shared by the diverging-pair
    /// query (both the same-bucket and cross-bucket cases, and the row
    /// selection itself): the first member (ascending id, skipping
    /// `anchor` itself when `skip_anchor`) whose meet with `anchor` has
    /// label `≤ bound`, or `None` when no member does. Callers that pass
    /// a bound known to be the row minimum get the "first member
    /// *attaining* the minimum" semantics, with the oracle's tie-break.
    fn first_witness_at_most(
        &self,
        members: &[VertexId],
        anchor: VertexId,
        bound: usize,
        skip_anchor: bool,
    ) -> Option<VertexId> {
        members
            .iter()
            .copied()
            .filter(|&m| !(skip_anchor && m == anchor))
            .find(|&m| self.meet_label(anchor, m) <= bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{close, random_fork, GenerateConfig};
    use crate::reach::ReachAnalysis;
    use multihonest_chars::{BernoulliCondition, CharString};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn w(s: &str) -> CharString {
        s.parse().unwrap()
    }

    /// The definitional earliest-diverging pair: the pair scan of the
    /// pre-engine `A*` implementation, verbatim.
    fn naive_pair(fork: &Fork, max_reach: &[VertexId], zero: &[VertexId]) -> (VertexId, VertexId) {
        let mut best: Option<(usize, VertexId, VertexId)> = None;
        for &r in max_reach {
            for &z in zero {
                if r == z {
                    continue;
                }
                let l = fork.label(fork.last_common_vertex(r, z));
                if best.is_none_or(|(bl, _, _)| l < bl) {
                    best = Some((l, r, z));
                }
            }
        }
        match best {
            Some((_, r1, z1)) => (r1, z1),
            None => (zero[0], zero[0]),
        }
    }

    /// Asserts the engine agrees with a fresh definitional analysis on
    /// every maintained quantity, including the diverging-pair selection.
    fn assert_matches_analysis(eng: &mut ReachEngine) {
        let ra = ReachAnalysis::new(eng.fork());
        assert_eq!(eng.rho(), ra.rho(), "rho for {}", eng.fork().string());
        for v in eng.fork().vertices() {
            assert_eq!(eng.reach(v), ra.reach(v), "reach({v:?})");
            assert_eq!(eng.gap(v), ra.gap(v), "gap({v:?})");
            assert_eq!(eng.reserve(v), ra.reserve(v), "reserve({v:?})");
        }
        for r in [-2, -1, 0, 1, 2, eng.rho()] {
            assert_eq!(
                eng.tines_with_reach(r),
                ra.tines_with_reach(r).as_slice(),
                "tines_with_reach({r})"
            );
        }
        let zero = ra.tines_with_reach(0);
        let margins = ra.relative_margins();
        if !zero.is_empty() {
            let max_reach = ra.tines_with_reach(ra.rho());
            assert_eq!(
                eng.earliest_diverging_pair(),
                naive_pair(eng.fork(), &max_reach, &zero),
                "diverging pair for {}",
                eng.fork().string()
            );
        }
        // Tracked relative margins: value equals the definitional pair
        // scan, witness qualifies and attains it (reach values were
        // asserted equal above, so the engine's own are usable here).
        let n = eng.fork().string().len();
        for cut in eng.tracked_cuts().collect::<Vec<_>>() {
            let got = eng.margin(cut).expect("tracked");
            let want = margins[cut.min(n)];
            assert_eq!(got, want, "µ_{cut} for {}", eng.fork().string());
            let (a, b) = eng.margin_witness(cut).expect("tracked");
            let meet = eng.fork().last_common_vertex(a, b);
            assert!(
                eng.fork().label(meet) <= cut,
                "witness for µ_{cut} does not qualify"
            );
            assert_eq!(
                eng.reach(a).min(eng.reach(b)),
                want,
                "witness for µ_{cut} does not attain the margin"
            );
        }
    }

    #[test]
    fn trivial_and_tiny_forks() {
        for s in ["", "A", "h", "H", "AA", "hA", "Ah"] {
            let mut eng = ReachEngine::new(Fork::new(w(s)));
            for cut in 0..=3 {
                eng.track_cut(cut);
            }
            assert_matches_analysis(&mut eng);
        }
    }

    #[test]
    fn matches_analysis_while_growing() {
        // Grow a fork symbol by symbol with a deterministic policy that
        // keeps it closed, checking the engine after every mutation batch.
        let mut eng = ReachEngine::new(Fork::trivial());
        // Track several cuts from the very start: every vertex below
        // exercises the incremental partner search.
        for cut in [0, 1, 2, 4, 8, 20] {
            eng.track_cut(cut);
        }
        let syms = [
            Symbol::UniqueHonest,
            Symbol::Adversarial,
            Symbol::MultiHonest,
            Symbol::Adversarial,
            Symbol::UniqueHonest,
            Symbol::MultiHonest,
            Symbol::Adversarial,
            Symbol::UniqueHonest,
        ];
        let mut tips = vec![VertexId::ROOT];
        for (i, &s) in syms.iter().enumerate() {
            eng.push_symbol(s);
            let label = eng.fork().string().len();
            if s.is_honest() {
                // Extend an alternating tip with the honest vertex; on H
                // slots extend two.
                let t = tips[i % tips.len()];
                let v = eng.push_vertex(t, label);
                tips.push(v);
                if s == Symbol::MultiHonest {
                    let u = tips[(i + 1) % tips.len()];
                    if eng.fork().label(u) < label {
                        tips.push(eng.push_vertex(u, label));
                    }
                }
                assert_matches_analysis(&mut eng);
            }
        }
    }

    #[test]
    fn matches_analysis_on_random_closed_forks() {
        let cond = BernoulliCondition::new(0.15, 0.35).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..40 {
            let s = cond.sample(&mut rng, 18);
            let f = close(&random_fork(&s, &mut rng, GenerateConfig::default()));
            let mut eng = ReachEngine::new(f);
            // Mixed tracking origins: some cuts replayed over the full
            // fork, all checked against the definitional margins.
            for cut in [0, 3, 9, 18] {
                eng.track_cut(cut);
            }
            assert_matches_analysis(&mut eng);
        }
    }

    #[test]
    fn tracked_margins_match_while_growing_randomly() {
        // The growth path (incremental partner search) against the
        // definitional analysis at every closed prefix: grow random closed
        // forks vertex by vertex on a fresh engine with cuts tracked from
        // the start, then compare against a from-scratch engine that
        // replays the same fork (track_cut's replay path).
        let cond = BernoulliCondition::new(0.15, 0.35).unwrap();
        let mut rng = StdRng::seed_from_u64(517);
        for round in 0..25 {
            let s = cond.sample(&mut rng, 14);
            let f = close(&random_fork(&s, &mut rng, GenerateConfig::default()));
            let mut eng = ReachEngine::new(Fork::new(f.string().clone()));
            for cut in [0, 2, 5, 11, 14] {
                eng.track_cut(cut);
            }
            for v in f.vertices().skip(1) {
                eng.push_vertex(f.parent(v).expect("non-root"), f.label(v));
            }
            assert_matches_analysis(&mut eng);
            let mut replayed = ReachEngine::new(eng.fork().clone());
            for cut in [0, 2, 5, 11, 14] {
                replayed.track_cut(cut);
            }
            for cut in [0, 2, 5, 11, 14] {
                assert_eq!(
                    eng.margin(cut),
                    replayed.margin(cut),
                    "growth vs replay split at cut {cut} round {round}"
                );
            }
        }
    }

    #[test]
    fn latest_adversarial_slots_are_the_suffix() {
        let eng = ReachEngine::new(Fork::new(w("hAAhA")));
        assert_eq!(eng.latest_adversarial_slots(0), &[] as &[usize]);
        assert_eq!(eng.latest_adversarial_slots(2), &[3, 5]);
        assert_eq!(eng.latest_adversarial_slots(3), &[2, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "reserve slots")]
    fn latest_adversarial_slots_checks_budget() {
        let eng = ReachEngine::new(Fork::new(w("hA")));
        let _ = eng.latest_adversarial_slots(2);
    }
}
