//! Streaming Δ-axiom validation: online (F1)–(F4Δ) checking as a fork is
//! built, one vertex at a time.
//!
//! [`validate_delta`](crate::validate::validate_delta) re-derives every
//! axiom from scratch in `O(V + H²)` (H = honest slots with vertices) —
//! fine as a definitional oracle, prohibitive inside a million-slot
//! execution loop. This module maintains the same verdict *incrementally*:
//!
//! * [`StreamValidator`] — a detached checker fed per-slot symbols and
//!   per-vertex `(label, depth)` observations, spending `O(log n)` per
//!   vertex. The (F4Δ) depth-monotonicity axiom (Definition 21: honest
//!   slots `i + Δ < j` must satisfy `d(i) < depth` of every honest vertex
//!   at `j`) is checked against two growable Fenwick trees over honest
//!   slots — a prefix-maximum and a suffix-minimum of observed honest
//!   depths — so a violating pair is caught the moment its *later-arriving*
//!   vertex is observed, regardless of insertion order.
//! * [`ForkFold`] — the incremental fork builder: owns a [`Fork`], its
//!   [`SemiString`], and a `StreamValidator`, consuming the same per-slot
//!   `(symbol, vertices)` event stream the execution engines produce.
//!   Million-slot columnar runs route through it to get axiom validation
//!   with no reference-engine replay.
//!
//! ## Parity contract
//!
//! For every complete stream, [`StreamValidator::finish`] is `Ok` exactly
//! when the batch oracle is `Ok` (property-tested over random
//! strategy × Δ × fault executions). The *first reported error* may
//! legitimately differ: the batch oracle scans axioms in a fixed order
//! over the finished fork, while the stream reports the first violation
//! *witnessable at observation time*. Both always report a genuine
//! violation of the same fork.

use crate::fork::{Fork, VertexId};
use crate::validate::{validate_delta, ForkError};
use multihonest_chars::{SemiString, SemiSymbol, Symbol};

/// Sentinel for "no honest depth observed" in the prefix-maximum tree.
const NO_MAX: (usize, usize) = (0, 0);
/// Sentinel for "no honest depth observed" in the suffix-minimum tree.
const NO_MIN: (usize, usize) = (usize::MAX, 0);

/// Growable Fenwick tree over slots `1..=n` answering
/// "maximum `(depth, slot)` entry at any slot `≤ i`" in `O(log n)`.
///
/// Classic orientation: node `t[i]` covers the block `(i − lowbit(i), i]`,
/// point updates ascend (`i += lowbit(i)`), prefix queries descend
/// (`i −= lowbit(i)`). Appending position `p` initialises `t[p]` by
/// folding the already-complete sub-blocks inside `(p − lowbit(p), p)`.
#[derive(Debug, Clone, Default)]
struct PrefixMaxTree {
    /// 1-based; `tree[0]` unused.
    tree: Vec<(usize, usize)>,
}

impl PrefixMaxTree {
    fn new() -> PrefixMaxTree {
        PrefixMaxTree { tree: vec![NO_MAX] }
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Extends the domain by one slot (initially holding no entry).
    fn push(&mut self) {
        let p = self.tree.len();
        let mut val = NO_MAX;
        let mut k = 1;
        while k < lowbit(p) {
            val = val.max(self.tree[p - k]);
            k <<= 1;
        }
        self.tree.push(val);
    }

    /// Records depth `d` at slot `i` (keeps the maximum per slot).
    fn update(&mut self, i: usize, d: usize) {
        let entry = (d, i);
        let mut i = i;
        while i <= self.len() {
            if entry > self.tree[i] {
                self.tree[i] = entry;
            }
            i += lowbit(i);
        }
    }

    /// Maximum entry over slots `1..=i`; [`NO_MAX`] when empty.
    fn query(&self, i: usize) -> (usize, usize) {
        let mut best = NO_MAX;
        let mut i = i.min(self.len());
        while i > 0 {
            best = best.max(self.tree[i]);
            i -= lowbit(i);
        }
        best
    }
}

/// Growable Fenwick tree over slots `1..=n` answering
/// "minimum `(depth, slot)` entry at any slot `≥ i`" in `O(log n)`.
///
/// Mirrored orientation: node `t[i]` covers `[i, i + lowbit(i) − 1]`,
/// point updates descend (`i −= lowbit(i)`), suffix queries ascend
/// (`i += lowbit(i)`, capped at the current length). A freshly appended
/// node starts at the sentinel: every slot its block covers is either
/// itself or a *future* slot, so no existing entry can belong to it.
#[derive(Debug, Clone, Default)]
struct SuffixMinTree {
    /// 1-based; `tree[0]` unused.
    tree: Vec<(usize, usize)>,
}

impl SuffixMinTree {
    fn new() -> SuffixMinTree {
        SuffixMinTree { tree: vec![NO_MIN] }
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Extends the domain by one slot (initially holding no entry).
    fn push(&mut self) {
        self.tree.push(NO_MIN);
    }

    /// Records depth `d` at slot `i` (keeps the minimum per slot).
    fn update(&mut self, i: usize, d: usize) {
        let entry = (d, i);
        let mut i = i;
        while i > 0 {
            if entry < self.tree[i] {
                self.tree[i] = entry;
            }
            i -= lowbit(i);
        }
    }

    /// Minimum entry over slots `i..=n`; [`NO_MIN`] when empty.
    fn query(&self, i: usize) -> (usize, usize) {
        let mut best = NO_MIN;
        let mut i = i;
        while i <= self.len() {
            best = best.min(self.tree[i]);
            i += lowbit(i);
        }
        best
    }
}

fn lowbit(i: usize) -> usize {
    i & i.wrapping_neg()
}

/// Online Δ-fork axiom checker: feed it the characteristic string one
/// [`SemiSymbol`] at a time and every vertex as a `(label, depth)`
/// observation; it maintains the [`validate_delta`] verdict in `O(log n)`
/// per observation.
///
/// The validator is *detached*: it never touches the fork itself, so it
/// composes with any producer — [`ForkFold`], the settlement game's
/// challenger/adversary loop, or a columnar execution. Structural
/// integrity (F1: tree shape; F2: monotone labels — the conditions
/// [`Fork::push_vertex`] already enforces by construction) is assumed;
/// what is checked online is label range, (F3) honest-slot
/// multiplicities, and (F4Δ) honest-depth monotonicity.
///
/// Errors are **sticky**: the first violation is latched and returned by
/// every later [`status`](StreamValidator::status) /
/// [`finish`](StreamValidator::finish) call.
#[derive(Debug, Clone)]
pub struct StreamValidator {
    delta: usize,
    /// Symbols seen so far, `syms[slot - 1]` for slot `1..=n`.
    syms: Vec<SemiSymbol>,
    /// Vertices observed per slot, `counts[slot]` (index 0 unused).
    counts: Vec<usize>,
    /// Max honest depth per honest slot, for the `i + Δ < j` check.
    prefix: PrefixMaxTree,
    /// Min honest depth per honest slot, for the mirrored direction.
    suffix: SuffixMinTree,
    /// Vertices observed so far (excluding the implicit root).
    observed: u32,
    error: Option<ForkError>,
}

impl StreamValidator {
    /// A fresh validator for delay bound `delta` over the empty string.
    pub fn new(delta: usize) -> StreamValidator {
        StreamValidator {
            delta,
            syms: Vec::new(),
            counts: vec![0],
            prefix: PrefixMaxTree::new(),
            suffix: SuffixMinTree::new(),
            observed: 0,
            error: None,
        }
    }

    /// The delay bound Δ this validator checks (F4Δ) against.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// Slots seen so far.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Whether no slot has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Vertices observed so far (excluding the implicit root).
    pub fn observed_vertices(&self) -> usize {
        self.observed as usize
    }

    /// The characteristic string observed so far.
    pub fn characteristic_string(&self) -> SemiString {
        self.syms.iter().copied().collect()
    }

    /// Appends the next slot's symbol.
    pub fn push_symbol(&mut self, s: SemiSymbol) {
        self.syms.push(s);
        self.counts.push(0);
        self.prefix.push();
        self.suffix.push();
    }

    /// Observes one vertex: its slot label and its depth in the fork.
    /// Labels may arrive out of slot order (adversarial vertices are
    /// routinely backdated to reserve slots); each observation costs
    /// `O(log n)`.
    pub fn observe(&mut self, label: usize, depth: usize) {
        self.observed += 1;
        if self.error.is_some() {
            return;
        }
        let v = VertexId(self.observed);
        let n = self.syms.len();
        if label < 1 || label > n {
            self.error = Some(ForkError::LabelOutOfRange {
                vertex: v,
                label,
                len: n,
            });
            return;
        }
        let sym = self.syms[label - 1];
        debug_assert!(
            !sym.is_empty_slot(),
            "vertex {v:?} labelled with empty slot {label}"
        );
        self.counts[label] += 1;
        if sym == SemiSymbol::UniqueHonest && self.counts[label] > 1 {
            self.error = Some(ForkError::UniqueHonestMultiplicity {
                slot: label,
                count: self.counts[label],
            });
            return;
        }
        if !sym.is_honest() {
            return;
        }
        // (F4Δ) both directions around the new honest vertex. Whichever
        // vertex of a violating pair is observed later triggers the check,
        // so insertion order never hides a violation.
        if label > self.delta + 1 {
            let (d, s) = self.prefix.query(label - self.delta - 1);
            if d >= depth && s != 0 {
                self.error = Some(ForkError::HonestDepthOrder {
                    earlier_slot: s,
                    earlier_depth: d,
                    later_slot: label,
                    later_depth: depth,
                });
                return;
            }
        }
        if label + self.delta < n {
            let (d, s) = self.suffix.query(label + self.delta + 1);
            if s != 0 && depth >= d {
                self.error = Some(ForkError::HonestDepthOrder {
                    earlier_slot: label,
                    earlier_depth: depth,
                    later_slot: s,
                    later_depth: d,
                });
                return;
            }
        }
        self.prefix.update(label, depth);
        self.suffix.update(label, depth);
    }

    /// The verdict over everything observed so far. `Ok` here does **not**
    /// yet certify (F3) completeness — honest slots may still be awaiting
    /// their vertices; [`finish`](StreamValidator::finish) adds that check.
    pub fn status(&self) -> Result<(), ForkError> {
        match &self.error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// The end-of-stream verdict: the latched error if any, else the
    /// (F3) completeness scan (every `h` slot has exactly one vertex,
    /// every `H` slot at least one).
    pub fn finish(&self) -> Result<(), ForkError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        for (i, &sym) in self.syms.iter().enumerate() {
            let slot = i + 1;
            match sym {
                SemiSymbol::UniqueHonest if self.counts[slot] != 1 => {
                    return Err(ForkError::UniqueHonestMultiplicity {
                        slot,
                        count: self.counts[slot],
                    });
                }
                SemiSymbol::MultiHonest if self.counts[slot] == 0 => {
                    return Err(ForkError::MultiHonestMissing { slot });
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// A finished [`ForkFold`]: the built fork, its characteristic string,
/// and the streaming validation verdict.
#[derive(Debug, Clone)]
pub struct StreamedFork {
    /// The fork built from the event stream.
    pub fork: Fork,
    /// The characteristic string the stream described (`⊥` retained).
    pub semi: SemiString,
    /// The online [`validate_delta`]-equivalent verdict.
    pub validation: Result<(), ForkError>,
}

impl StreamedFork {
    /// Re-runs the batch oracle over the finished fork. Equal to
    /// [`StreamedFork::validation`] at the `is_ok` level by the parity
    /// contract; kept for equivalence testing.
    pub fn batch_validation(&self, delta: usize) -> Result<(), ForkError> {
        validate_delta(&self.fork, &self.semi, delta)
    }
}

/// Incremental fork builder with online Δ-axiom validation: the streaming
/// pipeline's entry point shared by `sim::ExtractedFork` extraction, the
/// columnar engine's per-slot hook, and any other producer of per-slot
/// `(symbol, vertices)` events.
///
/// Drive it strictly slot by slot: [`push_symbol`](ForkFold::push_symbol)
/// for slot `t`, then [`push_vertex`](ForkFold::push_vertex) for every
/// vertex minted *during* slot `t` (their labels may still point at older
/// reserved slots). Vertex ids are assigned densely in push order, so a
/// producer whose block ids are already dense (the columnar store) gets a
/// 1:1 id correspondence for free.
#[derive(Debug, Clone)]
pub struct ForkFold {
    fork: Fork,
    semi: SemiString,
    validator: StreamValidator,
}

impl ForkFold {
    /// An empty fold for delay bound `delta`.
    pub fn new(delta: usize) -> ForkFold {
        ForkFold {
            fork: Fork::trivial(),
            semi: SemiString::default(),
            validator: StreamValidator::new(delta),
        }
    }

    /// The delay bound Δ validated against.
    pub fn delta(&self) -> usize {
        self.validator.delta()
    }

    /// The fork built so far.
    pub fn fork(&self) -> &Fork {
        &self.fork
    }

    /// The characteristic string streamed so far (`⊥` retained).
    pub fn characteristic_string(&self) -> &SemiString {
        &self.semi
    }

    /// Appends the next slot's symbol. Inside the fork's own
    /// [`CharString`](multihonest_chars::CharString) an empty slot is
    /// recorded as adversarial (the standard `⊥ → A` coercion — an empty
    /// slot never carries vertices, which the validator enforces).
    pub fn push_symbol(&mut self, s: SemiSymbol) {
        self.semi.push(s);
        self.fork
            .push_symbol(s.to_symbol().unwrap_or(Symbol::Adversarial));
        self.validator.push_symbol(s);
    }

    /// Adds a vertex under `parent` labelled `label`, observing it for
    /// validation. Panics if `label` points at an empty slot or outside
    /// the string streamed so far (producer bugs, not adversarial moves).
    pub fn push_vertex(&mut self, parent: VertexId, label: usize) -> VertexId {
        assert!(
            label >= 1 && label <= self.semi.len() && !self.semi.get(label).is_empty_slot(),
            "vertex labelled with empty or out-of-range slot {label}"
        );
        let v = self.fork.push_vertex(parent, label);
        self.validator.observe(label, self.fork.depth(v));
        v
    }

    /// The verdict so far (see [`StreamValidator::status`]).
    pub fn status(&self) -> Result<(), ForkError> {
        self.validator.status()
    }

    /// Finishes the stream: closes (F3) completeness and hands back the
    /// fork, its string and the verdict.
    pub fn finish(self) -> StreamedFork {
        let validation = self.validator.finish();
        StreamedFork {
            fork: self.fork,
            semi: self.semi,
            validation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_chars::SemiString;

    fn semi(s: &str) -> SemiString {
        s.parse().expect("valid semi-characteristic string")
    }

    /// Replays a finished fork through a fresh validator in vertex-id
    /// order and asserts `is_ok` parity with the batch oracle.
    fn assert_parity(fork: &Fork, w: &SemiString, delta: usize) {
        let mut val = StreamValidator::new(delta);
        for (_, sym) in w.iter_slots() {
            val.push_symbol(sym);
        }
        for v in fork.vertices().skip(1) {
            val.observe(fork.label(v), fork.depth(v));
        }
        let batch = validate_delta(fork, w, delta);
        assert_eq!(
            val.finish().is_ok(),
            batch.is_ok(),
            "stream/batch verdicts split on {w:?} Δ={delta}: stream {:?} vs batch {batch:?}",
            val.finish(),
        );
    }

    fn build(w: &str, edges: &[(u32, usize)]) -> (Fork, SemiString) {
        let s = semi(w);
        let mapped = s
            .iter_slots()
            .map(|(_, x)| x.to_symbol().unwrap_or(Symbol::Adversarial))
            .collect();
        let mut fork = Fork::new(mapped);
        for &(parent, label) in edges {
            fork.push_vertex(VertexId(parent), label);
        }
        (fork, s)
    }

    #[test]
    fn valid_forks_stream_ok() {
        for delta in 0..=3 {
            let (fork, w) = build("hAh", &[(0, 1), (1, 2), (2, 3)]);
            assert_parity(&fork, &w, delta);
            let (fork, w) = build("HhA", &[(0, 1), (0, 1), (1, 2), (2, 3)]);
            assert_parity(&fork, &w, delta);
        }
    }

    #[test]
    fn missing_honest_vertex_caught_at_finish() {
        let (fork, w) = build("hAh", &[(0, 1), (1, 2)]);
        let mut val = StreamValidator::new(0);
        for (_, sym) in w.iter_slots() {
            val.push_symbol(sym);
        }
        for v in fork.vertices().skip(1) {
            val.observe(fork.label(v), fork.depth(v));
        }
        assert!(val.status().is_ok(), "incomplete streams are not errors");
        assert!(matches!(
            val.finish(),
            Err(ForkError::UniqueHonestMultiplicity { slot: 3, count: 0 })
        ));
        assert_parity(&fork, &w, 0);
    }

    #[test]
    fn duplicate_unique_honest_caught_eagerly() {
        let (fork, w) = build("hA", &[(0, 1), (0, 1)]);
        let mut val = StreamValidator::new(1);
        for (_, sym) in w.iter_slots() {
            val.push_symbol(sym);
        }
        val.observe(1, 1);
        assert!(val.status().is_ok());
        val.observe(1, 1);
        assert!(matches!(
            val.status(),
            Err(ForkError::UniqueHonestMultiplicity { slot: 1, count: 2 })
        ));
        assert_parity(&fork, &w, 1);
    }

    #[test]
    fn multi_honest_missing_caught_at_finish() {
        let (fork, w) = build("hH", &[(0, 1)]);
        let mut val = StreamValidator::new(0);
        for (_, sym) in w.iter_slots() {
            val.push_symbol(sym);
        }
        val.observe(1, 1);
        assert!(matches!(
            val.finish(),
            Err(ForkError::MultiHonestMissing { slot: 2 })
        ));
        assert_parity(&fork, &w, 0);
    }

    #[test]
    fn depth_order_violation_caught_at_later_arrival() {
        // Honest slots 1 and 3 with equal depth 1 violate (F4) at Δ=0 but
        // not at Δ=1 (paper Definition 21).
        let (fork, w) = build("hAh", &[(0, 1), (0, 3), (1, 2)]);
        assert_parity(&fork, &w, 0);
        assert_parity(&fork, &w, 1);

        let mut val = StreamValidator::new(0);
        for (_, sym) in w.iter_slots() {
            val.push_symbol(sym);
        }
        val.observe(1, 1);
        assert!(val.status().is_ok());
        val.observe(3, 1);
        assert!(matches!(
            val.status(),
            Err(ForkError::HonestDepthOrder {
                earlier_slot: 1,
                earlier_depth: 1,
                later_slot: 3,
                later_depth: 1,
            })
        ));
    }

    #[test]
    fn depth_order_violation_caught_when_earlier_arrives_later() {
        // Same violating pair, observed in the opposite order: the
        // suffix-minimum direction fires.
        let w = semi("hAh");
        let mut val = StreamValidator::new(0);
        for (_, sym) in w.iter_slots() {
            val.push_symbol(sym);
        }
        val.observe(3, 1);
        assert!(val.status().is_ok());
        val.observe(1, 1);
        assert!(matches!(
            val.status(),
            Err(ForkError::HonestDepthOrder {
                earlier_slot: 1,
                earlier_depth: 1,
                later_slot: 3,
                later_depth: 1,
            })
        ));
    }

    #[test]
    fn delta_window_permits_nearby_equal_depths() {
        // Mirrors `validate::delta_relaxation_permits_nearby_equal_depths`:
        // honest slots 1 and 2 at equal depth are invalid synchronously
        // but fine with Δ ≥ 1 (1 + 1 < 2 fails, so no constraint), while
        // slots 1 and 3 stay constrained at Δ = 1 and relax at Δ = 2.
        let (fork, w) = build("hh", &[(0, 1), (0, 2)]);
        let mut val = StreamValidator::new(1);
        for (_, sym) in w.iter_slots() {
            val.push_symbol(sym);
        }
        val.observe(1, 1);
        val.observe(2, 1);
        assert!(val.finish().is_ok());
        for delta in 0..=1 {
            assert_parity(&fork, &w, delta);
        }

        let (fork, w) = build("h.h", &[(0, 1), (0, 3)]);
        for delta in 0..=2 {
            assert_parity(&fork, &w, delta);
        }
        let mut val = StreamValidator::new(2);
        for (_, sym) in w.iter_slots() {
            val.push_symbol(sym);
        }
        val.observe(1, 1);
        val.observe(3, 1);
        assert!(val.finish().is_ok());
    }

    #[test]
    fn label_out_of_range_is_latched() {
        let mut val = StreamValidator::new(0);
        val.push_symbol(SemiSymbol::UniqueHonest);
        val.observe(2, 1);
        assert!(matches!(
            val.status(),
            Err(ForkError::LabelOutOfRange {
                label: 2,
                len: 1,
                ..
            })
        ));
        // Sticky: a later valid observation does not clear it.
        val.observe(1, 1);
        assert!(val.finish().is_err());
    }

    #[test]
    fn fork_fold_builds_and_validates() {
        let mut fold = ForkFold::new(0);
        fold.push_symbol(SemiSymbol::UniqueHonest);
        let a = fold.push_vertex(VertexId::ROOT, 1);
        fold.push_symbol(SemiSymbol::Adversarial);
        let b = fold.push_vertex(a, 2);
        fold.push_symbol(SemiSymbol::MultiHonest);
        fold.push_vertex(b, 3);
        fold.push_vertex(b, 3);
        assert!(fold.status().is_ok());
        let out = fold.finish();
        assert!(out.validation.is_ok());
        assert_eq!(out.fork.vertex_count(), 5);
        assert_eq!(out.semi.len(), 3);
        assert_eq!(out.validation.is_ok(), out.batch_validation(0).is_ok());
    }

    #[test]
    fn fork_fold_empty_slots_coerce_to_adversarial() {
        let mut fold = ForkFold::new(1);
        fold.push_symbol(SemiSymbol::UniqueHonest);
        fold.push_vertex(VertexId::ROOT, 1);
        fold.push_symbol(SemiSymbol::Empty);
        let out = fold.finish();
        assert!(out.validation.is_ok());
        assert_eq!(out.fork.string().get(2), Symbol::Adversarial);
        assert_eq!(out.semi.get(2), SemiSymbol::Empty);
    }

    #[test]
    #[should_panic(expected = "empty or out-of-range slot")]
    fn fork_fold_rejects_vertices_on_empty_slots() {
        let mut fold = ForkFold::new(0);
        fold.push_symbol(SemiSymbol::Empty);
        fold.push_vertex(VertexId::ROOT, 1);
    }

    #[test]
    fn fenwick_trees_match_naive_scan() {
        // Deterministic pseudo-random interleaving of pushes, updates and
        // queries, cross-checked against flat vectors.
        let mut pre = PrefixMaxTree::new();
        let mut suf = SuffixMinTree::new();
        let mut naive: Vec<Option<(usize, usize)>> = Vec::new();
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            match next() % 3 {
                0 => {
                    pre.push();
                    suf.push();
                    naive.push(None);
                }
                1 if !naive.is_empty() => {
                    let i = (next() as usize % naive.len()) + 1;
                    let d = next() as usize % 50 + 1;
                    pre.update(i, d);
                    suf.update(i, d);
                    let cur = naive[i - 1];
                    naive[i - 1] = Some(match cur {
                        Some((lo, hi)) => (lo.min(d), hi.max(d)),
                        None => (d, d),
                    });
                }
                _ if !naive.is_empty() => {
                    let i = (next() as usize % naive.len()) + 1;
                    let want_max = naive[..i]
                        .iter()
                        .enumerate()
                        .filter_map(|(j, e)| e.map(|(_, hi)| (hi, j + 1)))
                        .max()
                        .unwrap_or(NO_MAX);
                    assert_eq!(pre.query(i).0, want_max.0);
                    let want_min = naive[i - 1..]
                        .iter()
                        .enumerate()
                        .filter_map(|(j, e)| e.map(|(lo, _)| (lo, i + j)))
                        .min()
                        .unwrap_or(NO_MIN);
                    assert_eq!(suf.query(i).0, want_min.0);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn random_forks_stream_equals_batch() {
        use crate::generate::{random_fork, GenerateConfig};
        use multihonest_chars::BernoulliCondition;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xf0_1d);
        let cond = BernoulliCondition::new(0.15, 0.35).unwrap();
        for _ in 0..60 {
            let n = rng.gen_range(1..20);
            let w: multihonest_chars::CharString = cond.sample(&mut rng, n);
            let fork = random_fork(&w, &mut rng, GenerateConfig::default());
            let s: SemiString = w.iter_slots().map(|(_, x)| SemiSymbol::from(x)).collect();
            for delta in 0..3 {
                assert_parity(&fork, &s, delta);
            }
        }
    }
}
