//! Appendix A: common-prefix violations and balanced forks.
//!
//! The paper's main text analyses CP violations through Catalan slots
//! (Section 9); Appendix A shows the older route still works in the
//! multi-leader setting: a fork with slot divergence `≥ k + 1` can be
//! *pinched* at a carefully chosen honest vertex and trimmed into an
//! `x`-balanced fork for a prefix `xy` with `|y| ≥ k` (Theorem 9). This
//! module implements the pinching construction and a constructive version
//! of the theorem's conclusion.

use crate::balanced;
use crate::fork::{Fork, VertexId};

/// The *pinched* fork `F^{⊲u⊳}` (Appendix A): every edge of `F` entering
/// a vertex of depth `depth(u) + 1` is redirected to originate from `u`,
/// so all tines longer than `depth(u)` pass through `u`.
///
/// The result is a well-defined fork for the same characteristic string
/// whenever no vertex deeper than `u` carries a label `≤ ℓ(u)` — in the
/// theorem's use `u` is the deepest vertex of its depth among honest
/// prefixes, which guarantees this; the function checks it and panics
/// otherwise (a misuse, not a recoverable state).
///
/// # Panics
///
/// Panics if redirection would create a label inversion (some vertex at
/// depth `depth(u) + 1` has a label `≤ ℓ(u)`).
pub fn pinch(fork: &Fork, u: VertexId) -> Fork {
    let target_depth = fork.depth(u) + 1;
    let mut out = Fork::new(fork.string().clone());
    // Rebuild vertex by vertex (insertion order = creation order, parents
    // precede children), redirecting parents of depth-target vertices.
    let mut remap: Vec<VertexId> = vec![VertexId::ROOT; fork.vertex_count()];
    for v in fork.vertices() {
        if v == VertexId::ROOT {
            continue;
        }
        let parent = fork.parent(v).expect("non-root");
        let new_parent = if fork.depth(v) == target_depth {
            assert!(
                fork.label(v) > fork.label(u),
                "pinch would invert labels: vertex {v:?} (label {}) under {u:?} (label {})",
                fork.label(v),
                fork.label(u)
            );
            u
        } else {
            parent
        };
        remap[v.index()] = out.push_vertex(remap[new_parent.index()], fork.label(v));
    }
    out
}

/// A constructive fragment of Theorem 9: given a fork whose slot
/// divergence is at least `k + 1`, produce a cut `|x| = c` and a trimmed
/// fork that is `x`-balanced with the divergence happening over a suffix
/// of length ≥ `k`.
///
/// Returns `(cut, balanced_fork)` on success. The search mirrors the
/// proof: take a witness pair `(t1, t2)` of maximal slot divergence,
/// pinch at their last common vertex `u` (cut `c = ℓ(u)`), and trim both
/// tines to equal length (dropping trailing adversarial blocks only).
/// Returns `None` when no witness pair survives the trimming — which the
/// theorem proves cannot happen for valid forks, so `None` indicates the
/// divergence bound was not actually met.
pub fn balanced_fork_from_divergence(fork: &Fork, k: usize) -> Option<(usize, Fork)> {
    // Find the witness pair of maximal slot divergence (paper: maximal
    // divergence, then minimal |ℓ(t2) − ℓ(t1)|).
    let ids: Vec<VertexId> = fork.vertices().collect();
    let mut best: Option<(usize, VertexId, VertexId)> = None;
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            let d = balanced::slot_divergence_of(fork, a, b);
            if best.is_none_or(|(bd, _, _)| d > bd) {
                best = Some((d, a, b));
            }
        }
    }
    let (div, a, b) = best?;
    if div < k + 1 {
        return None;
    }
    let u = fork.last_common_vertex(a, b);
    let cut = fork.label(u);
    // Trim the deeper tine's adversarial tail so both end at equal depth.
    let (mut a, mut b) = (a, b);
    loop {
        let (da, db) = (fork.depth(a), fork.depth(b));
        if da == db {
            break;
        }
        // Trim from the deeper side; if its end vertex is honest we
        // cannot trim (honest blocks are part of the record) — trim the
        // other or fail.
        let (deeper, other) = if da > db { (&mut a, b) } else { (&mut b, a) };
        if fork.is_honest(*deeper) {
            // Cannot shorten an honest tip below its depth; instead try
            // trimming the shallower side is impossible (it is already
            // shorter) — the witness fails.
            let _ = other;
            return None;
        }
        *deeper = fork.parent(*deeper).expect("deeper than the lca");
    }
    if a == b || fork.depth(a) <= fork.depth(u) {
        return None;
    }
    // Build the sub-fork containing only vertices needed: all vertices
    // whose subtree meets {a, b} — here simply keep every vertex that is
    // an ancestor-or-self of a or b, plus all honest vertices (to keep
    // axiom (F3)) of slots ≤ max label, with depths untouched.
    let max_label = fork.label(a).max(fork.label(b));
    let keep: Vec<bool> = fork
        .vertices()
        .map(|v| {
            fork.is_ancestor_or_equal(v, a)
                || fork.is_ancestor_or_equal(v, b)
                || (fork.is_honest(v) && fork.label(v) <= max_label)
        })
        .collect();
    let prefix_len = max_label;
    let mut out = Fork::new(fork.string().prefix(prefix_len));
    let mut remap: Vec<Option<VertexId>> = vec![None; fork.vertex_count()];
    remap[VertexId::ROOT.index()] = Some(VertexId::ROOT);
    for v in fork.vertices() {
        if v == VertexId::ROOT || !keep[v.index()] || fork.label(v) > prefix_len {
            continue;
        }
        // The parent may have been dropped (it wasn't kept): reattach to
        // the nearest kept ancestor — only valid when the dropped chain
        // was adversarial; to stay conservative, walk up to the nearest
        // kept ancestor.
        let mut p = fork.parent(v).expect("non-root");
        while remap[p.index()].is_none() {
            p = fork.parent(p).expect("root is always kept");
        }
        remap[v.index()] =
            Some(out.push_vertex(remap[p.index()].expect("kept ancestor"), fork.label(v)));
    }
    let na = remap[a.index()]?;
    let nb = remap[b.index()]?;
    // The trimmed tines must be the maximum-length tines of the sub-fork
    // and meet at label ≤ cut; verify, re-check the axioms (re-attachment
    // across dropped adversarial vertices can break (F4) in exotic
    // forks — the theorem's full construction avoids this with a more
    // careful surgery; we conservatively reject), and return.
    let h = out.height();
    if out.depth(na) != h || out.depth(nb) != h {
        return None;
    }
    if out.label(out.last_common_vertex(na, nb)) > cut {
        return None;
    }
    if out.validate().is_err() {
        return None;
    }
    Some((cut, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_chars::CharString;

    fn w(s: &str) -> CharString {
        s.parse().unwrap()
    }

    #[test]
    fn pinch_redirects_deep_edges() {
        // Fork: root → 1 → 3, root → 2 → 4; pinch at vertex 1 (depth 1):
        // both depth-2 vertices (3 and 4) must now hang under 1.
        let mut f = Fork::new(w("hAAA"));
        let v1 = f.push_vertex(VertexId::ROOT, 1);
        let v3 = f.push_vertex(v1, 3);
        let v2 = f.push_vertex(VertexId::ROOT, 2);
        let v4 = f.push_vertex(v2, 4);
        let _ = (v3, v4);
        let pinched = pinch(&f, v1);
        assert_eq!(pinched.vertex_count(), f.vertex_count());
        // Every depth-2 vertex now has parent with label 1.
        for v in pinched.vertices() {
            if pinched.depth(v) == 2 {
                assert_eq!(pinched.label(pinched.parent(v).unwrap()), 1);
            }
        }
        assert!(pinched.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invert labels")]
    fn pinch_rejects_label_inversion() {
        // Vertex with label 1 at depth 1; pinching at a label-3 vertex of
        // depth 0 would... construct: root → 3 (depth 1), root → 1
        // (depth 1)? Pinch at the label-3 vertex redirects depth-2
        // vertices; make a depth-2 vertex with label 2 < 3.
        let mut f = Fork::new(w("hAA"));
        let v1 = f.push_vertex(VertexId::ROOT, 1);
        let _v2 = f.push_vertex(v1, 2);
        let v3 = f.push_vertex(VertexId::ROOT, 3);
        let _ = pinch(&f, v3);
    }

    #[test]
    fn theorem9_on_figure2() {
        // Figure 2's balanced fork has slot divergence 5: for k ≤ 4 the
        // construction must return an x-balanced trimmed fork.
        let f = crate::figures::figure2();
        let (cut, bal) = balanced_fork_from_divergence(&f, 3).expect("divergence 5 ≥ 4");
        assert_eq!(cut, 0);
        assert!(bal.validate().is_ok());
        assert!(balanced::is_x_balanced(&bal, cut));
    }

    #[test]
    fn theorem9_on_figure3() {
        // Figure 3: the two max tines meet at label 2, divergence
        // min(5, 6) − 2 = 3; with k = 2 the construction yields an
        // x-balanced fork for x of length 2.
        let f = crate::figures::figure3();
        let (cut, bal) = balanced_fork_from_divergence(&f, 2).expect("divergence 3 ≥ 3");
        assert_eq!(cut, 2);
        assert!(balanced::is_x_balanced(&bal, cut));
        // Divergence bound not met ⇒ None.
        assert!(balanced_fork_from_divergence(&f, 5).is_none());
    }

    #[test]
    fn no_divergence_no_balance() {
        let mut f = Fork::new(w("hh"));
        let a = f.push_vertex(VertexId::ROOT, 1);
        let _ = f.push_vertex(a, 2);
        assert!(balanced_fork_from_divergence(&f, 0).is_none());
    }
}
