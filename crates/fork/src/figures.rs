//! Programmatic reconstructions of the paper's figures.
//!
//! These builders regenerate, vertex for vertex, the illustrative forks of
//! the paper (experiments E2–E4 of DESIGN.md). Their structure is asserted
//! in tests, and [`crate::dot::to_dot`] renders them for visual comparison
//! with the published diagrams.

use multihonest_chars::CharString;

use crate::fork::{Fork, VertexId};

/// The fork of **Figure 1** (page 6): `w = hAhAhHAAH`, with three disjoint
/// maximum-length tines, two concurrent honest vertices at slot 6 and two
/// at slot 9.
pub fn figure1() -> Fork {
    let w: CharString = "hAhAhHAAH".parse().expect("valid literal");
    let mut f = Fork::new(w);
    let r = VertexId::ROOT;
    // Common prefix 0 → 1 → 2 → 3 plus a stray adversarial 2'.
    let v1 = f.push_vertex(r, 1);
    let v2a = f.push_vertex(v1, 2);
    let _v2b = f.push_vertex(v1, 2);
    let v3 = f.push_vertex(v2a, 3);
    // Slot 4 (adversarial) fans out three ways under 3.
    let _v4a = f.push_vertex(v3, 4);
    let v4b = f.push_vertex(v3, 4);
    let v4c = f.push_vertex(v3, 4);
    // The unique honest 5 also sits at depth 4 under 3.
    let v5 = f.push_vertex(v3, 5);
    // The two concurrent honest leaders of slot 6 extend *different*
    // vertices of the same depth (5 and 4'), as the figure highlights.
    let v6a = f.push_vertex(v5, 6);
    let v6b = f.push_vertex(v4b, 6);
    // Three maximum-length tines of length 6: …→6→7, …→6'→9, …→4''→8→9'.
    let _v7 = f.push_vertex(v6a, 7);
    let _v9a = f.push_vertex(v6b, 9);
    let v8 = f.push_vertex(v4c, 8);
    let _v9b = f.push_vertex(v8, 9);
    f
}

/// The balanced fork of **Figure 2** (page 23): `w = hAhAhA` with two
/// completely disjoint maximum-length tines.
pub fn figure2() -> Fork {
    let w: CharString = "hAhAhA".parse().expect("valid literal");
    let mut f = Fork::new(w);
    let r = VertexId::ROOT;
    // Upper tine: 0 → 1 → 4 → 5.
    let v1 = f.push_vertex(r, 1);
    let v4 = f.push_vertex(v1, 4);
    let _v5 = f.push_vertex(v4, 5);
    // Lower tine: 0 → 2 → 3 → 6.
    let v2 = f.push_vertex(r, 2);
    let v3 = f.push_vertex(v2, 3);
    let _v6 = f.push_vertex(v3, 6);
    f
}

/// The `x`-balanced fork of **Figure 3** (page 23): `w = hhhAhA` with
/// `x = hh`; the two maximum-length tines share the prefix over `x` and are
/// disjoint over the rest.
pub fn figure3() -> Fork {
    let w: CharString = "hhhAhA".parse().expect("valid literal");
    let mut f = Fork::new(w);
    let r = VertexId::ROOT;
    // Shared prefix over x = hh: 0 → 1 → 2.
    let v1 = f.push_vertex(r, 1);
    let v2 = f.push_vertex(v1, 2);
    // Upper branch: → 3 → 6.
    let v3 = f.push_vertex(v2, 3);
    let _v6 = f.push_vertex(v3, 6);
    // Lower branch: → 4 → 5.
    let v4 = f.push_vertex(v2, 4);
    let _v5 = f.push_vertex(v4, 5);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balanced;

    #[test]
    fn figure1_is_valid_with_three_max_tines() {
        let f = figure1();
        assert!(f.validate().is_ok());
        assert_eq!(f.height(), 6);
        assert_eq!(f.max_length_tines().len(), 3);
        assert_eq!(f.vertices_with_label(6).len(), 2);
        assert_eq!(f.vertices_with_label(9).len(), 2);
        // The two slot-6 vertices extend different parents of equal depth.
        let sixes = f.vertices_with_label(6);
        let p0 = f.parent(sixes[0]).unwrap();
        let p1 = f.parent(sixes[1]).unwrap();
        assert_ne!(p0, p1);
        assert_eq!(f.depth(p0), f.depth(p1));
    }

    #[test]
    fn figure2_is_balanced() {
        let f = figure2();
        assert!(f.validate().is_ok());
        assert!(balanced::is_balanced(&f));
        assert_eq!(f.height(), 3);
    }

    #[test]
    fn figure3_is_x_balanced_for_x_hh() {
        let f = figure3();
        assert!(f.validate().is_ok());
        assert!(balanced::is_x_balanced(&f, 2));
        // But NOT balanced outright: the two max tines share the edges
        // over x.
        assert!(!balanced::is_balanced(&f));
        assert!(!balanced::is_x_balanced(&f, 1));
    }
}
