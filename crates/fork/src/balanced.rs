//! Balanced forks, slot divergence, settlement violations and common-prefix
//! violations (paper Sections 2.1, 6.3, 9 and Appendix A).

use crate::fork::{Fork, VertexId};

/// Returns `true` when the tines ending at `a` and `b` *diverge prior to
/// slot `s`* in the sense of Definition 3: they contain different vertices
/// labelled `s`, or one contains a vertex labelled `s` while the other does
/// not.
pub fn diverge_prior_to(fork: &Fork, a: VertexId, b: VertexId, s: usize) -> bool {
    let va = fork.tine_vertex_with_label(a, s);
    let vb = fork.tine_vertex_with_label(b, s);
    match (va, vb) {
        (Some(x), Some(y)) => x != y,
        (None, None) => false,
        _ => true,
    }
}

/// Returns `true` when the fork witnesses that slot `s` is **not settled**:
/// it contains two maximum-length tines that diverge prior to `s`
/// (Definition 3).
pub fn violates_settlement(fork: &Fork, s: usize) -> bool {
    let maxes = fork.max_length_tines();
    for (i, &a) in maxes.iter().enumerate() {
        for &b in &maxes[i + 1..] {
            if diverge_prior_to(fork, a, b, s) {
                return true;
            }
        }
    }
    false
}

/// Returns `true` when the fork is *balanced* (Definition 18): it contains
/// two edge-disjoint tines, both of maximum length.
pub fn is_balanced(fork: &Fork) -> bool {
    is_x_balanced(fork, 0)
}

/// Returns `true` when the fork is *`x`-balanced* for the length-`cut`
/// prefix `x` of its string (Definition 18): it contains two tines of
/// maximum length that share no edge terminating after slot `cut` — i.e.
/// whose last common vertex has label `≤ cut`.
pub fn is_x_balanced(fork: &Fork, cut: usize) -> bool {
    let maxes = fork.max_length_tines();
    for (i, &a) in maxes.iter().enumerate() {
        for &b in maxes.iter().skip(i) {
            if a == b {
                // A tine self-pairs only when it has no edge past `cut`;
                // for a maximum-length tine this means height(F) vertices
                // all labelled ≤ cut — the pair is then degenerate and we
                // require a genuine second tine, except for the trivial
                // fork (height 0) which is vacuously balanced.
                if fork.height() == 0 {
                    return true;
                }
                continue;
            }
            if fork.label(fork.last_common_vertex(a, b)) <= cut {
                return true;
            }
        }
    }
    false
}

/// The slot divergence of a pair of tines (Definition 25):
/// `ℓ(t1) − ℓ(t1 ∩ t2)` where `t1` is the tine with the smaller label.
pub fn slot_divergence_of(fork: &Fork, a: VertexId, b: VertexId) -> usize {
    let (first, _) = if fork.label(a) <= fork.label(b) {
        (a, b)
    } else {
        (b, a)
    };
    let lca = fork.last_common_vertex(a, b);
    fork.label(first) - fork.label(lca).min(fork.label(first))
}

/// The slot divergence of the fork: the maximum of
/// [`slot_divergence_of`] over all tine pairs (Definition 25).
pub fn slot_divergence(fork: &Fork) -> usize {
    let ids: Vec<VertexId> = fork.vertices().collect();
    let mut best = 0;
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            best = best.max(slot_divergence_of(fork, a, b));
        }
    }
    best
}

/// Returns `true` when the fork violates `k`-CP^slot (Definition 24):
/// there are viable tines `t1, t2` with `ℓ(t1) ≤ ℓ(t2)` such that the
/// portion of `t1` up to slot `ℓ(t1) − k` is **not** a prefix of `t2`.
pub fn violates_k_cp_slot(fork: &Fork, k: usize) -> bool {
    let viable: Vec<VertexId> = fork.vertices().filter(|v| fork.is_viable(*v)).collect();
    for &a in &viable {
        for &b in &viable {
            if fork.label(a) > fork.label(b) {
                continue;
            }
            // Trimmed tine t1^{⌊k}: portion labelled ≤ ℓ(t1) − k.
            let cutoff = fork.label(a).saturating_sub(k);
            let trimmed = fork.truncate_to_label(a, cutoff);
            if !fork.is_ancestor_or_equal(trimmed, b) {
                return true;
            }
        }
    }
    false
}

/// Returns `true` when the fork violates the traditional `k`-CP property
/// (block truncation: remove the last `k` *blocks* of `t1` instead of the
/// blocks of the last `k` slots). A `k`-CP violation implies a `k`-CP^slot
/// violation (Section 9).
pub fn violates_k_cp(fork: &Fork, k: usize) -> bool {
    let viable: Vec<VertexId> = fork.vertices().filter(|v| fork.is_viable(*v)).collect();
    for &a in &viable {
        for &b in &viable {
            if fork.label(a) > fork.label(b) {
                continue;
            }
            let keep_depth = fork.depth(a).saturating_sub(k);
            let trimmed = fork.ancestor_at_depth(a, keep_depth);
            if !fork.is_ancestor_or_equal(trimmed, b) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_chars::CharString;

    fn w(s: &str) -> CharString {
        s.parse().unwrap()
    }

    #[test]
    fn figure2_balanced_witness() {
        let f = crate::figures::figure2();
        assert!(is_balanced(&f));
        // It is x-balanced for every cut.
        for cut in 0..=6 {
            assert!(is_x_balanced(&f, cut));
        }
    }

    #[test]
    fn figure3_settlement_violation_for_slot_3() {
        // In Figure 3 the two max-length tines diverge right after x = hh:
        // one contains a vertex labelled 3, the other does not, so slot 3
        // is unsettled; slot 1 and 2 are on the common prefix.
        let f = crate::figures::figure3();
        assert!(violates_settlement(&f, 3));
        assert!(violates_settlement(&f, 4));
        assert!(!violates_settlement(&f, 1));
        assert!(!violates_settlement(&f, 2));
    }

    #[test]
    fn diverge_prior_to_cases() {
        let mut f = Fork::new(w("hAA"));
        let a = f.push_vertex(VertexId::ROOT, 1);
        let b1 = f.push_vertex(a, 2);
        let b2 = f.push_vertex(a, 3);
        // b1's tine has a slot-2 vertex, b2's does not.
        assert!(diverge_prior_to(&f, b1, b2, 2));
        assert!(diverge_prior_to(&f, b1, b2, 3));
        // Both contain the same slot-1 vertex.
        assert!(!diverge_prior_to(&f, b1, b2, 1));
        // Same tine never diverges from itself.
        assert!(!diverge_prior_to(&f, b1, b1, 2));
        // Two distinct vertices with the same label diverge.
        let mut g = Fork::new(w("H"));
        let c1 = g.push_vertex(VertexId::ROOT, 1);
        let c2 = g.push_vertex(VertexId::ROOT, 1);
        assert!(diverge_prior_to(&g, c1, c2, 1));
    }

    #[test]
    fn trivial_fork_is_balanced_vacuously() {
        let f = Fork::trivial();
        assert!(is_balanced(&f));
    }

    #[test]
    fn linear_chain_is_not_balanced() {
        let mut f = Fork::new(w("hh"));
        let a = f.push_vertex(VertexId::ROOT, 1);
        let _b = f.push_vertex(a, 2);
        assert!(!is_balanced(&f));
        assert!(!is_x_balanced(&f, 1));
        assert!(!violates_settlement(&f, 1));
    }

    #[test]
    fn slot_divergence_examples() {
        let f = crate::figures::figure2();
        // Tines 0→1→4→5 and 0→2→3→6 meet at the root; the pair
        // (5-tine, 6-tine) has ℓ(t1)=5, ℓ(lca)=0, divergence 5.
        assert_eq!(slot_divergence(&f), 5);
        // On a chain every pair is nested (lca = the shallower tine), so
        // the divergence is 0.
        let mut g = Fork::new(w("hh"));
        let a = g.push_vertex(VertexId::ROOT, 1);
        let b = g.push_vertex(a, 2);
        assert_eq!(slot_divergence(&g), 0);
        let _ = b;
    }

    #[test]
    fn cp_violations() {
        // Figure 2's balanced fork: the two max tines diverge at the root;
        // tine lengths 3, labels 5 and 6. Trimming 2 slots off the label-5
        // tine leaves its slot-3 portion? ℓ(t1) − k = 5 − 2 = 3: trimmed
        // tine is 0→1 (labels ≤ 3 on that tine: 1)… which is not a prefix
        // of the other max tine 0→2→3→6. So 2-CP^slot is violated. With
        // k = 5 the trimmed tine is the root, always a prefix — but other
        // viable pairs may still violate.
        let f = crate::figures::figure2();
        assert!(violates_k_cp_slot(&f, 2));
        assert!(violates_k_cp_slot(&f, 4));
        assert!(!violates_k_cp_slot(&f, 6));
        // Block-truncation CP: trimming 3 blocks from either max tine
        // reaches the root.
        assert!(violates_k_cp(&f, 2));
        assert!(!violates_k_cp(&f, 3));
        // A single chain never violates CP.
        let mut g = Fork::new(w("hhh"));
        let a = g.push_vertex(VertexId::ROOT, 1);
        let b = g.push_vertex(a, 2);
        let _c = g.push_vertex(b, 3);
        assert!(!violates_k_cp_slot(&g, 0));
        assert!(!violates_k_cp(&g, 0));
    }

    #[test]
    fn k_cp_violation_implies_k_cp_slot_violation() {
        // Section 9: block-truncation violations imply slot-truncation
        // violations (labels increase along tines, so k blocks span ≥ k
        // slots). Check on the figures.
        for f in [
            crate::figures::figure1(),
            crate::figures::figure2(),
            crate::figures::figure3(),
        ] {
            for k in 0..=6 {
                if violates_k_cp(&f, k) {
                    assert!(violates_k_cp_slot(&f, k), "k = {k}");
                }
            }
        }
    }
}
