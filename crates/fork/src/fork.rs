//! The fork tree itself: vertices, labels, tines, depths, viability.

use std::collections::HashMap;

use multihonest_chars::{CharString, Symbol};
use multihonest_core::AncestorIndex;

/// Identifier of a fork vertex; the root (genesis) is always
/// [`VertexId::ROOT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub(crate) u32);

impl VertexId {
    /// The root vertex (the genesis block, label 0).
    pub const ROOT: VertexId = VertexId(0);

    /// The arena index of this vertex.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A fork `F ⊢ w` for a characteristic string `w` (paper Definition 2).
///
/// The tree is stored as an arena; vertex 0 is the root with label 0.
/// Every *tine* (root-to-vertex path) is identified by its terminal
/// [`VertexId`] — note that a tine need not end at a leaf.
///
/// `Fork` enforces only the cheap structural invariants on insertion
/// (labels strictly increase along edges and refer to existing slots);
/// the full axioms (F1)–(F4) are checked by [`Fork::validate`].
///
/// # Examples
///
/// Build the two-chain fork from the paper's introduction and inspect it:
///
/// ```
/// use multihonest_fork::{Fork, VertexId};
///
/// let w = "hAH".parse()?;
/// let mut f = Fork::new(w);
/// let a = f.push_vertex(VertexId::ROOT, 1); // honest block at slot 1
/// let b = f.push_vertex(a, 2);              // adversarial block at slot 2
/// let c = f.push_vertex(a, 3);              // honest block at slot 3
/// assert_eq!(f.depth(b), 2);
/// assert_eq!(f.depth(c), 2);
/// assert_eq!(f.height(), 2);
/// assert!(f.validate().is_ok());
/// # Ok::<(), multihonest_chars::ParseCharStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fork {
    w: CharString,
    labels: Vec<usize>,
    children: Vec<Vec<VertexId>>,
    /// Shared ancestry layer: parent links, depths and the binary-lifting
    /// jump tables behind every `O(log n)` ancestry query below.
    anc: AncestorIndex,
    /// Maximum depth over all vertices, maintained incrementally.
    height: usize,
}

impl Fork {
    /// Creates the trivial fork (a lone genesis vertex) for `w`.
    pub fn new(w: CharString) -> Fork {
        Fork {
            w,
            labels: vec![0],
            children: vec![Vec::new()],
            anc: AncestorIndex::new(),
            height: 0,
        }
    }

    /// Creates the trivial fork for the empty string `ε`.
    pub fn trivial() -> Fork {
        Fork::new(CharString::new())
    }

    /// The characteristic string this fork is built over.
    pub fn string(&self) -> &CharString {
        &self.w
    }

    /// Extends the underlying characteristic string by one symbol.
    ///
    /// Any fork for `w` is also a fork prefix for `w·b`; this method is how
    /// game-playing adversaries grow the horizon slot by slot.
    pub fn push_symbol(&mut self, s: Symbol) {
        self.w.push(s);
    }

    /// The number of vertices, including the root.
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Iterates over all vertex ids, root first, in insertion order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.labels.len() as u32).map(VertexId)
    }

    /// Adds a vertex labelled `label` under `parent` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist, if `label` exceeds the string
    /// length, or if `label` is not strictly greater than the parent's
    /// label (axiom (F2)).
    pub fn push_vertex(&mut self, parent: VertexId, label: usize) -> VertexId {
        assert!(
            parent.index() < self.labels.len(),
            "parent {parent:?} does not exist"
        );
        assert!(
            label >= 1 && label <= self.w.len(),
            "label {label} out of range 1..={}",
            self.w.len()
        );
        assert!(
            label > self.labels[parent.index()],
            "label {label} not greater than parent label {}",
            self.labels[parent.index()]
        );
        let id = VertexId(self.labels.len() as u32);
        self.labels.push(label);
        self.children.push(Vec::new());
        let idx = self.anc.push(parent.index());
        debug_assert_eq!(idx, id.index());
        self.height = self.height.max(self.anc.depth(idx));
        self.children[parent.index()].push(id);
        id
    }

    /// The slot label `ℓ(v)` (0 for the root).
    #[inline]
    pub fn label(&self, v: VertexId) -> usize {
        self.labels[v.index()]
    }

    /// The parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.anc.parent(v.index()).map(|i| VertexId(i as u32))
    }

    /// The shared ancestry index underlying this fork's `O(log n)`
    /// ancestry queries (jump tables over parent links). Exposed so
    /// analyses layered on top (e.g. the incremental reach engine) can
    /// run their own LCA / pre-order queries without duplicating it.
    #[inline]
    pub fn ancestry(&self) -> &AncestorIndex {
        &self.anc
    }

    /// The children of `v`.
    #[inline]
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        &self.children[v.index()]
    }

    /// The depth of `v` — equivalently the *length* of the tine ending at
    /// `v` (paper Definition 9).
    #[inline]
    pub fn depth(&self, v: VertexId) -> usize {
        self.anc.depth(v.index())
    }

    /// Returns `true` when `v` is a leaf.
    #[inline]
    pub fn is_leaf(&self, v: VertexId) -> bool {
        self.children[v.index()].is_empty()
    }

    /// Returns `true` when `v` is honest: the root, or labelled by an
    /// honest slot of `w`.
    #[inline]
    pub fn is_honest(&self, v: VertexId) -> bool {
        let l = self.labels[v.index()];
        l == 0 || self.w.get(l).is_honest()
    }

    /// The height of the fork: the length of its longest tine.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// All vertices of maximum depth (the endpoints of maximum-length
    /// tines).
    pub fn max_length_tines(&self) -> Vec<VertexId> {
        let h = self.height();
        self.vertices().filter(|v| self.depth(*v) == h).collect()
    }

    /// Returns `true` when the fork is *closed*: every leaf is honest
    /// (paper Definition 12). The trivial fork is closed.
    pub fn is_closed(&self) -> bool {
        self.vertices()
            .all(|v| !self.is_leaf(v) || self.is_honest(v))
    }

    /// All vertices labelled `label`.
    pub fn vertices_with_label(&self, label: usize) -> Vec<VertexId> {
        self.vertices()
            .filter(|v| self.label(*v) == label)
            .collect()
    }

    /// The path from the root to `v`, root first, `v` last.
    pub fn path(&self, v: VertexId) -> Vec<VertexId> {
        let mut p = Vec::with_capacity(self.depth(v) + 1);
        let mut cur = Some(v);
        while let Some(u) = cur {
            p.push(u);
            cur = self.parent(u);
        }
        p.reverse();
        p
    }

    /// Returns `true` when `anc` lies on the tine ending at `v`
    /// (i.e. the tine `anc` is a non-strict prefix of the tine `v`),
    /// in `O(log n)` via the shared ancestry index.
    pub fn is_ancestor_or_equal(&self, anc: VertexId, v: VertexId) -> bool {
        self.anc.is_ancestor_or_equal(anc.index(), v.index())
    }

    /// The last common vertex `t1 ∩ t2` of the tines ending at `a` and
    /// `b`, in `O(log n)` via the shared ancestry index.
    pub fn last_common_vertex(&self, a: VertexId, b: VertexId) -> VertexId {
        VertexId(self.anc.lca(a.index(), b.index()) as u32)
    }

    /// The deepest vertex on the tine ending at `v` whose label is at most
    /// `max_label` (possibly the root), in `O(log n)`: labels strictly
    /// increase along tines, so the jump tables can descend on them.
    pub fn truncate_to_label(&self, v: VertexId, max_label: usize) -> VertexId {
        VertexId(
            self.anc
                .last_key_at_most(v.index(), max_label, |i| self.labels[i]) as u32,
        )
    }

    /// The ancestor of `v` at depth `depth` (clamped at the root), in
    /// `O(log n)` via the shared ancestry index.
    pub fn ancestor_at_depth(&self, v: VertexId, depth: usize) -> VertexId {
        VertexId(self.anc.ancestor_at_depth(v.index(), depth) as u32)
    }

    /// The vertex with label `slot` on the tine ending at `v`, if any.
    pub fn tine_vertex_with_label(&self, v: VertexId, slot: usize) -> Option<VertexId> {
        let u = self.truncate_to_label(v, slot);
        (self.label(u) == slot).then_some(u)
    }

    /// The honest-depth function `d(i)` (paper Section 2): the maximum
    /// depth of a vertex labelled by the honest slot `i`; `None` if the
    /// fork has no vertex with that label.
    pub fn honest_depth(&self, slot: usize) -> Option<usize> {
        debug_assert!(slot >= 1 && slot <= self.w.len() && self.w.get(slot).is_honest());
        self.vertices()
            .filter(|v| self.label(*v) == slot)
            .map(|v| self.depth(v))
            .max()
    }

    /// The maximum honest depth over honest slots `< slot` (0 when there is
    /// none): the length an honest chain-holder is guaranteed to have seen
    /// by the onset of `slot`.
    pub fn max_honest_depth_before(&self, slot: usize) -> usize {
        self.vertices()
            .filter(|v| {
                let l = self.label(*v);
                l >= 1 && l < slot && self.w.get(l).is_honest()
            })
            .map(|v| self.depth(v))
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` when the tine ending at `v` is *viable*: its length
    /// is no smaller than the depth of every honest vertex `u` with
    /// `ℓ(u) ≤ ℓ(v)` (paper Section 2, "viable tines").
    pub fn is_viable(&self, v: VertexId) -> bool {
        self.depth(v) >= self.max_honest_depth_before(self.label(v) + 1)
    }

    /// Returns `true` when the tine ending at `v` is viable *at the onset
    /// of slot `slot`*: the portion of the tine over slots `0..slot` is at
    /// least as long as every honest depth from those slots.
    pub fn is_viable_at_onset(&self, v: VertexId, slot: usize) -> bool {
        let u = self.truncate_to_label(v, slot.saturating_sub(1));
        self.depth(u) >= self.max_honest_depth_before(slot)
    }

    /// Tests whether `self` is a fork prefix of `other` (`F ⊑ F'`, paper
    /// Definition 10): `self.string()` is a prefix of `other.string()` and
    /// `self` embeds in `other` as a consistently-labelled subgraph rooted
    /// at the root.
    ///
    /// The embedding is found by backtracking over same-labelled children;
    /// worst-case exponential, but forks have small label multiplicities in
    /// practice.
    pub fn is_fork_prefix_of(&self, other: &Fork) -> bool {
        if !self.w.is_prefix_of(other.string()) {
            return false;
        }
        embed(
            self,
            other,
            VertexId::ROOT,
            VertexId::ROOT,
            &mut HashMap::new(),
        )
    }
}

/// Attempts to embed the subtree of `small` rooted at `sv` into the subtree
/// of `big` rooted at `bv` (labels must match; `sv`'s children must map to
/// distinct children of `bv`).
fn embed(
    small: &Fork,
    big: &Fork,
    sv: VertexId,
    bv: VertexId,
    taken: &mut HashMap<(VertexId, VertexId), bool>,
) -> bool {
    if small.label(sv) != big.label(bv) {
        return false;
    }
    if let Some(&hit) = taken.get(&(sv, bv)) {
        return hit;
    }
    let result = match_children(
        small,
        big,
        small.children(sv),
        big.children(bv),
        0,
        &mut vec![false; big.children(bv).len()],
    );
    taken.insert((sv, bv), result);
    result
}

fn match_children(
    small: &Fork,
    big: &Fork,
    s_children: &[VertexId],
    b_children: &[VertexId],
    idx: usize,
    used: &mut Vec<bool>,
) -> bool {
    if idx == s_children.len() {
        return true;
    }
    let sc = s_children[idx];
    for (j, &bc) in b_children.iter().enumerate() {
        if used[j] || small.label(sc) != big.label(bc) {
            continue;
        }
        if embed(small, big, sc, bc, &mut HashMap::new()) {
            used[j] = true;
            if match_children(small, big, s_children, b_children, idx + 1, used) {
                return true;
            }
            used[j] = false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> CharString {
        s.parse().unwrap()
    }

    #[test]
    fn figure1_structure() {
        let f = crate::figures::figure1();
        assert_eq!(f.vertex_count(), 15);
        assert!(f.validate().is_ok());
        // Three maximum-length paths of length 6 ("three disjoint paths of
        // maximum depth" in the figure caption).
        assert_eq!(f.height(), 6);
        let maxes = f.max_length_tines();
        assert_eq!(maxes.len(), 3);
        // Two honest vertices labelled 6 and two labelled 9.
        assert_eq!(f.vertices_with_label(6).len(), 2);
        assert_eq!(f.vertices_with_label(9).len(), 2);
    }

    #[test]
    fn depths_and_paths() {
        let mut f = Fork::new(w("hAh"));
        let a = f.push_vertex(VertexId::ROOT, 1);
        let b = f.push_vertex(a, 2);
        let c = f.push_vertex(b, 3);
        assert_eq!(f.depth(VertexId::ROOT), 0);
        assert_eq!(f.depth(c), 3);
        assert_eq!(f.path(c), vec![VertexId::ROOT, a, b, c]);
        assert!(f.is_ancestor_or_equal(a, c));
        assert!(f.is_ancestor_or_equal(c, c));
        assert!(!f.is_ancestor_or_equal(c, a));
    }

    #[test]
    fn last_common_vertex_and_truncate() {
        let mut f = Fork::new(w("hAAh"));
        let a = f.push_vertex(VertexId::ROOT, 1);
        let b1 = f.push_vertex(a, 2);
        let b2 = f.push_vertex(a, 3);
        let c = f.push_vertex(b1, 4);
        assert_eq!(f.last_common_vertex(c, b2), a);
        assert_eq!(f.last_common_vertex(c, c), c);
        assert_eq!(f.last_common_vertex(b1, b2), a);
        assert_eq!(f.truncate_to_label(c, 3), b1);
        assert_eq!(f.truncate_to_label(c, 1), a);
        assert_eq!(f.truncate_to_label(c, 0), VertexId::ROOT);
        assert_eq!(f.tine_vertex_with_label(c, 2), Some(b1));
        assert_eq!(f.tine_vertex_with_label(c, 3), None);
        assert_eq!(f.ancestor_at_depth(c, 1), a);
    }

    #[test]
    fn honesty_and_closedness() {
        let mut f = Fork::new(w("hA"));
        let a = f.push_vertex(VertexId::ROOT, 1);
        assert!(f.is_honest(VertexId::ROOT));
        assert!(f.is_honest(a));
        assert!(f.is_closed());
        let b = f.push_vertex(a, 2);
        assert!(!f.is_honest(b));
        assert!(!f.is_closed()); // adversarial leaf
    }

    #[test]
    fn honest_depths_and_viability() {
        // w = hh: two honest chains of depth 1 and 2.
        let mut f = Fork::new(w("hh"));
        let a = f.push_vertex(VertexId::ROOT, 1);
        let b = f.push_vertex(a, 2);
        assert_eq!(f.honest_depth(1), Some(1));
        assert_eq!(f.honest_depth(2), Some(2));
        assert_eq!(f.max_honest_depth_before(2), 1);
        assert_eq!(f.max_honest_depth_before(3), 2);
        assert!(f.is_viable(b));
        // Viability of a tine only considers honest vertices with labels up
        // to the tine's own label, so tine `a` stays viable even though `b`
        // is deeper.
        assert!(f.is_viable(a));
        assert!(f.is_viable_at_onset(a, 2));
        // At the onset of slot 3 the honest depth-2 chain from slot 2 is
        // known to everyone; tine `a` (length 1) is no longer viable.
        assert!(!f.is_viable_at_onset(a, 3));
    }

    #[test]
    fn viability_ignores_longer_adversarial_tines() {
        // Adversarial depth does not constrain viability.
        let mut f = Fork::new(w("hAA"));
        let a = f.push_vertex(VertexId::ROOT, 1);
        let b = f.push_vertex(a, 2);
        let _c = f.push_vertex(b, 3); // adversarial tine of length 3
        assert!(f.is_viable(a)); // honest depths: only d(1) = 1
    }

    #[test]
    fn fork_prefix_relation() {
        let mut f1 = Fork::new(w("hA"));
        let a1 = f1.push_vertex(VertexId::ROOT, 1);
        let mut f2 = Fork::new(w("hAh"));
        let a2 = f2.push_vertex(VertexId::ROOT, 1);
        let b2 = f2.push_vertex(a2, 2);
        let _c2 = f2.push_vertex(b2, 3);
        assert!(f1.is_fork_prefix_of(&f2));
        assert!(!f2.is_fork_prefix_of(&f1));
        // Adding a second slot-1 vertex to f1 breaks the embedding (f2 has
        // only one vertex labelled 1).
        let _ = f1.push_vertex(VertexId::ROOT, 1);
        assert!(!f1.is_fork_prefix_of(&f2));
        let _ = a1;
    }

    #[test]
    fn fork_prefix_with_ambiguous_children() {
        // Two same-labelled children must be matched injectively; one of
        // them has a deeper subtree, forcing backtracking.
        let mut small = Fork::new(w("Ah"));
        let x1 = small.push_vertex(VertexId::ROOT, 1);
        let _x2 = small.push_vertex(x1, 2);
        let _y1 = small.push_vertex(VertexId::ROOT, 1);
        let mut big = Fork::new(w("Ahh"));
        let a1 = big.push_vertex(VertexId::ROOT, 1); // will have no child
        let a2 = big.push_vertex(VertexId::ROOT, 1); // has the slot-2 child
        let _ = big.push_vertex(a2, 2);
        let _ = big.push_vertex(a2, 3);
        let _ = a1;
        assert!(small.is_fork_prefix_of(&big));
    }

    #[test]
    #[should_panic(expected = "not greater than parent label")]
    fn push_vertex_rejects_label_order_violation() {
        let mut f = Fork::new(w("hA"));
        let a = f.push_vertex(VertexId::ROOT, 2);
        let _ = f.push_vertex(a, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_vertex_rejects_out_of_range_label() {
        let mut f = Fork::new(w("h"));
        let _ = f.push_vertex(VertexId::ROOT, 2);
    }

    #[test]
    fn push_symbol_extends_string() {
        let mut f = Fork::trivial();
        f.push_symbol(Symbol::UniqueHonest);
        let a = f.push_vertex(VertexId::ROOT, 1);
        f.push_symbol(Symbol::Adversarial);
        let _b = f.push_vertex(a, 2);
        assert_eq!(f.string().to_string(), "hA");
        assert!(f.validate().is_ok());
    }
}
