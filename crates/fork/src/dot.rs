//! Graphviz/DOT rendering of forks, in the visual style of the paper's
//! figures: vertices carry their slot labels, honest vertices are drawn
//! with double borders, and edges point away from the genesis vertex.

use std::fmt::Write as _;

use crate::fork::Fork;

/// Renders the fork as a Graphviz digraph.
///
/// # Examples
///
/// ```
/// use multihonest_fork::{dot, Fork, VertexId};
///
/// let mut f = Fork::new("hA".parse()?);
/// let a = f.push_vertex(VertexId::ROOT, 1);
/// let _b = f.push_vertex(a, 2);
/// let rendered = dot::to_dot(&f, "example");
/// assert!(rendered.contains("digraph"));
/// assert!(rendered.contains("peripheries=2")); // honest double borders
/// # Ok::<(), multihonest_chars::ParseCharStringError>(())
/// ```
pub fn to_dot(fork: &Fork, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  label=\"w = {}\";", fork.string());
    let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
    for v in fork.vertices() {
        let label = fork.label(v);
        let honest = fork.is_honest(v);
        let peripheries = if honest { 2 } else { 1 };
        let _ = writeln!(
            out,
            "  v{} [label=\"{}\", peripheries={}];",
            v.index(),
            label,
            peripheries
        );
    }
    for v in fork.vertices() {
        if let Some(p) = fork.parent(v) {
            let _ = writeln!(out, "  v{} -> v{};", p.index(), v.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_dot_structure() {
        let f = crate::figures::figure1();
        let d = to_dot(&f, "figure1");
        // 15 vertices, 14 edges.
        assert_eq!(d.matches("peripheries").count(), 15);
        assert_eq!(d.matches(" -> ").count(), 14);
        // Adversarial vertices (labels 2, 4, 7, 8) drawn single-bordered.
        assert!(d.contains("peripheries=1"));
        assert!(d.contains("label=\"9\""));
        assert!(d.contains("w = hAhAhHAAH"));
    }

    #[test]
    fn trivial_fork_renders() {
        let f = Fork::trivial();
        let d = to_dot(&f, "trivial");
        assert!(d.starts_with("digraph"));
        assert!(d.contains("v0"));
        assert!(!d.contains("->"));
    }
}
