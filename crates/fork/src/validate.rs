//! Validation of the fork axioms (F1)–(F4) and (F4Δ).
//!
//! [`Fork::validate`] checks the synchronous axioms of paper Definition 2;
//! [`validate_delta`] checks the Δ-synchronous variant of Definition 21,
//! where (F4) is relaxed to apply only to honest slots more than `Δ` apart.

use std::fmt;

use multihonest_chars::{SemiString, Symbol};

use crate::fork::{Fork, VertexId};

/// A violation of the fork axioms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForkError {
    /// (F2): a vertex label is not strictly greater than its parent's.
    LabelOrder {
        /// The offending vertex.
        vertex: VertexId,
        /// Its label.
        label: usize,
        /// Its parent's label.
        parent_label: usize,
    },
    /// A vertex label exceeds the characteristic-string length.
    LabelOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// Its label.
        label: usize,
        /// The string length.
        len: usize,
    },
    /// (F3): a uniquely honest slot is the label of `count ≠ 1` vertices.
    UniqueHonestMultiplicity {
        /// The slot.
        slot: usize,
        /// How many vertices carry the label.
        count: usize,
    },
    /// (F3): a multiply honest slot labels no vertex at all.
    MultiHonestMissing {
        /// The slot.
        slot: usize,
    },
    /// (F4)/(F4Δ): two honest vertices violate the increasing-depth rule.
    HonestDepthOrder {
        /// Earlier honest slot.
        earlier_slot: usize,
        /// Depth of a vertex at the earlier slot.
        earlier_depth: usize,
        /// Later honest slot.
        later_slot: usize,
        /// Depth of a vertex at the later slot.
        later_depth: usize,
    },
}

impl fmt::Display for ForkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForkError::LabelOrder {
                vertex,
                label,
                parent_label,
            } => write!(
                f,
                "vertex {vertex:?} has label {label} not greater than parent label {parent_label}"
            ),
            ForkError::LabelOutOfRange { vertex, label, len } => {
                write!(
                    f,
                    "vertex {vertex:?} has label {label} beyond string length {len}"
                )
            }
            ForkError::UniqueHonestMultiplicity { slot, count } => write!(
                f,
                "uniquely honest slot {slot} labels {count} vertices (exactly one required)"
            ),
            ForkError::MultiHonestMissing { slot } => {
                write!(
                    f,
                    "multiply honest slot {slot} labels no vertex (at least one required)"
                )
            }
            ForkError::HonestDepthOrder {
                earlier_slot,
                earlier_depth,
                later_slot,
                later_depth,
            } => {
                write!(
                    f,
                    "honest depth not increasing: slot {earlier_slot} has depth {earlier_depth}, \
                     later slot {later_slot} has depth {later_depth}"
                )
            }
        }
    }
}

impl std::error::Error for ForkError {}

impl Fork {
    /// Checks the synchronous fork axioms (F1)–(F4) of paper Definition 2
    /// against this fork's characteristic string.
    ///
    /// (F1) — root labelled 0 — and the tree-ness of the structure are
    /// guaranteed by construction; this method verifies (F2) label
    /// monotonicity, (F3) honest label multiplicities, and (F4) strictly
    /// increasing honest depths across distinct honest slots.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ForkError> {
        self.validate_inner(None)
    }

    fn validate_inner(&self, delta_gap: Option<usize>) -> Result<(), ForkError> {
        let n = self.string().len();
        // (F2) + label range.
        for v in self.vertices() {
            let label = self.label(v);
            if label > n {
                return Err(ForkError::LabelOutOfRange {
                    vertex: v,
                    label,
                    len: n,
                });
            }
            if let Some(p) = self.parent(v) {
                let parent_label = self.label(p);
                if label <= parent_label {
                    return Err(ForkError::LabelOrder {
                        vertex: v,
                        label,
                        parent_label,
                    });
                }
            }
        }
        // (F3).
        let mut counts = vec![0usize; n + 1];
        for v in self.vertices() {
            counts[self.label(v)] += 1;
        }
        for (slot, sym) in self.string().iter_slots() {
            match sym {
                Symbol::UniqueHonest => {
                    if counts[slot] != 1 {
                        return Err(ForkError::UniqueHonestMultiplicity {
                            slot,
                            count: counts[slot],
                        });
                    }
                }
                Symbol::MultiHonest => {
                    if counts[slot] == 0 {
                        return Err(ForkError::MultiHonestMissing { slot });
                    }
                }
                Symbol::Adversarial => {}
            }
        }
        // (F4) / (F4Δ): min depth per honest slot must strictly exceed the
        // max depth of every sufficiently-earlier honest slot. Scan slots
        // in increasing order, maintaining the running max depth of honest
        // slots that are "in force" (more than Δ earlier).
        let gap = delta_gap.unwrap_or(0);
        let honest_slots: Vec<usize> = self
            .string()
            .iter_slots()
            .filter(|(t, s)| s.is_honest() && counts[*t] > 0)
            .map(|(t, _)| t)
            .collect();
        let mut min_depth = vec![usize::MAX; n + 1];
        let mut max_depth = vec![0usize; n + 1];
        for v in self.vertices() {
            let l = self.label(v);
            let d = self.depth(v);
            if l >= 1 && self.string().get(l).is_honest() {
                min_depth[l] = min_depth[l].min(d);
                max_depth[l] = max_depth[l].max(d);
            }
        }
        for (a_idx, &i) in honest_slots.iter().enumerate() {
            for &j in &honest_slots[a_idx + 1..] {
                // (F4): i < j must imply depth_i < depth_j;
                // (F4Δ): only required when i + Δ < j.
                if i + gap < j && max_depth[i] >= min_depth[j] {
                    return Err(ForkError::HonestDepthOrder {
                        earlier_slot: i,
                        earlier_depth: max_depth[i],
                        later_slot: j,
                        later_depth: min_depth[j],
                    });
                }
            }
        }
        Ok(())
    }
}

/// Checks the Δ-synchronous fork axioms (F1)–(F3) + (F4Δ) of paper
/// Definition 21 for a fork whose labels refer to the non-empty slots of a
/// semi-synchronous string.
///
/// The fork must be built over the synchronous string
/// `w.drop_empty()`-style labelling is **not** assumed: instead pass a fork
/// whose labels are original slot numbers of `w` and whose characteristic
/// string is the `⊥`-free projection with original numbering preserved via
/// [`Fork::string`] — in practice, build the fork over a `CharString` whose
/// slot `t` mirrors `w`'s slot `t` with `⊥` treated as a label no vertex
/// uses.
///
/// # Errors
///
/// Returns the first axiom violation found.
pub fn validate_delta(fork: &Fork, w: &SemiString, delta: usize) -> Result<(), ForkError> {
    // The fork's own string must agree with the non-empty slots of w; empty
    // slots must label no vertex.
    debug_assert_eq!(
        fork.string().len(),
        w.len(),
        "fork string length must match w"
    );
    for v in fork.vertices() {
        let l = fork.label(v);
        if l >= 1 {
            debug_assert!(
                !w.get(l).is_empty_slot(),
                "vertex {v:?} labelled by empty slot {l}"
            );
        }
    }
    fork.validate_inner(Some(delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_chars::CharString;

    fn w(s: &str) -> CharString {
        s.parse().unwrap()
    }

    #[test]
    fn valid_simple_chain() {
        let mut f = Fork::new(w("hhh"));
        let a = f.push_vertex(VertexId::ROOT, 1);
        let b = f.push_vertex(a, 2);
        let _c = f.push_vertex(b, 3);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn missing_unique_honest_vertex_is_rejected() {
        let f = Fork::new(w("h"));
        assert_eq!(
            f.validate(),
            Err(ForkError::UniqueHonestMultiplicity { slot: 1, count: 0 })
        );
    }

    #[test]
    fn duplicate_unique_honest_vertex_is_rejected() {
        let mut f = Fork::new(w("h"));
        let _ = f.push_vertex(VertexId::ROOT, 1);
        let _ = f.push_vertex(VertexId::ROOT, 1);
        assert_eq!(
            f.validate(),
            Err(ForkError::UniqueHonestMultiplicity { slot: 1, count: 2 })
        );
    }

    #[test]
    fn missing_multi_honest_vertex_is_rejected() {
        let f = Fork::new(w("H"));
        assert_eq!(f.validate(), Err(ForkError::MultiHonestMissing { slot: 1 }));
        // One vertex is enough (the adversary may treat H as h).
        let mut f = Fork::new(w("H"));
        let _ = f.push_vertex(VertexId::ROOT, 1);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn multi_honest_slots_allow_concurrent_vertices() {
        let mut f = Fork::new(w("H"));
        let _ = f.push_vertex(VertexId::ROOT, 1);
        let _ = f.push_vertex(VertexId::ROOT, 1);
        let _ = f.push_vertex(VertexId::ROOT, 1);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn adversarial_labels_unconstrained() {
        // Zero or many adversarial vertices are both fine.
        let f = Fork::new(w("A"));
        assert!(f.validate().is_ok());
        let mut f = Fork::new(w("A"));
        let _ = f.push_vertex(VertexId::ROOT, 1);
        let _ = f.push_vertex(VertexId::ROOT, 1);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn honest_depth_order_violation_detected() {
        // Two honest slots 1 < 2 whose vertices have equal depth 1.
        let mut f = Fork::new(w("hh"));
        let _a = f.push_vertex(VertexId::ROOT, 1);
        let _b = f.push_vertex(VertexId::ROOT, 2);
        assert_eq!(
            f.validate(),
            Err(ForkError::HonestDepthOrder {
                earlier_slot: 1,
                earlier_depth: 1,
                later_slot: 2,
                later_depth: 1,
            })
        );
    }

    #[test]
    fn concurrent_honest_vertices_may_share_depth() {
        // Figure 1: two honest vertices labelled 6 have the same depth.
        let mut f = Fork::new(w("hH"));
        let a = f.push_vertex(VertexId::ROOT, 1);
        let _ = f.push_vertex(a, 2);
        let _ = f.push_vertex(a, 2);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn delta_relaxation_permits_nearby_equal_depths() {
        // Honest slots 1 and 2, both depth 1: invalid synchronously, valid
        // with Δ ≥ 1 (1 + 1 < 2 fails, so no constraint applies).
        let semi: SemiString = "hh".parse().unwrap();
        let mut f = Fork::new(w("hh"));
        let _a = f.push_vertex(VertexId::ROOT, 1);
        let _b = f.push_vertex(VertexId::ROOT, 2);
        assert!(f.validate().is_err());
        assert!(validate_delta(&f, &semi, 1).is_ok());
        // But slots 1 and 3 with Δ = 1 are constrained (1 + 1 < 3).
        let semi: SemiString = "h.h".parse().unwrap();
        let mut f = Fork::new(w("hAh")); // placeholder symbol at slot 2, no vertex uses it
        let _a = f.push_vertex(VertexId::ROOT, 1);
        let _b = f.push_vertex(VertexId::ROOT, 3);
        assert!(validate_delta(&f, &semi, 1).is_err());
        assert!(validate_delta(&f, &semi, 2).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let e = ForkError::UniqueHonestMultiplicity { slot: 3, count: 2 };
        assert!(e.to_string().contains("slot 3"));
        let e = ForkError::HonestDepthOrder {
            earlier_slot: 1,
            earlier_depth: 2,
            later_slot: 4,
            later_depth: 2,
        };
        assert!(e.to_string().contains("not increasing"));
    }

    #[test]
    fn figure1_fork_validates() {
        let f = crate::figures::figure1();
        assert!(f.validate().is_ok());
    }
}
