//! # multihonest-fork
//!
//! The fork framework of *Consistency of Proof-of-Stake Blockchains with
//! Concurrent Honest Slot Leaders* (Kiayias, Quader, Russell; ICDCS 2020),
//! extending Blum et al.'s framework to multiply honest slots.
//!
//! A *fork* (paper Definition 2) is a rooted, labelled tree abstracting the
//! set of blockchains produced during an execution of a longest-chain
//! Proof-of-Stake protocol: vertices are blocks, labels are slots, and
//! root-to-vertex paths (*tines*) are blockchains. The fork axioms
//! (F1)–(F4) — and (F4Δ) in the Δ-synchronous setting (Definition 21) —
//! capture exactly the executions that can arise against the honest
//! longest-chain rule.
//!
//! This crate provides:
//!
//! * [`Fork`] — an arena-based fork tree bound to its characteristic
//!   string, with incremental construction;
//! * axiom validation ([`Fork::validate`], [`validate::validate_delta`])
//!   with precise [`ForkError`] diagnostics;
//! * tine queries: depth/length, viability (Section 2), honest-depth
//!   function `d(·)`;
//! * the reach/margin calculus of Sections 6.1–6.2 computed **by
//!   definition** on closed forks ([`reach`]) — the independent ground
//!   truth against which `multihonest-margin`'s recurrences are verified;
//! * an incremental [`ReachEngine`] ([`engine`]) maintaining reach
//!   values, the zero/maximum-reach tine sets and `A*`'s
//!   earliest-divergence selection across fork growth, equivalence-tested
//!   against the definitional analysis;
//! * balanced forks, slot divergence, settlement and common-prefix
//!   violation predicates ([`balanced`], Sections 2.1, 6.3, 9, Appendix A);
//! * Graphviz/DOT rendering of the paper's figures ([`dot`]);
//! * random and (tiny-string) exhaustive fork generation for
//!   cross-validation ([`generate`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balanced;
pub mod dot;
pub mod engine;
pub mod figures;
pub mod fork;
pub mod generate;
pub mod pinch;
pub mod reach;
pub mod stream;
pub mod validate;

pub use crate::engine::ReachEngine;
pub use crate::fork::{Fork, VertexId};
pub use crate::reach::ReachAnalysis;
pub use crate::stream::{ForkFold, StreamValidator, StreamedFork};
pub use crate::validate::ForkError;
