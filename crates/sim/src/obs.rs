//! The obs-backed [`MetricsSink`] adapter: per-slot simulation events —
//! rollbacks, fault deferrals, margin observations — land in a
//! [`Recorder`]'s counters, gauges and histograms without touching
//! engine code.
//!
//! [`ObsSink`] is an observer, never a participant: it derives registry
//! updates from the sink callbacks both engines already emit, so wiring
//! it in (alone or [`TeeSink`](crate::TeeSink)-ed with an accumulator)
//! keeps every execution bit-identical to its uninstrumented sibling.

use multihonest_obs::Recorder;

use crate::fault::DegradationLedger;
use crate::metrics::MetricsSink;

/// A [`MetricsSink`] that mirrors simulation events into an obs
/// [`Recorder`]'s registry.
///
/// Metric names:
///
/// * `sim.rollbacks` (counter) and `sim.rollback_depth` (histogram of
///   `old_height − new_height`) — one per chain rollback;
/// * `sim.best_height` (gauge) — the best height at the latest slot;
/// * `sim.divergence` (histogram) — nonzero slot divergences;
/// * `faults.deferrals` (counter) and `faults.deferral_lag_slots`
///   (histogram of `deferred_to − slot`) — one per fault deferral;
/// * `fork.margin_events` (counter), `fork.rho` / `fork.margin`
///   (gauges), and `fork.validation_lag_slots` (histogram) — one per
///   Δ-reduced margin observation. The validation lag is the distance
///   between the current engine slot and the (Δ-delayed) reduced slot
///   the observation settles — how far the streaming validator runs
///   behind the execution front.
#[derive(Debug)]
pub struct ObsSink<'a, R: Recorder> {
    rec: &'a mut R,
    last_slot: usize,
}

impl<'a, R: Recorder> ObsSink<'a, R> {
    /// An adapter recording into `rec`.
    pub fn new(rec: &'a mut R) -> ObsSink<'a, R> {
        ObsSink { rec, last_slot: 0 }
    }

    /// The latest slot observed through [`MetricsSink::on_slot`].
    pub fn last_slot(&self) -> usize {
        self.last_slot
    }
}

impl<R: Recorder> MetricsSink for ObsSink<'_, R> {
    #[inline]
    fn on_rollback(&mut self, _slot: usize, old_height: usize, new_height: usize) {
        self.rec.counter("sim.rollbacks", 1);
        self.rec.observe(
            "sim.rollback_depth",
            old_height.saturating_sub(new_height) as u64,
        );
    }

    #[inline]
    fn on_slot(
        &mut self,
        slot: usize,
        _distinct_tips: usize,
        best_height: usize,
        divergence: usize,
    ) {
        self.last_slot = slot;
        self.rec.gauge("sim.best_height", best_height as i64);
        if divergence > 0 {
            self.rec.observe("sim.divergence", divergence as u64);
        }
    }

    #[inline]
    fn on_fault_deferral(&mut self, slot: usize, _recipient: usize, deferred_to: usize) {
        self.rec.counter("faults.deferrals", 1);
        self.rec.observe(
            "faults.deferral_lag_slots",
            deferred_to.saturating_sub(slot) as u64,
        );
    }

    #[inline]
    fn on_margin(&mut self, slot: usize, rho: i64, margin: i64) {
        self.rec.counter("fork.margin_events", 1);
        self.rec.gauge("fork.rho", rho);
        self.rec.gauge("fork.margin", margin);
        // The hook fires after the current slot's on_slot, so last_slot
        // is the execution front and `slot` the settled reduced slot.
        self.rec.observe(
            "fork.validation_lag_slots",
            self.last_slot.saturating_sub(slot) as u64,
        );
    }
}

/// Mirrors a finished [`DegradationLedger`] into registry counters:
/// `faults.deferred`, `faults.delivered_late`, `faults.dropped`
/// (counters) and `faults.worst_effective_delta` (gauge).
pub fn record_ledger<R: Recorder>(rec: &mut R, ledger: &DegradationLedger) {
    rec.counter("faults.deferred", ledger.deferred);
    rec.counter("faults.delivered_late", ledger.delivered_late);
    rec.counter("faults.dropped", ledger.dropped);
    rec.gauge(
        "faults.worst_effective_delta",
        ledger.worst_effective_delta as i64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_obs::ObsRecorder;

    #[test]
    fn sink_events_land_in_the_registry() {
        let mut rec = ObsRecorder::new();
        {
            let mut sink = ObsSink::new(&mut rec);
            sink.on_slot(10, 2, 5, 0);
            sink.on_slot(11, 1, 6, 3);
            sink.on_rollback(11, 6, 4);
            sink.on_fault_deferral(11, 0, 14);
            sink.on_margin(9, -1, 2);
            assert_eq!(sink.last_slot(), 11);
        }
        let r = rec.registry();
        assert_eq!(r.counter("sim.rollbacks"), 1);
        assert_eq!(r.histogram("sim.rollback_depth").unwrap().max(), Some(2));
        assert_eq!(r.gauge("sim.best_height").unwrap().last, 6);
        assert_eq!(r.histogram("sim.divergence").unwrap().count(), 1);
        assert_eq!(r.counter("faults.deferrals"), 1);
        assert_eq!(
            r.histogram("faults.deferral_lag_slots").unwrap().max(),
            Some(3)
        );
        assert_eq!(r.counter("fork.margin_events"), 1);
        assert_eq!(r.gauge("fork.rho").unwrap().last, -1);
        assert_eq!(r.gauge("fork.margin").unwrap().last, 2);
        assert_eq!(
            r.histogram("fork.validation_lag_slots").unwrap().max(),
            Some(2),
            "lag = last_slot 11 − reduced slot 9"
        );
    }

    #[test]
    fn ledger_mirrors_into_counters() {
        let mut rec = ObsRecorder::new();
        let ledger = DegradationLedger {
            deferred: 7,
            delivered_late: 5,
            dropped: 2,
            worst_effective_delta: 9,
            windows: Vec::new(),
        };
        record_ledger(&mut rec, &ledger);
        let r = rec.registry();
        assert_eq!(r.counter("faults.deferred"), 7);
        assert_eq!(r.counter("faults.delivered_late"), 5);
        assert_eq!(r.counter("faults.dropped"), 2);
        assert_eq!(r.gauge("faults.worst_effective_delta").unwrap().last, 9);
    }
}
