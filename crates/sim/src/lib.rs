//! # multihonest-sim
//!
//! An executable longest-chain Proof-of-Stake protocol, implementing the
//! abstract model that *Consistency of Proof-of-Stake Blockchains with
//! Concurrent Honest Slot Leaders* (Kiayias, Quader, Russell; ICDCS 2020)
//! analyses:
//!
//! * slot-based execution with per-node **leader election** driven by
//!   stake ([`leader`]) — the idealised VRF of Ouroboros-family protocols
//!   is replaced by a seeded Bernoulli draw per (slot, node), which is
//!   exactly the abstraction the paper's characteristic strings capture;
//! * a **Δ-synchronous network** with a rushing adversary ([`network`]):
//!   honest broadcasts reach every honest node within `Δ` slots, but the
//!   adversary schedules deliveries inside that window, per recipient, and
//!   may inject its own blocks selectively (axioms A0/A4Δ);
//! * the honest **longest-chain rule** with pluggable tie-breaking
//!   ([`node`]): adversary-controlled ties (axiom A0) or a consistent
//!   tie-breaking rule shared by all honest players (axiom A0′);
//! * **attack strategies** ([`strategy`]): private-chain withholding and
//!   the balance attack that exploits concurrent honest leaders;
//! * **extraction** ([`Simulation::characteristic_string`],
//!   [`Simulation::fork`]) of each execution's characteristic string and
//!   fork, so that simulated behaviour can be checked against the fork
//!   axioms and compared with the margin/Catalan theory on identical
//!   objects;
//! * **metrics** ([`metrics::Metrics`]): observed settlement and
//!   common-prefix violations, chain growth and chain quality;
//! * an indexed **consistency-query layer** ([`consistency`]): each run
//!   folds a [`DivergenceIndex`] over its honest views and rollbacks, so
//!   `settlement_violation(s, k)` is an `O(1)` lookup and full sweeps
//!   ([`Simulation::settlement_violations`]) cost `O(slots)` per `k`;
//! * **fault injection** ([`fault`]): declarative slot-windowed network
//!   faults — partitions, eclipses, crash–recovery with state resync,
//!   seeded message loss — compiled into a per-(slot, src, dst) delivery
//!   predicate both engines consult, reporting a degradation ledger
//!   (worst effective Δ, healed-by slots, per-window deferral counts).
//!
//! ## Example
//!
//! ```
//! use multihonest_sim::{SimConfig, Simulation, Strategy, TieBreak};
//!
//! let cfg = SimConfig {
//!     honest_nodes: 8,
//!     adversarial_stake: 0.2,
//!     active_slot_coeff: 0.25,
//!     delta: 0,
//!     slots: 300,
//!     tie_break: TieBreak::Consistent,
//!     strategy: Strategy::PrivateWithholding,
//! };
//! let sim = Simulation::run(&cfg, 42);
//! let fork = sim.fork();
//! assert!(fork.validate_against_axioms().is_ok());
//! assert!(sim.metrics().chain_growth() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod consistency;
pub mod fault;
pub mod leader;
pub mod metrics;
pub mod network;
pub mod node;
pub mod obs;
pub mod simulation;
pub mod strategy;

/// The reference engine, by its role-name: the allocation-per-slot,
/// trace-retaining executor that serves as the equivalence oracle for the
/// columnar scenario core (`multihonest-scenario`). Alias of
/// [`simulation`].
pub use self::simulation as reference;

pub use crate::block::{Block, BlockId, BlockStore};
pub use crate::consistency::{DivergenceFold, DivergenceIndex, DivergenceOps};
pub use crate::fault::{
    DegradationLedger, DeliveryMeta, FaultDirective, FaultPlan, FaultRuntime, WindowStats,
};
pub use crate::leader::{validate_stake_partition, LeaderSchedule, SlotLeaders};
pub use crate::metrics::{Metrics, MetricsAccumulator, MetricsSink, TeeSink};
pub use crate::node::TieBreak;
pub use crate::obs::{record_ledger, ObsSink};
pub use crate::simulation::{ExtractedFork, SimConfig, Simulation};
pub use crate::strategy::{
    AdversaryStrategy, BalanceStrategy, HonestStrategy, SlotContext, Strategy, WithholdingStrategy,
};
