//! Honest protocol participants: the longest-chain rule with pluggable
//! tie-breaking.

use std::collections::HashSet;

use crate::block::{BlockId, BlockStore};

/// How an honest node resolves ties between equal-length chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TieBreak {
    /// Axiom A0: the adversary resolves ties through delivery order — a
    /// node keeps the chain it saw **first** among equal-length ones, so
    /// whoever controls ordering controls the tie.
    AdversarialOrder,
    /// Axiom A0′: a consistent rule shared by all honest players — among
    /// equal-length chains, the tip with the smallest
    /// [`BlockStore::tie_hash`] wins, regardless of arrival order.
    Consistent,
}

/// An honest node: tracks known blocks and its currently adopted chain.
#[derive(Debug, Clone)]
pub struct HonestNode {
    index: usize,
    tie_break: TieBreak,
    known: HashSet<BlockId>,
    tip: BlockId,
}

impl HonestNode {
    /// Creates a node that knows only the genesis block.
    pub fn new(index: usize, tie_break: TieBreak) -> HonestNode {
        let mut known = HashSet::new();
        known.insert(BlockId::GENESIS);
        HonestNode {
            index,
            tie_break,
            known,
            tip: BlockId::GENESIS,
        }
    }

    /// The node's index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The tip of the currently adopted chain.
    pub fn tip(&self) -> BlockId {
        self.tip
    }

    /// Whether the node has seen `block`.
    pub fn knows(&self, block: BlockId) -> bool {
        self.known.contains(&block)
    }

    /// Delivers `block` to the node, which re-evaluates the longest-chain
    /// rule. Out-of-order delivery is tolerated: a block whose parent is
    /// unknown is still recorded (its *chain* came attached — block
    /// delivery in the abstract model always ships whole chains, as
    /// chains are self-authenticating).
    pub fn receive(&mut self, store: &BlockStore, block: BlockId) {
        if !self.known.insert(block) {
            return;
        }
        // Receiving a chain means knowing every block on it.
        let mut cur = store.block(block).parent;
        while let Some(b) = cur {
            if !self.known.insert(b) {
                break;
            }
            cur = store.block(b).parent;
        }
        let new_height = store.block(block).height;
        let cur_height = store.block(self.tip).height;
        let adopt = match new_height.cmp(&cur_height) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => match self.tie_break {
                TieBreak::AdversarialOrder => false, // first seen stays
                TieBreak::Consistent => store.tie_hash(block) < store.tie_hash(self.tip),
            },
        };
        if adopt {
            self.tip = block;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adopts_strictly_longer_chains() {
        let mut store = BlockStore::new();
        let a = store.mint(BlockId::GENESIS, 1, 0, true);
        let b = store.mint(a, 2, 1, true);
        let mut node = HonestNode::new(0, TieBreak::AdversarialOrder);
        node.receive(&store, b);
        assert_eq!(node.tip(), b);
        assert!(node.knows(a), "chain delivery implies ancestor knowledge");
        // A shorter chain never displaces the tip.
        let c = store.mint(BlockId::GENESIS, 3, 2, false);
        node.receive(&store, c);
        assert_eq!(node.tip(), b);
    }

    #[test]
    fn adversarial_order_keeps_first_seen_on_tie() {
        let mut store = BlockStore::new();
        let a1 = store.mint(BlockId::GENESIS, 1, 0, true);
        let a2 = store.mint(BlockId::GENESIS, 2, 1, true);
        let mut node = HonestNode::new(0, TieBreak::AdversarialOrder);
        node.receive(&store, a1);
        node.receive(&store, a2);
        assert_eq!(node.tip(), a1, "tie keeps the first-seen chain");
        let mut node2 = HonestNode::new(1, TieBreak::AdversarialOrder);
        node2.receive(&store, a2);
        node2.receive(&store, a1);
        assert_eq!(node2.tip(), a2, "delivery order decides");
    }

    #[test]
    fn consistent_rule_ignores_order() {
        let mut store = BlockStore::new();
        let a1 = store.mint(BlockId::GENESIS, 1, 0, true);
        let a2 = store.mint(BlockId::GENESIS, 2, 1, true);
        let winner = if store.tie_hash(a1) < store.tie_hash(a2) {
            a1
        } else {
            a2
        };
        for order in [[a1, a2], [a2, a1]] {
            let mut node = HonestNode::new(0, TieBreak::Consistent);
            node.receive(&store, order[0]);
            node.receive(&store, order[1]);
            assert_eq!(node.tip(), winner, "consistent rule must ignore order");
        }
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let mut store = BlockStore::new();
        let a = store.mint(BlockId::GENESIS, 1, 0, true);
        let mut node = HonestNode::new(0, TieBreak::Consistent);
        node.receive(&store, a);
        let tip = node.tip();
        node.receive(&store, a);
        assert_eq!(node.tip(), tip);
    }
}
