//! Fault injection: declarative, slot-windowed network faults shared by
//! both execution engines.
//!
//! The paper's delivery model is an idealized Δ-synchronous network
//! (axiom A4Δ). Real networks partition, eclipse individual nodes, crash
//! and recover, and lose messages — and the interesting robustness claim
//! is *conservatism*: as long as every fault resolves quickly enough that
//! the worst induced delivery delay stays below some Δ′, the Δ′-model
//! settlement predictions (exact margin DP, Theorem 7 bounds) still
//! dominate what the faulty executions exhibit.
//!
//! A [`FaultPlan`] is a list of slot-windowed [`FaultDirective`]s. Each
//! engine compiles the plan into a [`FaultRuntime`] and consults it at
//! two points of the slot loop:
//!
//! * **minting** — a crashed node cannot lead its slot
//!   ([`FaultRuntime::can_mint`]);
//! * **delivery** — after draining the slot's due deliveries, the engine
//!   passes them through [`FaultRuntime::apply`], which *parks* every
//!   delivery blocked by an active directive and re-injects it (ahead of
//!   that slot's fresh deliveries, in park order) once its directive
//!   window closes. Crash recovery therefore performs a state resync for
//!   free: everything the node missed while down lands in its recovery
//!   slot.
//!
//! Faults **defer** deliveries, they never forge or reorder them across
//! park batches — so both engines produce identical faulty traces for
//! identical plans, and the empty plan leaves the delivery stream
//! untouched (bit-identical to a fault-free run; the fingerprint pins in
//! `multihonest-testutil` enforce this).
//!
//! The runtime tracks the degradation it induced in a
//! [`DegradationLedger`]: per-directive deferral counts and healed-by
//! slots, the worst effective Δ (actual delivery slot minus broadcast
//! slot over all fault-deferred honest deliveries), and drop counts for
//! deliveries parked past the horizon. Callers that want the deferral
//! stream live implement [`MetricsSink::on_fault_deferral`].

use std::collections::BTreeMap;

use crate::consistency::DivergenceIndex;
use crate::metrics::MetricsSink;

/// One slot-windowed fault. All windows are half-open slot intervals
/// `[start, end)` over the 1-based slot clock of the engines.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultDirective {
    /// Network partition: honest deliveries between nodes of *different*
    /// groups are withheld during `[start, heal_slot)` and delivered at
    /// `heal_slot`. Nodes listed in no group are unrestricted, and the
    /// adversary spans partitions (adversarial deliveries pass).
    Partition {
        /// Disjoint groups of honest node indices.
        groups: Vec<Vec<usize>>,
        /// First slot of the partition.
        start: usize,
        /// The partition heals at the start of this slot.
        heal_slot: usize,
    },
    /// Eclipse: honest traffic to *and from* `node` is withheld during
    /// `[start, until)`. Adversarial deliveries still reach the node —
    /// an eclipse attacker controls its victim's view, it does not
    /// silence itself.
    Eclipse {
        /// The eclipsed honest node.
        node: usize,
        /// First eclipsed slot.
        start: usize,
        /// The eclipse lifts at the start of this slot.
        until: usize,
    },
    /// Crash–recovery: `node` is down during `[at, recover_slot)` — it
    /// receives nothing (honest or adversarial) and cannot mint. At
    /// `recover_slot` every delivery it missed arrives (state resync);
    /// its pre-crash chain state is retained. `recover_slot = usize::MAX`
    /// means the node never recovers.
    Crash {
        /// The crashing honest node.
        node: usize,
        /// First down slot.
        at: usize,
        /// The node is back up at the start of this slot.
        recover_slot: usize,
    },
    /// Seeded message loss: during `[start, until)` each honest delivery
    /// is independently dropped with probability `p` (a deterministic
    /// per-`(slot, src, dst)` coin seeded by `salt`) and retried the next
    /// slot — the rebroadcast model. Adversarial deliveries are exempt
    /// (the adversary's channel is its own).
    MessageLoss {
        /// Per-delivery loss probability, in `[0, 1]`.
        p: f64,
        /// Seed of the deterministic loss coin.
        salt: u64,
        /// First lossy slot.
        start: usize,
        /// Loss stops at the start of this slot.
        until: usize,
    },
}

impl FaultDirective {
    /// The directive's active window `[start, end)`.
    pub fn window(&self) -> (usize, usize) {
        match *self {
            FaultDirective::Partition {
                start, heal_slot, ..
            } => (start, heal_slot),
            FaultDirective::Eclipse { start, until, .. } => (start, until),
            FaultDirective::Crash {
                at, recover_slot, ..
            } => (at, recover_slot),
            FaultDirective::MessageLoss { start, until, .. } => (start, until),
        }
    }

    /// A short label for ledger rows and reports.
    pub fn label(&self) -> String {
        match self {
            FaultDirective::Partition { groups, .. } => {
                format!("partition/{}", groups.len())
            }
            FaultDirective::Eclipse { node, .. } => format!("eclipse/{node}"),
            FaultDirective::Crash { node, .. } => format!("crash/{node}"),
            FaultDirective::MessageLoss { p, .. } => format!("loss/{p}"),
        }
    }
}

/// A declarative fault schedule: zero or more [`FaultDirective`]s.
/// The default (empty) plan injects nothing and leaves engine traces
/// bit-identical to fault-free runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    directives: Vec<FaultDirective>,
}

impl FaultPlan {
    /// The empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder-style push.
    #[must_use]
    pub fn with(mut self, directive: FaultDirective) -> FaultPlan {
        self.directives.push(directive);
        self
    }

    /// Appends a directive.
    pub fn push(&mut self, directive: FaultDirective) {
        self.directives.push(directive);
    }

    /// The directives, in insertion order.
    pub fn directives(&self) -> &[FaultDirective] {
        &self.directives
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Validates the plan against an engine configuration.
    ///
    /// # Panics
    ///
    /// Panics on malformed plans: more than 64 directives (the runtime
    /// attributes deferrals through a 64-bit directive mask), empty or
    /// inverted windows, windows starting before slot 1, node indices out
    /// of `0..honest_nodes`, overlapping partition groups, or a loss
    /// probability outside `[0, 1]`.
    pub fn validate(&self, honest_nodes: usize) {
        assert!(
            self.directives.len() <= 64,
            "fault plans are limited to 64 directives"
        );
        for d in &self.directives {
            let (start, end) = d.window();
            assert!(start >= 1, "fault windows start at slot 1 or later");
            assert!(start < end, "empty fault window [{start}, {end})");
            match d {
                FaultDirective::Partition { groups, .. } => {
                    let mut seen = vec![false; honest_nodes];
                    for g in groups {
                        assert!(!g.is_empty(), "empty partition group");
                        for &n in g {
                            assert!(n < honest_nodes, "partition node {n} out of range");
                            assert!(!seen[n], "node {n} appears in two partition groups");
                            seen[n] = true;
                        }
                    }
                }
                FaultDirective::Eclipse { node, .. } | FaultDirective::Crash { node, .. } => {
                    assert!(*node < honest_nodes, "fault node {node} out of range");
                }
                FaultDirective::MessageLoss { p, .. } => {
                    assert!(
                        (0.0..=1.0).contains(p),
                        "loss probability {p} out of [0, 1]"
                    );
                }
            }
        }
    }

    /// The worst extra delivery delay (beyond Δ) any honest delivery can
    /// suffer under this plan, or `None` when the plan is unbounded (a
    /// never-recovering crash, `recover_slot = usize::MAX`).
    ///
    /// A delivery due inside a blocking window is parked until the window
    /// closes, where a chained (overlapping or adjacent) window may park
    /// it again — so the bound is the longest *merged* run of directive
    /// windows. Windowed message loss is bounded by the same argument:
    /// retries step one slot at a time and succeed unconditionally once
    /// the window closes.
    pub fn worst_case_extra_delay(&self) -> Option<usize> {
        if self.directives.is_empty() {
            return Some(0);
        }
        let mut windows: Vec<(usize, usize)> = Vec::with_capacity(self.directives.len());
        for d in &self.directives {
            let (start, end) = d.window();
            if end == usize::MAX {
                return None;
            }
            windows.push((start, end));
        }
        windows.sort_unstable();
        let (mut run_start, mut run_end) = windows[0];
        let mut worst = 0usize;
        for &(start, end) in &windows[1..] {
            if start <= run_end {
                run_end = run_end.max(end);
            } else {
                worst = worst.max(run_end - run_start);
                (run_start, run_end) = (start, end);
            }
        }
        Some(worst.max(run_end - run_start))
    }

    /// The static Δ′ bound of the plan over a base delay Δ:
    /// `Δ + worst_case_extra_delay()`, or `None` when unbounded. Every
    /// honest delivery of a faulty execution arrives within Δ′ slots of
    /// its broadcast — the premise of the conservatism harness.
    pub fn worst_case_delta(&self, delta: usize) -> Option<usize> {
        self.worst_case_extra_delay().map(|extra| delta + extra)
    }
}

/// What the fault predicate needs to know about one delivery: engines
/// derive this from their block store (the issuer is the source, the
/// mint slot is the broadcast slot).
#[derive(Debug, Clone, Copy)]
pub struct DeliveryMeta {
    /// Issuing node index (out-of-range for adversarial blocks).
    pub src: usize,
    /// Whether the block (and hence the broadcast) is honest.
    pub honest: bool,
    /// The slot the block was broadcast (minted) in.
    pub broadcast_slot: usize,
}

/// Per-directive degradation statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// The directive's [`FaultDirective::label`].
    pub directive: String,
    /// First slot of the directive's window.
    pub start: usize,
    /// End (exclusive) of the directive's window.
    pub end: usize,
    /// Number of park events this directive caused (a delivery re-parked
    /// by the same directive counts each time).
    pub deferrals: u64,
    /// The slot by which every delivery this directive deferred had been
    /// delivered — `None` when it never deferred anything, or when some
    /// deferred delivery was dropped at the horizon.
    pub healed_by: Option<usize>,
}

/// What fault injection did to an execution: the degradation ledger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationLedger {
    /// Total park events (fresh parks and re-parks).
    pub deferred: u64,
    /// Parked deliveries that were eventually delivered.
    pub delivered_late: u64,
    /// Parked deliveries still undelivered at the horizon.
    pub dropped: u64,
    /// The worst observed effective Δ: max over fault-deferred honest
    /// deliveries of (actual delivery slot − broadcast slot). 0 when no
    /// honest delivery was deferred. Always ≤ the plan's
    /// [`FaultPlan::worst_case_delta`] when that bound exists.
    pub worst_effective_delta: usize,
    /// One row per plan directive, in plan order.
    pub windows: Vec<WindowStats>,
}

impl DegradationLedger {
    /// Observed settlement violations per directive window: for each
    /// ledger row, the number of violating anchors `s` (at parameter `k`)
    /// with `start ≤ s < end`, read off an execution's
    /// [`DivergenceIndex`].
    pub fn per_window_violations(&self, index: &DivergenceIndex, k: usize) -> Vec<u64> {
        self.windows
            .iter()
            .map(|w| {
                let upto_end = index.count_violations(k, w.end.saturating_sub(1));
                let before = index.count_violations(k, w.start - 1);
                (upto_end - before) as u64
            })
            .collect()
    }
}

/// A directive compiled for `O(1)` per-delivery evaluation.
#[derive(Debug, Clone)]
enum Compiled {
    Partition {
        /// Group index per node; `u8::MAX` = unrestricted.
        group_of: Vec<u8>,
        start: usize,
        end: usize,
    },
    Eclipse {
        node: usize,
        start: usize,
        end: usize,
    },
    Crash {
        node: usize,
        start: usize,
        end: usize,
    },
    Loss {
        /// Drop when the 64-bit coin falls below this threshold.
        threshold: u64,
        salt: u64,
        start: usize,
        end: usize,
    },
}

/// A delivery parked until its blocking directives release it.
#[derive(Debug, Clone)]
struct Parked {
    recipient: u32,
    block: u32,
    meta: DeliveryMeta,
    /// Bitmask of plan directives that ever blocked this delivery.
    dirs: u64,
}

/// SplitMix64 — the loss coin's mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic per-(slot, src, dst) loss coin.
fn coin(salt: u64, slot: usize, src: usize, dst: usize) -> u64 {
    mix(mix(mix(salt ^ slot as u64) ^ src as u64) ^ dst as u64)
}

/// A [`FaultPlan`] compiled against one execution: the per-(slot, src,
/// dst) delivery predicate, the parking store, and the degradation
/// ledger. Both engines drive one runtime per execution.
#[derive(Debug)]
pub struct FaultRuntime<'a> {
    plan: &'a FaultPlan,
    compiled: Vec<Compiled>,
    slots: usize,
    parked: BTreeMap<usize, Vec<Parked>>,
    ledger: DegradationLedger,
    scratch: Vec<(u32, u32)>,
}

impl<'a> FaultRuntime<'a> {
    /// Compiles `plan` for an execution over `honest_nodes` nodes and
    /// `slots` slots.
    ///
    /// # Panics
    ///
    /// Panics when [`FaultPlan::validate`] rejects the plan.
    pub fn new(plan: &'a FaultPlan, honest_nodes: usize, slots: usize) -> FaultRuntime<'a> {
        plan.validate(honest_nodes);
        let compiled = plan
            .directives
            .iter()
            .map(|d| match d {
                FaultDirective::Partition {
                    groups,
                    start,
                    heal_slot,
                } => {
                    let mut group_of = vec![u8::MAX; honest_nodes];
                    for (g, members) in groups.iter().enumerate() {
                        for &n in members {
                            group_of[n] = g as u8;
                        }
                    }
                    Compiled::Partition {
                        group_of,
                        start: *start,
                        end: *heal_slot,
                    }
                }
                FaultDirective::Eclipse { node, start, until } => Compiled::Eclipse {
                    node: *node,
                    start: *start,
                    end: *until,
                },
                FaultDirective::Crash {
                    node,
                    at,
                    recover_slot,
                } => Compiled::Crash {
                    node: *node,
                    start: *at,
                    end: *recover_slot,
                },
                FaultDirective::MessageLoss {
                    p,
                    salt,
                    start,
                    until,
                } => Compiled::Loss {
                    threshold: if *p >= 1.0 {
                        u64::MAX
                    } else {
                        (*p * u64::MAX as f64) as u64
                    },
                    salt: *salt,
                    start: *start,
                    end: *until,
                },
            })
            .collect();
        let windows = plan
            .directives
            .iter()
            .map(|d| {
                let (start, end) = d.window();
                WindowStats {
                    directive: d.label(),
                    start,
                    end,
                    deferrals: 0,
                    healed_by: None,
                }
            })
            .collect();
        FaultRuntime {
            plan,
            compiled,
            slots,
            parked: BTreeMap::new(),
            ledger: DegradationLedger {
                windows,
                ..DegradationLedger::default()
            },
            scratch: Vec::new(),
        }
    }

    /// Whether the plan is empty — the engines' fast path: an empty
    /// runtime never touches a delivery stream.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// The plan this runtime compiled.
    pub fn plan(&self) -> &FaultPlan {
        self.plan
    }

    /// Whether `node` may mint in `slot` (false while crashed).
    pub fn can_mint(&self, slot: usize, node: usize) -> bool {
        self.node_is_live(slot, node)
    }

    /// Whether `node` is up (not crashed) in `slot`.
    pub fn node_is_live(&self, slot: usize, node: usize) -> bool {
        !self.compiled.iter().any(|c| match *c {
            Compiled::Crash {
                node: n,
                start,
                end,
            } => n == node && start <= slot && slot < end,
            _ => false,
        })
    }

    /// Whether `node` is live *and* not eclipsed in `slot`. Partitions
    /// are pairwise, not a per-node property, so they do not affect this.
    pub fn node_is_reachable(&self, slot: usize, node: usize) -> bool {
        self.node_is_live(slot, node)
            && !self.compiled.iter().any(|c| match *c {
                Compiled::Eclipse {
                    node: n,
                    start,
                    end,
                } => n == node && start <= slot && slot < end,
                _ => false,
            })
    }

    /// The earliest slot a blocked delivery may be re-attempted, plus the
    /// mask of directives currently blocking it; `None` when it may pass.
    fn blocked_until(
        &self,
        slot: usize,
        recipient: usize,
        meta: &DeliveryMeta,
    ) -> Option<(usize, u64)> {
        let mut until = 0usize;
        let mut dirs = 0u64;
        for (i, c) in self.compiled.iter().enumerate() {
            let (hit, release) = match c {
                Compiled::Crash { node, start, end } => {
                    (*node == recipient && *start <= slot && slot < *end, *end)
                }
                Compiled::Eclipse { node, start, end } => (
                    meta.honest
                        && (*node == recipient || *node == meta.src)
                        && *start <= slot
                        && slot < *end,
                    *end,
                ),
                Compiled::Partition {
                    group_of,
                    start,
                    end,
                } => {
                    let cross = meta.honest && *start <= slot && slot < *end && {
                        let gs = group_of.get(meta.src).copied().unwrap_or(u8::MAX);
                        let gr = group_of[recipient];
                        gs != u8::MAX && gr != u8::MAX && gs != gr
                    };
                    (cross, *end)
                }
                Compiled::Loss {
                    threshold,
                    salt,
                    start,
                    end,
                } => (
                    meta.honest
                        && *start <= slot
                        && slot < *end
                        && coin(*salt, slot, meta.src, recipient) < *threshold,
                    slot + 1,
                ),
            };
            if hit {
                until = until.max(release);
                dirs |= 1 << i;
            }
        }
        (dirs != 0).then_some((until, dirs))
    }

    /// Parks a delivery until `until`, attributing the deferral.
    fn park<S: MetricsSink>(&mut self, slot: usize, until: usize, entry: Parked, sink: &mut S) {
        self.ledger.deferred += 1;
        let mut bits = entry.dirs;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.ledger.windows[i].deferrals += 1;
        }
        sink.on_fault_deferral(slot, entry.recipient as usize, until);
        // Keys beyond the horizon are clamped to `slots + 1`: the slot
        // loop never reaches them, and `finish` drains them as drops.
        self.parked
            .entry(until.min(self.slots + 1))
            .or_default()
            .push(entry);
    }

    /// Filters one slot's due deliveries through the plan: releases
    /// parked deliveries whose windows closed (prepended, in park order,
    /// ahead of the slot's fresh deliveries), parks everything a
    /// directive currently blocks, and leaves the rest untouched. With an
    /// empty plan this is a no-op — `due` keeps its exact contents and
    /// order.
    ///
    /// `meta` derives [`DeliveryMeta`] from a block id; engines close
    /// over their block store.
    pub fn apply<F, S>(&mut self, slot: usize, due: &mut Vec<(u32, u32)>, meta: F, sink: &mut S)
    where
        F: Fn(u32) -> DeliveryMeta,
        S: MetricsSink,
    {
        if self.plan.is_empty() {
            return;
        }
        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        // 1. Released parked deliveries go first (they were broadcast
        //    earlier than anything fresh), re-parking any that a chained
        //    directive still blocks.
        while let Some((&at, _)) = self.parked.first_key_value() {
            if at > slot {
                break;
            }
            let batch = self.parked.remove(&at).expect("key just observed");
            for p in batch {
                match self.blocked_until(slot, p.recipient as usize, &p.meta) {
                    Some((until, dirs)) => {
                        let dirs = p.dirs | dirs;
                        self.park(slot, until, Parked { dirs, ..p }, sink);
                    }
                    None => {
                        self.ledger.delivered_late += 1;
                        if p.meta.honest {
                            self.ledger.worst_effective_delta = self
                                .ledger
                                .worst_effective_delta
                                .max(slot - p.meta.broadcast_slot);
                        }
                        let mut bits = p.dirs;
                        while bits != 0 {
                            let i = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let w = &mut self.ledger.windows[i];
                            w.healed_by = Some(w.healed_by.map_or(slot, |h| h.max(slot)));
                        }
                        out.push((p.recipient, p.block));
                    }
                }
            }
        }
        // 2. Fresh deliveries keep their order; blocked ones are parked.
        for &(recipient, block) in due.iter() {
            let m = meta(block);
            match self.blocked_until(slot, recipient as usize, &m) {
                Some((until, dirs)) => {
                    self.park(
                        slot,
                        until,
                        Parked {
                            recipient,
                            block,
                            meta: m,
                            dirs,
                        },
                        sink,
                    );
                }
                None => out.push((recipient, block)),
            }
        }
        self.scratch = std::mem::replace(due, out);
    }

    /// Closes the runtime at the end of the run: deliveries still parked
    /// (beyond the horizon) are counted as dropped and void their
    /// directives' `healed_by`, and the ledger is returned.
    pub fn finish(&mut self) -> DegradationLedger {
        let parked = std::mem::take(&mut self.parked);
        for batch in parked.into_values() {
            for p in batch {
                self.ledger.dropped += 1;
                let mut bits = p.dirs;
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.ledger.windows[i].healed_by = None;
                }
            }
        }
        std::mem::take(&mut self.ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_honest(src: usize, broadcast_slot: usize) -> DeliveryMeta {
        DeliveryMeta {
            src,
            honest: true,
            broadcast_slot,
        }
    }

    #[test]
    fn empty_plan_is_transparent() {
        let plan = FaultPlan::new();
        let mut rt = FaultRuntime::new(&plan, 4, 100);
        assert!(rt.is_empty());
        let mut due = vec![(0u32, 5u32), (1, 6)];
        let orig = due.clone();
        rt.apply(7, &mut due, |_| meta_honest(0, 7), &mut ());
        assert_eq!(due, orig);
        let ledger = rt.finish();
        assert_eq!(ledger, DegradationLedger::default());
        assert_eq!(plan.worst_case_extra_delay(), Some(0));
        assert_eq!(plan.worst_case_delta(3), Some(3));
    }

    #[test]
    fn partition_parks_cross_group_until_heal() {
        let plan = FaultPlan::new().with(FaultDirective::Partition {
            groups: vec![vec![0, 1], vec![2, 3]],
            start: 10,
            heal_slot: 13,
        });
        let mut rt = FaultRuntime::new(&plan, 4, 100);
        // src 0 → dst 2 crosses; src 0 → dst 1 does not.
        let mut due = vec![(2u32, 7u32), (1, 7)];
        rt.apply(10, &mut due, |_| meta_honest(0, 10), &mut ());
        assert_eq!(due, vec![(1, 7)]);
        // Nothing moves at slots 11–12.
        let mut empty = Vec::new();
        rt.apply(11, &mut empty, |_| meta_honest(0, 11), &mut ());
        rt.apply(12, &mut empty, |_| meta_honest(0, 12), &mut ());
        assert!(empty.is_empty());
        // Heal slot: the parked delivery lands ahead of fresh ones.
        let mut due = vec![(3u32, 9u32)];
        rt.apply(
            13,
            &mut due,
            |b| meta_honest(if b == 7 { 0 } else { 2 }, 10),
            &mut (),
        );
        assert_eq!(due, vec![(2, 7), (3, 9)]);
        let ledger = rt.finish();
        assert_eq!(ledger.deferred, 1);
        assert_eq!(ledger.delivered_late, 1);
        assert_eq!(ledger.dropped, 0);
        assert_eq!(ledger.worst_effective_delta, 3); // 13 − 10
        assert_eq!(ledger.windows[0].deferrals, 1);
        assert_eq!(ledger.windows[0].healed_by, Some(13));
        assert_eq!(plan.worst_case_extra_delay(), Some(3));
    }

    #[test]
    fn eclipse_blocks_both_directions_but_not_adversary() {
        let plan = FaultPlan::new().with(FaultDirective::Eclipse {
            node: 1,
            start: 5,
            until: 8,
        });
        let mut rt = FaultRuntime::new(&plan, 3, 50);
        let adversarial = DeliveryMeta {
            src: usize::MAX - 1,
            honest: false,
            broadcast_slot: 5,
        };
        // Honest to the victim: parked. Honest *from* the victim: parked.
        // Adversarial to the victim: passes.
        let mut due = vec![(1u32, 10u32), (2, 11), (1, 12)];
        rt.apply(
            5,
            &mut due,
            |b| match b {
                10 => meta_honest(0, 5),
                11 => meta_honest(1, 5),
                _ => adversarial,
            },
            &mut (),
        );
        assert_eq!(due, vec![(1, 12)]);
        assert!(rt.node_is_live(5, 1));
        assert!(!rt.node_is_reachable(5, 1));
        assert!(rt.node_is_reachable(8, 1));
        assert!(rt.node_is_reachable(4, 1));
    }

    #[test]
    fn crash_blocks_everything_and_resyncs_on_recovery() {
        let plan = FaultPlan::new().with(FaultDirective::Crash {
            node: 0,
            at: 3,
            recover_slot: 6,
        });
        let mut rt = FaultRuntime::new(&plan, 2, 50);
        assert!(!rt.can_mint(3, 0));
        assert!(!rt.can_mint(5, 0));
        assert!(rt.can_mint(6, 0));
        assert!(rt.can_mint(2, 0));
        let adversarial = DeliveryMeta {
            src: usize::MAX - 1,
            honest: false,
            broadcast_slot: 3,
        };
        // Even adversarial deliveries cannot reach a crashed node.
        let mut due = vec![(0u32, 4u32), (0, 5)];
        rt.apply(
            3,
            &mut due,
            |b| {
                if b == 4 {
                    meta_honest(1, 3)
                } else {
                    adversarial
                }
            },
            &mut (),
        );
        assert!(due.is_empty());
        let mut due = vec![(0u32, 6u32)];
        rt.apply(4, &mut due, |_| meta_honest(1, 4), &mut ());
        assert!(due.is_empty());
        // Recovery: all three parked deliveries resync, in park order.
        let mut due = Vec::new();
        rt.apply(
            6,
            &mut due,
            |b| {
                if b == 5 {
                    adversarial
                } else {
                    meta_honest(1, 3)
                }
            },
            &mut (),
        );
        assert_eq!(due, vec![(0, 4), (0, 5), (0, 6)]);
        let ledger = rt.finish();
        assert_eq!(ledger.delivered_late, 3);
        assert_eq!(ledger.worst_effective_delta, 3); // honest block 4: 6 − 3
    }

    #[test]
    fn never_recovering_crash_drops_at_horizon() {
        let plan = FaultPlan::new().with(FaultDirective::Crash {
            node: 0,
            at: 1,
            recover_slot: usize::MAX,
        });
        assert_eq!(plan.worst_case_extra_delay(), None);
        assert_eq!(plan.worst_case_delta(2), None);
        let mut rt = FaultRuntime::new(&plan, 2, 10);
        let mut due = vec![(0u32, 3u32)];
        rt.apply(4, &mut due, |_| meta_honest(1, 4), &mut ());
        assert!(due.is_empty());
        let ledger = rt.finish();
        assert_eq!(ledger.dropped, 1);
        assert_eq!(ledger.delivered_late, 0);
        assert_eq!(ledger.windows[0].healed_by, None);
    }

    #[test]
    fn loss_retries_next_slot_and_is_window_bounded() {
        let plan = FaultPlan::new().with(FaultDirective::MessageLoss {
            p: 1.0, // always drop inside the window
            salt: 42,
            start: 5,
            until: 8,
        });
        assert_eq!(plan.worst_case_extra_delay(), Some(3));
        let mut rt = FaultRuntime::new(&plan, 2, 50);
        let mut due = vec![(1u32, 9u32)];
        rt.apply(5, &mut due, |_| meta_honest(0, 5), &mut ());
        assert!(due.is_empty());
        let mut due = Vec::new();
        rt.apply(6, &mut due, |_| meta_honest(0, 5), &mut ());
        assert!(due.is_empty(), "re-rolled and re-parked");
        rt.apply(7, &mut due, |_| meta_honest(0, 5), &mut ());
        assert!(due.is_empty());
        // Window closed: the retry at slot 8 passes.
        rt.apply(8, &mut due, |_| meta_honest(0, 5), &mut ());
        assert_eq!(due, vec![(1, 9)]);
        let ledger = rt.finish();
        assert_eq!(ledger.deferred, 3, "one fresh park + two re-parks");
        assert_eq!(ledger.worst_effective_delta, 3);
    }

    #[test]
    fn chained_windows_merge_in_the_static_bound() {
        let plan = FaultPlan::new()
            .with(FaultDirective::Eclipse {
                node: 0,
                start: 10,
                until: 14,
            })
            .with(FaultDirective::Crash {
                node: 0,
                at: 14,
                recover_slot: 20,
            })
            .with(FaultDirective::Eclipse {
                node: 1,
                start: 30,
                until: 32,
            });
        // [10,14) and [14,20) chain into [10,20): extra = 10.
        assert_eq!(plan.worst_case_extra_delay(), Some(10));
        // And the runtime actually re-parks across the chain.
        let mut rt = FaultRuntime::new(&plan, 2, 50);
        let mut due = vec![(0u32, 5u32)];
        rt.apply(12, &mut due, |_| meta_honest(1, 12), &mut ());
        assert!(due.is_empty());
        for slot in 13..20 {
            let mut d = Vec::new();
            rt.apply(slot, &mut d, |_| meta_honest(1, slot), &mut ());
            assert!(d.is_empty(), "slot {slot}");
        }
        let mut due = Vec::new();
        rt.apply(20, &mut due, |_| meta_honest(1, 20), &mut ());
        assert_eq!(due, vec![(0, 5)]);
        let ledger = rt.finish();
        assert_eq!(ledger.worst_effective_delta, 8); // 20 − 12
        assert!(ledger.worst_effective_delta <= plan.worst_case_delta(0).unwrap());
        // Both chained directives report the same healed-by slot.
        assert_eq!(ledger.windows[0].healed_by, Some(20));
        assert_eq!(ledger.windows[1].healed_by, Some(20));
        assert_eq!(ledger.windows[2].healed_by, None);
    }

    #[test]
    fn deferral_stream_reaches_the_sink() {
        #[derive(Default)]
        struct Count(Vec<(usize, usize, usize)>);
        impl MetricsSink for Count {
            fn on_fault_deferral(&mut self, slot: usize, recipient: usize, until: usize) {
                self.0.push((slot, recipient, until));
            }
        }
        let plan = FaultPlan::new().with(FaultDirective::Crash {
            node: 1,
            at: 2,
            recover_slot: 4,
        });
        let mut rt = FaultRuntime::new(&plan, 2, 10);
        let mut sink = Count::default();
        let mut due = vec![(1u32, 3u32)];
        rt.apply(2, &mut due, |_| meta_honest(0, 2), &mut sink);
        assert_eq!(sink.0, vec![(2, 1, 4)]);
    }

    #[test]
    #[should_panic(expected = "two partition groups")]
    fn overlapping_partition_groups_rejected() {
        let plan = FaultPlan::new().with(FaultDirective::Partition {
            groups: vec![vec![0, 1], vec![1, 2]],
            start: 1,
            heal_slot: 5,
        });
        let _ = FaultRuntime::new(&plan, 3, 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_rejected() {
        let plan = FaultPlan::new().with(FaultDirective::Crash {
            node: 7,
            at: 1,
            recover_slot: 2,
        });
        let _ = FaultRuntime::new(&plan, 4, 10);
    }
}
