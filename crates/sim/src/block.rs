//! Blocks and the global block arena.
//!
//! Real PoS blockchains chain blocks by collision-resistant hashes and
//! authenticate issuers with signatures; the analysis only relies on the
//! *consequences* of those primitives — immutable parent links and
//! per-slot issuer attribution (paper axioms A1–A3). The [`BlockStore`]
//! arena provides exactly that: blocks are immutable once inserted, carry
//! their slot and issuer, and parent links can never form cycles (a parent
//! must exist before its child).

use std::fmt;

use multihonest_core::AncestorIndex;

/// Identifier of a block inside a [`BlockStore`]; the genesis block is
/// [`BlockId::GENESIS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// The genesis block (slot 0).
    pub const GENESIS: BlockId = BlockId(0);

    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The id at a given arena index — how external arenas (the columnar
    /// scenario core) speak the same block-id currency as [`BlockStore`].
    pub fn from_index(index: usize) -> BlockId {
        BlockId(u32::try_from(index).expect("arena index fits in u32"))
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An immutable block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The block's own id.
    pub id: BlockId,
    /// Slot in which the block was issued (0 for genesis).
    pub slot: usize,
    /// The parent block (None only for genesis).
    pub parent: Option<BlockId>,
    /// Index of the issuing node (usize::MAX for genesis).
    pub issuer: usize,
    /// Whether the issuer was honest.
    pub honest: bool,
    /// Chain length: number of blocks above genesis (genesis has 0).
    pub height: usize,
}

/// Append-only arena of all blocks minted during an execution.
///
/// Alongside the blocks themselves the store maintains a shared
/// [`AncestorIndex`] (jump tables built incrementally at mint time), so
/// ancestor queries — [`BlockStore::last_common_block`],
/// [`BlockStore::block_at_slot`], [`BlockStore::diverge_prior_to`] — run
/// in `O(log n)` instead of walking parent links one at a time. The index
/// costs `O(n log n)` words total and `O(log n)` amortised work per mint,
/// and is the same machinery `multihonest-fork` uses for tine ancestry.
///
/// # Examples
///
/// ```
/// use multihonest_sim::{BlockId, BlockStore};
///
/// let mut store = BlockStore::new();
/// let b1 = store.mint(BlockId::GENESIS, 3, 0, true);
/// let b2 = store.mint(b1, 5, 1, true);
/// assert_eq!(store.block(b2).height, 2);
/// assert_eq!(store.chain(b2), vec![BlockId::GENESIS, b1, b2]);
/// ```
#[derive(Debug, Clone)]
pub struct BlockStore {
    blocks: Vec<Block>,
    anc: AncestorIndex,
}

impl Default for BlockStore {
    fn default() -> BlockStore {
        BlockStore::new()
    }
}

impl BlockStore {
    /// Creates a store holding only the genesis block.
    pub fn new() -> BlockStore {
        BlockStore {
            blocks: vec![Block {
                id: BlockId::GENESIS,
                slot: 0,
                parent: None,
                issuer: usize::MAX,
                honest: true,
                height: 0,
            }],
            anc: AncestorIndex::new(),
        }
    }

    /// Mints a new block on `parent` at `slot` by `issuer`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist or `slot` does not exceed the
    /// parent's slot (hash-chaining makes backdating impossible; the
    /// signature scheme pins the slot).
    pub fn mint(&mut self, parent: BlockId, slot: usize, issuer: usize, honest: bool) -> BlockId {
        let p = &self.blocks[parent.index()];
        assert!(
            slot > p.slot,
            "child slot {slot} must exceed parent slot {}",
            p.slot
        );
        let id = BlockId(self.blocks.len() as u32);
        let height = p.height + 1;
        self.blocks.push(Block {
            id,
            slot,
            parent: Some(parent),
            issuer,
            honest,
            height,
        });
        let idx = self.anc.push(parent.index());
        debug_assert_eq!(idx, id.index());
        debug_assert_eq!(self.anc.depth(idx), height);
        id
    }

    /// The `steps`-th ancestor of `v`, clamped at genesis, in `O(log n)`.
    pub fn ancestor(&self, v: BlockId, steps: usize) -> BlockId {
        BlockId(self.anc.ancestor(v.index(), steps) as u32)
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Number of blocks including genesis.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Always `false` (genesis is always present).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over all blocks, genesis first.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// The chain from genesis to `tip`, inclusive.
    pub fn chain(&self, tip: BlockId) -> Vec<BlockId> {
        let mut out = Vec::with_capacity(self.block(tip).height + 1);
        let mut cur = Some(tip);
        while let Some(id) = cur {
            out.push(id);
            cur = self.block(id).parent;
        }
        out.reverse();
        out
    }

    /// The last common block of two chains, in `O(log n)` via the shared
    /// ancestry index.
    pub fn last_common_block(&self, a: BlockId, b: BlockId) -> BlockId {
        BlockId(self.anc.lca(a.index(), b.index()) as u32)
    }

    /// The block on `tip`'s chain issued at `slot`, if any, in `O(log n)`:
    /// slots strictly increase towards the tip, so the ancestry index can
    /// descend on them to the deepest ancestor with slot ≤ `slot`, the
    /// unique candidate.
    pub fn block_at_slot(&self, tip: BlockId, slot: usize) -> Option<BlockId> {
        let cur = self
            .anc
            .last_key_at_most(tip.index(), slot, |i| self.blocks[i].slot);
        (self.blocks[cur].slot == slot).then_some(BlockId(cur as u32))
    }

    /// Whether the chains ending at `a` and `b` *diverge prior to slot
    /// `s`* in the sense of paper Definition 3: they contain different
    /// blocks at slot `s`, or one contains a slot-`s` block and the other
    /// does not.
    pub fn diverge_prior_to(&self, a: BlockId, b: BlockId, s: usize) -> bool {
        match (self.block_at_slot(a, s), self.block_at_slot(b, s)) {
            (Some(x), Some(y)) => x != y,
            (None, None) => false,
            _ => true,
        }
    }

    /// A deterministic pseudo-hash of the block id, used by the consistent
    /// tie-breaking rule (stands in for the block's real hash; any fixed
    /// total order works for axiom A0′).
    pub fn tie_hash(&self, id: BlockId) -> u64 {
        tie_hash(id.0)
    }
}

/// SplitMix64 of a raw block id: the fixed, implementation-defined total
/// order behind the consistent tie-breaking rule (axiom A0′). A free
/// function so the columnar scenario core breaks ties **identically** to
/// [`BlockStore::tie_hash`] — a prerequisite for bit-identical traces.
pub fn tie_hash(id: u32) -> u64 {
    let mut z = (id as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_exists() {
        let store = BlockStore::new();
        assert_eq!(store.len(), 1);
        let g = store.block(BlockId::GENESIS);
        assert_eq!(g.height, 0);
        assert_eq!(g.parent, None);
        assert!(g.honest);
    }

    #[test]
    fn chains_and_heights() {
        let mut store = BlockStore::new();
        let a = store.mint(BlockId::GENESIS, 1, 0, true);
        let b = store.mint(a, 2, 1, true);
        let c = store.mint(a, 3, 2, false);
        assert_eq!(store.block(b).height, 2);
        assert_eq!(store.chain(c), vec![BlockId::GENESIS, a, c]);
        assert_eq!(store.last_common_block(b, c), a);
        assert_eq!(store.last_common_block(b, b), b);
    }

    #[test]
    #[should_panic(expected = "must exceed parent slot")]
    fn backdating_rejected() {
        let mut store = BlockStore::new();
        let a = store.mint(BlockId::GENESIS, 5, 0, true);
        let _ = store.mint(a, 5, 1, true);
    }

    #[test]
    fn block_at_slot_and_divergence() {
        let mut store = BlockStore::new();
        let a = store.mint(BlockId::GENESIS, 1, 0, true);
        let b1 = store.mint(a, 2, 1, true);
        let b2 = store.mint(a, 3, 2, true);
        assert_eq!(store.block_at_slot(b1, 2), Some(b1));
        assert_eq!(store.block_at_slot(b1, 3), None);
        assert_eq!(store.block_at_slot(b2, 1), Some(a));
        // b1's chain has a slot-2 block; b2's does not.
        assert!(store.diverge_prior_to(b1, b2, 2));
        assert!(!store.diverge_prior_to(b1, b2, 1));
        assert!(!store.diverge_prior_to(b1, b1, 2));
    }

    /// Parent-walk reference for [`BlockStore::last_common_block`].
    fn lca_walk(store: &BlockStore, a: BlockId, b: BlockId) -> BlockId {
        let (mut a, mut b) = (a, b);
        while store.block(a).height > store.block(b).height {
            a = store.block(a).parent.expect("height > 0");
        }
        while store.block(b).height > store.block(a).height {
            b = store.block(b).parent.expect("height > 0");
        }
        while a != b {
            a = store.block(a).parent.expect("share genesis");
            b = store.block(b).parent.expect("share genesis");
        }
        a
    }

    /// Parent-walk reference for [`BlockStore::block_at_slot`].
    fn block_at_slot_walk(store: &BlockStore, tip: BlockId, slot: usize) -> Option<BlockId> {
        let mut cur = Some(tip);
        while let Some(id) = cur {
            let b = store.block(id);
            if b.slot == slot {
                return Some(id);
            }
            if b.slot < slot {
                return None;
            }
            cur = b.parent;
        }
        None
    }

    #[test]
    fn jump_tables_match_parent_walks_on_a_random_dag() {
        // Deterministic pseudo-random DAG: each new block extends a parent
        // chosen by a SplitMix-style hash, so chains fork and interleave.
        let mut store = BlockStore::new();
        let mut ids = vec![BlockId::GENESIS];
        for i in 0..300usize {
            let pick = {
                let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z as usize % ids.len()
            };
            let parent = ids[pick];
            let slot = store.block(parent).slot + 1 + (i % 3);
            ids.push(store.mint(parent, slot, i % 7, i % 4 != 0));
        }
        for (i, &a) in ids.iter().enumerate().step_by(7) {
            for &b in ids.iter().skip(i % 13).step_by(11) {
                assert_eq!(
                    store.last_common_block(a, b),
                    lca_walk(&store, a, b),
                    "lca({a}, {b})"
                );
            }
            let max_slot = store.block(a).slot + 2;
            for slot in 0..=max_slot {
                assert_eq!(
                    store.block_at_slot(a, slot),
                    block_at_slot_walk(&store, a, slot),
                    "block_at_slot({a}, {slot})"
                );
            }
        }
    }

    #[test]
    fn deep_chain_ancestor_queries() {
        // A chain long enough to exercise several jump-table levels.
        let mut store = BlockStore::new();
        let mut tip = BlockId::GENESIS;
        let mut chain = vec![tip];
        for slot in 1..=1000usize {
            tip = store.mint(tip, slot, 0, true);
            chain.push(tip);
        }
        assert_eq!(store.ancestor(tip, 0), tip);
        assert_eq!(store.ancestor(tip, 1), chain[999]);
        assert_eq!(store.ancestor(tip, 999), chain[1]);
        assert_eq!(store.ancestor(tip, 1000), BlockId::GENESIS);
        assert_eq!(store.ancestor(tip, 5000), BlockId::GENESIS);
        assert_eq!(store.block_at_slot(tip, 731), Some(chain[731]));
        assert_eq!(store.last_common_block(tip, chain[400]), chain[400]);
    }

    #[test]
    fn tie_hash_is_deterministic_and_spread() {
        let store = BlockStore::new();
        let h1 = store.tie_hash(BlockId(1));
        let h2 = store.tie_hash(BlockId(2));
        assert_eq!(h1, store.tie_hash(BlockId(1)));
        assert_ne!(h1, h2);
    }
}
