//! The slot-driven execution engine.

use multihonest_chars::SemiString;
use multihonest_fork::{Fork, ForkError, ForkFold, VertexId};

use crate::block::{BlockId, BlockStore};
use crate::consistency::DivergenceIndex;
use crate::fault::{DegradationLedger, DeliveryMeta, FaultPlan, FaultRuntime};
use crate::leader::LeaderSchedule;
use crate::metrics::{Metrics, MetricsAccumulator, MetricsSink};
use crate::network::Network;
use crate::node::{HonestNode, TieBreak};
use crate::strategy::{AdversaryStrategy, SlotContext, Strategy};

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of honest nodes (honest stake is split equally).
    pub honest_nodes: usize,
    /// Relative stake held by the adversary, in `[0, 1)`.
    pub adversarial_stake: f64,
    /// Active-slot coefficient `f ∈ (0, 1)`.
    pub active_slot_coeff: f64,
    /// Network delay bound `Δ` (0 = synchronous).
    pub delta: usize,
    /// Number of slots to simulate.
    pub slots: usize,
    /// Honest tie-breaking rule (axiom A0 vs A0′).
    pub tie_break: TieBreak,
    /// The adversary's strategy.
    pub strategy: Strategy,
}

/// A finished execution: the block DAG, per-slot honest views, metrics
/// and extraction utilities.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimConfig,
    schedule: LeaderSchedule,
    store: BlockStore,
    /// Distinct honest tips at the end of each slot (index = slot − 1).
    tips_per_slot: Vec<Vec<BlockId>>,
    /// Rollback events: `(slot, previous tip, new tip)` for every honest
    /// tip switch onto a non-descendant chain.
    rollbacks: Vec<(usize, BlockId, BlockId)>,
    /// Per-anchor divergence observations, folded once after the slot
    /// loop; every settlement query is a lookup into this index.
    divergence: DivergenceIndex,
    metrics: Metrics,
}

/// The engine-side [`SlotContext`] of the reference simulator: mints into
/// the [`BlockStore`] and schedules through the [`Network`] (whose
/// `schedule_honest` clamp enforces the Δ axiom against any strategy).
struct RefSlotContext<'a> {
    store: &'a mut BlockStore,
    network: &'a mut Network,
    config: &'a SimConfig,
    faults: &'a FaultRuntime<'a>,
    slot: usize,
    adversarial_leader: bool,
}

impl SlotContext for RefSlotContext<'_> {
    fn slot(&self) -> usize {
        self.slot
    }

    fn delta(&self) -> usize {
        self.config.delta
    }

    fn honest_nodes(&self) -> usize {
        self.config.honest_nodes
    }

    fn adversarial_leader(&self) -> bool {
        self.adversarial_leader
    }

    fn height_of(&self, block: BlockId) -> usize {
        self.store.block(block).height
    }

    fn parent_of(&self, block: BlockId) -> Option<BlockId> {
        self.store.block(block).parent
    }

    fn mint_adversarial(&mut self, parent: BlockId) -> BlockId {
        self.store.mint(parent, self.slot, usize::MAX - 1, false)
    }

    fn deliver_honest(&mut self, requested_slot: usize, recipient: usize, block: BlockId) {
        self.network
            .schedule_honest(self.slot, requested_slot, recipient, block);
    }

    fn deliver_adversarial(&mut self, at_slot: usize, recipient: usize, block: BlockId) {
        if at_slot >= self.slot {
            self.network.schedule_adversarial(at_slot, recipient, block);
        }
    }

    fn node_is_live(&self, node: usize) -> bool {
        self.faults.node_is_live(self.slot, node)
    }

    fn node_is_reachable(&self, node: usize) -> bool {
        self.faults.node_is_reachable(self.slot, node)
    }
}

impl Simulation {
    /// Runs an execution with the given seed, instantiating the
    /// configured built-in [`Strategy`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is out of range (see the field docs of
    /// [`SimConfig`]; validation mirrors [`LeaderSchedule::sample`]).
    pub fn run(config: &SimConfig, seed: u64) -> Simulation {
        let mut strategy = config.strategy.instantiate();
        Simulation::run_with(config, seed, strategy.as_mut())
    }

    /// Runs an execution with an arbitrary [`AdversaryStrategy`] — the
    /// open strategy surface. `config.strategy` is recorded but not
    /// consulted; the trait object drives every adversarial decision.
    pub fn run_with(
        config: &SimConfig,
        seed: u64,
        strategy: &mut dyn AdversaryStrategy,
    ) -> Simulation {
        let schedule = LeaderSchedule::sample(
            config.honest_nodes,
            config.adversarial_stake,
            config.active_slot_coeff,
            config.slots,
            seed,
        );
        Simulation::run_with_schedule(config, schedule, strategy)
    }

    /// Runs an execution over an explicit leader schedule (heterogeneous
    /// stake profiles sample theirs with
    /// [`LeaderSchedule::sample_weighted`]) and an arbitrary strategy.
    ///
    /// # Panics
    ///
    /// Panics if the schedule length differs from `config.slots`.
    pub fn run_with_schedule(
        config: &SimConfig,
        schedule: LeaderSchedule,
        strategy: &mut dyn AdversaryStrategy,
    ) -> Simulation {
        let empty = FaultPlan::default();
        Simulation::run_with_schedule_faults(config, schedule, strategy, &empty).0
    }

    /// Runs an execution over an explicit leader schedule under a
    /// [`FaultPlan`]: crashed nodes skip their leadership slots, and
    /// every due delivery passes through the plan's predicate (blocked
    /// deliveries are parked until their fault window closes — see
    /// [`crate::fault`]). The empty plan is bit-identical to
    /// [`Simulation::run_with_schedule`]. Returns the execution together
    /// with its [`DegradationLedger`].
    ///
    /// # Panics
    ///
    /// Panics if the schedule length differs from `config.slots` or the
    /// plan fails [`FaultPlan::validate`].
    pub fn run_with_schedule_faults(
        config: &SimConfig,
        schedule: LeaderSchedule,
        strategy: &mut dyn AdversaryStrategy,
        plan: &FaultPlan,
    ) -> (Simulation, DegradationLedger) {
        assert_eq!(
            schedule.len(),
            config.slots,
            "schedule must cover the configured horizon"
        );
        let mut faults = FaultRuntime::new(plan, config.honest_nodes, config.slots);
        let mut fault_due: Vec<(u32, u32)> = Vec::new();
        let mut store = BlockStore::new();
        let mut nodes: Vec<HonestNode> = (0..config.honest_nodes)
            .map(|i| HonestNode::new(i, config.tie_break))
            .collect();
        let mut network = Network::new(config.delta, config.slots);
        let mut tips_per_slot = Vec::with_capacity(config.slots);
        let mut rollbacks: Vec<(usize, BlockId, BlockId)> = Vec::new();
        let mut acc = MetricsAccumulator::new();

        for slot in 1..=config.slots {
            let leaders = schedule.leaders(slot).clone();
            // 1. Honest leaders mint on their current tips (start of
            //    slot) and adopt their own block at mint time: a leader
            //    has seen its own output before any of the slot's
            //    deliveries, so no rushed same-height injection can win
            //    the first-seen tie against it. (Network scheduling below
            //    still broadcasts the block to everyone, minter included —
            //    that delivery is an idempotent no-op.)
            let minted: Vec<BlockId> = leaders
                .honest
                .iter()
                .filter(|&&leader| faults.can_mint(slot, leader))
                .map(|&leader| {
                    let b = store.mint(nodes[leader].tip(), slot, leader, true);
                    nodes[leader].receive(&store, b);
                    b
                })
                .collect();
            // 2. The rushing adversary observes the minted blocks, mints
            //    its own, and schedules all deliveries for this slot —
            //    through the trait, against the Δ-clamping context.
            let mut ctx = RefSlotContext {
                store: &mut store,
                network: &mut network,
                config,
                faults: &faults,
                slot,
                adversarial_leader: leaders.adversarial,
            };
            strategy.on_slot(&mut ctx, &minted);
            // 3. Apply this slot's deliveries in scheduled order —
            //    filtered through the fault plan when one is active —
            //    recording chain rollbacks (tip switches onto chains that
            //    do not extend the previous tip).
            let before: Vec<BlockId> = nodes.iter().map(HonestNode::tip).collect();
            let due = network.due(slot);
            if faults.is_empty() {
                for (recipient, block) in due {
                    nodes[recipient].receive(&store, block);
                }
            } else {
                fault_due.clear();
                fault_due.extend(due.iter().map(|&(r, b)| (r as u32, b.index() as u32)));
                faults.apply(
                    slot,
                    &mut fault_due,
                    |b| {
                        let blk = store.block(BlockId::from_index(b as usize));
                        DeliveryMeta {
                            src: blk.issuer,
                            honest: blk.honest,
                            broadcast_slot: blk.slot,
                        }
                    },
                    &mut acc,
                );
                for &(recipient, block) in fault_due.iter() {
                    nodes[recipient as usize].receive(&store, BlockId::from_index(block as usize));
                }
            }
            for (node, &old) in nodes.iter().zip(&before) {
                let new = node.tip();
                if new != old && store.last_common_block(old, new) != old {
                    rollbacks.push((slot, old, new));
                    acc.on_rollback(slot, store.block(old).height, store.block(new).height);
                }
            }
            // Mint-time adoption makes this invariant: under first-seen
            // ties a leader keeps its own block unless a strictly longer
            // chain arrived (axiom A0′'s consistent rule may legitimately
            // swap equal-height tips, so it is exempt).
            if config.tie_break == TieBreak::AdversarialOrder {
                for &b in &minted {
                    let leader = store.block(b).issuer;
                    let tip = nodes[leader].tip();
                    debug_assert!(
                        tip == b || store.block(tip).height > store.block(b).height,
                        "leader {leader} lost its own slot-{slot} block to an equal-height tie"
                    );
                }
            }
            // 4. Record the distinct honest views.
            let mut tips: Vec<BlockId> = nodes.iter().map(|n| n.tip()).collect();
            tips.sort_unstable();
            tips.dedup();
            let mut div = 0usize;
            let mut best_height = 0usize;
            for (i, &a) in tips.iter().enumerate() {
                best_height = best_height.max(store.block(a).height);
                for &b in &tips[i + 1..] {
                    let lca = store.last_common_block(a, b);
                    let first = store.block(a).slot.min(store.block(b).slot);
                    div = div.max(first.saturating_sub(store.block(lca).slot));
                }
            }
            acc.on_slot(slot, tips.len(), best_height, div);
            tips_per_slot.push(tips);
        }

        // Final metrics from node 0's view (all honest views agree up to
        // the recent window in healthy runs).
        let best_tip = nodes
            .iter()
            .map(HonestNode::tip)
            .max_by_key(|t| store.block(*t).height)
            .expect("at least one node");
        let chain = store.chain(best_tip);
        let chain_blocks = chain.len() - 1;
        let honest_chain_blocks = chain
            .iter()
            .skip(1)
            .filter(|b| store.block(**b).honest)
            .count();
        let semi = schedule.characteristic_string();
        let divergence = DivergenceIndex::build(&store, &tips_per_slot, &rollbacks);
        let metrics = acc.finish(
            semi.count_nonempty(),
            store.block(best_tip).height,
            chain_blocks,
            honest_chain_blocks,
            divergence.max_settlement_lag(),
        );
        let ledger = faults.finish();
        (
            Simulation {
                config: *config,
                schedule,
                store,
                tips_per_slot,
                rollbacks,
                divergence,
                metrics,
            },
            ledger,
        )
    }

    /// Assembles a simulation from recorded parts — tests use this to
    /// construct boundary executions (e.g. a rollback at exactly
    /// `t = s + k`) that seeded runs cannot hit reliably.
    #[cfg(test)]
    fn from_parts(
        store: BlockStore,
        tips_per_slot: Vec<Vec<BlockId>>,
        rollbacks: Vec<(usize, BlockId, BlockId)>,
    ) -> Simulation {
        let slots = tips_per_slot.len();
        let config = SimConfig {
            honest_nodes: 1,
            adversarial_stake: 0.0,
            active_slot_coeff: 0.5,
            delta: 0,
            slots,
            tie_break: TieBreak::AdversarialOrder,
            strategy: Strategy::Honest,
        };
        let schedule = LeaderSchedule::sample(1, 0.0, 0.5, slots, 0);
        let divergence = DivergenceIndex::build(&store, &tips_per_slot, &rollbacks);
        let metrics = Metrics {
            slots,
            active_slots: 0,
            final_height: 0,
            chain_blocks: 0,
            honest_chain_blocks: 0,
            max_slot_divergence: 0,
            rollback_count: rollbacks.len(),
            max_settlement_lag: divergence.max_settlement_lag(),
        };
        Simulation {
            config,
            schedule,
            store,
            tips_per_slot,
            rollbacks,
            divergence,
            metrics,
        }
    }

    /// The configuration used.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The sampled leader schedule.
    pub fn schedule(&self) -> &LeaderSchedule {
        &self.schedule
    }

    /// The block arena.
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// The execution's semi-synchronous characteristic string.
    pub fn characteristic_string(&self) -> SemiString {
        self.schedule.characteristic_string()
    }

    /// Execution metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Distinct honest tips at the end of `slot`.
    ///
    /// Slots are **1-based** (`1..=slots`, matching the execution loop);
    /// slot 0 is the genesis boundary, where no views have been recorded
    /// yet, so it reports no tips rather than panicking.
    ///
    /// # Panics
    ///
    /// Panics if `slot` exceeds the simulated horizon.
    pub fn tips_at(&self, slot: usize) -> &[BlockId] {
        if slot == 0 {
            return &[];
        }
        &self.tips_per_slot[slot - 1]
    }

    /// All recorded rollbacks: `(slot, previous tip, new tip)`.
    pub fn rollbacks(&self) -> &[(usize, BlockId, BlockId)] {
        &self.rollbacks
    }

    /// The execution's [`DivergenceIndex`]: per-anchor earliest/latest
    /// diverging observations, folded once during [`Simulation::run`].
    pub fn divergence_index(&self) -> &DivergenceIndex {
        &self.divergence
    }

    /// Whether the execution exhibits a settlement violation for `slot`
    /// at parameter `k` (paper Definition 3, observed): at some slot
    /// `t ≥ slot + k`, either two simultaneous honest views diverge prior
    /// to `slot`, or an honest node rolled over to a chain diverging
    /// prior to `slot` (the withheld-chain release pattern). Both event
    /// kinds use the same `t ≥ slot + k` observation window.
    ///
    /// Anchor slots are 1-based; `slot = 0` (the genesis boundary) and
    /// anchors beyond the horizon are vacuously settled. `O(1)` per query
    /// — see [`Simulation::settlement_violations`] for whole sweeps.
    pub fn settlement_violation(&self, slot: usize, k: usize) -> bool {
        self.divergence.violates(slot, k)
    }

    /// The full settlement sweep at parameter `k`: entry `s − 1` is
    /// [`Simulation::settlement_violation`]`(s, k)` for `s ∈ 1..=slots`.
    /// `O(slots)` for any `k`.
    pub fn settlement_violations(&self, k: usize) -> Vec<bool> {
        self.divergence.violations(k)
    }

    /// The smallest anchor slot violated at parameter `k`, if any.
    pub fn first_violating_slot(&self, k: usize) -> Option<usize> {
        self.divergence.first_violation(k)
    }

    /// Number of violating anchors `s ≤ upto` at parameter `k` — the
    /// reduction every sweep consumer wants. `upto` is clamped to the
    /// horizon; pass `usize::MAX` (or `slots`) to count every anchor.
    pub fn count_violating_slots(&self, k: usize, upto: usize) -> usize {
        self.divergence.count_violations(k, upto)
    }

    /// The naive per-query scan over observation slots and tip pairs,
    /// retained verbatim (modulo the unified `t ≥ slot + k` window and
    /// the slot-0 guard) as the equivalence oracle for the indexed path.
    /// Tests and the `bench-report` speedup measurement call this; all
    /// other consumers should use [`Simulation::settlement_violation`].
    #[doc(hidden)]
    pub fn settlement_violation_oracle(&self, slot: usize, k: usize) -> bool {
        if slot == 0 {
            return false;
        }
        let concurrent = (slot.saturating_add(k)..=self.config.slots).any(|t| {
            let tips = self.tips_at(t);
            tips.iter().enumerate().any(|(i, &a)| {
                tips[i + 1..]
                    .iter()
                    .any(|&b| self.store.diverge_prior_to(a, b, slot))
            })
        });
        concurrent
            || self.rollbacks.iter().any(|&(t, old, new)| {
                t >= slot.saturating_add(k) && self.store.diverge_prior_to(old, new, slot)
            })
    }

    /// Extracts the execution's fork: every minted block becomes a vertex
    /// labelled with its slot.
    ///
    /// Extraction streams through a [`ForkFold`]: slot symbols and minted
    /// blocks interleave in one pass (blocks sit in the store in mint
    /// order, which is non-decreasing in slot), so the Δ-axiom verdict is
    /// computed **online** while the fork materialises and is ready in
    /// [`ExtractedFork::streaming_validation`] with no second pass. The
    /// batch oracle [`ExtractedFork::validate_against_axioms`] is retained
    /// for equivalence testing.
    pub fn fork(&self) -> ExtractedFork {
        let semi = self.characteristic_string();
        let mut fold = ForkFold::new(self.config.delta);
        let mut vertex_of: Vec<VertexId> = vec![VertexId::ROOT; self.store.len()];
        let mut blocks = self.store.iter().peekable();
        // Genesis is the fork's root, not a vertex.
        let genesis = blocks.next();
        debug_assert!(genesis.is_some_and(|b| b.id == BlockId::GENESIS));
        for (slot, sym) in semi.iter_slots() {
            fold.push_symbol(sym);
            while let Some(block) = blocks.next_if(|b| b.slot == slot) {
                let parent = vertex_of[block.parent.expect("non-genesis").index()];
                vertex_of[block.id.index()] = fold.push_vertex(parent, block.slot);
            }
        }
        debug_assert!(blocks.next().is_none(), "store is in slot order");
        let streamed = fold.finish();
        ExtractedFork {
            fork: streamed.fork,
            semi,
            delta: self.config.delta,
            streaming: streamed.validation,
        }
    }
}

/// A fork extracted from an execution, with Δ-aware axiom validation.
#[derive(Debug, Clone)]
pub struct ExtractedFork {
    fork: Fork,
    semi: SemiString,
    delta: usize,
    streaming: Result<(), ForkError>,
}

impl ExtractedFork {
    /// The fork itself.
    pub fn fork(&self) -> &Fork {
        &self.fork
    }

    /// The semi-synchronous characteristic string it was extracted with.
    pub fn characteristic_string(&self) -> &SemiString {
        &self.semi
    }

    /// The verdict computed online during extraction: equivalent to
    /// [`validate_against_axioms`](Self::validate_against_axioms) at the
    /// `is_ok` level (the streaming parity contract — the *first* reported
    /// violation may differ), for free instead of a full second pass.
    pub fn streaming_validation(&self) -> Result<(), ForkError> {
        self.streaming.clone()
    }

    /// Validates the fork against the paper's axioms: (F1)–(F4) for
    /// `Δ = 0`, (F1)–(F3) + (F4Δ) otherwise — the batch oracle, retained
    /// as the equivalence reference for the streaming verdict.
    ///
    /// # Errors
    ///
    /// Returns the first axiom violation — any violation means the
    /// simulator broke the abstract model, so tests treat this as fatal.
    pub fn validate_against_axioms(&self) -> Result<(), ForkError> {
        multihonest_fork::validate::validate_delta(&self.fork, &self.semi, self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_chars::SemiSymbol;

    fn base_config() -> SimConfig {
        SimConfig {
            honest_nodes: 6,
            adversarial_stake: 0.25,
            active_slot_coeff: 0.2,
            delta: 0,
            slots: 400,
            tie_break: TieBreak::AdversarialOrder,
            strategy: Strategy::Honest,
        }
    }

    #[test]
    fn honest_run_converges_after_unique_leader_slots() {
        let cfg = base_config();
        let sim = Simulation::run(&cfg, 7);
        // Concurrent honest leaders legitimately split views (each keeps
        // its own block on the first-seen tie — the paper's multi-leader
        // ambiguity), but at Δ = 0 every *uniquely* honest slot mints a
        // chain strictly longer than all views and collapses them to one.
        let semi = sim.characteristic_string();
        let mut unique_slots = 0;
        for (slot, sym) in semi.iter_slots() {
            if sym == SemiSymbol::UniqueHonest {
                assert_eq!(sim.tips_at(slot).len(), 1, "slot {slot}");
                unique_slots += 1;
            }
        }
        assert!(unique_slots > 0, "degenerate schedule");
        // The transient splits never outlive a moderate settlement window.
        assert!(!sim.metrics().observed_settlement_violation(10));
        assert!(!sim.settlement_violation(1, 10));
        // Chain growth ≈ active-slot density (every active slot adds 1).
        let growth = sim.metrics().chain_growth();
        let active = sim.metrics().active_slots as f64 / cfg.slots as f64;
        assert!(
            (growth - active).abs() < 0.02,
            "growth {growth} vs active {active}"
        );
    }

    #[test]
    fn extracted_fork_satisfies_axioms() {
        for strategy in Strategy::ALL {
            for delta in [0usize, 2] {
                let cfg = SimConfig {
                    strategy,
                    delta,
                    ..base_config()
                };
                let sim = Simulation::run(&cfg, 11);
                let fork = sim.fork();
                assert_eq!(
                    fork.validate_against_axioms(),
                    Ok(()),
                    "strategy {strategy} delta {delta}"
                );
                // The verdict computed online during extraction must agree
                // with the batch oracle just asserted.
                assert_eq!(
                    fork.streaming_validation(),
                    Ok(()),
                    "streaming verdict diverged for {strategy} delta {delta}"
                );
            }
        }
    }

    #[test]
    fn withholding_attack_rolls_back_honest_blocks() {
        // With high adversarial stake the private chain overtakes the
        // public one from time to time, producing settlement violations
        // for recent slots.
        let cfg = SimConfig {
            adversarial_stake: 0.45,
            strategy: Strategy::PrivateWithholding,
            slots: 2000,
            ..base_config()
        };
        let sim = Simulation::run(&cfg, 3);
        let quality = sim.metrics().chain_quality();
        assert!(
            quality < 0.9,
            "adversarial blocks displace honest ones: {quality}"
        );
        let any_violation =
            (1..=cfg.slots.saturating_sub(5)).any(|s| sim.settlement_violation(s, 3));
        assert!(
            any_violation,
            "a 45% adversary must cause small-k violations"
        );
    }

    #[test]
    fn balance_attack_splits_views_under_adversarial_ties() {
        let cfg = SimConfig {
            honest_nodes: 8,
            adversarial_stake: 0.3,
            active_slot_coeff: 0.5, // frequent concurrent leaders
            strategy: Strategy::BalanceAttack,
            slots: 600,
            ..base_config()
        };
        let sim = Simulation::run(&cfg, 5);
        assert!(
            sim.metrics().max_slot_divergence >= 3,
            "balance attack should keep honest views apart: div = {}",
            sim.metrics().max_slot_divergence
        );
    }

    #[test]
    fn consistent_tie_breaking_blunts_the_balance_attack() {
        let mk = |tie| SimConfig {
            honest_nodes: 8,
            adversarial_stake: 0.2,
            active_slot_coeff: 0.5,
            strategy: Strategy::BalanceAttack,
            slots: 800,
            tie_break: tie,
            ..base_config()
        };
        let runs = 8;
        let mut div_adv = 0usize;
        let mut div_con = 0usize;
        for seed in 0..runs {
            div_adv += Simulation::run(&mk(TieBreak::AdversarialOrder), seed)
                .metrics()
                .max_slot_divergence;
            div_con += Simulation::run(&mk(TieBreak::Consistent), seed)
                .metrics()
                .max_slot_divergence;
        }
        assert!(
            div_con < div_adv,
            "consistent rule should reduce divergence: {div_con} vs {div_adv}"
        );
    }

    #[test]
    fn rollback_violation_at_exactly_t_equals_s_plus_k() {
        // Regression for the Definition-3 off-by-one: the rollback branch
        // used `t > slot + k` while the concurrent branch used
        // `t ≥ slot + k`. Construct an execution whose ONLY divergence
        // evidence is a rollback at exactly t = s + k, with single honest
        // views at every slot (so the concurrent branch can never fire).
        let mut store = BlockStore::new();
        let a1 = store.mint(BlockId::GENESIS, 1, 0, true); // anchor s = 1
        let a2 = store.mint(a1, 2, 0, true);
        let b6 = store.mint(BlockId::GENESIS, 6, usize::MAX - 1, false);
        let b7 = store.mint(b6, 7, usize::MAX - 1, false);
        let b8 = store.mint(b7, 8, usize::MAX - 1, false);
        // One honest view throughout; at slot 9 it rolls back onto b8.
        let tips = vec![
            vec![a1],
            vec![a2],
            vec![a2],
            vec![a2],
            vec![a2],
            vec![a2],
            vec![a2],
            vec![a2],
            vec![b8],
            vec![b8],
        ];
        let sim = Simulation::from_parts(store, tips, vec![(9, a2, b8)]);
        // t = 9, s = 1, k = 8: exactly t = s + k. The paper's reading
        // (t ≥ s + k) makes this a violation; the old rollback branch
        // (t > s + k) missed it.
        assert!(sim.settlement_violation(1, 8));
        assert!(sim.settlement_violation_oracle(1, 8));
        assert!(!sim.settlement_violation(1, 9));
        assert!(!sim.settlement_violation_oracle(1, 9));
        assert_eq!(sim.first_violating_slot(8), Some(1));
        assert_eq!(sim.metrics().max_settlement_lag, Some(8));
        // Anchor 2 diverges too (a2 vs b8 differ at slot 2): t = s + 7.
        assert!(sim.settlement_violation(2, 7));
        assert!(!sim.settlement_violation(2, 8));
    }

    #[test]
    fn own_block_is_adopted_despite_delta() {
        // A lone honest leader must adopt its own minted block in its
        // minting slot: with Δ > 0, every active slot still extends the
        // chain by exactly one block, under every strategy's routing.
        for strategy in Strategy::ALL {
            let cfg = SimConfig {
                honest_nodes: 1,
                adversarial_stake: 0.0,
                active_slot_coeff: 0.6,
                delta: 3,
                slots: 300,
                tie_break: TieBreak::AdversarialOrder,
                strategy,
            };
            let sim = Simulation::run(&cfg, 13);
            let m = sim.metrics();
            assert!(m.active_slots > 0, "degenerate schedule");
            assert_eq!(
                m.final_height, m.active_slots,
                "strategy {strategy}: a lone leader's chain must grow on \
                 every active slot (Δ must not delay a node to itself)"
            );
        }
    }

    #[test]
    fn minters_never_lose_their_own_block_to_a_tie() {
        // Multi-node balance attack, where a cross-group minter's own
        // block competes with same-slot deliveries of the other branch:
        // at the end of its minting slot, every honest leader's view must
        // hold its own block or a strictly taller chain — never an
        // equal-height competitor that won a first-seen tie. (The run
        // loop debug_asserts the exact per-node form; this checks the
        // observable tip sets, release builds included.)
        for strategy in [Strategy::BalanceAttack, Strategy::PrivateWithholding] {
            for seed in 0..10u64 {
                let cfg = SimConfig {
                    honest_nodes: 4,
                    adversarial_stake: 0.3,
                    active_slot_coeff: 0.5,
                    delta: 2,
                    slots: 150,
                    tie_break: TieBreak::AdversarialOrder,
                    strategy,
                };
                let sim = Simulation::run(&cfg, seed);
                for block in sim.store().iter() {
                    if !block.honest || block.id == BlockId::GENESIS {
                        continue;
                    }
                    let tips = sim.tips_at(block.slot);
                    assert!(
                        tips.contains(&block.id)
                            || tips
                                .iter()
                                .any(|&t| sim.store().block(t).height > block.height),
                        "honest block {} (slot {}, height {}) displaced by an \
                         equal-height tie ({strategy}, seed {seed})",
                        block.id,
                        block.slot,
                        block.height
                    );
                }
            }
        }
    }

    #[test]
    fn slot_zero_and_horizon_edges_are_guarded() {
        let cfg = base_config();
        let sim = Simulation::run(&cfg, 7);
        // The genesis boundary: no views yet, vacuously settled.
        assert!(sim.tips_at(0).is_empty());
        assert!(!sim.settlement_violation(0, 0));
        assert!(!sim.settlement_violation(0, 10));
        assert!(!sim.settlement_violation_oracle(0, 0));
        // Beyond the horizon: vacuously settled (matching the oracle,
        // whose observation range is empty there).
        assert!(!sim.settlement_violation(cfg.slots + 1, 0));
        assert!(!sim.settlement_violation_oracle(cfg.slots + 1, 0));
        // The last simulated slot is a valid anchor.
        assert_eq!(sim.tips_at(cfg.slots).len(), 1);
        assert_eq!(
            sim.settlement_violation(cfg.slots, 0),
            sim.settlement_violation_oracle(cfg.slots, 0)
        );
        let sweep = sim.settlement_violations(5);
        assert_eq!(sweep.len(), cfg.slots);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = base_config();
        let a = Simulation::run(&cfg, 99);
        let b = Simulation::run(&cfg, 99);
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.store().len(), b.store().len());
    }

    #[test]
    fn delta_delays_are_respected() {
        // With Δ = 3 and honest-only behaviour, views may lag but the
        // extracted fork still satisfies (F4Δ), and growth stays positive.
        let cfg = SimConfig {
            delta: 3,
            slots: 600,
            ..base_config()
        };
        let sim = Simulation::run(&cfg, 23);
        assert!(sim.fork().validate_against_axioms().is_ok());
        assert!(sim.metrics().chain_growth() > 0.0);
    }
}
