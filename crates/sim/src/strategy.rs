//! Adversarial strategies.
//!
//! Strategies decide (a) where adversarial leaders mint blocks (including
//! equivocation — one adversarial leader may sign many blocks in its
//! slot), (b) when each honest broadcast reaches each honest node (within
//! the Δ window), and (c) when adversarial blocks are revealed to whom.

/// The built-in adversarial strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Adversarial leaders behave exactly like honest ones: extend the
    /// public longest chain, broadcast immediately, deliver honest
    /// broadcasts at once. The baseline for growth/quality statistics.
    Honest,
    /// The classic settlement attack: adversarial leaders extend a
    /// **private** chain forked below the public tip, withholding it until
    /// it is strictly longer than the public chain, then releasing it to
    /// everyone — rolling back every honest block since the fork point.
    PrivateWithholding,
    /// The balance attack the paper's `H` symbols enable: when a slot has
    /// several concurrent honest leaders, the adversary shows different
    /// leaders' blocks first to different halves of the network, keeping
    /// two branches alive; its own blocks prop up whichever branch falls
    /// behind. Devastating under adversarial tie-breaking (axiom A0),
    /// blunted by a consistent tie-breaking rule (axiom A0′, Theorem 2).
    BalanceAttack,
}

impl Strategy {
    /// All built-in strategies.
    pub const ALL: [Strategy; 3] = [
        Strategy::Honest,
        Strategy::PrivateWithholding,
        Strategy::BalanceAttack,
    ];

    /// A short machine-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Honest => "honest",
            Strategy::PrivateWithholding => "private-withholding",
            Strategy::BalanceAttack => "balance-attack",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            Strategy::ALL.iter().map(Strategy::name).collect();
        assert_eq!(names.len(), Strategy::ALL.len());
        assert_eq!(Strategy::BalanceAttack.to_string(), "balance-attack");
    }
}
