//! Adversarial strategies: the open [`AdversaryStrategy`] trait and the
//! built-in implementations.
//!
//! Strategies decide (a) where adversarial leaders mint blocks (including
//! equivocation — one adversarial leader may sign many blocks in its
//! slot), (b) when each honest broadcast reaches each honest node (within
//! the Δ window), and (c) when adversarial blocks are revealed to whom.
//!
//! A strategy is pure decision logic over an abstract [`SlotContext`] —
//! it never touches an engine's storage directly. Both execution engines
//! (the reference [`Simulation`](crate::Simulation) and the columnar
//! scenario core) drive the **same** strategy objects through their own
//! context implementations, which is what makes their traces comparable
//! bit for bit. Crucially, a context's [`SlotContext::deliver_honest`]
//! clamps every requested delivery into the `[slot, slot + Δ]` window
//! (axiom A4Δ), so *no strategy, however adversarial, can break the Δ
//! axiom* — the clamp lives in the engines, not in strategy goodwill.

use std::collections::HashMap;

use crate::block::BlockId;

/// What a strategy may observe and do during one slot. Implemented by
/// each execution engine over its own storage; all ids are engine-arena
/// [`BlockId`]s, identical across engines for identical histories.
pub trait SlotContext {
    /// The current slot (1-based).
    fn slot(&self) -> usize;
    /// The network delay bound Δ.
    fn delta(&self) -> usize;
    /// Number of honest nodes (delivery recipients `0..honest_nodes`).
    fn honest_nodes(&self) -> usize;
    /// Whether adversarial stake leads the current slot.
    fn adversarial_leader(&self) -> bool;
    /// Chain height of a block.
    fn height_of(&self, block: BlockId) -> usize;
    /// Parent of a block (`None` for genesis).
    fn parent_of(&self, block: BlockId) -> Option<BlockId>;
    /// Mints an adversarial block on `parent` at the current slot.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not predate the current slot (axiom A2).
    fn mint_adversarial(&mut self, parent: BlockId) -> BlockId;
    /// Schedules delivery of an honest broadcast from the current slot to
    /// `recipient` at the end of `requested_slot` — **clamped** by the
    /// engine into `[slot, slot + Δ]` and the horizon, enforcing axiom
    /// A4Δ against any strategy.
    fn deliver_honest(&mut self, requested_slot: usize, recipient: usize, block: BlockId);
    /// Schedules delivery of an adversarial block at any slot from the
    /// current one onwards; requests beyond the horizon (or before the
    /// current slot) are dropped — the adversary may simply never
    /// deliver.
    fn deliver_adversarial(&mut self, at_slot: usize, recipient: usize, block: BlockId);
    /// [`SlotContext::deliver_honest`] to **every** honest node
    /// (`0..honest_nodes`, ascending) at the same requested slot. The
    /// default is exactly that loop; an engine may override it with one
    /// batched queue append — same deliveries, same order.
    fn deliver_honest_to_all(&mut self, requested_slot: usize, block: BlockId) {
        for r in 0..self.honest_nodes() {
            self.deliver_honest(requested_slot, r, block);
        }
    }
    /// [`SlotContext::deliver_adversarial`] to every honest node at
    /// `at_slot` — the batched counterpart of the broadcast reveal, with
    /// the same loop default and override latitude as
    /// [`SlotContext::deliver_honest_to_all`].
    fn deliver_adversarial_to_all(&mut self, at_slot: usize, block: BlockId) {
        for r in 0..self.honest_nodes() {
            self.deliver_adversarial(at_slot, r, block);
        }
    }
    /// Whether `node` is up this slot (a crashed node neither mints nor
    /// receives). Always `true` when no fault plan is active — the
    /// default keeps existing strategies and engines bit-identical in
    /// fault-free runs.
    fn node_is_live(&self, node: usize) -> bool {
        let _ = node;
        true
    }
    /// Whether `node` is live *and* not eclipsed this slot — strategies
    /// can skip routing effort toward targets whose honest channels a
    /// fault plan has cut. Pairwise partitions do not affect this.
    /// Always `true` when no fault plan is active.
    fn node_is_reachable(&self, node: usize) -> bool {
        let _ = node;
        true
    }
}

/// Per-slot adversarial decision logic (observe → act).
///
/// The engine calls [`AdversaryStrategy::on_slot`] once per slot, after
/// the slot's honest leaders have minted (`minted`, in leader order) and
/// before any delivery is applied — the *rushing* adversary sees the
/// slot's honest blocks before anyone else. The strategy mints, routes
/// honest broadcasts and reveals its own blocks through the context.
pub trait AdversaryStrategy {
    /// A short machine-friendly name for reports and tables.
    fn name(&self) -> &'static str;

    /// The largest future offset (slots beyond the current one) at which
    /// this strategy may schedule a delivery. Engines size ring buffers
    /// from it; the default covers anything within the Δ window.
    fn lookahead(&self, delta: usize) -> usize {
        delta
    }

    /// Whether [`on_slot`](AdversaryStrategy::on_slot) is a no-op on a
    /// slot with **no leaders at all** — no honest mints and no
    /// adversarial stake win. Every built-in strategy only ever acts on
    /// minted blocks or an adversarial slot win (a withholding release,
    /// in particular, is decided in the same `on_slot` that minted the
    /// overtaking private block, so it can never first become due on a
    /// leaderless slot), and engines may then skip the dispatch entirely
    /// on such slots. The default says `false` — a custom strategy with
    /// time-based behaviour (say, releasing at a fixed slot) stays
    /// correct without overriding anything.
    fn passive_without_leaders(&self) -> bool {
        false
    }

    /// One slot of adversarial activity; see the trait docs for the
    /// calling convention.
    fn on_slot(&mut self, ctx: &mut dyn SlotContext, minted: &[BlockId]);

    /// Horizon-compaction handshake. The segmented driver calls this at a
    /// **fully settled** point — every honest node on the unanimous tip
    /// `tip`, no delivery in flight — asking whether the block arena may
    /// be compacted to a single root. An implementation returns `true`
    /// only if every block reference it might still *read* equals `tip`
    /// (references that are provably overwritten before their next read
    /// may differ), and must then rebase all of them to `root`, the id
    /// `tip` will carry after compaction. Returning `false` — the default,
    /// so custom strategies are never compacted under them — vetoes
    /// compaction at this point; the driver simply tries again later.
    fn compact_to_root(&mut self, tip: BlockId, root: BlockId) -> bool {
        let _ = (tip, root);
        false
    }

    /// The scalar state a resumed execution needs, captured **after** a
    /// [`compact_to_root`](AdversaryStrategy::compact_to_root) that
    /// returned `true` (so every block reference is the root and only
    /// scalars remain). The default empty vector pairs with the default
    /// compaction veto.
    fn checkpoint_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores a freshly constructed strategy from
    /// [`checkpoint_state`](AdversaryStrategy::checkpoint_state), in an
    /// arena whose compacted root carries id 0 (= `BlockId::GENESIS`).
    fn restore_state(&mut self, state: &[u64]) {
        let _ = state;
    }
}

/// Raises `best` to `candidate` when the candidate's chain is strictly
/// higher — the public-tip bookkeeping every built-in strategy shares.
fn raise_best(ctx: &dyn SlotContext, best: &mut BlockId, candidate: BlockId) {
    if ctx.height_of(candidate) > ctx.height_of(*best) {
        *best = candidate;
    }
}

/// Strategy `Honest`: adversarial leaders behave exactly like honest
/// ones — extend the public longest chain, broadcast immediately, deliver
/// honest broadcasts at once. The baseline for growth/quality statistics.
///
/// Block heights are immutable once minted, so the strategy caches the
/// height alongside each held tip instead of re-querying the context
/// every slot — identical decisions, a fraction of the dyn-dispatch
/// traffic on the engines' hot loops.
#[derive(Debug, Clone)]
pub struct HonestStrategy {
    public_best: BlockId,
    public_height: usize,
}

impl HonestStrategy {
    /// A fresh instance (public tip at genesis).
    pub fn new() -> HonestStrategy {
        HonestStrategy {
            public_best: BlockId::GENESIS,
            public_height: 0,
        }
    }
}

impl Default for HonestStrategy {
    fn default() -> HonestStrategy {
        HonestStrategy::new()
    }
}

impl AdversaryStrategy for HonestStrategy {
    fn name(&self) -> &'static str {
        "honest"
    }

    fn passive_without_leaders(&self) -> bool {
        true // acts only on minted blocks and adversarial slot wins
    }

    fn on_slot(&mut self, ctx: &mut dyn SlotContext, minted: &[BlockId]) {
        // Adversarial leaders extend the best pre-slot public block (a
        // chain may not contain two blocks of the same slot, axiom A2).
        if ctx.adversarial_leader() {
            let slot = ctx.slot();
            let b = ctx.mint_adversarial(self.public_best);
            ctx.deliver_adversarial_to_all(slot, b);
            // The new block sits one above the previous public best.
            self.public_best = b;
            self.public_height += 1;
        }
        // Honest broadcasts: delivered to everyone immediately.
        for &b in minted {
            let slot = ctx.slot();
            let h = ctx.height_of(b);
            if h > self.public_height {
                self.public_best = b;
                self.public_height = h;
            }
            ctx.deliver_honest_to_all(slot, b);
        }
    }

    fn compact_to_root(&mut self, tip: BlockId, root: BlockId) -> bool {
        if self.public_best != tip {
            return false;
        }
        self.public_best = root;
        true
    }

    fn checkpoint_state(&self) -> Vec<u64> {
        vec![self.public_height as u64]
    }

    fn restore_state(&mut self, state: &[u64]) {
        self.public_best = BlockId::GENESIS; // the compacted root's id
        self.public_height = state[0] as usize;
    }
}

/// Strategy `PrivateWithholding`: grow a private chain, release when it
/// overtakes the public one — the classic settlement attack, rolling back
/// every honest block since the fork point.
/// Block heights never change after minting, so the strategy tracks the
/// heights of its two held tips locally — bit-identical decisions with a
/// single dyn-context call on slots where nothing happens, which is what
/// the columnar engine's quiet-slot fast path leans on.
#[derive(Debug, Clone)]
pub struct WithholdingStrategy {
    private_tip: BlockId,
    public_best: BlockId,
    private_height: usize,
    public_height: usize,
}

impl WithholdingStrategy {
    /// A fresh instance (both chains at genesis).
    pub fn new() -> WithholdingStrategy {
        WithholdingStrategy {
            private_tip: BlockId::GENESIS,
            public_best: BlockId::GENESIS,
            private_height: 0,
            public_height: 0,
        }
    }
}

impl Default for WithholdingStrategy {
    fn default() -> WithholdingStrategy {
        WithholdingStrategy::new()
    }
}

impl AdversaryStrategy for WithholdingStrategy {
    fn name(&self) -> &'static str {
        "private-withholding"
    }

    fn passive_without_leaders(&self) -> bool {
        true // acts only on minted blocks and adversarial slot wins
    }

    fn on_slot(&mut self, ctx: &mut dyn SlotContext, minted: &[BlockId]) {
        // Adversarial minting first, on pre-slot blocks only (axiom A2
        // forbids extending a block of the same slot).
        if ctx.adversarial_leader() {
            // Restart the private branch from the public tip once it has
            // fallen irrecoverably behind (it was overtaken and the gap
            // keeps growing).
            if self.private_height + 2 < self.public_height {
                self.private_tip = self.public_best;
                self.private_height = self.public_height;
            }
            self.private_tip = ctx.mint_adversarial(self.private_tip);
            self.private_height += 1;
        }
        // Honest broadcasts flow normally (delayed to the edge of the Δ
        // window — the adversary always slows honest progress; the minter
        // already adopted its own block at mint time, so the Δ delay only
        // bites the *other* honest nodes).
        for &b in minted {
            let slot = ctx.slot();
            let delta = ctx.delta();
            let h = ctx.height_of(b);
            if h > self.public_height {
                self.public_best = b;
                self.public_height = h;
            }
            ctx.deliver_honest_to_all(slot + delta, b);
        }
        // Release when strictly longer than everything public (the rushing
        // adversary has already seen this slot's honest blocks).
        if self.private_height > self.public_height {
            let slot = ctx.slot();
            let released = self.private_tip;
            ctx.deliver_adversarial_to_all(slot, released);
            self.public_best = released;
            self.public_height = self.private_height;
        }
    }

    fn compact_to_root(&mut self, tip: BlockId, root: BlockId) -> bool {
        // The private tip is readable only while the branch is not
        // irrecoverably behind; a stale branch is restarted from the
        // public tip before its next read, so its reference may differ
        // from `tip` without vetoing compaction.
        let private_stale = self.private_height + 2 < self.public_height;
        if self.public_best != tip || (!private_stale && self.private_tip != tip) {
            return false;
        }
        self.public_best = root;
        // When stale this is a dead store (the restart overwrites it
        // before any read); rebased anyway so no pre-compaction id
        // lingers. `private_height` is deliberately left alone: the
        // branch must *stay* stale so the restart fires at the next
        // adversarial slot from the public height of *that* moment,
        // exactly as in an uncompacted run — folding the restart in here
        // would pin the branch to today's public height even though
        // honest mints may raise it before the next adversarial slot.
        self.private_tip = root;
        true
    }

    fn checkpoint_state(&self) -> Vec<u64> {
        vec![self.private_height as u64, self.public_height as u64]
    }

    fn restore_state(&mut self, state: &[u64]) {
        self.private_tip = BlockId::GENESIS; // the compacted root's id
        self.public_best = BlockId::GENESIS;
        self.private_height = state[0] as usize;
        self.public_height = state[1] as usize;
    }
}

/// Strategy `BalanceAttack`: keep two branches alive by routing the
/// blocks of concurrent honest leaders to different halves of the network
/// first, propping up the trailing branch with adversarial blocks.
/// Devastating under adversarial tie-breaking (axiom A0), blunted by a
/// consistent rule (axiom A0′, Theorem 2).
#[derive(Debug, Clone)]
pub struct BalanceStrategy {
    branch_tips: [BlockId; 2],
    branch_of: HashMap<BlockId, usize>,
    public_best: BlockId,
}

impl BalanceStrategy {
    /// A fresh instance (both branch tips at genesis).
    pub fn new() -> BalanceStrategy {
        BalanceStrategy {
            branch_tips: [BlockId::GENESIS; 2],
            branch_of: HashMap::from([(BlockId::GENESIS, 0)]),
            public_best: BlockId::GENESIS,
        }
    }
}

impl Default for BalanceStrategy {
    fn default() -> BalanceStrategy {
        BalanceStrategy::new()
    }
}

impl AdversaryStrategy for BalanceStrategy {
    fn name(&self) -> &'static str {
        "balance-attack"
    }

    fn passive_without_leaders(&self) -> bool {
        true // acts only on minted blocks and adversarial slot wins
    }

    fn on_slot(&mut self, ctx: &mut dyn SlotContext, minted: &[BlockId]) {
        let slot = ctx.slot();
        let delta = ctx.delta();
        let nodes = ctx.honest_nodes();
        let half = nodes / 2;
        let group = |branch: usize| -> std::ops::Range<usize> {
            if branch == 0 {
                0..half
            } else {
                half..nodes
            }
        };
        // Adversarial leaders prop up whichever branch trails, minting on
        // the *pre-slot* branch tip (axiom A2 forbids same-slot parents).
        // Each entry carries its honesty flag for the routing below.
        let mut blocks_of_branch: [Vec<(BlockId, bool)>; 2] = [Vec::new(), Vec::new()];
        if ctx.adversarial_leader() {
            let trailing =
                if ctx.height_of(self.branch_tips[0]) <= ctx.height_of(self.branch_tips[1]) {
                    0
                } else {
                    1
                };
            let b = ctx.mint_adversarial(self.branch_tips[trailing]);
            self.branch_of.insert(b, trailing);
            blocks_of_branch[trailing].push((b, false));
        }
        // Assign each honest block to its parent's branch; when several
        // honest leaders minted on the same parent (a tie the adversary
        // engineered), split them across branches.
        let mut assigned_this_slot = [false, false];
        for &b in minted {
            let parent = ctx.parent_of(b).expect("minted blocks have parents");
            let mut branch = *self.branch_of.get(&parent).unwrap_or(&0);
            if assigned_this_slot[branch] && !assigned_this_slot[1 - branch] {
                branch = 1 - branch;
            }
            assigned_this_slot[branch] = true;
            self.branch_of.insert(b, branch);
            blocks_of_branch[branch].push((b, true));
            raise_best(ctx, &mut self.public_best, b);
        }
        // Update branch tips with everything minted this slot.
        for branch in [0usize, 1] {
            for &(b, _) in &blocks_of_branch[branch] {
                if ctx.height_of(b) > ctx.height_of(self.branch_tips[branch]) {
                    self.branch_tips[branch] = b;
                }
                raise_best(ctx, &mut self.public_best, b);
            }
        }
        // Delivery: same-branch group receives its branch's blocks first
        // (winning first-seen ties); the other group receives them as late
        // as the Δ window allows, after its own branch's blocks.
        for branch in [0usize, 1] {
            for &(b, honest) in &blocks_of_branch[branch] {
                for r in group(branch) {
                    if honest {
                        ctx.deliver_honest(slot, r, b);
                    } else {
                        ctx.deliver_adversarial(slot, r, b);
                    }
                }
            }
        }
        for branch in [0usize, 1] {
            for &(b, honest) in &blocks_of_branch[branch] {
                for r in group(1 - branch) {
                    if honest {
                        // A minter may sit in this cross group (its block
                        // is routed by its parent's branch, not by the
                        // minter's half); it already adopted its own block
                        // at mint time, so the Δ delay cannot stall it.
                        ctx.deliver_honest(slot + delta, r, b);
                    } else {
                        ctx.deliver_adversarial(slot + delta, r, b);
                    }
                }
            }
        }
    }
}

/// The built-in adversarial strategies — a convenience factory over the
/// open [`AdversaryStrategy`] trait (kept as a `Copy` enum so it can ride
/// inside [`SimConfig`](crate::SimConfig); the execution engines only
/// ever see the trait object it [instantiates](Strategy::instantiate)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Adversarial leaders behave exactly like honest ones: extend the
    /// public longest chain, broadcast immediately, deliver honest
    /// broadcasts at once. The baseline for growth/quality statistics.
    Honest,
    /// The classic settlement attack: adversarial leaders extend a
    /// **private** chain forked below the public tip, withholding it until
    /// it is strictly longer than the public chain, then releasing it to
    /// everyone — rolling back every honest block since the fork point.
    PrivateWithholding,
    /// The balance attack the paper's `H` symbols enable: when a slot has
    /// several concurrent honest leaders, the adversary shows different
    /// leaders' blocks first to different halves of the network, keeping
    /// two branches alive; its own blocks prop up whichever branch falls
    /// behind. Devastating under adversarial tie-breaking (axiom A0),
    /// blunted by a consistent tie-breaking rule (axiom A0′, Theorem 2).
    BalanceAttack,
}

impl Strategy {
    /// All built-in strategies.
    pub const ALL: [Strategy; 3] = [
        Strategy::Honest,
        Strategy::PrivateWithholding,
        Strategy::BalanceAttack,
    ];

    /// A short machine-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Honest => "honest",
            Strategy::PrivateWithholding => "private-withholding",
            Strategy::BalanceAttack => "balance-attack",
        }
    }

    /// A fresh strategy object for one execution. This is the only place
    /// the engines consult the enum; everything downstream of it runs
    /// against the [`AdversaryStrategy`] trait.
    pub fn instantiate(&self) -> Box<dyn AdversaryStrategy> {
        match self {
            Strategy::Honest => Box::new(HonestStrategy::new()),
            Strategy::PrivateWithholding => Box::new(WithholdingStrategy::new()),
            Strategy::BalanceAttack => Box::new(BalanceStrategy::new()),
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            Strategy::ALL.iter().map(Strategy::name).collect();
        assert_eq!(names.len(), Strategy::ALL.len());
        assert_eq!(Strategy::BalanceAttack.to_string(), "balance-attack");
    }

    #[test]
    fn instantiate_matches_enum_names() {
        for s in Strategy::ALL {
            assert_eq!(s.instantiate().name(), s.name());
            assert_eq!(s.instantiate().lookahead(3), 3);
        }
    }
}
