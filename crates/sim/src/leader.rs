//! Leader election.
//!
//! Ouroboros-family protocols elect leaders with a verifiable random
//! function evaluated against the stake distribution: node `i` with
//! relative stake `α_i` leads a slot independently with probability
//! `φ_f(α_i) = 1 − (1 − f)^{α_i}` — the *independent aggregation* property
//! that makes the per-slot outcome a product of per-node Bernoulli draws.
//! The analysis never inspects VRF internals, only the induced per-slot
//! classification, so we sample the Bernoulli draws directly from a seeded
//! PRNG. The classification matches paper Definitions 1 and 20:
//!
//! * no leader → `⊥`;
//! * at least one adversarial leader → `A`;
//! * exactly one (honest) leader → `h`;
//! * several honest leaders, no adversarial → `H`.

use multihonest_chars::{SemiString, SemiSymbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Validates a heterogeneous stake partition: every honest stake is
/// non-negative and the stakes plus the adversarial stake sum to 1.
///
/// The sum is computed with **compensated (Kahan) summation** and checked
/// against a tolerance that scales with the profile size: a naive f64 sum
/// of `n` normalized weights carries `O(n·ε)` rounding, so for large
/// profiles (e.g. a 10⁴-node Zipf stake distribution) an absolute `1e-9`
/// check on the naive sum can spuriously reject stakes that *do*
/// partition the total. This helper is the single validation path shared
/// by [`LeaderSchedule::sample_weighted`] and the columnar schedule's
/// counterpart, so the two can never drift apart again.
///
/// # Panics
///
/// Panics if a stake is negative or the compensated total differs from 1
/// beyond the size-scaled tolerance.
pub fn validate_stake_partition(honest_stakes: &[f64], adversarial_stake: f64) {
    assert!(
        honest_stakes.iter().all(|&s| s >= 0.0),
        "stakes are non-negative"
    );
    // Kahan summation: the compensated error is O(ε), independent of n.
    let mut sum = adversarial_stake;
    let mut c = 0.0f64;
    for &s in honest_stakes {
        let y = s - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    // The target total is 1, so this is a relative tolerance too: 1e-9
    // for algorithmic mistakes (stakes that genuinely don't partition),
    // plus an n-scaled ulp allowance for the rounding already baked into
    // the caller's normalization of the individual stakes.
    let tolerance = 1e-9 + 4.0 * honest_stakes.len() as f64 * f64::EPSILON;
    assert!(
        (sum - 1.0).abs() <= tolerance,
        "stakes must partition the total (got {sum})"
    );
}

/// The leaders of a single slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotLeaders {
    /// Indices of honest leader nodes.
    pub honest: Vec<usize>,
    /// Whether any adversarial stake led this slot (the adversary pools
    /// its stake, so a single flag suffices: one adversarial leader can
    /// sign arbitrarily many equivocating blocks anyway).
    pub adversarial: bool,
}

impl SlotLeaders {
    /// The characteristic-string classification of this slot.
    pub fn classify(&self) -> SemiSymbol {
        if self.adversarial {
            SemiSymbol::Adversarial
        } else {
            match self.honest.len() {
                0 => SemiSymbol::Empty,
                1 => SemiSymbol::UniqueHonest,
                _ => SemiSymbol::MultiHonest,
            }
        }
    }
}

/// The full leader schedule of an execution.
///
/// The schedule is drawn up-front: the paper's model hands the adversary
/// full knowledge of the future schedule ("public leader schedules",
/// Section 2.2), which only strengthens the adversary.
#[derive(Debug, Clone)]
pub struct LeaderSchedule {
    slots: Vec<SlotLeaders>,
}

impl LeaderSchedule {
    /// Samples a schedule for `slots` slots.
    ///
    /// `honest_nodes` honest parties share the honest stake equally; the
    /// adversary holds relative stake `adversarial_stake ∈ [0, 1)`. The
    /// active-slot coefficient `f ∈ (0, 1)` fixes
    /// `Pr[some leader in a slot] = f` via `φ_f`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters leave their documented ranges or
    /// `honest_nodes == 0`.
    pub fn sample(
        honest_nodes: usize,
        adversarial_stake: f64,
        active_slot_coeff: f64,
        slots: usize,
        seed: u64,
    ) -> LeaderSchedule {
        assert!(honest_nodes > 0, "need at least one honest node");
        let honest_share = (1.0 - adversarial_stake) / honest_nodes as f64;
        LeaderSchedule::sample_weighted(
            &vec![honest_share; honest_nodes],
            adversarial_stake,
            active_slot_coeff,
            slots,
            seed,
        )
    }

    /// Samples a schedule with **heterogeneous** honest stake: node `i`
    /// holds absolute relative stake `honest_stakes[i]`, leading each slot
    /// independently with probability `φ_f(honest_stakes[i])`. The stakes
    /// plus the adversarial stake must partition the total (sum to 1).
    ///
    /// [`LeaderSchedule::sample`] is the uniform special case and draws
    /// **identically** for equal stakes: the per-node Bernoulli draws
    /// happen in node order, then the adversarial draw, per slot.
    ///
    /// # Panics
    ///
    /// Panics if the parameters leave their documented ranges, a stake is
    /// negative, or the stakes do not sum (with the adversary) to 1.
    pub fn sample_weighted(
        honest_stakes: &[f64],
        adversarial_stake: f64,
        active_slot_coeff: f64,
        slots: usize,
        seed: u64,
    ) -> LeaderSchedule {
        assert!(!honest_stakes.is_empty(), "need at least one honest node");
        assert!(
            (0.0..1.0).contains(&adversarial_stake),
            "adversarial stake in [0, 1)"
        );
        assert!(
            active_slot_coeff > 0.0 && active_slot_coeff < 1.0,
            "active slot coefficient in (0, 1)"
        );
        validate_stake_partition(honest_stakes, adversarial_stake);
        let mut rng = StdRng::seed_from_u64(seed);
        let phi = |alpha: f64| 1.0 - (1.0 - active_slot_coeff).powf(alpha);
        let p_honest: Vec<f64> = honest_stakes.iter().map(|&s| phi(s)).collect();
        let p_adv = phi(adversarial_stake);
        let mut out = Vec::with_capacity(slots);
        for _ in 0..slots {
            let mut leaders = SlotLeaders::default();
            for (node, &p) in p_honest.iter().enumerate() {
                if rng.gen::<f64>() < p {
                    leaders.honest.push(node);
                }
            }
            leaders.adversarial = rng.gen::<f64>() < p_adv;
            out.push(leaders);
        }
        LeaderSchedule { slots: out }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when the schedule covers no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The leaders of `slot` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is 0 or exceeds the schedule length.
    pub fn leaders(&self, slot: usize) -> &SlotLeaders {
        assert!(
            slot >= 1 && slot <= self.slots.len(),
            "slot {slot} out of range"
        );
        &self.slots[slot - 1]
    }

    /// The semi-synchronous characteristic string of the schedule.
    pub fn characteristic_string(&self) -> SemiString {
        self.slots.iter().map(SlotLeaders::classify).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let s = SlotLeaders {
            honest: vec![],
            adversarial: false,
        };
        assert_eq!(s.classify(), SemiSymbol::Empty);
        let s = SlotLeaders {
            honest: vec![3],
            adversarial: false,
        };
        assert_eq!(s.classify(), SemiSymbol::UniqueHonest);
        let s = SlotLeaders {
            honest: vec![1, 2],
            adversarial: false,
        };
        assert_eq!(s.classify(), SemiSymbol::MultiHonest);
        let s = SlotLeaders {
            honest: vec![1],
            adversarial: true,
        };
        assert_eq!(s.classify(), SemiSymbol::Adversarial);
    }

    #[test]
    fn schedule_is_deterministic_in_seed() {
        let a = LeaderSchedule::sample(5, 0.2, 0.1, 200, 9);
        let b = LeaderSchedule::sample(5, 0.2, 0.1, 200, 9);
        assert_eq!(a.characteristic_string(), b.characteristic_string());
        let c = LeaderSchedule::sample(5, 0.2, 0.1, 200, 10);
        assert_ne!(a.characteristic_string(), c.characteristic_string());
    }

    #[test]
    fn frequencies_match_phi() {
        let f = 0.2;
        let adv = 0.3;
        let nodes = 4;
        let slots = 200_000;
        let sched = LeaderSchedule::sample(nodes, adv, f, slots, 31);
        let w = sched.characteristic_string();
        // Pr[slot has any leader]: 1 − (1−f)^{total stake = 1} = f.
        let active =
            w.symbols().iter().filter(|s| !s.is_empty_slot()).count() as f64 / slots as f64;
        assert!((active - f).abs() < 0.01, "active = {active}");
        // Pr[A] = φ(adv stake).
        let p_adv = 1.0 - (1.0 - f).powf(adv);
        let fa = w.symbols().iter().filter(|s| s.is_adversarial()).count() as f64 / slots as f64;
        assert!((fa - p_adv).abs() < 0.01, "fa = {fa} vs {p_adv}");
    }

    #[test]
    fn aggregate_independence() {
        // φ_f's defining property: total leadership probability depends
        // only on total stake, not on how it is split among nodes.
        let f = 0.15;
        let slots = 200_000;
        let few = LeaderSchedule::sample(2, 0.0, f, slots, 1).characteristic_string();
        let many = LeaderSchedule::sample(20, 0.0, f, slots, 2).characteristic_string();
        let active = |w: &SemiString| {
            w.symbols().iter().filter(|s| !s.is_empty_slot()).count() as f64 / slots as f64
        };
        assert!((active(&few) - f).abs() < 0.01);
        assert!((active(&many) - f).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one honest node")]
    fn zero_honest_nodes_rejected() {
        let _ = LeaderSchedule::sample(0, 0.2, 0.1, 10, 1);
    }

    #[test]
    fn large_normalized_profiles_validate() {
        // Regression: the old validation summed naively and checked an
        // absolute 1e-9, which large normalized profiles can exceed
        // through accumulated rounding alone. A 10⁴-node Zipf-like
        // profile must sample without a stake-sum panic.
        let n = 10_000usize;
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let sum: f64 = weights.iter().sum();
        let stakes: Vec<f64> = weights.iter().map(|&w| 0.7 * w / sum).collect();
        let sched = LeaderSchedule::sample_weighted(&stakes, 0.3, 0.25, 3, 7);
        assert_eq!(sched.len(), 3);
        // The n-scaled tolerance also covers a million-entry profile.
        validate_stake_partition(&vec![0.6 / 1e6; 1_000_000], 0.4);
    }

    #[test]
    #[should_panic(expected = "partition the total")]
    fn genuinely_broken_partition_still_rejected() {
        validate_stake_partition(&[0.35, 0.35], 0.3 - 1e-3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_stake_rejected() {
        validate_stake_partition(&[0.8, -0.1], 0.3);
    }
}
