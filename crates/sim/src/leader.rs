//! Leader election.
//!
//! Ouroboros-family protocols elect leaders with a verifiable random
//! function evaluated against the stake distribution: node `i` with
//! relative stake `α_i` leads a slot independently with probability
//! `φ_f(α_i) = 1 − (1 − f)^{α_i}` — the *independent aggregation* property
//! that makes the per-slot outcome a product of per-node Bernoulli draws.
//! The analysis never inspects VRF internals, only the induced per-slot
//! classification, so we sample the Bernoulli draws directly from a seeded
//! PRNG. The classification matches paper Definitions 1 and 20:
//!
//! * no leader → `⊥`;
//! * at least one adversarial leader → `A`;
//! * exactly one (honest) leader → `h`;
//! * several honest leaders, no adversarial → `H`.

use multihonest_chars::{SemiString, SemiSymbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The leaders of a single slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotLeaders {
    /// Indices of honest leader nodes.
    pub honest: Vec<usize>,
    /// Whether any adversarial stake led this slot (the adversary pools
    /// its stake, so a single flag suffices: one adversarial leader can
    /// sign arbitrarily many equivocating blocks anyway).
    pub adversarial: bool,
}

impl SlotLeaders {
    /// The characteristic-string classification of this slot.
    pub fn classify(&self) -> SemiSymbol {
        if self.adversarial {
            SemiSymbol::Adversarial
        } else {
            match self.honest.len() {
                0 => SemiSymbol::Empty,
                1 => SemiSymbol::UniqueHonest,
                _ => SemiSymbol::MultiHonest,
            }
        }
    }
}

/// The full leader schedule of an execution.
///
/// The schedule is drawn up-front: the paper's model hands the adversary
/// full knowledge of the future schedule ("public leader schedules",
/// Section 2.2), which only strengthens the adversary.
#[derive(Debug, Clone)]
pub struct LeaderSchedule {
    slots: Vec<SlotLeaders>,
}

impl LeaderSchedule {
    /// Samples a schedule for `slots` slots.
    ///
    /// `honest_nodes` honest parties share the honest stake equally; the
    /// adversary holds relative stake `adversarial_stake ∈ [0, 1)`. The
    /// active-slot coefficient `f ∈ (0, 1)` fixes
    /// `Pr[some leader in a slot] = f` via `φ_f`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters leave their documented ranges or
    /// `honest_nodes == 0`.
    pub fn sample(
        honest_nodes: usize,
        adversarial_stake: f64,
        active_slot_coeff: f64,
        slots: usize,
        seed: u64,
    ) -> LeaderSchedule {
        assert!(honest_nodes > 0, "need at least one honest node");
        let honest_share = (1.0 - adversarial_stake) / honest_nodes as f64;
        LeaderSchedule::sample_weighted(
            &vec![honest_share; honest_nodes],
            adversarial_stake,
            active_slot_coeff,
            slots,
            seed,
        )
    }

    /// Samples a schedule with **heterogeneous** honest stake: node `i`
    /// holds absolute relative stake `honest_stakes[i]`, leading each slot
    /// independently with probability `φ_f(honest_stakes[i])`. The stakes
    /// plus the adversarial stake must partition the total (sum to 1).
    ///
    /// [`LeaderSchedule::sample`] is the uniform special case and draws
    /// **identically** for equal stakes: the per-node Bernoulli draws
    /// happen in node order, then the adversarial draw, per slot.
    ///
    /// # Panics
    ///
    /// Panics if the parameters leave their documented ranges, a stake is
    /// negative, or the stakes do not sum (with the adversary) to 1.
    pub fn sample_weighted(
        honest_stakes: &[f64],
        adversarial_stake: f64,
        active_slot_coeff: f64,
        slots: usize,
        seed: u64,
    ) -> LeaderSchedule {
        assert!(!honest_stakes.is_empty(), "need at least one honest node");
        assert!(
            (0.0..1.0).contains(&adversarial_stake),
            "adversarial stake in [0, 1)"
        );
        assert!(
            active_slot_coeff > 0.0 && active_slot_coeff < 1.0,
            "active slot coefficient in (0, 1)"
        );
        assert!(
            honest_stakes.iter().all(|&s| s >= 0.0),
            "stakes are non-negative"
        );
        let total: f64 = honest_stakes.iter().sum::<f64>() + adversarial_stake;
        assert!(
            (total - 1.0).abs() < 1e-9,
            "stakes must partition the total (got {total})"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let phi = |alpha: f64| 1.0 - (1.0 - active_slot_coeff).powf(alpha);
        let p_honest: Vec<f64> = honest_stakes.iter().map(|&s| phi(s)).collect();
        let p_adv = phi(adversarial_stake);
        let mut out = Vec::with_capacity(slots);
        for _ in 0..slots {
            let mut leaders = SlotLeaders::default();
            for (node, &p) in p_honest.iter().enumerate() {
                if rng.gen::<f64>() < p {
                    leaders.honest.push(node);
                }
            }
            leaders.adversarial = rng.gen::<f64>() < p_adv;
            out.push(leaders);
        }
        LeaderSchedule { slots: out }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when the schedule covers no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The leaders of `slot` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is 0 or exceeds the schedule length.
    pub fn leaders(&self, slot: usize) -> &SlotLeaders {
        assert!(
            slot >= 1 && slot <= self.slots.len(),
            "slot {slot} out of range"
        );
        &self.slots[slot - 1]
    }

    /// The semi-synchronous characteristic string of the schedule.
    pub fn characteristic_string(&self) -> SemiString {
        self.slots.iter().map(SlotLeaders::classify).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let s = SlotLeaders {
            honest: vec![],
            adversarial: false,
        };
        assert_eq!(s.classify(), SemiSymbol::Empty);
        let s = SlotLeaders {
            honest: vec![3],
            adversarial: false,
        };
        assert_eq!(s.classify(), SemiSymbol::UniqueHonest);
        let s = SlotLeaders {
            honest: vec![1, 2],
            adversarial: false,
        };
        assert_eq!(s.classify(), SemiSymbol::MultiHonest);
        let s = SlotLeaders {
            honest: vec![1],
            adversarial: true,
        };
        assert_eq!(s.classify(), SemiSymbol::Adversarial);
    }

    #[test]
    fn schedule_is_deterministic_in_seed() {
        let a = LeaderSchedule::sample(5, 0.2, 0.1, 200, 9);
        let b = LeaderSchedule::sample(5, 0.2, 0.1, 200, 9);
        assert_eq!(a.characteristic_string(), b.characteristic_string());
        let c = LeaderSchedule::sample(5, 0.2, 0.1, 200, 10);
        assert_ne!(a.characteristic_string(), c.characteristic_string());
    }

    #[test]
    fn frequencies_match_phi() {
        let f = 0.2;
        let adv = 0.3;
        let nodes = 4;
        let slots = 200_000;
        let sched = LeaderSchedule::sample(nodes, adv, f, slots, 31);
        let w = sched.characteristic_string();
        // Pr[slot has any leader]: 1 − (1−f)^{total stake = 1} = f.
        let active =
            w.symbols().iter().filter(|s| !s.is_empty_slot()).count() as f64 / slots as f64;
        assert!((active - f).abs() < 0.01, "active = {active}");
        // Pr[A] = φ(adv stake).
        let p_adv = 1.0 - (1.0 - f).powf(adv);
        let fa = w.symbols().iter().filter(|s| s.is_adversarial()).count() as f64 / slots as f64;
        assert!((fa - p_adv).abs() < 0.01, "fa = {fa} vs {p_adv}");
    }

    #[test]
    fn aggregate_independence() {
        // φ_f's defining property: total leadership probability depends
        // only on total stake, not on how it is split among nodes.
        let f = 0.15;
        let slots = 200_000;
        let few = LeaderSchedule::sample(2, 0.0, f, slots, 1).characteristic_string();
        let many = LeaderSchedule::sample(20, 0.0, f, slots, 2).characteristic_string();
        let active = |w: &SemiString| {
            w.symbols().iter().filter(|s| !s.is_empty_slot()).count() as f64 / slots as f64
        };
        assert!((active(&few) - f).abs() < 0.01);
        assert!((active(&many) - f).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one honest node")]
    fn zero_honest_nodes_rejected() {
        let _ = LeaderSchedule::sample(0, 0.2, 0.1, 10, 1);
    }
}
