//! The Δ-synchronous network with a rushing adversary.
//!
//! The abstract model (axioms A0/A4Δ) grants the adversary three powers
//! over message delivery, all realised here:
//!
//! * **rushing** — the adversary observes honest broadcasts of a slot
//!   before anyone else and may inject its own messages ahead of them;
//! * **per-recipient scheduling** — each honest broadcast may reach each
//!   recipient at any point within `Δ` slots of its broadcast (with
//!   `Δ = 0`, by the end of the broadcast slot);
//! * **selective injection** — adversarial blocks are delivered to chosen
//!   recipients at chosen times (or never).
//!
//! The network *enforces* the Δ bound on honest broadcasts: scheduling
//! requests beyond the window are clamped, so no strategy can break axiom
//! A4Δ. Deliveries within a slot are applied in insertion order, which is
//! exactly the ordering power of axiom A0.

use crate::block::BlockId;

/// A delivery queue for a fixed number of recipients over a fixed horizon.
#[derive(Debug, Clone)]
pub struct Network {
    delta: usize,
    slots: usize,
    /// `queue[t]` = deliveries applied at the end of slot `t+1` (0-based
    /// internally), in order.
    queue: Vec<Vec<(usize, BlockId)>>,
}

impl Network {
    /// Creates a network with delay bound `delta` over `slots` slots.
    pub fn new(delta: usize, slots: usize) -> Network {
        Network {
            delta,
            slots,
            queue: vec![Vec::new(); slots],
        }
    }

    /// The delay bound `Δ`.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// Schedules delivery of `block` to `recipient` at the end of slot
    /// `at_slot` (clamped into `[broadcast_slot, broadcast_slot + Δ]` and
    /// into the horizon). Used for honest broadcasts — the Δ bound is
    /// enforced here.
    pub fn schedule_honest(
        &mut self,
        broadcast_slot: usize,
        requested_slot: usize,
        recipient: usize,
        block: BlockId,
    ) {
        let latest = (broadcast_slot + self.delta).min(self.slots);
        let at = requested_slot.clamp(broadcast_slot, latest);
        self.queue[at - 1].push((recipient, block));
    }

    /// Schedules delivery of an adversarial block at any future slot ≥ its
    /// creation; the adversary is free to never deliver, deliver late, or
    /// deliver to a subset. Requests beyond the horizon are dropped
    /// (equivalent to never delivering).
    pub fn schedule_adversarial(&mut self, at_slot: usize, recipient: usize, block: BlockId) {
        if at_slot >= 1 && at_slot <= self.slots {
            self.queue[at_slot - 1].push((recipient, block));
        }
    }

    /// Drains the deliveries due at the end of `slot`, in scheduled order.
    pub fn due(&mut self, slot: usize) -> Vec<(usize, BlockId)> {
        std::mem::take(&mut self.queue[slot - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_delivery_is_clamped_to_delta() {
        let mut net = Network::new(2, 10);
        let b = BlockId::GENESIS;
        // Requested far beyond the window: clamped to slot 3 + 2 = 5.
        net.schedule_honest(3, 9, 0, b);
        assert!(net.due(5).contains(&(0, b)));
        // Requested before the broadcast: clamped up to the broadcast slot.
        net.schedule_honest(4, 1, 1, b);
        assert!(net.due(4).contains(&(1, b)));
    }

    #[test]
    fn delta_zero_means_same_slot() {
        let mut net = Network::new(0, 5);
        net.schedule_honest(2, 4, 0, BlockId::GENESIS);
        assert_eq!(net.due(2), vec![(0, BlockId::GENESIS)]);
        assert!(net.due(4).is_empty());
    }

    #[test]
    fn adversarial_delivery_is_unconstrained_within_horizon() {
        let mut net = Network::new(0, 5);
        net.schedule_adversarial(5, 2, BlockId::GENESIS);
        net.schedule_adversarial(7, 2, BlockId::GENESIS); // dropped silently
        assert_eq!(net.due(5), vec![(2, BlockId::GENESIS)]);
    }

    #[test]
    fn order_is_preserved_within_a_slot() {
        let mut net = Network::new(1, 5);
        let a = BlockId(1);
        let b = BlockId(2);
        net.schedule_adversarial(3, 0, a); // rushing: injected first
        net.schedule_honest(3, 3, 0, b);
        assert_eq!(net.due(3), vec![(0, a), (0, b)]);
    }
}
