//! Execution metrics: chain growth, chain quality, divergence.
//!
//! Metrics are **streamed**: both execution engines (the reference
//! [`Simulation`](crate::Simulation) and the columnar scenario core) fold
//! their per-slot observations through a [`MetricsAccumulator`] as the run
//! progresses, so finishing a million-slot execution never requires
//! holding `O(slots)` metric buffers. Callers that want their own per-slot
//! hooks (progress bars, histogram sinks, trace writers) implement
//! [`MetricsSink`] and receive the same observation stream the accumulator
//! does.

/// A per-slot observation stream from an execution engine.
///
/// Implementations must not assume anything beyond the documented call
/// order: `on_slot` fires exactly once per simulated slot, in increasing
/// slot order, after that slot's deliveries have been applied;
/// `on_rollback` fires zero or more times per slot, *before* that slot's
/// `on_slot` call, once per honest node that switched onto a
/// non-descendant chain.
///
/// The unit type `()` is the no-op sink.
pub trait MetricsSink {
    /// One honest node rolled its chain back at `slot`: its previous tip
    /// (height `old_height`) was abandoned for a non-descendant chain of
    /// height `new_height`.
    fn on_rollback(&mut self, slot: usize, old_height: usize, new_height: usize) {
        let _ = (slot, old_height, new_height);
    }

    /// End-of-slot summary: the number of distinct honest tips, the best
    /// (maximum) height among them, and the largest slot divergence
    /// between any two of them observed at this boundary.
    fn on_slot(
        &mut self,
        slot: usize,
        distinct_tips: usize,
        best_height: usize,
        divergence: usize,
    ) {
        let _ = (slot, distinct_tips, best_height, divergence);
    }

    /// Fault injection parked a delivery for `recipient` at `slot`,
    /// deferring it to `deferred_to` at the earliest. Fires zero or more
    /// times per slot, before that slot's `on_slot`, and only when a
    /// non-empty fault plan is active — fault-free runs never see it.
    fn on_fault_deferral(&mut self, slot: usize, recipient: usize, deferred_to: usize) {
        let _ = (slot, recipient, deferred_to);
    }

    /// A margin observation from a streaming margin channel (e.g. the
    /// columnar fork pipeline): at the execution slot `slot`, the reach
    /// `ρ` and relative margin `µ` of the Δ-reduced characteristic string
    /// consumed so far. Fires once per *reduced* symbol, at most `Δ` slots
    /// after the symbol's originating slot (the reduction's emission lag).
    fn on_margin(&mut self, slot: usize, rho: i64, margin: i64) {
        let _ = (slot, rho, margin);
    }
}

/// The no-op sink: million-slot runs that only want the final [`Metrics`]
/// pass `&mut ()` and pay nothing per slot.
impl MetricsSink for () {}

/// Streaming accumulator behind [`Metrics`]: folds the per-slot
/// observation stream into `O(1)` state. Engines drive it through the
/// [`MetricsSink`] impl and call [`MetricsAccumulator::finish`] with the
/// end-of-run facts (final chain shape, settlement lag) once the loop
/// ends.
#[derive(Debug, Clone, Default)]
pub struct MetricsAccumulator {
    slots: usize,
    max_divergence: usize,
    rollbacks: usize,
}

impl MetricsAccumulator {
    /// A fresh accumulator (no slots observed).
    pub fn new() -> MetricsAccumulator {
        MetricsAccumulator::default()
    }

    /// The largest slot divergence observed so far.
    pub fn max_slot_divergence(&self) -> usize {
        self.max_divergence
    }

    /// The raw fold state `(slots, max_divergence, rollbacks)` — what an
    /// execution checkpoint must persist to resume the fold mid-run.
    pub fn state(&self) -> (usize, usize, usize) {
        (self.slots, self.max_divergence, self.rollbacks)
    }

    /// Rebuilds an accumulator from
    /// [`state`](MetricsAccumulator::state), continuing the fold exactly
    /// where the checkpointed run left off.
    pub fn restore(slots: usize, max_divergence: usize, rollbacks: usize) -> MetricsAccumulator {
        MetricsAccumulator {
            slots,
            max_divergence,
            rollbacks,
        }
    }

    /// Completes the fold with the end-of-run facts that are not per-slot
    /// observations: active-slot count (a schedule property), the final
    /// chain shape read off the best tip, and the maximum settlement lag
    /// read off the divergence index.
    pub fn finish(
        self,
        active_slots: usize,
        final_height: usize,
        chain_blocks: usize,
        honest_chain_blocks: usize,
        max_settlement_lag: Option<usize>,
    ) -> Metrics {
        Metrics {
            slots: self.slots,
            active_slots,
            final_height,
            chain_blocks,
            honest_chain_blocks,
            max_slot_divergence: self.max_divergence,
            rollback_count: self.rollbacks,
            max_settlement_lag,
        }
    }
}

impl MetricsSink for MetricsAccumulator {
    fn on_rollback(&mut self, _slot: usize, _old_height: usize, _new_height: usize) {
        self.rollbacks += 1;
    }

    fn on_slot(
        &mut self,
        slot: usize,
        _distinct_tips: usize,
        _best_height: usize,
        divergence: usize,
    ) {
        self.slots = self.slots.max(slot);
        self.max_divergence = self.max_divergence.max(divergence);
    }
}

/// Fans the observation stream out to two sinks — how an engine drives
/// its internal [`MetricsAccumulator`] and a caller-supplied sink in one
/// pass.
#[derive(Debug)]
pub struct TeeSink<'a, A, B> {
    /// First sink.
    pub a: &'a mut A,
    /// Second sink.
    pub b: &'a mut B,
}

impl<A: MetricsSink, B: MetricsSink> MetricsSink for TeeSink<'_, A, B> {
    fn on_rollback(&mut self, slot: usize, old_height: usize, new_height: usize) {
        self.a.on_rollback(slot, old_height, new_height);
        self.b.on_rollback(slot, old_height, new_height);
    }

    fn on_slot(&mut self, slot: usize, distinct_tips: usize, best_height: usize, div: usize) {
        self.a.on_slot(slot, distinct_tips, best_height, div);
        self.b.on_slot(slot, distinct_tips, best_height, div);
    }

    fn on_fault_deferral(&mut self, slot: usize, recipient: usize, deferred_to: usize) {
        self.a.on_fault_deferral(slot, recipient, deferred_to);
        self.b.on_fault_deferral(slot, recipient, deferred_to);
    }

    fn on_margin(&mut self, slot: usize, rho: i64, margin: i64) {
        self.a.on_margin(slot, rho, margin);
        self.b.on_margin(slot, rho, margin);
    }
}

/// Summary statistics of a finished execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Total slots simulated.
    pub slots: usize,
    /// Slots with at least one leader.
    pub active_slots: usize,
    /// Height of the longest honest-held chain at the end.
    pub final_height: usize,
    /// Blocks (excluding genesis) on node 0's final chain.
    pub chain_blocks: usize,
    /// Honest blocks among [`Metrics::chain_blocks`].
    pub honest_chain_blocks: usize,
    /// The largest slot divergence ever observed between two honest
    /// nodes' chains at a slot boundary (paper Definition 25's metric,
    /// applied to the honest views): an observed `k`-CP^slot violation
    /// exists exactly when this exceeds `k`.
    pub max_slot_divergence: usize,
    /// Number of recorded honest rollbacks (tip switches onto
    /// non-descendant chains) across the whole execution.
    pub rollback_count: usize,
    /// The largest `k` for which some anchor slot's `k`-settlement was
    /// observably violated (paper Definition 3): the maximum over anchors
    /// `s` of `latest diverging observation − s`, `None` when no
    /// divergence prior to any anchor was ever observed.
    pub max_settlement_lag: Option<usize>,
}

impl Metrics {
    /// Chain growth rate: final height per slot. In the honest-only
    /// synchronous setting this approaches the active-slot density.
    pub fn chain_growth(&self) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        self.final_height as f64 / self.slots as f64
    }

    /// Chain quality: fraction of honest blocks on the final chain.
    pub fn chain_quality(&self) -> f64 {
        if self.chain_blocks == 0 {
            return 1.0;
        }
        self.honest_chain_blocks as f64 / self.chain_blocks as f64
    }

    /// Whether the execution exhibited a `k`-CP^slot violation between
    /// honest views.
    pub fn observed_cp_violation(&self, k: usize) -> bool {
        self.max_slot_divergence > k
    }

    /// Whether **any** anchor slot's `k`-settlement was observably
    /// violated — the `O(1)` emptiness check behind
    /// [`Simulation::first_violating_slot`](crate::Simulation::first_violating_slot).
    pub fn observed_settlement_violation(&self, k: usize) -> bool {
        self.max_settlement_lag.is_some_and(|lag| lag >= k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let m = Metrics {
            slots: 100,
            active_slots: 40,
            final_height: 30,
            chain_blocks: 30,
            honest_chain_blocks: 24,
            max_slot_divergence: 5,
            rollback_count: 2,
            max_settlement_lag: Some(7),
        };
        assert!((m.chain_growth() - 0.3).abs() < 1e-12);
        assert!((m.chain_quality() - 0.8).abs() < 1e-12);
        assert!(m.observed_cp_violation(4));
        assert!(!m.observed_cp_violation(5));
        assert!(m.observed_settlement_violation(7));
        assert!(!m.observed_settlement_violation(8));
    }

    #[test]
    fn degenerate_cases() {
        let m = Metrics {
            slots: 0,
            active_slots: 0,
            final_height: 0,
            chain_blocks: 0,
            honest_chain_blocks: 0,
            max_slot_divergence: 0,
            rollback_count: 0,
            max_settlement_lag: None,
        };
        assert_eq!(m.chain_growth(), 0.0);
        assert_eq!(m.chain_quality(), 1.0);
        assert!(!m.observed_settlement_violation(0));
    }

    #[test]
    fn accumulator_streams_divergence_and_rollbacks() {
        let mut acc = MetricsAccumulator::new();
        acc.on_slot(1, 1, 1, 0);
        acc.on_rollback(2, 3, 4);
        acc.on_slot(2, 2, 2, 5);
        acc.on_rollback(3, 1, 2);
        acc.on_slot(3, 1, 3, 2);
        assert_eq!(acc.max_slot_divergence(), 5);
        let m = acc.finish(2, 3, 3, 2, Some(1));
        assert_eq!(m.slots, 3);
        assert_eq!(m.max_slot_divergence, 5);
        assert_eq!(m.rollback_count, 2);
        assert_eq!(m.chain_blocks, 3);
    }

    #[test]
    fn tee_sink_feeds_both() {
        let mut a = MetricsAccumulator::new();
        let mut b = MetricsAccumulator::new();
        let mut tee = TeeSink {
            a: &mut a,
            b: &mut b,
        };
        tee.on_slot(1, 1, 1, 7);
        tee.on_rollback(1, 0, 1);
        assert_eq!(a.max_slot_divergence(), 7);
        assert_eq!(b.max_slot_divergence(), 7);
    }
}
