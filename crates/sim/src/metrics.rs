//! Execution metrics: chain growth, chain quality, divergence.

/// Summary statistics of a finished execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Total slots simulated.
    pub slots: usize,
    /// Slots with at least one leader.
    pub active_slots: usize,
    /// Height of the longest honest-held chain at the end.
    pub final_height: usize,
    /// Blocks (excluding genesis) on node 0's final chain.
    pub chain_blocks: usize,
    /// Honest blocks among [`Metrics::chain_blocks`].
    pub honest_chain_blocks: usize,
    /// The largest slot divergence ever observed between two honest
    /// nodes' chains at a slot boundary (paper Definition 25's metric,
    /// applied to the honest views): an observed `k`-CP^slot violation
    /// exists exactly when this exceeds `k`.
    pub max_slot_divergence: usize,
    /// The largest `k` for which some anchor slot's `k`-settlement was
    /// observably violated (paper Definition 3): the maximum over anchors
    /// `s` of `latest diverging observation − s`, `None` when no
    /// divergence prior to any anchor was ever observed.
    pub max_settlement_lag: Option<usize>,
}

impl Metrics {
    /// Chain growth rate: final height per slot. In the honest-only
    /// synchronous setting this approaches the active-slot density.
    pub fn chain_growth(&self) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        self.final_height as f64 / self.slots as f64
    }

    /// Chain quality: fraction of honest blocks on the final chain.
    pub fn chain_quality(&self) -> f64 {
        if self.chain_blocks == 0 {
            return 1.0;
        }
        self.honest_chain_blocks as f64 / self.chain_blocks as f64
    }

    /// Whether the execution exhibited a `k`-CP^slot violation between
    /// honest views.
    pub fn observed_cp_violation(&self, k: usize) -> bool {
        self.max_slot_divergence > k
    }

    /// Whether **any** anchor slot's `k`-settlement was observably
    /// violated — the `O(1)` emptiness check behind
    /// [`Simulation::first_violating_slot`](crate::Simulation::first_violating_slot).
    pub fn observed_settlement_violation(&self, k: usize) -> bool {
        self.max_settlement_lag.is_some_and(|lag| lag >= k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let m = Metrics {
            slots: 100,
            active_slots: 40,
            final_height: 30,
            chain_blocks: 30,
            honest_chain_blocks: 24,
            max_slot_divergence: 5,
            max_settlement_lag: Some(7),
        };
        assert!((m.chain_growth() - 0.3).abs() < 1e-12);
        assert!((m.chain_quality() - 0.8).abs() < 1e-12);
        assert!(m.observed_cp_violation(4));
        assert!(!m.observed_cp_violation(5));
        assert!(m.observed_settlement_violation(7));
        assert!(!m.observed_settlement_violation(8));
    }

    #[test]
    fn degenerate_cases() {
        let m = Metrics {
            slots: 0,
            active_slots: 0,
            final_height: 0,
            chain_blocks: 0,
            honest_chain_blocks: 0,
            max_slot_divergence: 0,
            max_settlement_lag: None,
        };
        assert_eq!(m.chain_growth(), 0.0);
        assert_eq!(m.chain_quality(), 1.0);
        assert!(!m.observed_settlement_violation(0));
    }
}
