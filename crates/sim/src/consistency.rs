//! The indexed consistency-query layer: settlement sweeps in one pass.
//!
//! Paper Definition 3 calls slot `s` *`k`-settled* when no observation at
//! a slot `t ≥ s + k` exhibits two honest views (or a rollback pair)
//! whose chains diverge prior to `s`. The naive check re-scans every
//! observation slot `t` and every tip pair per query — `O(slots² · tips²
//! · log n)` for a full sweep over all anchors `s`, repeated per `k`.
//!
//! This module folds the whole execution into a [`DivergenceIndex`] once:
//! for every anchor slot `s` it records the **earliest** and **latest**
//! observation slots at which some pair of simultaneous honest views, or
//! a rollback pair, diverges prior to `s`. Every settlement query then
//! becomes an array lookup:
//!
//! * `settlement_violation(s, k)` ⇔ `latest[s] ≥ s + k` — `O(1)`;
//! * a full sweep `settlement_violations(k)` — `O(slots)` for *any* `k`;
//! * `first_violating_slot(k)` — `O(slots)` worst case, `O(1)` when the
//!   execution has no violation at all (checked against the maximum lag).
//!
//! The fold rests on a structural fact about longest-chain views. Fix an
//! observation slot `t` with distinct honest tips `T_t` and let `L_t` be
//! the last block common to *all* of them. Blocks above `L_t` carry slots
//! strictly greater than `slot(L_t)`, so for `s ≤ slot(L_t)` every view
//! agrees prior to `s`; and for `s > slot(L_t)` two views differ at `s`
//! exactly when **some** tip's chain carries a block at slot `s` (were the
//! same slot-`s` block on every chain, it would be a common block deeper
//! than `L_t`). The per-`t` diverging-anchor set is therefore
//!
//! ```text
//! U_t = { s > slot(L_t) : some tip chain at t has a block at slot s }
//! ```
//!
//! which the builder walks once per *distinct* tip set (consecutive slots
//! with unchanged tips share their `U_t`, so only run boundaries pay),
//! marking visited blocks so shared suffixes above `L_t` are not
//! re-walked. Rollback pairs `(t, old, new)` contribute the slots above
//! `lca(old, new)` on both chains directly. Total build cost:
//! `O(blocks + Σ_{tip-set changes} |subtree above L_t| + tips · log n)` —
//! in healthy executions the diverging subtree is a short suffix, making
//! the pass effectively linear in `blocks + slots · tips`.

use crate::block::{BlockId, BlockStore};

/// The store-side ancestry queries the divergence fold needs, over bare
/// `u32` block ids (the common currency of the reference [`BlockStore`]
/// and the scenario crate's columnar arena). Implementations must satisfy
/// the arena invariants the fold relies on: id `0` is genesis at slot 0,
/// parents exist before children, and slots strictly increase along
/// parent links.
pub trait DivergenceOps {
    /// Number of blocks including genesis (sizes the visited-mark table).
    fn block_count(&self) -> usize;
    /// The slot of block `b`.
    fn slot_of(&self, b: u32) -> usize;
    /// The parent of `b`; genesis may return itself (the fold never walks
    /// past a block whose slot is at or below the meet slot).
    fn parent_of(&self, b: u32) -> u32;
    /// The last common block of `a` and `b`.
    fn lca(&self, a: u32, b: u32) -> u32;
}

impl DivergenceOps for BlockStore {
    fn block_count(&self) -> usize {
        self.len()
    }

    fn slot_of(&self, b: u32) -> usize {
        self.block(BlockId(b)).slot
    }

    fn parent_of(&self, b: u32) -> u32 {
        self.block(BlockId(b)).parent.unwrap_or(BlockId(0)).0
    }

    fn lca(&self, a: u32, b: u32) -> u32 {
        self.last_common_block(BlockId(a), BlockId(b)).0
    }
}

/// The **streaming** builder behind [`DivergenceIndex`]: observations are
/// fed in chronological slot order ([`DivergenceFold::observe_tips`] once
/// per slot, [`DivergenceFold::observe_rollback`] as rollbacks happen)
/// and folded into `O(slots)` state on the fly — no per-slot trace needs
/// to be retained. The reference simulator's batch
/// [`DivergenceIndex::build`] and the columnar scenario engine's
/// streaming mode both drive this same fold, which is what makes their
/// indices identical by construction.
///
/// Chronological interleaving is equivalent to the batch order
/// (all tip runs, then all rollbacks): `latest` updates are pure maxima,
/// and `earliest` updates are pure minima — the run branch only writes an
/// unset entry, and in chronological order any earlier rollback write is
/// already the minimum.
#[derive(Debug, Clone)]
pub struct DivergenceFold {
    slots: usize,
    /// Anchors `≤ base` have been drained out of the window (segmented
    /// executions advance it at compaction points); `earliest[i]` /
    /// `latest[i]` describe anchor `base + i + 1`. Full-horizon folds
    /// keep `base = 0` forever.
    base: usize,
    earliest: Vec<usize>,
    latest: Vec<usize>,
    /// Anchors diverging under the currently open run of identical tip
    /// sets.
    current: Vec<usize>,
    /// Epoch-stamped visited mark per block so shared chain suffixes are
    /// walked once per recomputation; grown lazily as the arena grows.
    mark: Vec<u32>,
    epoch: u32,
    /// The previous slot's distinct tip set (runs of identical sets share
    /// one recomputation).
    prev: Vec<u32>,
    prev_slot: usize,
}

impl DivergenceFold {
    /// A fold covering anchor slots `1..=slots`.
    pub fn new(slots: usize) -> DivergenceFold {
        DivergenceFold {
            slots,
            base: 0,
            earliest: vec![0; slots],
            latest: vec![0; slots],
            current: Vec::new(),
            mark: Vec::new(),
            epoch: 0,
            prev: Vec::new(),
            prev_slot: 0,
        }
    }

    /// A **windowed** fold over the same anchor domain `1..=slots`, but
    /// with lazily grown arrays: memory tracks the span since the last
    /// [`DivergenceFold::advance_base`] instead of the full horizon —
    /// the shape the segmented horizon driver needs at 10⁸ slots, where
    /// eager `O(slots)` arrays alone would be ≈ 1.6 GB.
    pub fn windowed(slots: usize) -> DivergenceFold {
        DivergenceFold {
            slots,
            base: 0,
            earliest: Vec::new(),
            latest: Vec::new(),
            current: Vec::new(),
            mark: Vec::new(),
            epoch: 0,
            prev: Vec::new(),
            prev_slot: 0,
        }
    }

    /// A windowed fold resumed at a compaction point: anchors `≤ base`
    /// were drained by the run being resumed, the observation clock
    /// stands at `base`, and the last observation was unanimous on the
    /// (rebased) root block `0`.
    pub fn resume_at(slots: usize, base: usize) -> DivergenceFold {
        let mut fold = DivergenceFold::windowed(slots);
        fold.base = base;
        fold.prev_slot = base;
        fold.prev.push(0);
        fold
    }

    /// Grows the window to cover anchor `s` (no-op for full-size folds).
    #[inline]
    fn ensure_anchor(&mut self, s: usize) {
        let need = s - self.base;
        if self.latest.len() < need {
            self.latest.resize(need, 0);
            self.earliest.resize(need, 0);
        }
    }

    /// Drains every settled anchor `base < s ≤ new_base` out of the
    /// window — calling `drain(s, earliest, latest)` for each anchor
    /// with a diverging observation — and advances the base. The caller
    /// must be at a **fully settled** observation point: the clock
    /// stands exactly at `new_base` and the last observation was
    /// unanimous (so no run is open and no future observation can touch
    /// a drained anchor — post-compaction blocks all carry slots
    /// `> new_base`).
    pub fn advance_base<F: FnMut(usize, usize, usize)>(&mut self, new_base: usize, mut drain: F) {
        debug_assert!(
            self.current.is_empty(),
            "compaction requires a closed (unanimous) run"
        );
        debug_assert_eq!(
            self.prev_slot, new_base,
            "compaction point must be the current observation slot"
        );
        debug_assert!(new_base >= self.base, "base can only advance");
        // Every recorded anchor is a block slot ≤ the observation clock,
        // so the whole window drains; nothing shifts.
        debug_assert!(self.latest.len() <= new_base - self.base);
        for i in 0..self.latest.len() {
            if self.latest[i] != 0 {
                drain(self.base + i + 1, self.earliest[i], self.latest[i]);
            }
        }
        self.earliest.clear();
        self.latest.clear();
        self.base = new_base;
    }

    /// Re-points the previous unanimous observation at the rebased root
    /// block `0` — the fold-side half of a store compaction, where the
    /// unanimous tip becomes the new root id. Requires the last
    /// observation to have been unanimous (or the never-materialized
    /// genesis-unanimous state).
    pub fn rebase_unanimous_root(&mut self) {
        debug_assert!(self.current.is_empty(), "open run at a rebase point");
        debug_assert!(self.prev.len() <= 1, "rebase requires unanimous tips");
        self.prev.clear();
        self.prev.push(0);
    }

    /// Closes the final run and drains every remaining anchor of the
    /// window — the windowed analogue of [`DivergenceFold::finish`],
    /// for drivers that aggregate instead of materialising a
    /// [`DivergenceIndex`].
    pub fn finish_windowed<F: FnMut(usize, usize, usize)>(mut self, mut drain: F) {
        for &s in &self.current {
            let i = s - 1 - self.base;
            self.latest[i] = self.latest[i].max(self.slots);
        }
        for i in 0..self.latest.len() {
            if self.latest[i] != 0 {
                drain(self.base + i + 1, self.earliest[i], self.latest[i]);
            }
        }
    }

    /// Observes the distinct honest tips at the end of slot `t`. Must be
    /// called exactly once per slot, in increasing order.
    pub fn observe_tips<S: DivergenceOps>(&mut self, store: &S, t: usize, tips: &[u32]) {
        debug_assert_eq!(t, self.prev_slot + 1, "tips must arrive in slot order");
        if t > 1 && tips == self.prev {
            self.prev_slot = t;
            return; // same views, same diverging anchors: run stays open
        }
        // Close the previous run: its anchors were last seen at t − 1.
        for &s in &self.current {
            self.latest[s - 1 - self.base] = self.latest[s - 1 - self.base].max(t - 1);
        }
        self.current.clear();
        if tips.len() > 1 {
            self.ensure_anchor(t);
            if self.mark.len() < store.block_count() {
                self.mark.resize(store.block_count(), 0);
            }
            let mut meet = tips[0];
            for &tip in &tips[1..] {
                meet = store.lca(meet, tip);
            }
            let meet_slot = store.slot_of(meet);
            self.epoch += 1;
            for &tip in tips {
                let mut cur = tip;
                while store.slot_of(cur) > meet_slot && self.mark[cur as usize] != self.epoch {
                    self.mark[cur as usize] = self.epoch;
                    self.current.push(store.slot_of(cur));
                    cur = store.parent_of(cur);
                }
            }
            for &s in &self.current {
                if self.earliest[s - 1 - self.base] == 0 {
                    self.earliest[s - 1 - self.base] = t;
                }
            }
        }
        self.prev.clear();
        self.prev.extend_from_slice(tips);
        self.prev_slot = t;
    }

    /// Advances the fold to slot `t` **without** re-presenting the tip
    /// set, asserting the caller's knowledge that the distinct honest
    /// tips at `t` equal those at `t − 1`. Equivalent to — and
    /// bit-identical with — calling [`DivergenceFold::observe_tips`]
    /// with an unchanged set (the open run simply stays open), but
    /// skips the set comparison entirely: the columnar engine's
    /// quiet-slot fast path proves "no mint, no delivery ⇒ tips
    /// unchanged" structurally and pays one store here instead.
    #[inline]
    pub fn observe_tips_unchanged(&mut self, t: usize) {
        debug_assert_eq!(t, self.prev_slot + 1, "tips must arrive in slot order");
        self.prev_slot = t;
    }

    /// Observes the tip set `{parent, child}` at slot `t`, where `child`
    /// is a **fresh block minted on the previous slot's unanimous tip**
    /// `parent` — the columnar engine's single-mint fast case.
    /// Bit-identical to [`DivergenceFold::observe_tips`] with that pair,
    /// with every derived quantity precomputed by the caller's structural
    /// knowledge: the meet of the pair *is* `parent` (no LCA), the only
    /// chain suffix above it *is* `child` (no walk, no visited marks),
    /// and the previous run — unanimous on `parent` — carries no
    /// diverging anchors (its close loop is empty).
    ///
    /// Callers must guarantee: the previous observation was the unanimous
    /// `[parent]`, `child`'s parent is `parent`, and `child` was minted at
    /// slot `child_slot = t ≥ 1`.
    #[inline]
    pub fn observe_fresh_child(&mut self, t: usize, parent: u32, child: u32, child_slot: usize) {
        debug_assert_eq!(t, self.prev_slot + 1, "tips must arrive in slot order");
        // An empty `prev` with `parent == 0` is the never-materialized
        // genesis-unanimous state: every slot so far was quiet, so the
        // tips were never re-presented. Structurally identical to
        // `prev == [0]`.
        debug_assert!(
            (self.prev.is_empty() && parent == 0) || self.prev.as_slice() == [parent],
            "previous tips must be unanimous on parent"
        );
        // Close the (unanimous, anchor-free) previous run.
        for &s in &self.current {
            self.latest[s - 1 - self.base] = self.latest[s - 1 - self.base].max(t - 1);
        }
        self.current.clear();
        self.ensure_anchor(t);
        self.current.push(child_slot);
        if self.earliest[child_slot - 1 - self.base] == 0 {
            self.earliest[child_slot - 1 - self.base] = t;
        }
        self.prev.clear();
        self.prev.push(parent);
        self.prev.push(child);
        self.prev_slot = t;
    }

    /// Observes a rollback at slot `t`: an honest node abandoned the
    /// chain at `old` for the non-descendant chain at `new`. The chains
    /// above their last common block diverge prior to every block slot on
    /// either side.
    pub fn observe_rollback<S: DivergenceOps>(&mut self, store: &S, t: usize, old: u32, new: u32) {
        let meet = store.lca(old, new);
        let meet_slot = store.slot_of(meet);
        self.ensure_anchor(t.min(self.slots));
        for tip in [old, new] {
            let mut cur = tip;
            while store.slot_of(cur) > meet_slot {
                let s = store.slot_of(cur);
                if s <= self.slots {
                    debug_assert!(s > self.base, "rollback anchor below the drained base");
                    let i = s - 1 - self.base;
                    if self.earliest[i] == 0 || t < self.earliest[i] {
                        self.earliest[i] = t;
                    }
                    self.latest[i] = self.latest[i].max(t);
                }
                cur = store.parent_of(cur);
            }
        }
    }

    /// Closes the final run and produces the queryable index. Only
    /// full-horizon folds (base never advanced) can produce one —
    /// segmented drivers drain through
    /// [`DivergenceFold::finish_windowed`] instead.
    pub fn finish(mut self) -> DivergenceIndex {
        assert_eq!(
            self.base, 0,
            "a base-advanced fold cannot build a full index"
        );
        self.earliest.resize(self.slots, 0);
        self.latest.resize(self.slots, 0);
        for &s in &self.current {
            self.latest[s - 1] = self.latest[s - 1].max(self.slots);
        }
        let max_lag = (1..=self.slots)
            .filter(|&s| self.latest[s - 1] != 0)
            .map(|s| self.latest[s - 1] - s)
            .max();
        DivergenceIndex {
            earliest: self.earliest,
            latest: self.latest,
            max_lag,
        }
    }
}

/// Per-anchor divergence observations of one finished execution; see the
/// [module docs](self) for the underlying characterisation.
///
/// Anchor slots are **1-based** (`1..=slots`), matching
/// [`Simulation::tips_at`](crate::Simulation::tips_at); queries outside
/// that domain report "no divergence" rather than panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceIndex {
    /// `earliest[s − 1]`: first observation slot with a pair diverging
    /// prior to `s` (0 = never).
    earliest: Vec<usize>,
    /// `latest[s − 1]`: last such observation slot (0 = never).
    latest: Vec<usize>,
    /// `max_s (latest[s] − s)`, cached at build time so the emptiness
    /// checks behind [`DivergenceIndex::first_violation`] and
    /// [`Metrics::observed_settlement_violation`] are truly `O(1)`.
    ///
    /// [`Metrics::observed_settlement_violation`]:
    /// crate::Metrics::observed_settlement_violation
    max_lag: Option<usize>,
}

impl DivergenceIndex {
    /// Folds the recorded per-slot honest views and rollback events into
    /// the index, in a single forward pass — a batch driver over the
    /// streaming [`DivergenceFold`].
    pub(crate) fn build(
        store: &BlockStore,
        tips_per_slot: &[Vec<BlockId>],
        rollbacks: &[(usize, BlockId, BlockId)],
    ) -> DivergenceIndex {
        let slots = tips_per_slot.len();
        let mut fold = DivergenceFold::new(slots);
        let mut buf: Vec<u32> = Vec::new();
        for (t, tips) in tips_per_slot.iter().enumerate() {
            buf.clear();
            buf.extend(tips.iter().map(|b| b.0));
            fold.observe_tips(store, t + 1, &buf);
        }
        for &(t, old, new) in rollbacks {
            fold.observe_rollback(store, t, old.0, new.0);
        }
        fold.finish()
    }

    /// Number of simulated slots the index covers.
    pub fn slots(&self) -> usize {
        self.latest.len()
    }

    /// The first observation slot at which two honest views or a rollback
    /// pair diverged prior to `slot`, if any ever did. Slots outside
    /// `1..=slots` report `None`.
    pub fn earliest_diverging_observation(&self, slot: usize) -> Option<usize> {
        match slot {
            s if s == 0 || s > self.earliest.len() => None,
            s => match self.earliest[s - 1] {
                0 => None,
                t => Some(t),
            },
        }
    }

    /// The last such observation slot; `settlement_violation(s, k)` holds
    /// exactly when this is `≥ s + k`.
    pub fn latest_diverging_observation(&self, slot: usize) -> Option<usize> {
        match slot {
            s if s == 0 || s > self.latest.len() => None,
            s => match self.latest[s - 1] {
                0 => None,
                t => Some(t),
            },
        }
    }

    /// Whether the execution exhibits a `(slot, k)`-settlement violation:
    /// some observation at `t ≥ slot + k` saw divergence prior to `slot`.
    /// `O(1)`. Anchors outside `1..=slots` are vacuously settled.
    pub fn violates(&self, slot: usize, k: usize) -> bool {
        if slot == 0 || slot > self.latest.len() {
            return false;
        }
        let t = self.latest[slot - 1];
        t != 0 && t >= slot.saturating_add(k)
    }

    /// The full settlement sweep at parameter `k`: entry `s − 1` is
    /// [`DivergenceIndex::violates`]`(s, k)` for `s ∈ 1..=slots`.
    pub fn violations(&self, k: usize) -> Vec<bool> {
        (1..=self.latest.len())
            .map(|s| self.violates(s, k))
            .collect()
    }

    /// Number of violating anchors `s ≤ upto` at parameter `k`, without
    /// materialising the sweep; `upto` is clamped to the horizon, so
    /// callers may pass `usize::MAX` for "all anchors".
    pub fn count_violations(&self, k: usize, upto: usize) -> usize {
        (1..=upto.min(self.latest.len()))
            .filter(|&s| self.violates(s, k))
            .count()
    }

    /// The smallest violating anchor at parameter `k`, if any — `O(1)`
    /// when nothing violates at `k` (the cached maximum lag rules it
    /// out), `O(slots)` otherwise.
    pub fn first_violation(&self, k: usize) -> Option<usize> {
        if self.max_lag.is_none_or(|lag| lag < k) {
            return None;
        }
        (1..=self.latest.len()).find(|&s| self.violates(s, k))
    }

    /// The largest `k` for which *some* anchor is violated: the maximum of
    /// `latest[s] − s` over anchors with a diverging observation, cached
    /// at build time. `None` when the execution never showed divergence
    /// at all, in which case every `(s, k)` is settled.
    pub fn max_settlement_lag(&self) -> Option<usize> {
        self.max_lag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built two-chain scenario: a common prefix (slots 1, 2), a
    /// fork at slots 3/4 per side, views split during slots 4–6, healed
    /// from slot 7 on.
    fn split_views() -> (BlockStore, Vec<Vec<BlockId>>) {
        let mut store = BlockStore::new();
        let p1 = store.mint(BlockId::GENESIS, 1, 0, true);
        let p2 = store.mint(p1, 2, 1, true);
        let a3 = store.mint(p2, 3, 0, true);
        let b4 = store.mint(p2, 4, 1, true);
        let a5 = store.mint(a3, 5, 0, true);
        let tips = vec![
            vec![p1],     // slot 1
            vec![p2],     // slot 2
            vec![a3],     // slot 3
            vec![a3, b4], // slot 4: views split
            vec![a3, b4], // slot 5
            vec![a5, b4], // slot 6: one side extends
            vec![a5],     // slot 7: healed
            vec![a5],     // slot 8
        ];
        (store, tips)
    }

    #[test]
    fn concurrent_views_are_indexed_with_earliest_and_latest() {
        let (store, tips) = split_views();
        let idx = DivergenceIndex::build(&store, &tips, &[]);
        // Anchors 1, 2 sit on the common prefix: never diverging.
        assert_eq!(idx.latest_diverging_observation(1), None);
        assert_eq!(idx.latest_diverging_observation(2), None);
        // Anchor 3 (and 4) diverge from observation 4 through 6.
        assert_eq!(idx.earliest_diverging_observation(3), Some(4));
        assert_eq!(idx.latest_diverging_observation(3), Some(6));
        assert_eq!(idx.earliest_diverging_observation(4), Some(4));
        assert_eq!(idx.latest_diverging_observation(4), Some(6));
        // Anchor 5 appears once a5 joins the split views at slot 6.
        assert_eq!(idx.earliest_diverging_observation(5), Some(6));
        assert_eq!(idx.latest_diverging_observation(5), Some(6));
        // Violations: anchor 3 with k ≤ 3 (6 ≥ 3 + 3), not k = 4.
        assert!(idx.violates(3, 3));
        assert!(!idx.violates(3, 4));
        assert!(idx.violates(4, 2));
        assert!(!idx.violates(4, 3));
        assert_eq!(idx.max_settlement_lag(), Some(3));
        assert_eq!(idx.first_violation(3), Some(3));
        assert_eq!(idx.first_violation(4), None);
        let sweep = idx.violations(2);
        assert_eq!(sweep.len(), 8);
        assert!(sweep[2] && sweep[3] && !sweep[0]);
    }

    #[test]
    fn rollbacks_extend_the_latest_observation() {
        let (store, mut tips) = split_views();
        // All views sit on a5 from slot 7 on, but at slot 8 a rollback
        // onto b4's branch is recorded.
        let b8 = {
            let b4 = tips[5][1];
            let mut s = store.clone();
            let b8 = s.mint(b4, 8, 2, false);
            tips[7] = vec![b8];
            (s, b8)
        };
        let (store, b8) = b8;
        let a5 = tips[6][0];
        let idx = DivergenceIndex::build(&store, &tips, &[(8, a5, b8)]);
        // The rollback pair diverges prior to anchors 3..=5 and 8.
        assert_eq!(idx.latest_diverging_observation(3), Some(8));
        assert_eq!(idx.latest_diverging_observation(5), Some(8));
        assert_eq!(idx.latest_diverging_observation(8), Some(8));
        // Boundary: t = s + k exactly is a violation (t ≥ s + k).
        assert!(idx.violates(3, 5));
        assert!(!idx.violates(3, 6));
    }

    #[test]
    fn out_of_domain_anchors_are_settled() {
        let (store, tips) = split_views();
        let idx = DivergenceIndex::build(&store, &tips, &[]);
        assert!(!idx.violates(0, 0));
        assert!(!idx.violates(9, 0));
        assert_eq!(idx.earliest_diverging_observation(0), None);
        assert_eq!(idx.latest_diverging_observation(100), None);
    }

    #[test]
    fn single_views_and_empty_executions_never_diverge() {
        let mut store = BlockStore::new();
        let b = store.mint(BlockId::GENESIS, 1, 0, true);
        let idx = DivergenceIndex::build(&store, &[vec![b], vec![b]], &[]);
        assert_eq!(idx.max_settlement_lag(), None);
        assert_eq!(idx.first_violation(0), None);
        let empty = DivergenceIndex::build(&BlockStore::new(), &[], &[]);
        assert_eq!(empty.slots(), 0);
        assert!(!empty.violates(1, 0));
    }
}
