//! Dependency-free observability core for the multihonest workspace.
//!
//! The crate follows the same contract as the vendored stand-ins: no
//! external dependencies, a small surface tailored to what the engines
//! need, and a hard **bit-invisibility** rule — instrumentation must
//! never change what an execution computes.
//!
//! Three layers:
//!
//! * [`Recorder`] — the statically-dispatched instrumentation surface
//!   every engine loop is generic over. The `()` implementation is the
//!   default everywhere and compiles to nothing, exactly like the old
//!   `PhaseProfiler` no-op pattern it generalizes.
//! * [`Registry`] — counters, gauges and power-of-two log-bucketed
//!   [`Histogram`]s, all with a `merge` operation so per-worker shards
//!   combine into one view.
//! * [`ObsRecorder`] — the full recorder: nested spans against a shared
//!   epoch, a registry, named lap timers, and exporters — a
//!   human-readable [`summary`](ObsRecorder::summary), a
//!   [`jsonl`](ObsRecorder::jsonl) event stream, and
//!   [`chrome_trace_json`](ObsRecorder::chrome_trace_json) loadable in
//!   `chrome://tracing` / Perfetto.
//!
//! [`Heartbeat`] gates periodic progress lines for long runs, and
//! [`peak_rss_bytes`] reads the process high-water RSS mark on Linux.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod heartbeat;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use crate::heartbeat::{heartbeat_line, Heartbeat};
pub use crate::recorder::{LapTimes, Recorder};
pub use crate::registry::{Gauge, Histogram, Registry};
pub use crate::trace::{ObsRecorder, SpanEvent};

/// The process's peak resident-set size in bytes (`VmHWM` from
/// `/proc/self/status`), when the platform exposes it.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Minimal JSON string escaping for exporter output (quotes, backslash,
/// control characters).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM available on linux");
            assert!(rss > 0);
        }
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain.name"), "plain.name");
    }
}
