//! The metrics registry: counters, gauges, and power-of-two log-bucketed
//! histograms, all mergeable across per-worker shards.

use std::collections::BTreeMap;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket
/// `b ≥ 1` holds values in `[2^(b−1), 2^b − 1]`, so 65 buckets cover the
/// full `u64` range exactly.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log-bucketed (power-of-two) histogram with exact count/sum/min/max.
///
/// Recording is one `leading_zeros` and one array increment; quantiles
/// are bucket-upper-bound estimates (within 2× of the true value, which
/// is plenty for latency telemetry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index of `value`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Histogram::bucket_of(value)] += 1;
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// A bucket-upper-bound estimate of the `q`-quantile (`0 ≤ q ≤ 1`);
    /// 0 when empty. Exact `max` is returned for the top of the range.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if b == 0 {
                    0
                } else {
                    // Upper bound of bucket b, clamped to the true max.
                    ((1u128 << b) - 1).min(self.max as u128) as u64
                };
            }
        }
        self.max
    }

    /// Folds another histogram into this one: the merged histogram is
    /// identical to one that recorded both observation streams.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// A gauge value: the most recent set plus the high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Gauge {
    /// The last value set (for shard merges: the last merged-in shard's
    /// value — merge order defines it).
    pub last: i64,
    /// The largest value ever set across all merged shards.
    pub max: i64,
}

/// Named counters, gauges and histograms. Names are `&'static str`
/// (every call site names its metric with a literal), so the registry
/// costs one `BTreeMap` lookup per update and merges are key unions.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `delta` to the counter `name`.
    #[inline]
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets the gauge `name` to `value`, tracking its high-water mark.
    #[inline]
    pub fn gauge_set(&mut self, name: &'static str, value: i64) {
        let g = self.gauges.entry(name).or_default();
        g.last = value;
        g.max = g.max.max(value);
    }

    /// Records `value` into the histogram `name`.
    #[inline]
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The counter `name`'s value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<Gauge> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if ever observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&n, &v)| (n, v))
    }

    /// All gauges, name-ordered.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, Gauge)> + '_ {
        self.gauges.iter().map(|(&n, &g)| (n, g))
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&n, h)| (n, h))
    }

    /// Folds a shard into this registry: counters add, histograms merge
    /// observation-exactly, gauges keep the max high-water mark and take
    /// the merged-in shard's `last`.
    pub fn merge(&mut self, other: &Registry) {
        for (&name, &v) in other.counters.iter() {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (&name, &og) in other.gauges.iter() {
            let g = self.gauges.entry(name).or_default();
            g.last = og.last;
            g.max = g.max.max(og.max);
        }
        for (&name, oh) in other.histograms.iter() {
            self.histograms.entry(name).or_default().merge(oh);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), 0);
        assert!(h.quantile(0.5) >= 2);
        assert_eq!(h.quantile(1.0), 1000, "top quantile clamps to true max");
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.min(), None);
    }

    #[test]
    fn histogram_merge_equals_single_stream() {
        let values = [0u64, 5, 9, 12, 1 << 20, 7, 7, 3];
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn registry_semantics_and_merge() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        r.gauge_set("g", 10);
        r.gauge_set("g", 4);
        r.observe("h", 7);
        assert_eq!(r.counter("c"), 5);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("g"), Some(Gauge { last: 4, max: 10 }));
        assert_eq!(r.histogram("h").unwrap().count(), 1);

        let mut shard = Registry::new();
        shard.counter_add("c", 1);
        shard.counter_add("d", 9);
        shard.gauge_set("g", 7);
        shard.observe("h", 1);
        r.merge(&shard);
        assert_eq!(r.counter("c"), 6);
        assert_eq!(r.counter("d"), 9);
        assert_eq!(r.gauge("g"), Some(Gauge { last: 7, max: 10 }));
        assert_eq!(r.histogram("h").unwrap().count(), 2);
        let names: Vec<_> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, ["c", "d"], "counters iterate name-ordered");
    }
}
