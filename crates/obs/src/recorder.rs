//! The [`Recorder`] trait — the zero-cost instrumentation surface — and
//! [`LapTimes`], the named phase stopwatch behind `--profile` output.

use std::time::Instant;

/// The instrumentation surface every engine loop is generic over.
///
/// All methods are no-op defaults, and the `()` implementation overrides
/// nothing — plain entry points thread `&mut ()` through the generic
/// parameter and the calls inline to zero instructions, exactly the
/// pattern the old `PhaseProfiler` proved on the columnar slot kernel.
///
/// The hard contract: a recorder only *observes*. Implementations must
/// not feed anything back into the execution; every engine entry point
/// guarantees that an instrumented run is bit-identical to a plain one.
pub trait Recorder {
    /// Opens a named nested timing scope.
    #[inline]
    fn span_begin(&mut self, name: &'static str) {
        let _ = name;
    }

    /// Closes the innermost scope opened under `name`.
    #[inline]
    fn span_end(&mut self, name: &'static str) {
        let _ = name;
    }

    /// Marks the start of a lap sequence (e.g. one slot of the kernel).
    #[inline]
    fn lap_start(&mut self) {}

    /// Charges the time since the previous mark to `label` and re-marks.
    /// Labels skipped by fast paths are simply never charged.
    #[inline]
    fn lap(&mut self, label: &'static str) {
        let _ = label;
    }

    /// Adds `delta` to the counter `name`.
    #[inline]
    fn counter(&mut self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the gauge `name` to `value`.
    #[inline]
    fn gauge(&mut self, name: &'static str, value: i64) {
        let _ = (name, value);
    }

    /// Records `value` into the histogram `name`.
    #[inline]
    fn observe(&mut self, name: &'static str, value: u64) {
        let _ = (name, value);
    }
}

/// The zero-cost recorder of every plain entry point.
impl Recorder for () {}

/// Forwarding makes `&mut R` usable wherever a recorder value is
/// expected, so callers can lend one recorder to several scopes.
impl<R: Recorder + ?Sized> Recorder for &mut R {
    #[inline]
    fn span_begin(&mut self, name: &'static str) {
        (**self).span_begin(name);
    }
    #[inline]
    fn span_end(&mut self, name: &'static str) {
        (**self).span_end(name);
    }
    #[inline]
    fn lap_start(&mut self) {
        (**self).lap_start();
    }
    #[inline]
    fn lap(&mut self, label: &'static str) {
        (**self).lap(label);
    }
    #[inline]
    fn counter(&mut self, name: &'static str, delta: u64) {
        (**self).counter(name, delta);
    }
    #[inline]
    fn gauge(&mut self, name: &'static str, value: i64) {
        (**self).gauge(name, value);
    }
    #[inline]
    fn observe(&mut self, name: &'static str, value: u64) {
        (**self).observe(name, value);
    }
}

/// Accumulated wall-clock time per named lap label, in first-seen order.
///
/// Timestamps are taken at lap *boundaries* (one `Instant::now` per
/// executed lap), so a lap-profiled run is slower than a plain one — the
/// breakdown is for finding where the time goes, not for quoting
/// absolute throughput.
#[derive(Debug, Clone, Default)]
pub struct LapTimes {
    names: Vec<&'static str>,
    nanos: Vec<u64>,
    starts: u64,
    last: Option<Instant>,
}

impl LapTimes {
    /// A fresh, empty lap profile.
    pub fn new() -> LapTimes {
        LapTimes::default()
    }

    /// Number of [`Recorder::lap_start`] marks observed so far.
    pub fn starts(&self) -> u64 {
        self.starts
    }

    /// Nanoseconds charged to `label` so far (0 for unseen labels).
    pub fn nanos(&self, label: &str) -> u64 {
        self.names
            .iter()
            .position(|&n| n == label)
            .map_or(0, |i| self.nanos[i])
    }

    /// Total nanoseconds across all labels.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// `(label, nanos)` rows in first-seen order.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.names.iter().copied().zip(self.nanos.iter().copied())
    }

    /// Folds another profile into this one (labels union, times add).
    pub fn merge(&mut self, other: &LapTimes) {
        self.starts += other.starts;
        for (label, ns) in other.rows() {
            self.charge(label, ns);
        }
    }

    #[inline]
    fn charge(&mut self, label: &'static str, ns: u64) {
        match self.names.iter().position(|&n| n == label) {
            Some(i) => self.nanos[i] += ns,
            None => {
                self.names.push(label);
                self.nanos.push(ns);
            }
        }
    }
}

impl Recorder for LapTimes {
    #[inline]
    fn lap_start(&mut self) {
        self.starts += 1;
        self.last = Some(Instant::now());
    }

    #[inline]
    fn lap(&mut self, label: &'static str) {
        let now = Instant::now();
        if let Some(last) = self.last {
            self.charge(label, now.duration_since(last).as_nanos() as u64);
        }
        self.last = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_compiles_to_unit() {
        let mut r = ();
        r.lap_start();
        r.lap("x");
        r.span_begin("s");
        r.span_end("s");
        r.counter("c", 1);
        r.gauge("g", -3);
        r.observe("h", 9);
    }

    #[test]
    fn laps_accumulate_in_first_seen_order() {
        let mut l = LapTimes::new();
        l.lap_start();
        l.lap("mint");
        l.lap("fold");
        l.lap_start();
        l.lap("mint");
        assert_eq!(l.starts(), 2);
        let labels: Vec<_> = l.rows().map(|(n, _)| n).collect();
        assert_eq!(labels, ["mint", "fold"]);
        assert_eq!(l.total_nanos(), l.nanos("mint") + l.nanos("fold"));
        assert_eq!(l.nanos("absent"), 0);
    }

    #[test]
    fn lap_without_start_charges_nothing() {
        let mut l = LapTimes::new();
        l.lap("orphan");
        assert_eq!(l.total_nanos(), 0);
        assert_eq!(l.nanos("orphan"), 0);
    }

    #[test]
    fn merge_unions_labels_and_adds_times() {
        let mut a = LapTimes::new();
        a.charge("x", 10);
        a.charge("y", 5);
        a.starts = 3;
        let mut b = LapTimes::new();
        b.charge("y", 7);
        b.charge("z", 1);
        b.starts = 2;
        a.merge(&b);
        assert_eq!(a.starts(), 5);
        assert_eq!(a.nanos("x"), 10);
        assert_eq!(a.nanos("y"), 12);
        assert_eq!(a.nanos("z"), 1);
    }

    #[test]
    fn mut_ref_forwarding_records_through() {
        let mut l = LapTimes::new();
        {
            let r = &mut l;
            r.lap_start();
            r.lap("a");
        }
        assert_eq!(l.starts(), 1);
    }
}
