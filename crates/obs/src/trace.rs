//! [`ObsRecorder`] — the full recorder with span events and exporters.

use std::time::Instant;

use crate::escape_json;
use crate::recorder::{LapTimes, Recorder};
use crate::registry::Registry;

/// Default cap on retained span events per recorder (~32 MiB worst
/// case); overflowing spans still feed the duration histograms but are
/// dropped from the trace, counted in
/// [`ObsRecorder::dropped_events`].
pub const DEFAULT_MAX_EVENTS: usize = 1 << 20;

/// One completed span: a Chrome trace-event `"X"` (complete) record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// The span's name.
    pub name: &'static str,
    /// Start, in microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// The recording shard's thread id.
    pub tid: u32,
}

/// The full observability recorder: nested spans timed against a shared
/// epoch, named lap timers, and a metrics [`Registry`], with
/// Chrome-trace / JSONL / summary exporters.
///
/// Worker threads record into [`shard`](ObsRecorder::shard)s (same
/// epoch, distinct `tid`) that [`merge`](ObsRecorder::merge) back into
/// the parent, so a multi-threaded run exports one coherent timeline.
///
/// Every span end also records the span's duration (µs) into the
/// registry histogram of the same name, so aggregate span statistics
/// survive even when the event cap drops individual events.
#[derive(Debug, Clone)]
pub struct ObsRecorder {
    registry: Registry,
    laps: LapTimes,
    events: Vec<SpanEvent>,
    stack: Vec<(&'static str, u64)>,
    epoch: Instant,
    tid: u32,
    max_events: usize,
    dropped: u64,
}

impl Default for ObsRecorder {
    fn default() -> ObsRecorder {
        ObsRecorder::new()
    }
}

impl ObsRecorder {
    /// A fresh recorder with its epoch at "now" and `tid` 0.
    pub fn new() -> ObsRecorder {
        ObsRecorder::with_epoch(Instant::now(), 0)
    }

    /// A recorder timing against an existing `epoch` under `tid` — what
    /// [`shard`](ObsRecorder::shard) uses for worker threads.
    pub fn with_epoch(epoch: Instant, tid: u32) -> ObsRecorder {
        ObsRecorder {
            registry: Registry::new(),
            laps: LapTimes::new(),
            events: Vec::new(),
            stack: Vec::new(),
            epoch,
            tid,
            max_events: DEFAULT_MAX_EVENTS,
            dropped: 0,
        }
    }

    /// The recorder's epoch (spans are timed relative to it).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The recorder's thread id.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// A fresh shard sharing this recorder's epoch under a new `tid`.
    pub fn shard(&self, tid: u32) -> ObsRecorder {
        let mut s = ObsRecorder::with_epoch(self.epoch, tid);
        s.max_events = self.max_events;
        s
    }

    /// Caps the number of retained span events.
    pub fn set_max_events(&mut self, max_events: usize) {
        self.max_events = max_events;
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the registry (for adapters that record directly).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// The accumulated lap profile.
    pub fn laps(&self) -> &LapTimes {
        &self.laps
    }

    /// All retained span events.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Span events dropped by the event cap.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    #[inline]
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Folds a shard into this recorder: events concatenate (re-sorted by
    /// start time for a deterministic timeline), laps and registry merge,
    /// drop counts add. Unclosed spans on the shard's stack are
    /// discarded.
    pub fn merge(&mut self, other: ObsRecorder) {
        for ev in other.events {
            if self.events.len() < self.max_events {
                self.events.push(ev);
            } else {
                self.dropped += 1;
            }
        }
        self.events
            .sort_by_key(|e| (e.start_us, e.tid, e.dur_us, e.name));
        self.laps.merge(&other.laps);
        self.registry.merge(&other.registry);
        self.dropped += other.dropped;
    }

    /// Chrome trace-event JSON (object format, `"X"` complete events),
    /// loadable in `chrome://tracing` and Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                escape_json(ev.name),
                ev.start_us,
                ev.dur_us,
                ev.tid
            ));
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// A JSONL event stream: one JSON object per line — every retained
    /// span, then final counter / gauge / histogram records, then a
    /// `meta` line when the event cap dropped spans.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events.iter() {
            out.push_str(&format!(
                "{{\"type\":\"span\",\"name\":\"{}\",\"ts_us\":{},\"dur_us\":{},\"tid\":{}}}\n",
                escape_json(ev.name),
                ev.start_us,
                ev.dur_us,
                ev.tid
            ));
        }
        for (name, v) in self.registry.counters() {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}\n",
                escape_json(name)
            ));
        }
        for (name, g) in self.registry.gauges() {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"last\":{},\"max\":{}}}\n",
                escape_json(name),
                g.last,
                g.max
            ));
        }
        for (name, h) in self.registry.histograms() {
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{}}}\n",
                escape_json(name),
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                h.quantile(0.5),
                h.quantile(0.99)
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "{{\"type\":\"meta\",\"name\":\"obs.spans_dropped\",\"value\":{}}}\n",
                self.dropped
            ));
        }
        out
    }

    /// A human-readable summary table of the registry plus span totals.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "observability summary ({} span events{}):\n",
            self.events.len(),
            if self.dropped > 0 {
                format!(", {} dropped", self.dropped)
            } else {
                String::new()
            }
        );
        let counters: Vec<_> = self.registry.counters().collect();
        if !counters.is_empty() {
            out.push_str("  counters:\n");
            for (name, v) in counters {
                out.push_str(&format!("    {name:<32} {v}\n"));
            }
        }
        let gauges: Vec<_> = self.registry.gauges().collect();
        if !gauges.is_empty() {
            out.push_str("  gauges:\n");
            for (name, g) in gauges {
                out.push_str(&format!("    {name:<32} last {}  max {}\n", g.last, g.max));
            }
        }
        let hists: Vec<_> = self.registry.histograms().collect();
        if !hists.is_empty() {
            out.push_str("  histograms:\n");
            for (name, h) in hists {
                out.push_str(&format!(
                    "    {name:<32} n={} min={} p50~{} p99~{} max={} mean={:.1}\n",
                    h.count(),
                    h.min().unwrap_or(0),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.max().unwrap_or(0),
                    h.mean()
                ));
            }
        }
        if self.laps.starts() > 0 {
            out.push_str(&format!("  laps ({} starts):\n", self.laps.starts()));
            for (label, ns) in self.laps.rows() {
                out.push_str(&format!("    {label:<32} {:.4} s\n", ns as f64 / 1e9));
            }
        }
        out
    }
}

impl Recorder for ObsRecorder {
    #[inline]
    fn span_begin(&mut self, name: &'static str) {
        let ts = self.now_us();
        self.stack.push((name, ts));
    }

    #[inline]
    fn span_end(&mut self, name: &'static str) {
        let end = self.now_us();
        match self.stack.pop() {
            Some((open, start)) if open == name => {
                let dur = end.saturating_sub(start);
                self.registry.observe(name, dur);
                if self.events.len() < self.max_events {
                    self.events.push(SpanEvent {
                        name,
                        start_us: start,
                        dur_us: dur,
                        tid: self.tid,
                    });
                } else {
                    self.dropped += 1;
                }
            }
            _ => self.registry.counter_add("obs.span_mismatch", 1),
        }
    }

    #[inline]
    fn lap_start(&mut self) {
        self.laps.lap_start();
    }

    #[inline]
    fn lap(&mut self, label: &'static str) {
        self.laps.lap(label);
    }

    #[inline]
    fn counter(&mut self, name: &'static str, delta: u64) {
        self.registry.counter_add(name, delta);
    }

    #[inline]
    fn gauge(&mut self, name: &'static str, value: i64) {
        self.registry.gauge_set(name, value);
    }

    #[inline]
    fn observe(&mut self, name: &'static str, value: u64) {
        self.registry.observe(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_produce_events_and_histograms() {
        let mut r = ObsRecorder::new();
        r.span_begin("outer");
        r.span_begin("inner");
        r.span_end("inner");
        r.span_end("outer");
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.events()[0].name, "inner", "inner closes first");
        assert_eq!(r.events()[1].name, "outer");
        assert!(r.events()[1].dur_us >= r.events()[0].dur_us);
        assert_eq!(r.registry().histogram("outer").unwrap().count(), 1);
        assert_eq!(r.registry().counter("obs.span_mismatch"), 0);
    }

    #[test]
    fn mismatched_span_end_is_counted_not_panicking() {
        let mut r = ObsRecorder::new();
        r.span_end("never_opened");
        r.span_begin("a");
        r.span_end("b");
        assert_eq!(r.registry().counter("obs.span_mismatch"), 2);
        assert!(r.events().is_empty());
    }

    #[test]
    fn event_cap_drops_but_histograms_survive() {
        let mut r = ObsRecorder::new();
        r.set_max_events(2);
        for _ in 0..5 {
            r.span_begin("s");
            r.span_end("s");
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.dropped_events(), 3);
        assert_eq!(r.registry().histogram("s").unwrap().count(), 5);
        assert!(r.jsonl().contains("obs.spans_dropped"));
    }

    #[test]
    fn shard_merge_combines_timelines() {
        let mut main = ObsRecorder::new();
        let mut w = main.shard(7);
        w.span_begin("work");
        w.counter("done", 3);
        w.span_end("work");
        main.span_begin("drive");
        main.span_end("drive");
        main.merge(w);
        assert_eq!(main.events().len(), 2);
        assert!(main.events().iter().any(|e| e.tid == 7));
        assert_eq!(main.registry().counter("done"), 3);
        let sorted: Vec<_> = main.events().iter().map(|e| e.start_us).collect();
        let mut expect = sorted.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect, "merged timeline is start-sorted");
    }

    #[test]
    fn exporters_emit_wellformed_output() {
        let mut r = ObsRecorder::new();
        r.span_begin("phase \"x\"");
        r.span_end("phase \"x\"");
        r.counter("c", 1);
        r.gauge("g", -5);
        r.observe("h", 42);
        let chrome = r.chrome_trace_json();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("phase \\\"x\\\""));
        let jsonl = r.jsonl();
        // span + counter + gauge + two histograms (explicit `h` plus the
        // span-duration histogram recorded at span_end).
        assert_eq!(jsonl.lines().count(), 5);
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
        let summary = r.summary();
        assert!(summary.contains("counters:") && summary.contains("gauges:"));
    }
}
