//! Periodic progress heartbeats for long-running drivers.

use std::time::{Duration, Instant};

/// An interval gate for progress lines: long loops call
/// [`due`](Heartbeat::due) at convenient points (segment boundaries,
/// work-unit completions) and emit a line only when the configured
/// interval has elapsed since the last emission.
#[derive(Debug)]
pub struct Heartbeat {
    every: Duration,
    started: Instant,
    last_emit: Option<Instant>,
}

impl Heartbeat {
    /// A heartbeat firing at most every `every_secs` seconds
    /// (`0` fires on every call — useful in tests and smokes).
    pub fn new(every_secs: u64) -> Heartbeat {
        Heartbeat {
            every: Duration::from_secs(every_secs),
            started: Instant::now(),
            last_emit: None,
        }
    }

    /// Seconds since the heartbeat was created.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// When the interval has elapsed, arms the next interval and returns
    /// the total elapsed seconds (for rate / ETA math); otherwise `None`.
    pub fn due(&mut self) -> Option<f64> {
        let now = Instant::now();
        let since = now.duration_since(self.last_emit.unwrap_or(self.started));
        if since >= self.every {
            self.last_emit = Some(now);
            Some(now.duration_since(self.started).as_secs_f64())
        } else {
            None
        }
    }
}

/// Formats the standard progress line:
/// `heartbeat[label]: done/total unit (pct%), rate, ETA Ns`.
/// Rates at or above 10⁶/s print in `M<unit>/s`.
pub fn heartbeat_line(label: &str, done: u64, total: u64, unit: &str, elapsed_secs: f64) -> String {
    let pct = if total > 0 {
        done as f64 / total as f64 * 100.0
    } else {
        0.0
    };
    let rate = if elapsed_secs > 0.0 {
        done as f64 / elapsed_secs
    } else {
        0.0
    };
    let rate_str = if rate >= 1e6 {
        format!("{:.2} M{unit}/s", rate / 1e6)
    } else {
        format!("{rate:.0} {unit}/s")
    };
    let eta = if rate > 0.0 && total > done {
        (total - done) as f64 / rate
    } else {
        0.0
    };
    format!("heartbeat[{label}]: {done}/{total} {unit} ({pct:.1}%), {rate_str}, ETA {eta:.0}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_interval_fires_every_call() {
        let mut hb = Heartbeat::new(0);
        assert!(hb.due().is_some());
        assert!(hb.due().is_some());
    }

    #[test]
    fn long_interval_gates() {
        let mut hb = Heartbeat::new(3600);
        assert!(hb.due().is_none(), "an hour has not elapsed");
        assert!(hb.elapsed_secs() >= 0.0);
    }

    #[test]
    fn line_format_is_stable() {
        let line = heartbeat_line("horizon", 2_000_000, 10_000_000, "slots", 0.5);
        assert!(line.starts_with("heartbeat[horizon]: 2000000/10000000 slots (20.0%)"));
        assert!(line.contains("Mslots/s"));
        assert!(line.contains("ETA 2s"));
        let slow = heartbeat_line("sweep", 5, 100, "cells", 10.0);
        assert!(slow.contains("0 cells/s") || slow.contains("1 cells/s"));
        let zero = heartbeat_line("x", 0, 0, "u", 0.0);
        assert!(zero.contains("(0.0%)") && zero.contains("ETA 0s"));
    }
}
