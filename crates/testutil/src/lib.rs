//! Deterministic test harness shared by the integration tests and benches.
//!
//! Everything here is reproducible by construction: RNGs come only from
//! explicit seeds, simulation configurations are canonical named presets,
//! and the paper's Table 1 values live in one golden table instead of being
//! scattered through test files. The invariant helpers encode the
//! cross-crate laws (fork axioms, margin dominance, exact-≤-bound) that
//! every future PR must keep true.

use multihonest::chars::{BernoulliCondition, CharString};
use multihonest::margin::recurrence;
use multihonest::margin::ExactSettlement;
use multihonest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic RNG fixture. All workspace tests derive their randomness
/// from this function so failures replay exactly.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples `count` characteristic strings of length `len` from `cond`,
/// deterministically in `seed`.
pub fn sample_strings(
    cond: &BernoulliCondition,
    seed: u64,
    count: usize,
    len: usize,
) -> Vec<CharString> {
    let mut rng = rng(seed);
    (0..count).map(|_| cond.sample(&mut rng, len)).collect()
}

/// Canonical [`SimConfig`] presets shared by the integration tests.
pub mod presets {
    use super::*;

    /// The baseline semi-synchronous configuration used across the
    /// theory-vs-simulation suite: 8 honest nodes, 35% adversarial stake,
    /// f = 0.3, Δ = 0, private withholding with adversarial tie-breaking.
    pub fn base_sim() -> SimConfig {
        SimConfig {
            honest_nodes: 8,
            adversarial_stake: 0.35,
            active_slot_coeff: 0.3,
            delta: 0,
            slots: 500,
            tie_break: TieBreak::AdversarialOrder,
            strategy: Strategy::PrivateWithholding,
        }
    }

    /// A 45%-stake variant strong enough to exhibit settlement violations
    /// within a few hundred slots.
    pub fn high_stake_sim() -> SimConfig {
        SimConfig {
            adversarial_stake: 0.45,
            slots: 800,
            ..base_sim()
        }
    }

    /// A purely honest execution (chain growth / quality baselines).
    pub fn honest_sim() -> SimConfig {
        SimConfig {
            adversarial_stake: 0.0,
            strategy: Strategy::Honest,
            slots: 2_000,
            ..base_sim()
        }
    }

    /// The Bernoulli condition behind a Table-1 cell (canonical
    /// parameterization: [`BernoulliCondition::from_alpha_ratio`]).
    pub fn table1_condition(alpha: f64, ratio: f64) -> BernoulliCondition {
        BernoulliCondition::from_alpha_ratio(alpha, ratio).expect("table parameters are valid")
    }
}

/// Golden snapshots of paper Table 1 (page 26) and the harness that checks
/// the exact DP against them.
pub mod golden {
    use super::*;

    /// One pinned Table-1 cell: `(alpha, ratio, k, published value)`.
    pub type GoldenCell = (f64, f64, usize, f64);

    /// Default relative tolerance against published values: the paper's
    /// code truncates/rounds slightly differently, so 5% is the tightest
    /// uniformly honest bound.
    pub const PUBLISHED_RTOL: f64 = 0.05;

    /// The α sweep of the fully-synchronous (`ratio = 1`) `k = 100` row.
    pub const K100_ROW: &[GoldenCell] = &[
        (0.01, 1.0, 100, 5.70e-54),
        (0.10, 1.0, 100, 5.10e-18),
        (0.20, 1.0, 100, 2.28e-8),
        (0.30, 1.0, 100, 8.00e-4),
        (0.40, 1.0, 100, 1.37e-1),
        (0.49, 1.0, 100, 9.05e-1),
    ];

    /// Cells with multi-honest rows (`ratio < 1`).
    pub const MULTI_HONEST_CELLS: &[GoldenCell] = &[
        (0.20, 0.9, 100, 3.24e-8),
        (0.20, 0.8, 100, 5.10e-8),
        (0.30, 0.5, 100, 2.80e-3),
        (0.40, 0.25, 100, 3.17e-1),
        (0.30, 0.25, 200, 3.36e-4),
        (0.10, 0.25, 200, 1.06e-15),
    ];

    /// Deeper-horizon cells (k up to 400).
    pub const DEEP_K_CELLS: &[GoldenCell] = &[
        (0.30, 1.0, 300, 3.25e-9),
        (0.40, 1.0, 400, 2.18e-3),
        (0.30, 0.8, 200, 2.73e-6),
        (0.20, 0.5, 300, 6.60e-19),
        (0.20, 1.0, 400, 8.02e-30),
        (0.49, 1.0, 400, 8.29e-1),
    ];

    /// Computes one Table-1 cell with the exact settlement DP.
    pub fn table1_cell(alpha: f64, ratio: f64, k: usize) -> f64 {
        ExactSettlement::new(presets::table1_condition(alpha, ratio)).violation_probability(k)
    }

    /// Exact regression pins, `(ε, p_h, k, pinned value)`: full-precision
    /// outputs of this implementation's margin DP, frozen at workspace
    /// bootstrap. Unlike the published cells (compared at 5%), these are
    /// checked to 1e-12 relative so any change to the DP — reordering of
    /// accumulations included — is caught exactly.
    pub const EXACT_PIN_CELLS: &[(f64, f64, usize, f64)] = &[
        (0.2, 0.4, 50, 3.3778189883856813e-1),
        (0.2, 0.4, 150, 8.653534103129874e-2),
        (0.3, 0.3, 100, 3.937284428525752e-2),
        (0.4, 0.6, 100, 9.978635859396378e-4),
        (0.1, 0.2, 80, 6.623841191521084e-1),
        (0.05, 0.5, 200, 6.702045348289039e-1),
    ];

    /// Relative tolerance for [`EXACT_PIN_CELLS`]: allows only
    /// last-few-ulp noise, not algorithmic drift.
    pub const EXACT_PIN_RTOL: f64 = 1e-12;

    /// Exact regression pins for the **cumulative horizon** variant,
    /// `(ε, p_h, k, horizon, pinned value)`: full-precision outputs of
    /// [`ExactSettlement::violation_by_horizon`], frozen from the
    /// pre-banding (seed) kernel so the fused incremental-absorption path
    /// is pinned to the original sweep-based accounting at 1e-12.
    pub const HORIZON_PIN_CELLS: &[(f64, f64, usize, usize, f64)] = &[
        (0.2, 0.4, 20, 60, 6.438614610722835e-1),
        (0.3, 0.3, 40, 120, 2.551925817226445e-1),
        (0.4, 0.6, 60, 200, 1.3891542917455512e-2),
        (0.1, 0.2, 30, 90, 8.725806631805576e-1),
        (0.05, 0.5, 50, 150, 9.018876678179283e-1),
    ];

    /// Exact regression pins for the finite-prefix variant,
    /// `(ε, p_h, prefix length m, k, pinned value)`, frozen from the seed
    /// kernel like [`HORIZON_PIN_CELLS`].
    pub const FINITE_PREFIX_PIN_CELLS: &[(f64, f64, usize, usize, f64)] = &[
        (0.2, 0.4, 50, 40, 3.8686454521574176e-1),
        (0.3, 0.5, 200, 80, 4.137463537709113e-2),
    ];

    /// Asserts every exact-pin cell reproduces its frozen value.
    pub fn assert_exact_pins() {
        for &(epsilon, p_h, k, pinned) in EXACT_PIN_CELLS {
            let cond = BernoulliCondition::new(epsilon, p_h).expect("pin parameters are valid");
            let p = ExactSettlement::new(cond).violation_probability(k);
            assert!(
                (p / pinned - 1.0).abs() < EXACT_PIN_RTOL,
                "margin DP drifted at ε={epsilon} p_h={p_h} k={k}: got {p:e}, pinned {pinned:e}"
            );
        }
    }

    /// Asserts the horizon-variant and finite-prefix pins: together with
    /// [`assert_exact_pins`] this freezes every public entry point of the
    /// exact DP against kernel drift at 1e-12.
    pub fn assert_horizon_and_prefix_pins() {
        for &(epsilon, p_h, k, horizon, pinned) in HORIZON_PIN_CELLS {
            let cond = BernoulliCondition::new(epsilon, p_h).expect("pin parameters are valid");
            let p = ExactSettlement::new(cond).violation_by_horizon(k, horizon);
            assert!(
                (p / pinned - 1.0).abs() < EXACT_PIN_RTOL,
                "violation_by_horizon drifted at ε={epsilon} p_h={p_h} k={k} horizon={horizon}: \
                 got {p:e}, pinned {pinned:e}"
            );
        }
        for &(epsilon, p_h, m, k, pinned) in FINITE_PREFIX_PIN_CELLS {
            let cond = BernoulliCondition::new(epsilon, p_h).expect("pin parameters are valid");
            let p = ExactSettlement::new(cond).violation_probabilities_finite_prefix(m, &[k])[0];
            assert!(
                (p / pinned - 1.0).abs() < EXACT_PIN_RTOL,
                "finite-prefix DP drifted at ε={epsilon} p_h={p_h} m={m} k={k}: \
                 got {p:e}, pinned {pinned:e}"
            );
        }
    }

    /// Frozen settled-slot counts of the canonical simulation presets:
    /// `(preset name, seed, k, |{s ∈ 1..=slots : (s, k) settled}|)`,
    /// computed through the indexed consistency layer and frozen at the
    /// PR-3 consistency-layer rebuild (which also fixed the Definition-3
    /// `t ≥ s + k` off-by-one and made leaders adopt their own minted
    /// block at mint time — these pins freeze the *fixed* dynamics; note
    /// the honest preset now shows a few small-`k` violations, the
    /// paper's concurrent-leader ambiguity, which instant-convergence
    /// hid before the fix). Any change to leader sampling, delivery
    /// scheduling, the longest-chain rule or the divergence index shows
    /// up here exactly.
    pub const SIM_SETTLED_PINS: &[(&str, u64, usize, usize)] = &[
        ("base", 1, 10, 498),
        ("base", 1, 20, 500),
        ("base", 2, 10, 490),
        ("base", 2, 20, 499),
        ("high_stake", 1, 10, 767),
        ("high_stake", 1, 20, 788),
        ("high_stake", 2, 10, 792),
        ("high_stake", 2, 20, 800),
        ("honest", 1, 10, 1998),
        ("honest", 1, 20, 2000),
        ("honest", 2, 10, 1995),
        ("honest", 2, 20, 2000),
    ];

    /// The preset config behind a [`SIM_SETTLED_PINS`] name.
    pub fn sim_pin_config(name: &str) -> SimConfig {
        match name {
            "base" => presets::base_sim(),
            "high_stake" => presets::high_stake_sim(),
            "honest" => presets::honest_sim(),
            other => panic!("unknown sim pin preset {other:?}"),
        }
    }

    /// Asserts every [`SIM_SETTLED_PINS`] entry reproduces its frozen
    /// settled-slot count through the batch sweep.
    pub fn assert_sim_settled_pins() {
        for &(name, seed, k, pinned) in SIM_SETTLED_PINS {
            let cfg = sim_pin_config(name);
            let sim = Simulation::run(&cfg, seed);
            let settled = cfg.slots - sim.count_violating_slots(k, cfg.slots);
            assert_eq!(
                settled, pinned,
                "settled-slot count drifted on preset {name:?} seed {seed} k {k}"
            );
        }
    }

    /// The condition behind the canonical-fork Monte-Carlo presets (the
    /// `astar` bench condition: ε = 0.2, p_h = 0.4).
    pub fn canonical_mc_condition() -> BernoulliCondition {
        BernoulliCondition::new(0.2, 0.4).expect("valid condition")
    }

    /// Frozen canonical-fork pins: `(seed, len, ρ(w), vertex count)` for
    /// strings sampled from [`canonical_mc_condition`] through the
    /// [`sample_strings`](super::sample_strings) fixture. The `A*` engine
    /// must reproduce these exactly — and the resulting forks must pass
    /// the full `is_canonical` check (Theorem 6) — so any drift in the
    /// incremental reach engine, the diverging-pair selection or the
    /// conservative-extension order shows up here.
    pub const CANONICAL_PINS: &[(u64, usize, i64, usize)] = &[
        (1, 40, 1, 84),
        (1, 60, 0, 155),
        (2, 60, 2, 190),
        (3, 120, 2, 220),
    ];

    /// Asserts every [`CANONICAL_PINS`] entry: the engine-built fork is
    /// canonical and reproduces its frozen `(ρ, vertices)` fingerprint,
    /// bit-identically to the definitional oracle.
    pub fn assert_canonical_pins() {
        use multihonest::adversary::{astar, is_canonical, OptimalAdversary};
        let cond = canonical_mc_condition();
        for &(seed, len, rho, vertices) in CANONICAL_PINS {
            let w = &super::sample_strings(&cond, seed, 1, len)[0];
            let fork = OptimalAdversary::build(w);
            assert_eq!(fork, astar::reference::build(w), "oracle drift on {w}");
            assert!(is_canonical(&fork), "A* fork not canonical for {w}");
            let ra = multihonest::fork::ReachAnalysis::new(&fork);
            assert_eq!(
                (ra.rho(), fork.vertex_count()),
                (rho, vertices),
                "canonical fingerprint drifted on seed {seed} len {len}"
            );
        }
    }

    /// Frozen [`CanonicalMonteCarlo`] summary pins:
    /// `(trials, seed, len, ρ agreements, max ρ, µ_ε(w) ≥ 0 trials)`.
    /// The driver's integer aggregates are exact and thread-count
    /// invariant, so these values are stable whatever the parallelism.
    ///
    /// [`CanonicalMonteCarlo`]: multihonest::adversary::CanonicalMonteCarlo
    pub const CANONICAL_MC_PINS: &[(u64, u64, usize, u64, i64, u64)] =
        &[(16, 5, 300, 16, 12, 0), (24, 9, 150, 24, 6, 2)];

    /// Asserts every [`CANONICAL_MC_PINS`] entry through the parallel
    /// driver.
    pub fn assert_canonical_mc_pins() {
        use multihonest::adversary::CanonicalMonteCarlo;
        let cond = canonical_mc_condition();
        for &(trials, seed, len, agreements, max_rho, nonneg) in CANONICAL_MC_PINS {
            let s = CanonicalMonteCarlo::new(cond, trials, seed).summary(len);
            assert_eq!(
                (s.rho_agreements, s.max_rho, s.nonneg_margin_trials),
                (agreements, max_rho, nonneg),
                "canonical MC summary drifted at trials {trials} seed {seed} len {len}"
            );
        }
    }

    /// Frozen **columnar-engine execution fingerprints**:
    /// `(scenario name, seed, slots, fingerprint)` over the scenario
    /// library presets, computed by
    /// [`execution_fingerprint`](multihonest::scenario::execution_fingerprint)
    /// (a SplitMix fold over the full tip trace, rollback record and
    /// headline metrics). The first entry pins a **10⁵-slot**
    /// withholding execution — the scenario engine's long-horizon
    /// regression: any drift in leader sampling, ring scheduling, the
    /// longest-chain rule, the Δ clamp or the divergence fold flips it.
    pub const SCENARIO_FINGERPRINT_PINS: &[(&str, u64, usize, u64)] = &[
        ("private-withholding", 1, 100_000, 0x02da_cf55_beea_4679),
        ("balance-attack", 2, 20_000, 0x41d6_8ae8_9d8c_3944),
        ("honest", 3, 20_000, 0xd7f0_7176_061e_7d3f),
        ("withholding-lag16", 1, 20_000, 0x1bc4_815f_db6d_c38d),
        ("withholding-zipf-stake", 1, 20_000, 0x62bc_a0dd_482f_a7aa),
    ];

    /// Asserts every [`SCENARIO_FINGERPRINT_PINS`] entry: the columnar
    /// engine reproduces each frozen execution exactly.
    pub fn assert_scenario_fingerprints() {
        use multihonest::scenario::{execution_fingerprint, scenario_library, ColumnarSimulation};
        for &(name, seed, slots, pinned) in SCENARIO_FINGERPRINT_PINS {
            let lib = scenario_library(slots);
            let sc = lib
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("unknown scenario pin {name:?}"));
            let mut strategy = sc.strategy();
            let schedule = sc.schedule(seed);
            let sim =
                ColumnarSimulation::run_with_schedule(&sc.config, &schedule, strategy.as_mut());
            assert_eq!(
                execution_fingerprint(&sim),
                pinned,
                "columnar execution drifted on scenario {name:?} seed {seed} slots {slots}"
            );
        }
    }

    /// Asserts the **empty fault plan is invisible**: every
    /// [`SCENARIO_FINGERPRINT_PINS`] execution routed through the
    /// fault-injection entry point with an empty [`FaultPlan`] reproduces
    /// the very same frozen fingerprint, and the degradation ledger stays
    /// all-zero. This is the bit-identity contract the fault layer must
    /// never break.
    ///
    /// [`FaultPlan`]: multihonest::sim::FaultPlan
    pub fn assert_empty_plan_is_invisible() {
        use multihonest::scenario::{execution_fingerprint, scenario_library, ColumnarSimulation};
        use multihonest::sim::FaultPlan;
        let empty = FaultPlan::new();
        for &(name, seed, slots, pinned) in SCENARIO_FINGERPRINT_PINS {
            let lib = scenario_library(slots);
            let sc = lib
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("unknown scenario pin {name:?}"));
            let mut strategy = sc.strategy();
            let schedule = sc.schedule(seed);
            let (sim, ledger) = ColumnarSimulation::run_with_schedule_faults(
                &sc.config,
                &schedule,
                strategy.as_mut(),
                &empty,
            );
            assert_eq!(
                execution_fingerprint(&sim),
                pinned,
                "empty fault plan perturbed scenario {name:?} seed {seed} slots {slots}"
            );
            assert_eq!(ledger.deferred, 0, "{name}: empty plan deferred");
            assert_eq!(ledger.dropped, 0, "{name}: empty plan dropped");
            assert_eq!(ledger.worst_effective_delta, 0, "{name}");
            assert!(ledger.windows.is_empty(), "{name}: empty plan has windows");
        }
    }

    /// Frozen **fault-injection execution fingerprints**:
    /// `(fault scenario name, seed, slots, fingerprint, deferred)` over
    /// the fault library ([`fault_library`]) through the traced
    /// fault-injection entry point. Any drift in the delivery predicate,
    /// the parking/release order, the loss coin or the resync rule flips
    /// the fingerprint; the deferral count pins the ledger itself.
    ///
    /// [`fault_library`]: multihonest::scenario::fault_library
    pub const FAULT_SCENARIO_PINS: &[(&str, u64, usize, u64, u64)] = &[
        ("partition-halves", 1, 400, 0x1f32_851a_41ed_edd0, 10),
        ("eclipse-victim", 1, 400, 0xc0de_341f_553c_827f, 1),
        ("crash-recover", 2, 400, 0x4344_9c31_8dc6_3430, 2),
        ("crash-at-genesis", 12, 400, 0x5104_8e90_9223_ce20, 1),
        ("lossy-window", 7, 400, 0x9b02_681c_c6c7_1ca3, 10),
        ("compound-chain", 1, 400, 0x5aaa_3648_9903_6e4d, 10),
        ("partition-withholding", 10, 400, 0x2a26_00ef_7a76_9eb9, 5),
    ];

    /// Asserts every [`FAULT_SCENARIO_PINS`] entry: the fault-injection
    /// layer reproduces each frozen faulty execution exactly, on both
    /// engines.
    pub fn assert_fault_scenario_pins() {
        use multihonest::scenario::{execution_fingerprint, fault_library, ColumnarSimulation};
        for &(name, seed, slots, pinned, deferred) in FAULT_SCENARIO_PINS {
            let lib = fault_library(slots);
            let sc = lib
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("unknown fault scenario pin {name:?}"));
            let mut strategy = sc.config.strategy.instantiate();
            let schedule = sc.schedule(seed);
            let (sim, ledger) = ColumnarSimulation::run_with_schedule_faults(
                &sc.config,
                &schedule,
                strategy.as_mut(),
                &sc.plan,
            );
            assert_eq!(
                execution_fingerprint(&sim),
                pinned,
                "faulty execution drifted on scenario {name:?} seed {seed} slots {slots}"
            );
            assert_eq!(
                ledger.deferred, deferred,
                "degradation ledger drifted on scenario {name:?}"
            );

            let mut ref_strategy = sc.config.strategy.instantiate();
            let ref_schedule = sc.reference_schedule(seed);
            let (_, ref_ledger) = multihonest::sim::Simulation::run_with_schedule_faults(
                &sc.config,
                ref_schedule,
                ref_strategy.as_mut(),
                &sc.plan,
            );
            assert_eq!(
                ref_ledger, ledger,
                "reference engine ledger diverged on scenario {name:?}"
            );
        }
    }

    /// Frozen **streaming-pipeline fingerprints**: `(scenario name,
    /// seed, slots, fingerprint)` over the scenario library, computed by
    /// [`streaming_validation_fingerprint`] — a SplitMix fold over the
    /// full margin channel (every `(slot, ρ, µ)` event the pipeline
    /// emits), the streamed fork's vertex count, the online Δ-axiom
    /// verdict and the final `(ρ, µ)`. The first entry pins a
    /// **10⁵-slot** withholding execution validated and margin-tracked
    /// entirely online: any drift in the [`ForkFold`] event order, the
    /// Fenwick (F4Δ) checks, the streaming reduction `ρ_Δ` or the margin
    /// recurrence flips it.
    ///
    /// [`ForkFold`]: multihonest::fork::ForkFold
    /// [`streaming_validation_fingerprint`]: streaming_validation_fingerprint
    pub const STREAMING_VALIDATION_PINS: &[(&str, u64, usize, u64)] = &[
        ("private-withholding", 1, 100_000, 0x87ed_c81c_9b2b_7eb9),
        ("balance-attack", 2, 20_000, 0x6ac6_5663_45d6_1b5e),
        ("withholding-lag16", 1, 20_000, 0x7313_596e_80c2_d096),
    ];

    /// Runs the named scenario preset through the streaming fork pipeline
    /// ([`run_streaming_validated`]) and folds its outputs into one word
    /// (see [`STREAMING_VALIDATION_PINS`]).
    ///
    /// [`run_streaming_validated`]: multihonest::scenario::run_streaming_validated
    pub fn streaming_validation_fingerprint(name: &str, seed: u64, slots: usize) -> u64 {
        use multihonest::scenario::{run_streaming_validated, scenario_library};
        use multihonest::sim::MetricsSink;
        #[inline]
        fn mix(h: u64, v: u64) -> u64 {
            let mut z = h ^ v.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        struct FpSink(u64);
        impl MetricsSink for FpSink {
            fn on_margin(&mut self, slot: usize, rho: i64, margin: i64) {
                self.0 = mix(mix(mix(self.0, slot as u64), rho as u64), margin as u64);
            }
        }
        let lib = scenario_library(slots);
        let sc = lib
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("unknown streaming pin scenario {name:?}"));
        let mut strategy = sc.strategy();
        let schedule = sc.schedule(seed);
        let mut sink = FpSink(0);
        let out = run_streaming_validated(&sc.config, &schedule, strategy.as_mut(), &mut sink);
        let mut h = sink.0;
        h = mix(h, out.pipeline.fork.vertex_count() as u64);
        h = mix(h, u64::from(out.pipeline.validation.is_ok()));
        h = mix(h, out.pipeline.rho as u64);
        h = mix(h, out.pipeline.margin as u64);
        h = mix(h, out.metrics.final_height as u64);
        h
    }

    /// Asserts every [`STREAMING_VALIDATION_PINS`] entry: the streaming
    /// fork pipeline reproduces each frozen online-validated execution
    /// exactly.
    pub fn assert_streaming_validation_pins() {
        for &(name, seed, slots, pinned) in STREAMING_VALIDATION_PINS {
            assert_eq!(
                streaming_validation_fingerprint(name, seed, slots),
                pinned,
                "streaming pipeline drifted on scenario {name:?} seed {seed} slots {slots}"
            );
        }
    }

    /// The frozen campaign-pin spec: a 4-cell sweep small enough for
    /// tier-1 but crossing both stake profiles, a withholding strategy
    /// and a non-zero Δ. The fault axis is the degenerate `[None]`, which
    /// keeps cell indices and trial seeds identical to the pre-fault-axis
    /// grid — [`CAMPAIGN_AGGREGATE_PINS`] froze before the axis existed
    /// and must keep reproducing.
    pub fn campaign_pin_spec() -> multihonest::sweep::CampaignSpec {
        use multihonest::sweep::{CampaignSpec, FaultProfile, StakeProfile, SweepStrategy};
        CampaignSpec {
            strategies: vec![
                SweepStrategy::Honest,
                SweepStrategy::Withholding { release_lag: 4 },
            ],
            deltas: vec![2],
            profiles: vec![StakeProfile::Uniform, StakeProfile::Zipf],
            honest_nodes: 8,
            adversarial_stake: 0.3,
            active_slot_coeff: 0.25,
            tie_break: multihonest::sim::TieBreak::AdversarialOrder,
            slots: 150,
            trials_per_cell: 8,
            ks: vec![8, 24],
            seed: 77,
            faults: vec![FaultProfile::None],
        }
    }

    /// Frozen **campaign aggregate fingerprints**: `(cell index,
    /// CellAggregate fingerprint)` of [`campaign_pin_spec`], preceded by
    /// the pinned spec fingerprint. The per-cell value is an
    /// order-invariant SplitMix fold over every trial's seed, violating
    /// anchors and headline metrics, so any drift in seed sharding, the
    /// columnar engine, the arena reset path or the settlement index
    /// flips it — whatever the thread count used to run the campaign.
    pub const CAMPAIGN_SPEC_PIN: u64 = 0x579f_a6fc_7629_60c6;
    /// See [`CAMPAIGN_SPEC_PIN`].
    pub const CAMPAIGN_AGGREGATE_PINS: &[(u64, u64)] = &[
        (0, 0x31d1_5ec1_1d19_b71b),
        (1, 0xae42_3cae_7b33_811f),
        (2, 0xf163_9ac6_4b2c_f756),
        (3, 0xfb67_d467_6760_c1ac),
    ];

    /// Asserts every [`CAMPAIGN_AGGREGATE_PINS`] entry through the
    /// work-stealing executor (2 workers, so the claim order differs
    /// from the single-threaded pin run that froze the values).
    pub fn assert_campaign_pins() {
        use multihonest::sweep::{run_campaign, RunOptions};
        let spec = campaign_pin_spec();
        assert_eq!(
            spec.fingerprint(),
            CAMPAIGN_SPEC_PIN,
            "campaign pin spec drifted (grid or parameter change)"
        );
        let outcome = run_campaign(
            &spec,
            &RunOptions {
                threads: 2,
                checkpoint: None,
                stop_after_cells: None,
            },
        )
        .expect("no checkpoint involved");
        assert!(outcome.is_complete());
        for &(cell, pinned) in CAMPAIGN_AGGREGATE_PINS {
            let agg = outcome.aggregates[cell as usize]
                .as_ref()
                .expect("complete campaign");
            assert_eq!(
                agg.fingerprint, pinned,
                "campaign aggregate drifted at cell {cell}"
            );
        }
    }

    /// Asserts every golden cell within relative tolerance `rtol`.
    pub fn assert_cells_match(cells: &[GoldenCell], rtol: f64) {
        for &(alpha, ratio, k, expected) in cells {
            let p = table1_cell(alpha, ratio, k);
            assert!(
                (p / expected - 1.0).abs() < rtol,
                "Table 1 cell α={alpha} ratio={ratio} k={k}: got {p:e}, want {expected:e} (rtol {rtol})"
            );
        }
    }
}

/// Cross-crate invariant assertions — the laws the paper proves, phrased so
/// any test or bench can enforce them on arbitrary inputs.
pub mod invariants {
    use super::*;
    use multihonest::fork::Fork;

    /// Axiom conformance: the fork passes validation (fork axioms A1–A5).
    pub fn assert_axiom_conformant(fork: &Fork) {
        if let Err(e) = fork.validate() {
            panic!("fork violates the fork axioms: {e:?}");
        }
    }

    /// Margin dominance (Theorem 5 / Proposition 1): the closed fork's
    /// definitional relative margins never exceed the recurrence optimum,
    /// at any cut.
    pub fn assert_margins_dominated(closed: &Fork, w: &CharString, context: &str) {
        let ra = ReachAnalysis::new(closed);
        let margins = ra.relative_margins();
        assert_eq!(
            margins.len(),
            w.len() + 1,
            "{context}: expected one relative margin per cut of {w}"
        );
        assert!(
            ra.rho() <= recurrence::rho(w),
            "{context}: reach {} exceeds recurrence ρ {}",
            ra.rho(),
            recurrence::rho(w)
        );
        for (cut, &margin) in margins.iter().enumerate() {
            assert!(
                margin <= recurrence::relative_margin(w, cut),
                "{context}: margin at cut {cut} of {w} exceeds recurrence"
            );
        }
    }

    /// Exact ≤ bound: the exact DP violation probability is dominated by
    /// the analytic Theorem-1 insecurity bound wherever the bound is
    /// nontrivial (< 1).
    pub fn assert_exact_below_bound(cond: &BernoulliCondition, ks: &[usize]) {
        let exact = ExactSettlement::new(*cond);
        for &k in ks {
            let p = exact.violation_probability(k);
            let bound = multihonest::analytic::settlement_insecurity_bound(
                cond.epsilon(),
                cond.p_unique_honest(),
                k,
            )
            .expect("condition parameters are valid for Theorem 1");
            if bound < 1.0 {
                assert!(
                    p <= bound * (1.0 + 1e-9),
                    "exact {p:e} exceeds analytic bound {bound:e} at k={k} for {cond:?}"
                );
            }
        }
    }
}
