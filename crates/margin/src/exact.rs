//! The exact settlement-probability dynamic program of paper Section 6.6.
//!
//! Under the `(ε, p_h)`-Bernoulli condition the pair `(ρ(xy), µ_x(y))`
//! evolves as a Markov chain (Theorem 5). Propagating its joint law for
//! `k` steps and summing the mass with `µ ≥ 0` yields the **exact**
//! probability that slot `|x| + 1` suffers a `k`-settlement violation —
//! the numbers published in Table 1 of the paper.
//!
//! The initial law of `ρ(x)`:
//!
//! * for `|x| → ∞`, the paper uses the dominating stationary law
//!   `X_∞(r) = (1 − β) β^r` with `β = (1 − ε)/(1 + ε)` (Equation (9));
//! * for finite `|x| = m`, the birth–death recurrence of Equation (13)
//!   propagated `m` steps from `ρ(ε) = 0`.
//!
//! ## Exact truncation
//!
//! A naive implementation needs `O(T)` reach values and `O(T)` margin
//! values per step (`O(T³)` total, as in the paper). We sharpen this with
//! two *lossless* truncations for a fixed horizon `k`:
//!
//! * margins below `−(k + 1)` can never return to `0` within the horizon —
//!   an absorbing "dead" floor;
//! * reaches (and margins) above `C = k + 2` stay positive throughout the
//!   horizon, so `C` acts as an absorbing ceiling whose exact value never
//!   influences the `µ ≥ 0` statistics below it.
//!
//! Both arguments rely on `|ρ' − ρ| ≤ 1` and `|µ' − µ| ≤ 1` per step, which
//! Theorem 5's recurrence guarantees.

use multihonest_chars::BernoulliCondition;

/// Exact `k`-settlement violation probabilities under a Bernoulli
/// condition (paper Section 6.6; regenerates Table 1).
///
/// # Examples
///
/// ```
/// use multihonest_chars::BernoulliCondition;
/// use multihonest_margin::ExactSettlement;
///
/// // α = Pr[A] = 0.30, all honest slots uniquely honest.
/// let cond = BernoulliCondition::from_probabilities(0.70, 0.0, 0.30)?;
/// let exact = ExactSettlement::new(cond);
/// let p = exact.violation_probability(100);
/// // Table 1 row (Pr[h]/(1−α) = 1.0, k = 100, α = 0.30): 8.00E-04.
/// assert!((p / 8.00e-4 - 1.0).abs() < 0.05, "p = {p:e}");
/// # Ok::<(), multihonest_chars::DistributionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExactSettlement {
    cond: BernoulliCondition,
}

/// The joint law of `(ρ, µ)` over the truncated lattice, plus absorbed
/// mass buckets.
#[derive(Debug, Clone)]
struct Lattice {
    /// Horizon this lattice was sized for.
    cap: i64,
    /// Margin floor (absorbing dead state), `= −(k + 1)`.
    floor: i64,
    /// `mass[idx(r, m)]`, `r ∈ 0..=cap`, `m ∈ floor..=cap`, `m ≤ r`.
    mass: Vec<f64>,
    /// Mass absorbed at "margin ≥ cap forever" (always a violation).
    always: f64,
    width: usize,
}

impl Lattice {
    fn new(k: usize) -> Lattice {
        let cap = k as i64 + 2;
        let floor = -(k as i64 + 1);
        let width = (cap - floor + 1) as usize;
        Lattice {
            cap,
            floor,
            mass: vec![0.0; (cap as usize + 1) * width],
            always: 0.0,
            width,
        }
    }

    #[inline]
    fn idx(&self, r: i64, m: i64) -> usize {
        debug_assert!((0..=self.cap).contains(&r));
        debug_assert!((self.floor..=self.cap).contains(&m));
        r as usize * self.width + (m - self.floor) as usize
    }

    /// Seeds the diagonal `µ = ρ = r` with the given reach distribution;
    /// `tail` is the lumped mass `Pr[ρ ≥ cap]` (always a violation within
    /// the horizon).
    fn seed(&mut self, reach_law: &[f64], tail: f64) {
        debug_assert_eq!(reach_law.len() as i64, self.cap);
        for (r, &p) in reach_law.iter().enumerate() {
            let i = self.idx(r as i64, r as i64);
            self.mass[i] += p;
        }
        self.always += tail;
    }

    /// One step of the Theorem-5 Markov chain.
    fn step(&mut self, p_h: f64, p_hh: f64, p_a: f64) {
        let mut next = vec![0.0; self.mass.len()];
        for r in 0..=self.cap {
            let m_lo = self.floor;
            let m_hi = r.min(self.cap);
            for m in m_lo..=m_hi {
                let p = self.mass[self.idx(r, m)];
                if p == 0.0 {
                    continue;
                }
                // Dead floor: absorbing (margin can never recover in time).
                if m == self.floor {
                    next[self.idx(r, m)] += p;
                    continue;
                }
                // Ceiling: absorbing (µ stays ≥ 0 through the horizon).
                if m == self.cap {
                    next[self.idx(r, m)] += p;
                    continue;
                }
                // Adversarial symbol: both up (capped).
                {
                    let r2 = (r + 1).min(self.cap);
                    let m2 = (m + 1).min(r2);
                    next[self.idx(r2, m2)] += p * p_a;
                }
                // Honest symbols: ρ decreases (absorbing at cap), µ per (14).
                let r2 = if r == self.cap {
                    self.cap
                } else {
                    (r - 1).max(0)
                };
                let positive_reach = r > 0;
                // b = h:
                {
                    let m2 = if m == 0 && positive_reach { 0 } else { m - 1 };
                    next[self.idx(r2, m2.max(self.floor))] += p * p_h;
                }
                // b = H:
                {
                    let m2 = if m == 0 { 0 } else { m - 1 };
                    next[self.idx(r2, m2.max(self.floor))] += p * p_hh;
                }
            }
        }
        self.mass = next;
    }

    /// `Pr[µ ≥ 0]` right now (including the always-violated bucket).
    fn violation_mass(&self) -> f64 {
        let mut acc = self.always;
        let mut compensation = 0.0;
        for r in 0..=self.cap {
            for m in 0..=r.min(self.cap) {
                // Kahan summation: the masses span ~300 orders of magnitude.
                let y = self.mass[self.idx(r, m)] - compensation;
                let t = acc + y;
                compensation = (t - acc) - y;
                acc = t;
            }
        }
        acc
    }

    /// Moves all mass with `µ ≥ 0` into the `always` bucket (used by the
    /// absorbing "violated by horizon" variant).
    fn absorb_violations(&mut self) {
        for r in 0..=self.cap {
            for m in 0..=r.min(self.cap) {
                let i = self.idx(r, m);
                self.always += self.mass[i];
                self.mass[i] = 0.0;
            }
        }
    }

    #[cfg(test)]
    fn total_mass(&self) -> f64 {
        self.always + self.mass.iter().sum::<f64>()
    }
}

impl ExactSettlement {
    /// Creates the calculator for the given Bernoulli condition.
    pub fn new(cond: BernoulliCondition) -> ExactSettlement {
        ExactSettlement { cond }
    }

    /// The condition in force.
    pub fn condition(&self) -> BernoulliCondition {
        self.cond
    }

    /// The stationary dominating reach law `X_∞` truncated to `0..cap`,
    /// plus the lumped tail mass (Equation (9)).
    fn reach_law_stationary(&self, cap: usize) -> (Vec<f64>, f64) {
        let eps = self.cond.epsilon();
        let beta = (1.0 - eps) / (1.0 + eps);
        let mut law = Vec::with_capacity(cap);
        let mut acc = 0.0;
        for r in 0..cap {
            let p = (1.0 - beta) * beta.powi(r as i32);
            law.push(p);
            acc += p;
        }
        (law, (1.0 - acc).max(0.0))
    }

    /// The law of `ρ(x)` for `|x| = m`, truncated to `0..cap` with lumped
    /// tail, via the birth–death recurrence of Equation (13).
    ///
    /// The walk is run over an extended lattice `0..R` so that excursions
    /// above `cap` that later return are tracked exactly; only mass beyond
    /// `R` — at most `m·β^R < 1e-300` by stochastic dominance under `X_∞`
    /// — is conservatively lumped into the tail. Mass ending in `[cap, R)`
    /// is folded into the tail as well, which is *exact* for the settlement
    /// DP: an initial reach `≥ cap = k + 2` forces `µ ≥ 2` at every
    /// checkpoint within the horizon.
    fn reach_law_finite(&self, m: usize, cap: usize) -> (Vec<f64>, f64) {
        let p_a = self.cond.p_adversarial();
        let p_honest = 1.0 - p_a;
        let eps = self.cond.epsilon();
        let beta = (1.0 - eps) / (1.0 + eps);
        // Extra headroom so that the chance of ever crossing R within m
        // steps is below ~1e-300 (union bound over steps, each dominated
        // by the stationary tail β^R).
        let extra = if beta <= 0.0 {
            0
        } else {
            let need = (1e-300f64 / (m as f64 + 1.0)).ln() / beta.ln();
            (need.ceil().max(0.0) as usize).min(m)
        };
        let r_max = cap + extra;
        let mut law = vec![0.0; r_max];
        let mut escaped = 0.0;
        law[0] = 1.0;
        for _ in 0..m {
            let mut next = vec![0.0; r_max];
            for (r, &p) in law.iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                if r + 1 < r_max {
                    next[r + 1] += p * p_a;
                } else {
                    escaped += p * p_a;
                }
                next[r.saturating_sub(1)] += p * p_honest;
            }
            law = next;
        }
        let mut tail = escaped;
        for &p in &law[cap..] {
            tail += p;
        }
        law.truncate(cap);
        (law, tail)
    }

    /// The exact probability that slot `|x| + 1` suffers a `k`-settlement
    /// violation — `Pr[µ_x(y) ≥ 0]` at `|y| = k` — in the limit
    /// `|x| → ∞` (Table 1's setting).
    pub fn violation_probability(&self, k: usize) -> f64 {
        *self
            .violation_probabilities(&[k])
            .first()
            .expect("one checkpoint requested")
    }

    /// [`Self::violation_probability`] at several checkpoints, sharing one
    /// DP pass sized for the largest.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoints` is empty.
    pub fn violation_probabilities(&self, checkpoints: &[usize]) -> Vec<f64> {
        assert!(!checkpoints.is_empty(), "need at least one checkpoint");
        let k_max = *checkpoints.iter().max().expect("non-empty");
        let mut lat = Lattice::new(k_max);
        let (law, tail) = self.reach_law_stationary(lat.cap as usize);
        lat.seed(&law, tail);
        self.run(&mut lat, checkpoints, k_max)
    }

    /// Violation probabilities with a finite prefix `|x| = m` instead of
    /// the stationary law.
    pub fn violation_probabilities_finite_prefix(
        &self,
        m: usize,
        checkpoints: &[usize],
    ) -> Vec<f64> {
        assert!(!checkpoints.is_empty(), "need at least one checkpoint");
        let k_max = *checkpoints.iter().max().expect("non-empty");
        let mut lat = Lattice::new(k_max);
        let (law, tail) = self.reach_law_finite(m, lat.cap as usize);
        lat.seed(&law, tail);
        self.run(&mut lat, checkpoints, k_max)
    }

    fn run(&self, lat: &mut Lattice, checkpoints: &[usize], k_max: usize) -> Vec<f64> {
        let p_h = self.cond.p_unique_honest();
        let p_hh = self.cond.p_multi_honest();
        let p_a = self.cond.p_adversarial();
        let mut at = Vec::with_capacity(k_max + 1);
        at.push(lat.violation_mass());
        for _ in 1..=k_max {
            lat.step(p_h, p_hh, p_a);
            at.push(lat.violation_mass());
        }
        checkpoints.iter().map(|&k| at[k].min(1.0)).collect()
    }

    /// The probability that a violation occurs **at any horizon in
    /// `k..=horizon`** (the conservative reading of Definition 3, where
    /// the adversary may strike at any time once `k` slots have passed):
    /// `Pr[∃ L ∈ [k, horizon] : µ_x(y_L) ≥ 0]`, `|x| → ∞`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon < k`.
    pub fn violation_by_horizon(&self, k: usize, horizon: usize) -> f64 {
        assert!(horizon >= k, "horizon {horizon} below checkpoint {k}");
        let mut lat = Lattice::new(horizon);
        let (law, tail) = self.reach_law_stationary(lat.cap as usize);
        lat.seed(&law, tail);
        let p_h = self.cond.p_unique_honest();
        let p_hh = self.cond.p_multi_honest();
        let p_a = self.cond.p_adversarial();
        for _ in 0..k {
            lat.step(p_h, p_hh, p_a);
        }
        lat.absorb_violations();
        for _ in k..horizon {
            lat.step(p_h, p_hh, p_a);
            lat.absorb_violations();
        }
        lat.always.min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_chars::CharString;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cond(alpha: f64, ph_ratio: f64) -> BernoulliCondition {
        let p_h = ph_ratio * (1.0 - alpha);
        BernoulliCondition::from_probabilities(p_h, 1.0 - alpha - p_h, alpha).unwrap()
    }

    #[test]
    fn mass_is_conserved() {
        let e = ExactSettlement::new(cond(0.3, 0.8));
        let mut lat = Lattice::new(40);
        let (law, tail) = e.reach_law_stationary(lat.cap as usize);
        lat.seed(&law, tail);
        assert!((lat.total_mass() - 1.0).abs() < 1e-12);
        for _ in 0..40 {
            lat.step(0.35, 0.35, 0.3);
            assert!((lat.total_mass() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn violation_probability_decreases_in_k() {
        let e = ExactSettlement::new(cond(0.2, 0.5));
        let ps = e.violation_probabilities(&[5, 10, 20, 40, 80]);
        for pair in ps.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-15, "not decreasing: {ps:?}");
        }
        assert!(ps[4] > 0.0, "strictly positive violation probability");
        assert!(ps[0] < 1.0);
    }

    #[test]
    fn more_adversarial_stake_is_worse() {
        let ks = [10, 30];
        let lo = ExactSettlement::new(cond(0.1, 0.8)).violation_probabilities(&ks);
        let hi = ExactSettlement::new(cond(0.4, 0.8)).violation_probabilities(&ks);
        for (a, b) in lo.iter().zip(&hi) {
            assert!(a < b, "α=0.1 should beat α=0.4: {a} vs {b}");
        }
    }

    #[test]
    fn multi_honest_slots_hurt_but_mildly() {
        // For fixed α, converting h-mass into H-mass weakly increases the
        // violation probability (H slots can tie) — yet consistency still
        // holds; this is the paper's central quantitative claim.
        let ks = [20, 60];
        let all_h = ExactSettlement::new(cond(0.25, 1.0)).violation_probabilities(&ks);
        let half = ExactSettlement::new(cond(0.25, 0.5)).violation_probabilities(&ks);
        let none = ExactSettlement::new(cond(0.25, 0.01)).violation_probabilities(&ks);
        for i in 0..ks.len() {
            assert!(all_h[i] <= half[i] + 1e-15);
            assert!(half[i] <= none[i] + 1e-15);
        }
        // Error still decays with k even when h-slots are very rare.
        assert!(none[1] < none[0]);
    }

    #[test]
    fn finite_prefix_converges_to_stationary() {
        let e = ExactSettlement::new(cond(0.3, 0.7));
        let ks = [15];
        let stationary = e.violation_probabilities(&ks)[0];
        let short = e.violation_probabilities_finite_prefix(0, &ks)[0];
        let long = e.violation_probabilities_finite_prefix(400, &ks)[0];
        // |x| = 0 (genesis split) is easier for the honest side.
        assert!(short <= stationary + 1e-12);
        // A long prefix approaches the stationary dominating law from below.
        assert!(long <= stationary + 1e-12);
        assert!(
            (long - stationary).abs() < 1e-3,
            "long = {long}, stat = {stationary}"
        );
        assert!(
            (short - stationary).abs() > 1e-6,
            "prefix length must matter"
        );
    }

    #[test]
    fn horizon_variant_dominates_pointwise() {
        let e = ExactSettlement::new(cond(0.25, 0.6));
        let point = e.violation_probability(12);
        let by_horizon = e.violation_by_horizon(12, 40);
        assert!(by_horizon >= point - 1e-15);
        assert!(by_horizon <= 1.0);
        // Extending the horizon only adds violation mass.
        assert!(e.violation_by_horizon(12, 60) >= by_horizon - 1e-15);
    }

    #[test]
    fn matches_monte_carlo_with_long_prefix() {
        // Sample strings xy with |x| = 300, |y| = 8 and compare the margin
        // recurrence frequency of µ_x(y) ≥ 0 against the finite-prefix DP.
        let c = cond(0.3, 0.6);
        let e = ExactSettlement::new(c);
        let k = 8;
        let m = 300;
        let expected = e.violation_probabilities_finite_prefix(m, &[k])[0];
        let mut rng = StdRng::seed_from_u64(2024);
        let trials = 40_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            let w: CharString = c.sample(&mut rng, m + k);
            if crate::recurrence::margin_trace(&w, m)[k] >= 0 {
                hits += 1;
            }
        }
        let freq = hits as f64 / trials as f64;
        let sigma = (expected * (1.0 - expected) / trials as f64).sqrt();
        assert!(
            (freq - expected).abs() < 5.0 * sigma + 1e-4,
            "freq = {freq}, expected = {expected}, sigma = {sigma}"
        );
    }

    #[test]
    fn table1_spot_checks() {
        // Table 1 (page 26), α columns at k = 100. Generated by the same
        // recurrence as the authors' published C++ code; we allow 5%
        // relative slack for their floating-point/truncation choices.
        let cases = [
            // (alpha, ph_ratio, k, expected)
            (0.30, 1.0, 100, 8.00e-4),
            (0.40, 1.0, 100, 1.37e-1),
            (0.30, 0.5, 100, 2.80e-3),
            (0.40, 0.25, 100, 3.17e-1),
            (0.20, 0.8, 100, 5.10e-8),
        ];
        for (alpha, ratio, k, expected) in cases {
            let p = ExactSettlement::new(cond(alpha, ratio)).violation_probability(k);
            assert!(
                (p / expected - 1.0).abs() < 0.05,
                "α={alpha} ratio={ratio} k={k}: got {p:e}, want {expected:e}"
            );
        }
    }
}
