//! The exact settlement-probability dynamic program of paper Section 6.6.
//!
//! Under the `(ε, p_h)`-Bernoulli condition the pair `(ρ(xy), µ_x(y))`
//! evolves as a Markov chain (Theorem 5). Propagating its joint law for
//! `k` steps and summing the mass with `µ ≥ 0` yields the **exact**
//! probability that slot `|x| + 1` suffers a `k`-settlement violation —
//! the numbers published in Table 1 of the paper.
//!
//! The initial law of `ρ(x)`:
//!
//! * for `|x| → ∞`, the paper uses the dominating stationary law
//!   `X_∞(r) = (1 − β) β^r` with `β = (1 − ε)/(1 + ε)` (Equation (9));
//! * for finite `|x| = m`, the birth–death recurrence of Equation (13)
//!   propagated `m` steps from `ρ(ε) = 0`.
//!
//! ## Exact truncation
//!
//! A naive implementation needs `O(T)` reach values and `O(T)` margin
//! values per step (`O(T³)` total, as in the paper). We sharpen this with
//! two *lossless* truncations for a fixed horizon `k`:
//!
//! * margins below `−(k + 1)` can never return to `0` within the horizon —
//!   an absorbing "dead" floor;
//! * reaches (and margins) above `C = k + 2` stay positive throughout the
//!   horizon, so `C` acts as an absorbing ceiling whose exact value never
//!   influences the `µ ≥ 0` statistics below it.
//!
//! Both arguments rely on `|ρ' − ρ| ≤ 1` and `|µ' − µ| ≤ 1` per step, which
//! Theorem 5's recurrence guarantees.
//!
//! ## Banded double-buffer kernel
//!
//! Within the truncated rectangle the occupied set is much smaller than
//! `O(k²)` for most of the run, and the kernel exploits that:
//!
//! * **Live band bounds.** All mass starts on the diagonal `µ = ρ` and
//!   spreads by at most one cell per step in each coordinate, and the
//!   skew `d = ρ − µ` also grows by at most one per step. The lattice
//!   tracks the tight rectangle `(r_lo..=r_hi) × (m_lo..=m_hi)` plus the
//!   skew bound `d_max` of the *observed* non-zero cells and iterates only
//!   `m ∈ [max(floor, m_lo, r − d_max), min(r, cap, m_hi)]` per row. The
//!   bounds are re-tightened from the cells actually seen each step, so
//!   regions whose mass underflows to exact zero (e.g. the geometric reach
//!   tail for small `α`) are never touched again. This is lossless: a cell
//!   outside the grown band provably holds zero mass.
//! * **Ping-pong buffers.** `step` scatters into a pre-allocated second
//!   buffer (zeroing only the writable band) and swaps — no heap
//!   allocation after construction.
//! * **Checkpoint-only accounting.** The `Pr[µ ≥ 0]` Kahan sweep runs only
//!   at requested checkpoints; `violation_by_horizon` instead fuses the
//!   absorption of violating mass into the step itself (an incremental
//!   accumulator), so no per-step full sweep remains anywhere.
//!
//! Per source cell the kernel performs the same floating-point additions
//! in the same order as the straightforward full-rectangle scan, so its
//! output is bit-for-bit identical to the reference kernel (kept under
//! `#[cfg(test)]` and compared exhaustively).

use multihonest_chars::BernoulliCondition;

/// Exact `k`-settlement violation probabilities under a Bernoulli
/// condition (paper Section 6.6; regenerates Table 1).
///
/// # Examples
///
/// ```
/// use multihonest_chars::BernoulliCondition;
/// use multihonest_margin::ExactSettlement;
///
/// // α = Pr[A] = 0.30, all honest slots uniquely honest.
/// let cond = BernoulliCondition::from_probabilities(0.70, 0.0, 0.30)?;
/// let exact = ExactSettlement::new(cond);
/// let p = exact.violation_probability(100);
/// // Table 1 row (Pr[h]/(1−α) = 1.0, k = 100, α = 0.30): 8.00E-04.
/// assert!((p / 8.00e-4 - 1.0).abs() < 0.05, "p = {p:e}");
/// # Ok::<(), multihonest_chars::DistributionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExactSettlement {
    cond: BernoulliCondition,
}

/// The joint law of `(ρ, µ)` over the truncated lattice, plus absorbed
/// mass buckets.
///
/// Invariant: every cell holding non-zero mass lies inside the live band
/// `r ∈ r_lo..=r_hi`, `m ∈ m_lo..=m_hi`, `r − m ≤ d_max` (on top of the
/// structural `0 ≤ r ≤ cap`, `floor ≤ m ≤ min(r, cap)`). Cells outside the
/// band may hold stale values from two steps ago and must never be read;
/// all sweeps below are band-restricted.
#[derive(Debug, Clone)]
struct Lattice {
    /// Horizon this lattice was sized for.
    cap: i64,
    /// Margin floor (absorbing dead state), `= −(k + 1)`.
    floor: i64,
    /// `mass[idx(r, m)]`, `r ∈ 0..=cap`, `m ∈ floor..=cap`, `m ≤ r`.
    mass: Vec<f64>,
    /// Ping-pong partner of `mass`; holds the previous step outside the
    /// current band.
    next: Vec<f64>,
    /// Mass absorbed at "margin ≥ cap forever" (always a violation).
    always: f64,
    /// Mass retired below the dynamic dead floor: cells whose margin can
    /// no longer return to `0` within the remaining steps of the run.
    /// Never read by any violation statistic (its margin is negative at
    /// every remaining checkpoint); kept only so total mass is conserved.
    dead: f64,
    width: usize,
    /// Live band: lowest/highest occupied reach row (empty if `r_lo > r_hi`).
    r_lo: i64,
    r_hi: i64,
    /// Live band: lowest/highest occupied margin column.
    m_lo: i64,
    m_hi: i64,
    /// Largest observed skew `r − m` over occupied cells.
    d_max: i64,
}

impl Lattice {
    fn new(k: usize) -> Lattice {
        let cap = k as i64 + 2;
        let floor = -(k as i64 + 1);
        let width = (cap - floor + 1) as usize;
        let cells = (cap as usize + 1) * width;
        Lattice {
            cap,
            floor,
            mass: vec![0.0; cells],
            next: vec![0.0; cells],
            always: 0.0,
            dead: 0.0,
            width,
            r_lo: 0,
            r_hi: -1,
            m_lo: 0,
            m_hi: -1,
            d_max: 0,
        }
    }

    #[inline]
    fn idx(&self, r: i64, m: i64) -> usize {
        debug_assert!((0..=self.cap).contains(&r));
        debug_assert!((self.floor..=self.cap).contains(&m));
        r as usize * self.width + (m - self.floor) as usize
    }

    /// The live margin range of row `r` (may be empty).
    #[inline]
    fn band_cols(&self, r: i64) -> (i64, i64) {
        let lo = self.m_lo.max(self.floor).max(r - self.d_max);
        let hi = self.m_hi.min(r).min(self.cap);
        (lo, hi)
    }

    /// Seeds the diagonal `µ = ρ = r` with the given reach distribution;
    /// `tail` is the lumped mass `Pr[ρ ≥ cap]` (always a violation within
    /// the horizon).
    fn seed(&mut self, reach_law: &[f64], tail: f64) {
        debug_assert_eq!(reach_law.len() as i64, self.cap);
        for (r, &p) in reach_law.iter().enumerate() {
            let i = self.idx(r as i64, r as i64);
            self.mass[i] += p;
            if p != 0.0 {
                let r = r as i64;
                if self.r_lo > self.r_hi {
                    self.r_lo = r;
                    self.m_lo = r;
                }
                self.r_hi = r;
                self.m_hi = r;
            }
        }
        self.always += tail;
    }

    /// One step of the Theorem-5 Markov chain.
    ///
    /// `remaining` is the number of steps that will follow this one before
    /// the run's final checkpoint; cells whose margin falls below
    /// `−remaining` can never climb back to `0` in time (margins move by
    /// at most one per step), so the step retires them into the `dead`
    /// bucket. This leaves every violation statistic of the run bit-for-bit
    /// unchanged while shrinking the live band from below. Pass a
    /// `remaining` at least as large as the true number of steps left if
    /// the horizon is unknown (e.g. `i64::MAX >> 1` disables the trim).
    fn step(&mut self, p_h: f64, p_hh: f64, p_a: f64, remaining: i64) {
        self.step_impl::<false>(p_h, p_hh, p_a, remaining);
    }

    /// One step that immediately diverts any mass landing on `µ ≥ 0` into
    /// the `always` bucket — equivalent to `step` followed by
    /// [`Self::absorb_violations`], without the extra sweep.
    fn step_absorbing(&mut self, p_h: f64, p_hh: f64, p_a: f64, remaining: i64) {
        self.step_impl::<true>(p_h, p_hh, p_a, remaining);
    }

    fn step_impl<const ABSORB: bool>(&mut self, p_h: f64, p_hh: f64, p_a: f64, remaining: i64) {
        let (cap, floor, width) = (self.cap, self.floor, self.width);
        // Conservative bounds for this step's targets: the band grows by at
        // most one cell per step in every tracked direction.
        let g_r_lo = (self.r_lo - 1).max(0);
        let g_r_hi = (self.r_hi + 1).min(cap);
        let g_m_lo = (self.m_lo - 1).max(floor);
        let g_m_hi = (self.m_hi + 1).min(cap);
        let g_d = self.d_max + 1;
        if self.r_lo > self.r_hi {
            return; // empty band: nothing to propagate
        }
        // Zero exactly the writable band of the scratch buffer.
        for r in g_r_lo..=g_r_hi {
            let lo = g_m_lo.max(r - g_d);
            let hi = g_m_hi.min(r);
            if lo <= hi {
                let base = r as usize * width;
                let a = base + (lo - floor) as usize;
                let b = base + (hi - floor) as usize;
                self.next[a..=b].fill(0.0);
            }
        }
        // Re-tightened bounds observed over this step's non-zero sources.
        let (mut s_r_lo, mut s_r_hi) = (i64::MAX, i64::MIN);
        let (mut s_m_lo, mut s_m_hi) = (i64::MAX, i64::MIN);
        let mut s_d = 0i64;
        // Kahan-compensated absorption accumulator (ABSORB mode only).
        let (mut abs_acc, mut abs_c) = (0.0f64, 0.0f64);
        let kahan_absorb = |x: f64, acc: &mut f64, c: &mut f64| {
            let y = x - *c;
            let t = *acc + y;
            *c = (t - *acc) - y;
            *acc = t;
        };
        let (b_m_lo, b_m_hi, b_d) = (self.m_lo, self.m_hi, self.d_max);
        let mass = &self.mass;
        let next = &mut self.next;
        for r in self.r_lo..=self.r_hi {
            // Inlined `band_cols` (field borrows stay disjoint).
            let m_from = b_m_lo.max(floor).max(r - b_d);
            let m_to = b_m_hi.min(r).min(cap);
            if m_from > m_to {
                continue;
            }
            let src_base = r as usize * width;
            // Re-tighten the band from the cells actually occupied. A
            // dedicated scan keeps the hot transition loop branch-free.
            let row =
                &mass[src_base + (m_from - floor) as usize..=src_base + (m_to - floor) as usize];
            let Some(first) = row.iter().position(|&p| p != 0.0) else {
                continue;
            };
            let last = row.iter().rposition(|&p| p != 0.0).expect("first exists");
            let (row_first, row_last) = (m_from + first as i64, m_from + last as i64);
            if s_r_lo == i64::MAX {
                s_r_lo = r;
            }
            s_r_hi = r;
            s_m_lo = s_m_lo.min(row_first);
            s_m_hi = s_m_hi.max(row_last);
            s_d = s_d.max(r - row_first);
            // Row bases of the three possible target rows.
            let r_up = (r + 1).min(cap);
            let up_base = r_up as usize * width;
            let r_dn = if r == cap { cap } else { (r - 1).max(0) };
            let dn_base = r_dn as usize * width;
            let positive_reach = r > 0;
            if !ABSORB && r > 0 && r < cap {
                // Fast path for interior rows: away from the edge cells
                // (`m ∈ {floor, 0}`; `m = cap` needs `r = cap`) every source
                // performs the same three scatter adds at fixed offsets
                //   A: (r+1, m+1)   h: (r−1, m−1)   H: (r−1, m−1)
                // so the row splits into contiguous segments processed over
                // equal-length slices — no per-cell branch, no recomputed
                // indices. Adding a zero source's `+0.0` products is a
                // bitwise no-op (all masses are non-negative), so zero
                // cells need no skip.
                let mut seg_lo = m_from;
                if seg_lo == floor {
                    // Dead floor: absorbing in place.
                    let i = src_base + (seg_lo - floor) as usize;
                    next[i] += mass[i];
                    seg_lo += 1;
                }
                let (low, high) = next.split_at_mut(src_base);
                let bulk = |a: i64, b: i64, low: &mut [f64], high: &mut [f64]| {
                    if a > b {
                        return;
                    }
                    let len = (b - a + 1) as usize;
                    let s0 = src_base + (a - floor) as usize;
                    let src = &mass[s0..s0 + len];
                    let d0 = dn_base + (a - 1 - floor) as usize;
                    let dn = &mut low[d0..d0 + len];
                    let u0 = (up_base - src_base) + (a + 1 - floor) as usize;
                    let up = &mut high[u0..u0 + len];
                    for ((&p, d), u) in src.iter().zip(dn.iter_mut()).zip(up.iter_mut()) {
                        *u += p * p_a;
                        *d += p * p_h;
                        *d += p * p_hh;
                    }
                };
                if seg_lo <= 0 && 0 <= m_to {
                    bulk(seg_lo, -1, low, high);
                    // m = 0 with positive reach: h and H both keep µ at 0.
                    let p = mass[src_base + (-floor) as usize];
                    let d0 = dn_base + (-floor) as usize;
                    low[d0] += p * p_h;
                    low[d0] += p * p_hh;
                    let u0 = (up_base - src_base) + (1 - floor) as usize;
                    high[u0] += p * p_a;
                    bulk(1, m_to, low, high);
                } else {
                    // Row band entirely below or above µ = 0.
                    bulk(seg_lo, m_to, low, high);
                }
                continue;
            }
            // General path: edge rows (`r ∈ {0, cap}`) and absorbing mode.
            for m in m_from..=m_to {
                let p = mass[src_base + (m - floor) as usize];
                if p == 0.0 {
                    continue;
                }
                // Dead floor: absorbing (margin can never recover in time).
                if m == floor {
                    next[src_base + (m - floor) as usize] += p;
                    continue;
                }
                // Ceiling: absorbing (µ stays ≥ 0 through the horizon).
                if m == cap {
                    if ABSORB {
                        kahan_absorb(p, &mut abs_acc, &mut abs_c);
                    } else {
                        next[src_base + (m - floor) as usize] += p;
                    }
                    continue;
                }
                // Adversarial symbol: both up (capped).
                {
                    let m2 = (m + 1).min(r_up);
                    if ABSORB && m2 >= 0 {
                        kahan_absorb(p * p_a, &mut abs_acc, &mut abs_c);
                    } else {
                        next[up_base + (m2 - floor) as usize] += p * p_a;
                    }
                }
                // Honest symbols: ρ decreases (absorbing at cap), µ per (14).
                // b = h:
                {
                    let m2 = if m == 0 && positive_reach { 0 } else { m - 1 };
                    let m2 = m2.max(floor);
                    if ABSORB && m2 >= 0 {
                        kahan_absorb(p * p_h, &mut abs_acc, &mut abs_c);
                    } else {
                        next[dn_base + (m2 - floor) as usize] += p * p_h;
                    }
                }
                // b = H:
                {
                    let m2 = if m == 0 { 0 } else { m - 1 };
                    let m2 = m2.max(floor);
                    if ABSORB && m2 >= 0 {
                        kahan_absorb(p * p_hh, &mut abs_acc, &mut abs_c);
                    } else {
                        next[dn_base + (m2 - floor) as usize] += p * p_hh;
                    }
                }
            }
        }
        if ABSORB {
            self.always += abs_acc;
        }
        std::mem::swap(&mut self.mass, &mut self.next);
        if s_r_lo == i64::MAX {
            // All mass was previously absorbed; the band is empty.
            self.r_lo = 0;
            self.r_hi = -1;
            self.m_lo = 0;
            self.m_hi = -1;
            self.d_max = 0;
        } else {
            // Targets lie within one cell of the observed sources.
            self.r_lo = (s_r_lo - 1).max(0);
            self.r_hi = (s_r_hi + 1).min(cap);
            self.m_lo = (s_m_lo - 1).max(floor);
            self.m_hi = (s_m_hi + 1).min(cap);
            self.d_max = s_d + 1;
        }
        // Dynamic dead floor: a margin below `−remaining` cannot return to
        // `0` before the run ends, so such cells never contribute to any
        // later violation statistic (nor do their descendants, which stay
        // below the moving floor). Retire them and lift the band's lower
        // edge — this turns the dead lower triangle of the lattice into a
        // scalar bucket.
        let eff_floor = floor.max(-remaining - 1).min(self.cap);
        if self.m_lo <= eff_floor && self.r_lo <= self.r_hi {
            for r in self.r_lo..=self.r_hi {
                let (m_from, m_to) = self.band_cols(r);
                let base = r as usize * width;
                for m in m_from..=m_to.min(eff_floor) {
                    let i = base + (m - floor) as usize;
                    self.dead += self.mass[i];
                    self.mass[i] = 0.0;
                }
            }
            self.m_lo = eff_floor + 1;
            if self.m_lo > self.m_hi {
                self.r_lo = 0;
                self.r_hi = -1;
                self.m_lo = 0;
                self.m_hi = -1;
                self.d_max = 0;
            }
        }
    }

    /// `Pr[µ ≥ 0]` right now (including the always-violated bucket).
    fn violation_mass(&self) -> f64 {
        let mut acc = self.always;
        let mut compensation = 0.0;
        for r in self.r_lo.max(0)..=self.r_hi {
            let (m_from, m_to) = self.band_cols(r);
            let base = r as usize * self.width;
            for m in m_from.max(0)..=m_to {
                // Kahan summation: the masses span ~300 orders of magnitude.
                let y = self.mass[base + (m - self.floor) as usize] - compensation;
                let t = acc + y;
                compensation = (t - acc) - y;
                acc = t;
            }
        }
        acc
    }

    /// Moves all mass with `µ ≥ 0` into the `always` bucket (used by the
    /// absorbing "violated by horizon" variant).
    fn absorb_violations(&mut self) {
        for r in self.r_lo.max(0)..=self.r_hi {
            let (m_from, m_to) = self.band_cols(r);
            let base = r as usize * self.width;
            for m in m_from.max(0)..=m_to {
                let i = base + (m - self.floor) as usize;
                self.always += self.mass[i];
                self.mass[i] = 0.0;
            }
        }
        // The band above µ = −1 is now empty; tighten so subsequent steps
        // skip it. (Mass at the negative margins, if any, is untouched.)
        self.m_hi = self.m_hi.min(-1);
        if self.m_lo > self.m_hi {
            self.r_lo = 0;
            self.r_hi = -1;
            self.m_lo = 0;
            self.m_hi = -1;
            self.d_max = 0;
        }
    }

    /// The mass currently stored for cell `(r, m)`; zero outside the live
    /// band (the raw buffer may hold stale values there).
    #[cfg(test)]
    fn cell(&self, r: i64, m: i64) -> f64 {
        if r < self.r_lo || r > self.r_hi {
            return 0.0;
        }
        let (m_from, m_to) = self.band_cols(r);
        if m < m_from || m > m_to {
            return 0.0;
        }
        self.mass[self.idx(r, m)]
    }

    #[cfg(test)]
    fn total_mass(&self) -> f64 {
        let mut acc = self.always + self.dead;
        for r in self.r_lo.max(0)..=self.r_hi {
            let (m_from, m_to) = self.band_cols(r);
            for m in m_from..=m_to {
                acc += self.mass[self.idx(r, m)];
            }
        }
        acc
    }
}

impl ExactSettlement {
    /// Creates the calculator for the given Bernoulli condition.
    pub fn new(cond: BernoulliCondition) -> ExactSettlement {
        ExactSettlement { cond }
    }

    /// The condition in force.
    pub fn condition(&self) -> BernoulliCondition {
        self.cond
    }

    /// The stationary dominating reach law `X_∞` truncated to `0..cap`,
    /// plus the lumped tail mass (Equation (9)).
    fn reach_law_stationary(&self, cap: usize) -> (Vec<f64>, f64) {
        let eps = self.cond.epsilon();
        let beta = (1.0 - eps) / (1.0 + eps);
        let mut law = Vec::with_capacity(cap);
        let mut acc = 0.0;
        for r in 0..cap {
            let p = (1.0 - beta) * beta.powi(r as i32);
            law.push(p);
            acc += p;
        }
        (law, (1.0 - acc).max(0.0))
    }

    /// The law of `ρ(x)` for `|x| = m`, truncated to `0..cap` with lumped
    /// tail, via the birth–death recurrence of Equation (13).
    ///
    /// The walk is run over an extended lattice `0..R` so that excursions
    /// above `cap` that later return are tracked exactly; only mass beyond
    /// `R` — at most `m·β^R < 1e-300` by stochastic dominance under `X_∞`
    /// — is conservatively lumped into the tail. Mass ending in `[cap, R)`
    /// is folded into the tail as well, which is *exact* for the settlement
    /// DP: an initial reach `≥ cap = k + 2` forces `µ ≥ 2` at every
    /// checkpoint within the horizon.
    fn reach_law_finite(&self, m: usize, cap: usize) -> (Vec<f64>, f64) {
        let p_a = self.cond.p_adversarial();
        let p_honest = 1.0 - p_a;
        let eps = self.cond.epsilon();
        let beta = (1.0 - eps) / (1.0 + eps);
        // Extra headroom so that the chance of ever crossing R within m
        // steps is below ~1e-300 (union bound over steps, each dominated
        // by the stationary tail β^R).
        let extra = if beta <= 0.0 {
            0
        } else {
            let need = (1e-300f64 / (m as f64 + 1.0)).ln() / beta.ln();
            (need.ceil().max(0.0) as usize).min(m)
        };
        let r_max = cap + extra;
        let mut law = vec![0.0; r_max];
        let mut escaped = 0.0;
        law[0] = 1.0;
        for _ in 0..m {
            let mut next = vec![0.0; r_max];
            for (r, &p) in law.iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                if r + 1 < r_max {
                    next[r + 1] += p * p_a;
                } else {
                    escaped += p * p_a;
                }
                next[r.saturating_sub(1)] += p * p_honest;
            }
            law = next;
        }
        let mut tail = escaped;
        for &p in &law[cap..] {
            tail += p;
        }
        law.truncate(cap);
        (law, tail)
    }

    /// The exact probability that slot `|x| + 1` suffers a `k`-settlement
    /// violation — `Pr[µ_x(y) ≥ 0]` at `|y| = k` — in the limit
    /// `|x| → ∞` (Table 1's setting).
    pub fn violation_probability(&self, k: usize) -> f64 {
        *self
            .violation_probabilities(&[k])
            .first()
            .expect("one checkpoint requested")
    }

    /// [`Self::violation_probability`] at several checkpoints, sharing one
    /// DP pass sized for the largest. The full `Pr[µ ≥ 0]` sweep runs only
    /// at the requested checkpoints, never at intermediate steps.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoints` is empty.
    pub fn violation_probabilities(&self, checkpoints: &[usize]) -> Vec<f64> {
        assert!(!checkpoints.is_empty(), "need at least one checkpoint");
        let k_max = *checkpoints.iter().max().expect("non-empty");
        let mut lat = Lattice::new(k_max);
        let (law, tail) = self.reach_law_stationary(lat.cap as usize);
        lat.seed(&law, tail);
        self.run(&mut lat, checkpoints, k_max)
    }

    /// Violation probabilities with a finite prefix `|x| = m` instead of
    /// the stationary law.
    pub fn violation_probabilities_finite_prefix(
        &self,
        m: usize,
        checkpoints: &[usize],
    ) -> Vec<f64> {
        assert!(!checkpoints.is_empty(), "need at least one checkpoint");
        let k_max = *checkpoints.iter().max().expect("non-empty");
        let mut lat = Lattice::new(k_max);
        let (law, tail) = self.reach_law_finite(m, lat.cap as usize);
        lat.seed(&law, tail);
        self.run(&mut lat, checkpoints, k_max)
    }

    fn run(&self, lat: &mut Lattice, checkpoints: &[usize], k_max: usize) -> Vec<f64> {
        let p_h = self.cond.p_unique_honest();
        let p_hh = self.cond.p_multi_honest();
        let p_a = self.cond.p_adversarial();
        let mut needed = vec![false; k_max + 1];
        for &k in checkpoints {
            needed[k] = true;
        }
        let mut at = vec![f64::NAN; k_max + 1];
        if needed[0] {
            at[0] = lat.violation_mass();
        }
        for step in 1..=k_max {
            lat.step(p_h, p_hh, p_a, (k_max - step) as i64);
            if needed[step] {
                at[step] = lat.violation_mass();
            }
        }
        checkpoints.iter().map(|&k| at[k].min(1.0)).collect()
    }

    /// The probability that a violation occurs **at any horizon in
    /// `k..=horizon`** (the conservative reading of Definition 3, where
    /// the adversary may strike at any time once `k` slots have passed):
    /// `Pr[∃ L ∈ [k, horizon] : µ_x(y_L) ≥ 0]`, `|x| → ∞`.
    ///
    /// Violating mass is absorbed incrementally inside the step kernel
    /// (no per-step sweep): after the one sweep at step `k`, every later
    /// transition landing on `µ ≥ 0` is diverted straight into the
    /// absorbed bucket with Kahan compensation.
    ///
    /// # Panics
    ///
    /// Panics if `horizon < k`.
    pub fn violation_by_horizon(&self, k: usize, horizon: usize) -> f64 {
        assert!(horizon >= k, "horizon {horizon} below checkpoint {k}");
        let mut lat = Lattice::new(horizon);
        let (law, tail) = self.reach_law_stationary(lat.cap as usize);
        lat.seed(&law, tail);
        let p_h = self.cond.p_unique_honest();
        let p_hh = self.cond.p_multi_honest();
        let p_a = self.cond.p_adversarial();
        for step in 1..=k {
            lat.step(p_h, p_hh, p_a, (horizon - step) as i64);
        }
        lat.absorb_violations();
        for step in k + 1..=horizon {
            lat.step_absorbing(p_h, p_hh, p_a, (horizon - step) as i64);
        }
        lat.always.min(1.0)
    }
}

#[cfg(test)]
mod reference {
    //! The pre-banding kernel, kept verbatim as the equivalence oracle:
    //! full-rectangle scan, fresh allocation per step, sweep-based
    //! absorption. The banded kernel must reproduce it bit-for-bit (modulo
    //! the documented Kahan compensation in fused absorption).

    pub(super) struct NaiveLattice {
        pub(super) cap: i64,
        floor: i64,
        mass: Vec<f64>,
        pub(super) always: f64,
        width: usize,
    }

    impl NaiveLattice {
        pub(super) fn new(k: usize) -> NaiveLattice {
            let cap = k as i64 + 2;
            let floor = -(k as i64 + 1);
            let width = (cap - floor + 1) as usize;
            NaiveLattice {
                cap,
                floor,
                mass: vec![0.0; (cap as usize + 1) * width],
                always: 0.0,
                width,
            }
        }

        fn idx(&self, r: i64, m: i64) -> usize {
            r as usize * self.width + (m - self.floor) as usize
        }

        pub(super) fn cell(&self, r: i64, m: i64) -> f64 {
            self.mass[self.idx(r, m)]
        }

        pub(super) fn seed(&mut self, reach_law: &[f64], tail: f64) {
            for (r, &p) in reach_law.iter().enumerate() {
                let i = self.idx(r as i64, r as i64);
                self.mass[i] += p;
            }
            self.always += tail;
        }

        pub(super) fn step(&mut self, p_h: f64, p_hh: f64, p_a: f64) {
            let mut next = vec![0.0; self.mass.len()];
            for r in 0..=self.cap {
                for m in self.floor..=r.min(self.cap) {
                    let p = self.mass[self.idx(r, m)];
                    if p == 0.0 {
                        continue;
                    }
                    if m == self.floor || m == self.cap {
                        next[self.idx(r, m)] += p;
                        continue;
                    }
                    {
                        let r2 = (r + 1).min(self.cap);
                        let m2 = (m + 1).min(r2);
                        next[self.idx(r2, m2)] += p * p_a;
                    }
                    let r2 = if r == self.cap {
                        self.cap
                    } else {
                        (r - 1).max(0)
                    };
                    let positive_reach = r > 0;
                    {
                        let m2 = if m == 0 && positive_reach { 0 } else { m - 1 };
                        next[self.idx(r2, m2.max(self.floor))] += p * p_h;
                    }
                    {
                        let m2 = if m == 0 { 0 } else { m - 1 };
                        next[self.idx(r2, m2.max(self.floor))] += p * p_hh;
                    }
                }
            }
            self.mass = next;
        }

        pub(super) fn violation_mass(&self) -> f64 {
            let mut acc = self.always;
            let mut compensation = 0.0;
            for r in 0..=self.cap {
                for m in 0..=r.min(self.cap) {
                    let y = self.mass[self.idx(r, m)] - compensation;
                    let t = acc + y;
                    compensation = (t - acc) - y;
                    acc = t;
                }
            }
            acc
        }

        pub(super) fn absorb_violations(&mut self) {
            for r in 0..=self.cap {
                for m in 0..=r.min(self.cap) {
                    let i = self.idx(r, m);
                    self.always += self.mass[i];
                    self.mass[i] = 0.0;
                }
            }
        }

        pub(super) fn total_mass(&self) -> f64 {
            self.always + self.mass.iter().sum::<f64>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_chars::CharString;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cond(alpha: f64, ph_ratio: f64) -> BernoulliCondition {
        let p_h = ph_ratio * (1.0 - alpha);
        BernoulliCondition::from_probabilities(p_h, 1.0 - alpha - p_h, alpha).unwrap()
    }

    #[test]
    fn mass_is_conserved() {
        let e = ExactSettlement::new(cond(0.3, 0.8));
        let mut lat = Lattice::new(40);
        let (law, tail) = e.reach_law_stationary(lat.cap as usize);
        lat.seed(&law, tail);
        assert!((lat.total_mass() - 1.0).abs() < 1e-12);
        for step in 0..40 {
            lat.step(0.35, 0.35, 0.3, 39 - step);
            assert!((lat.total_mass() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn banded_kernel_matches_naive_reference_cellwise() {
        // Exhaustive small-k agreement: every cell of the truncated
        // rectangle, every step, several conditions — the banded kernel
        // must be bit-for-bit the naive full-rectangle scan.
        for (alpha, ratio) in [(0.3, 0.8), (0.05, 1.0), (0.45, 0.25), (0.2, 0.0)] {
            let e = ExactSettlement::new(cond(alpha, ratio));
            let p_h = e.cond.p_unique_honest();
            let p_hh = e.cond.p_multi_honest();
            let p_a = e.cond.p_adversarial();
            for k in [1usize, 2, 3, 5, 9, 16] {
                let mut banded = Lattice::new(k);
                let mut naive = reference::NaiveLattice::new(k);
                let (law, tail) = e.reach_law_stationary(banded.cap as usize);
                banded.seed(&law, tail);
                naive.seed(&law, tail);
                for step in 0..=k {
                    // The banded kernel retires cells below the dynamic
                    // dead floor −(k − step) − 1; above it (every cell
                    // that can still influence a checkpoint) agreement is
                    // bit-for-bit.
                    let alive_floor = -((k - step) as i64);
                    for r in 0..=banded.cap {
                        for m in alive_floor.max(banded.floor)..=r.min(banded.cap) {
                            assert_eq!(
                                banded.cell(r, m),
                                naive.cell(r, m),
                                "cell ({r}, {m}) diverged at step {step}, k={k}, α={alpha}"
                            );
                        }
                    }
                    // The band-restricted Kahan sweep may differ from the
                    // full-rectangle sweep by an ulp (zero cells interact
                    // with the compensation term), hence relative compare.
                    let (bv, nv) = (banded.violation_mass(), naive.violation_mass());
                    assert!(
                        bv == nv || (bv / nv - 1.0).abs() < 1e-14,
                        "violation mass diverged at step {step}, k={k}, α={alpha}: {bv:e} vs {nv:e}"
                    );
                    banded.step(p_h, p_hh, p_a, (k as i64 - step as i64 - 1).max(0));
                    naive.step(p_h, p_hh, p_a);
                }
            }
        }
    }

    #[test]
    fn banded_kernel_matches_naive_reference_deep() {
        // Deeper horizons: compare the end-of-run statistics only.
        for (alpha, ratio, k) in [(0.3, 0.8, 60), (0.1, 1.0, 80), (0.4, 0.5, 50)] {
            let e = ExactSettlement::new(cond(alpha, ratio));
            let p_h = e.cond.p_unique_honest();
            let p_hh = e.cond.p_multi_honest();
            let p_a = e.cond.p_adversarial();
            let mut banded = Lattice::new(k);
            let mut naive = reference::NaiveLattice::new(k);
            let (law, tail) = e.reach_law_stationary(banded.cap as usize);
            banded.seed(&law, tail);
            naive.seed(&law, tail);
            for step in 1..=k {
                banded.step(p_h, p_hh, p_a, (k - step) as i64);
                naive.step(p_h, p_hh, p_a);
            }
            let (bv, nv) = (banded.violation_mass(), naive.violation_mass());
            assert!(
                bv == nv || (bv / nv - 1.0).abs() < 1e-14,
                "violation mass diverged: {bv:e} vs {nv:e}"
            );
            assert!((banded.total_mass() - naive.total_mass()).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_absorption_matches_sweep_absorption() {
        // step_absorbing ≡ step + absorb_violations, to Kahan accuracy.
        for (alpha, ratio, k, horizon) in [(0.3, 0.8, 10, 30), (0.2, 0.5, 8, 40)] {
            let e = ExactSettlement::new(cond(alpha, ratio));
            let p_h = e.cond.p_unique_honest();
            let p_hh = e.cond.p_multi_honest();
            let p_a = e.cond.p_adversarial();
            let fused = e.violation_by_horizon(k, horizon);
            let mut naive = reference::NaiveLattice::new(horizon);
            let (law, tail) = e.reach_law_stationary(naive.cap as usize);
            naive.seed(&law, tail);
            for _ in 0..k {
                naive.step(p_h, p_hh, p_a);
            }
            naive.absorb_violations();
            for _ in k..horizon {
                naive.step(p_h, p_hh, p_a);
                naive.absorb_violations();
            }
            let swept = naive.always.min(1.0);
            assert!(
                (fused / swept - 1.0).abs() < 1e-12,
                "fused {fused:e} vs swept {swept:e}"
            );
        }
    }

    #[test]
    fn checkpoint_only_accounting_matches_per_step() {
        // Sparse checkpoints must equal the same horizons read off a dense
        // (every-step) pass.
        let e = ExactSettlement::new(cond(0.25, 0.7));
        let sparse = e.violation_probabilities(&[7, 19, 40]);
        let dense = e.violation_probabilities(&(0..=40).collect::<Vec<_>>());
        assert_eq!(sparse[0], dense[7]);
        assert_eq!(sparse[1], dense[19]);
        assert_eq!(sparse[2], dense[40]);
        // Checkpoint order is preserved even when unsorted or duplicated.
        let shuffled = e.violation_probabilities(&[40, 7, 19, 7]);
        assert_eq!(shuffled, vec![sparse[2], sparse[0], sparse[1], sparse[0]]);
    }

    #[test]
    fn violation_probability_decreases_in_k() {
        let e = ExactSettlement::new(cond(0.2, 0.5));
        let ps = e.violation_probabilities(&[5, 10, 20, 40, 80]);
        for pair in ps.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-15, "not decreasing: {ps:?}");
        }
        assert!(ps[4] > 0.0, "strictly positive violation probability");
        assert!(ps[0] < 1.0);
    }

    #[test]
    fn more_adversarial_stake_is_worse() {
        let ks = [10, 30];
        let lo = ExactSettlement::new(cond(0.1, 0.8)).violation_probabilities(&ks);
        let hi = ExactSettlement::new(cond(0.4, 0.8)).violation_probabilities(&ks);
        for (a, b) in lo.iter().zip(&hi) {
            assert!(a < b, "α=0.1 should beat α=0.4: {a} vs {b}");
        }
    }

    #[test]
    fn multi_honest_slots_hurt_but_mildly() {
        // For fixed α, converting h-mass into H-mass weakly increases the
        // violation probability (H slots can tie) — yet consistency still
        // holds; this is the paper's central quantitative claim.
        let ks = [20, 60];
        let all_h = ExactSettlement::new(cond(0.25, 1.0)).violation_probabilities(&ks);
        let half = ExactSettlement::new(cond(0.25, 0.5)).violation_probabilities(&ks);
        let none = ExactSettlement::new(cond(0.25, 0.01)).violation_probabilities(&ks);
        for i in 0..ks.len() {
            assert!(all_h[i] <= half[i] + 1e-15);
            assert!(half[i] <= none[i] + 1e-15);
        }
        // Error still decays with k even when h-slots are very rare.
        assert!(none[1] < none[0]);
    }

    #[test]
    fn finite_prefix_converges_to_stationary() {
        let e = ExactSettlement::new(cond(0.3, 0.7));
        let ks = [15];
        let stationary = e.violation_probabilities(&ks)[0];
        let short = e.violation_probabilities_finite_prefix(0, &ks)[0];
        let long = e.violation_probabilities_finite_prefix(400, &ks)[0];
        // |x| = 0 (genesis split) is easier for the honest side.
        assert!(short <= stationary + 1e-12);
        // A long prefix approaches the stationary dominating law from below.
        assert!(long <= stationary + 1e-12);
        assert!(
            (long - stationary).abs() < 1e-3,
            "long = {long}, stat = {stationary}"
        );
        assert!(
            (short - stationary).abs() > 1e-6,
            "prefix length must matter"
        );
    }

    #[test]
    fn horizon_variant_dominates_pointwise() {
        let e = ExactSettlement::new(cond(0.25, 0.6));
        let point = e.violation_probability(12);
        let by_horizon = e.violation_by_horizon(12, 40);
        assert!(by_horizon >= point - 1e-15);
        assert!(by_horizon <= 1.0);
        // Extending the horizon only adds violation mass.
        assert!(e.violation_by_horizon(12, 60) >= by_horizon - 1e-15);
    }

    #[test]
    fn matches_monte_carlo_with_long_prefix() {
        // Sample strings xy with |x| = 300, |y| = 8 and compare the margin
        // recurrence frequency of µ_x(y) ≥ 0 against the finite-prefix DP.
        let c = cond(0.3, 0.6);
        let e = ExactSettlement::new(c);
        let k = 8;
        let m = 300;
        let expected = e.violation_probabilities_finite_prefix(m, &[k])[0];
        let mut rng = StdRng::seed_from_u64(2024);
        let trials = 40_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            let w: CharString = c.sample(&mut rng, m + k);
            if crate::recurrence::margin_trace(&w, m)[k] >= 0 {
                hits += 1;
            }
        }
        let freq = hits as f64 / trials as f64;
        let sigma = (expected * (1.0 - expected) / trials as f64).sqrt();
        assert!(
            (freq - expected).abs() < 5.0 * sigma + 1e-4,
            "freq = {freq}, expected = {expected}, sigma = {sigma}"
        );
    }

    #[test]
    fn table1_spot_checks() {
        // Table 1 (page 26), α columns at k = 100. Generated by the same
        // recurrence as the authors' published C++ code; we allow 5%
        // relative slack for their floating-point/truncation choices.
        let cases = [
            // (alpha, ph_ratio, k, expected)
            (0.30, 1.0, 100, 8.00e-4),
            (0.40, 1.0, 100, 1.37e-1),
            (0.30, 0.5, 100, 2.80e-3),
            (0.40, 0.25, 100, 3.17e-1),
            (0.20, 0.8, 100, 5.10e-8),
        ];
        for (alpha, ratio, k, expected) in cases {
            let p = ExactSettlement::new(cond(alpha, ratio)).violation_probability(k);
            assert!(
                (p / expected - 1.0).abs() < 0.05,
                "α={alpha} ratio={ratio} k={k}: got {p:e}, want {expected:e}"
            );
        }
    }
}
