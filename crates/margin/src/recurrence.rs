//! The reach/margin recurrences of Theorem 5 and their consequences.

use multihonest_chars::{CharString, Symbol};

/// Incremental computation of the maximum reach `ρ(w)`
/// (paper Theorem 5, Equation (13)):
///
/// * `ρ(ε) = 0`;
/// * `ρ(wA) = ρ(w) + 1`;
/// * `ρ(wb) = max(ρ(w) − 1, 0)` for `b ∈ {h, H}`.
///
/// # Examples
///
/// ```
/// use multihonest_margin::ReachState;
/// use multihonest_chars::Symbol;
///
/// let mut r = ReachState::new();
/// r.step(Symbol::Adversarial);
/// r.step(Symbol::Adversarial);
/// r.step(Symbol::UniqueHonest);
/// assert_eq!(r.rho(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReachState {
    rho: i64,
}

impl ReachState {
    /// The state for the empty string: `ρ(ε) = 0`.
    pub fn new() -> ReachState {
        ReachState::default()
    }

    /// A state with a prescribed reach value (used by the exact DP to seed
    /// arbitrary initial reaches).
    pub fn with_rho(rho: i64) -> ReachState {
        assert!(rho >= 0, "reach is never negative");
        ReachState { rho }
    }

    /// The current `ρ`.
    pub fn rho(&self) -> i64 {
        self.rho
    }

    /// Advances by one symbol.
    pub fn step(&mut self, s: Symbol) {
        self.rho = match s {
            Symbol::Adversarial => self.rho + 1,
            _ => (self.rho - 1).max(0),
        };
    }
}

/// Incremental computation of the pair `(ρ(xy), µ_x(y))`
/// (paper Theorem 5, Equation (14)):
///
/// * `µ_x(ε) = ρ(x)`;
/// * `µ_x(yA) = µ_x(y) + 1`;
/// * for `b ∈ {h, H}`:
///   * `µ_x(yb) = 0`  if `ρ(xy) > µ_x(y) = 0`,
///   * `µ_x(yb) = 0`  if `ρ(xy) = µ_x(y) = 0` and `b = H`,
///   * `µ_x(yb) = µ_x(y) − 1` otherwise.
///
/// The second case is the paper's headline phenomenon: when both reach and
/// margin sit at zero, a **multiply honest** slot preserves margin 0 (two
/// honest leaders extend two tied chains), whereas a uniquely honest slot
/// drives the margin negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarginState {
    rho: i64,
    mu: i64,
}

impl MarginState {
    /// The state at the split point: `µ_x(ε) = ρ(x)`.
    pub fn at_split(rho_x: i64) -> MarginState {
        assert!(rho_x >= 0, "reach is never negative");
        MarginState {
            rho: rho_x,
            mu: rho_x,
        }
    }

    /// The current reach `ρ(xy)`.
    pub fn rho(&self) -> i64 {
        self.rho
    }

    /// The current relative margin `µ_x(y)`.
    pub fn mu(&self) -> i64 {
        self.mu
    }

    /// Advances by one symbol of `y`.
    pub fn step(&mut self, s: Symbol) {
        match s {
            Symbol::Adversarial => {
                self.rho += 1;
                self.mu += 1;
            }
            b => {
                let zero_margin = self.mu == 0;
                let positive_reach = self.rho > 0;
                self.rho = (self.rho - 1).max(0);
                self.mu = if zero_margin && (positive_reach || b == Symbol::MultiHonest) {
                    0
                } else {
                    self.mu - 1
                };
            }
        }
        debug_assert!(self.mu <= self.rho, "margin may never exceed reach");
    }
}

/// The maximum reach `ρ(w)` over all closed forks for `w`.
pub fn rho(w: &CharString) -> i64 {
    let mut st = ReachState::new();
    for &s in w.symbols() {
        st.step(s);
    }
    st.rho()
}

/// The relative margin `µ_x(y)` where `x` is the length-`cut` prefix of `w`
/// and `y` the remaining suffix.
///
/// # Panics
///
/// Panics if `cut > |w|`.
pub fn relative_margin(w: &CharString, cut: usize) -> i64 {
    assert!(
        cut <= w.len(),
        "cut {cut} exceeds string length {}",
        w.len()
    );
    let mut reach = ReachState::new();
    for &s in &w.symbols()[..cut] {
        reach.step(s);
    }
    let mut st = MarginState::at_split(reach.rho());
    for &s in &w.symbols()[cut..] {
        st.step(s);
    }
    st.mu()
}

/// The margin trace at a split: `µ_x(y_L)` for every prefix `y_L` of the
/// suffix, `L = 0 ..= |w| − cut`, returned as a vector indexed by `L`.
///
/// # Panics
///
/// Panics if `cut > |w|`.
pub fn margin_trace(w: &CharString, cut: usize) -> Vec<i64> {
    assert!(
        cut <= w.len(),
        "cut {cut} exceeds string length {}",
        w.len()
    );
    let mut reach = ReachState::new();
    for &s in &w.symbols()[..cut] {
        reach.step(s);
    }
    let mut st = MarginState::at_split(reach.rho());
    let mut out = Vec::with_capacity(w.len() - cut + 1);
    out.push(st.mu());
    for &s in &w.symbols()[cut..] {
        st.step(s);
        out.push(st.mu());
    }
    out
}

/// The Unique Vertex Property via relative margin (paper Lemma 1): a
/// **uniquely honest** slot `s` has the UVP in `w` iff `µ_x(y) < 0` for
/// every non-empty prefix `y` of the suffix starting at `s`, where
/// `x = w_1 … w_{s−1}`.
///
/// Returns `false` when slot `s` is not uniquely honest (Lemma 1 only
/// characterises `h` slots; `H` slots never have a *unique* vertex without
/// the consistent tie-breaking axiom).
///
/// Allocation-free: streams a [`MarginState`] over the suffix instead of
/// materializing the margin trace, bailing out at the first prefix with
/// `µ ≥ 0` (disqualifying) or as soon as `µ` has fallen too low to ever
/// recover within the string (`µ` moves by at most one per symbol), which
/// certifies the property early.
///
/// # Panics
///
/// Panics if `s` is 0 or exceeds `|w|`.
pub fn has_uvp(w: &CharString, s: usize) -> bool {
    assert!(s >= 1 && s <= w.len(), "slot {s} out of range");
    if w.get(s) != Symbol::UniqueHonest {
        return false;
    }
    let cut = s - 1;
    let mut reach = ReachState::new();
    for &sym in &w.symbols()[..cut] {
        reach.step(sym);
    }
    streamed_has_uvp(reach.rho(), &w.symbols()[cut..])
}

/// Streaming core of [`has_uvp`]: all non-empty suffix prefixes must keep
/// `µ < 0`.
fn streamed_has_uvp(rho_x: i64, suffix: &[Symbol]) -> bool {
    let mut st = MarginState::at_split(rho_x);
    let n = suffix.len() as i64;
    for (i, &sym) in suffix.iter().enumerate() {
        st.step(sym);
        if st.mu() >= 0 {
            return false;
        }
        // µ gains at most one per remaining symbol: once it cannot reach 0
        // again, every later prefix stays negative too.
        if st.mu() + (n - i as i64 - 1) < 0 {
            return true;
        }
    }
    true
}

/// Returns `true` when slot `s` **can** suffer a `k`-settlement violation
/// in `w`: some suffix prefix `y` with `|y| ≥ k` starting at slot `s` has
/// `µ_x(y) ≥ 0` (by Fact 6 this is exactly the existence of an
/// `x`-balanced fork exhibiting two competing maximum-length chains that
/// disagree past `x`).
///
/// This follows the convention of Section 6.6 (and the authors' reference
/// implementation): a violation *at horizon `k`* means a non-negative
/// margin for some `|y| ≥ k`. Definition 3's game-time accounting
/// (`|ŵ| ≥ s + k`) corresponds to `|y| ≥ k + 1`; pass `k + 1` for that
/// reading.
///
/// Allocation-free: streams a [`MarginState`] over the suffix, returning
/// `true` at the first qualifying horizon and `false` as soon as the
/// margin has fallen below what the remaining symbols could ever recover
/// (`µ` moves by at most one per symbol) — so deeply settled slots cost
/// far less than the full `O(|w| − s)` scan.
///
/// # Panics
///
/// Panics if `s` is 0 or exceeds `|w|`.
pub fn violates_settlement(w: &CharString, s: usize, k: usize) -> bool {
    assert!(s >= 1 && s <= w.len(), "slot {s} out of range");
    let cut = s - 1;
    let mut reach = ReachState::new();
    for &sym in &w.symbols()[..cut] {
        reach.step(sym);
    }
    streamed_violates_settlement(reach.rho(), &w.symbols()[cut..], k)
}

/// Streaming core of [`violates_settlement`]: some suffix prefix of length
/// `≥ k` has `µ ≥ 0`.
fn streamed_violates_settlement(rho_x: i64, suffix: &[Symbol], k: usize) -> bool {
    // Length-0 prefix: µ_x(ε) = ρ(x) ≥ 0 always.
    if k == 0 {
        return true;
    }
    let n = suffix.len();
    if k > n {
        return false;
    }
    let mut st = MarginState::at_split(rho_x);
    for (i, &sym) in suffix.iter().enumerate() {
        st.step(sym);
        let len = i + 1;
        if len >= k && st.mu() >= 0 {
            return true;
        }
        // µ gains at most one per remaining symbol: once it cannot climb
        // back to 0 by the end of the string, no later horizon qualifies.
        if st.mu() + ((n - len) as i64) < 0 {
            return false;
        }
    }
    false
}

/// The settled complement of [`violates_settlement`]: slot `s` is
/// `k`-settled in `w` when no balanced-fork witness exists at any horizon
/// `≥ k`.
pub fn is_slot_settled(w: &CharString, s: usize, k: usize) -> bool {
    !violates_settlement(w, s, k)
}

/// Batch settlement scan: the `k`-settlement status of **every** slot
/// `s ∈ 1..=|w|`, with `result[s − 1] = true` iff slot `s` is `k`-settled
/// (no suffix prefix of length `≥ k` has non-negative relative margin;
/// see [`is_slot_settled`]).
///
/// The prefix reach `ρ(w_1 … w_{s−1})` is advanced incrementally across
/// cuts instead of being recomputed from scratch for each slot, and each
/// suffix walk early-exits as in [`violates_settlement`] — so a sweep over
/// all `n` slots costs `O(n)` reach work plus typically short per-slot
/// probes, rather than the `O(n²)` of `n` independent calls.
pub fn settled_slots(w: &CharString, k: usize) -> Vec<bool> {
    let syms = w.symbols();
    let mut reach = ReachState::new();
    let mut out = Vec::with_capacity(syms.len());
    for s in 1..=syms.len() {
        out.push(!streamed_violates_settlement(
            reach.rho(),
            &syms[s - 1..],
            k,
        ));
        reach.step(syms[s - 1]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_catalan::{exhaustive_strings, CatalanAnalysis};
    use multihonest_fork::generate::{self, GenerateConfig};
    use multihonest_fork::ReachAnalysis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn w(s: &str) -> CharString {
        s.parse().unwrap()
    }

    #[test]
    fn reach_recurrence_by_hand() {
        assert_eq!(rho(&w("")), 0);
        assert_eq!(rho(&w("A")), 1);
        assert_eq!(rho(&w("AA")), 2);
        assert_eq!(rho(&w("AAh")), 1);
        assert_eq!(rho(&w("h")), 0);
        assert_eq!(rho(&w("hH")), 0);
        assert_eq!(rho(&w("AhA")), 1);
    }

    #[test]
    fn margin_recurrence_by_hand() {
        // µ_ε(ε) = ρ(ε) = 0.
        assert_eq!(relative_margin(&w(""), 0), 0);
        // Single symbols: h drives margin to −1; H keeps it at 0 (two
        // honest leaders tie); A raises it to 1.
        assert_eq!(relative_margin(&w("h"), 0), -1);
        assert_eq!(relative_margin(&w("H"), 0), 0);
        assert_eq!(relative_margin(&w("A"), 0), 1);
        // An all-H string never settles: margin stays 0 forever.
        assert_eq!(relative_margin(&w("HHHHHH"), 0), 0);
        // Figure 2's string admits a balanced fork.
        assert!(relative_margin(&w("hAhAhA"), 0) >= 0);
        // Figure 3: x = hh, y = hAhA is x-balanced.
        assert!(relative_margin(&w("hhhAhA"), 2) >= 0);
        // ...but the same suffix is *not* ε-balanced-with-margin for the
        // string hh ⋅ hAhA at cut 0? The first two h's drive µ to −2 and
        // the suffix recovers only with its 2 A's against 2 h's:
        assert_eq!(relative_margin(&w("hhhAhA"), 0), -2);
    }

    #[test]
    fn margin_trace_tracks_prefixes() {
        // hAhAhA from cut 0: after the first recovery (h then A) the
        // reach is positive, so subsequent h's can no longer push the
        // margin below zero — the first case of (14).
        let trace = margin_trace(&w("hAhAhA"), 0);
        assert_eq!(trace, vec![0, -1, 0, 0, 1, 0, 1]);
        let trace = margin_trace(&w("hhhAhA"), 2);
        // x = hh, ρ(x) = 0: y = hAhA → µ: 0, h→−1, A→0, h→0 (ρ>0), A→1.
        assert_eq!(trace, vec![0, -1, 0, 0, 1]);
    }

    #[test]
    fn multi_honest_ties_differ_from_unique_honest() {
        // After x = ε with ρ = µ = 0, an H keeps the fork balanced (two
        // leaders extend two tied chains) but an h does not. This is the
        // b = H case of Equation (14).
        let mut st_h = MarginState::at_split(0);
        st_h.step(Symbol::UniqueHonest);
        assert_eq!(st_h.mu(), -1);
        let mut st_hh = MarginState::at_split(0);
        st_hh.step(Symbol::MultiHonest);
        assert_eq!(st_hh.mu(), 0);
        // But when reach is positive, even an h keeps margin at zero
        // (first case of (14)).
        let mut st = MarginState::at_split(1);
        // bring mu to 0 first: A then two h? Start ρ=µ=1; h: ρ>0... µ=1≠0 →
        // µ=0, ρ=0. Then h again with ρ=0, µ=0 → µ=−1.
        st.step(Symbol::UniqueHonest);
        assert_eq!((st.rho(), st.mu()), (0, 0));
        st.step(Symbol::UniqueHonest);
        assert_eq!((st.rho(), st.mu()), (0, -1));
    }

    #[test]
    fn margin_never_exceeds_reach() {
        for s in exhaustive_strings(9) {
            for cut in 0..=s.len() {
                let mut reach = ReachState::new();
                for &sym in &s.symbols()[..cut] {
                    reach.step(sym);
                }
                let mut st = MarginState::at_split(reach.rho());
                for &sym in &s.symbols()[cut..] {
                    st.step(sym);
                    assert!(st.mu() <= st.rho(), "µ > ρ on {s} cut {cut}");
                }
            }
        }
    }

    #[test]
    fn recurrence_dominates_every_enumerated_fork() {
        // Theorem 5 (upper bound, Proposition 1): no closed fork's
        // definitional margin exceeds the recurrence value — checked
        // exhaustively on every string of length ≤ 4 and every closed fork
        // with per-slot multiplicities ≤ 2; equality is attained by SOME
        // fork for each cut.
        for n in 1..=4 {
            for s in exhaustive_strings(n) {
                let mut best = vec![i64::MIN; n + 1];
                generate::enumerate_forks(&s, GenerateConfig::default(), &mut |f| {
                    let ra = ReachAnalysis::new(f);
                    assert!(ra.rho() <= rho(&s), "fork rho exceeds recurrence on {s}");
                    let margins = ra.relative_margins();
                    for cut in 0..=n {
                        assert!(
                            margins[cut] <= relative_margin(&s, cut),
                            "fork margin exceeds recurrence: {s}, cut {cut}"
                        );
                        best[cut] = best[cut].max(margins[cut]);
                    }
                });
                for (cut, &b) in best.iter().enumerate().take(n + 1) {
                    assert_eq!(
                        b,
                        relative_margin(&s, cut),
                        "recurrence unattained: {s}, cut {cut}"
                    );
                }
            }
        }
    }

    #[test]
    fn recurrence_dominates_random_forks() {
        let mut rng = StdRng::seed_from_u64(99);
        let cfg = GenerateConfig::default();
        for s in ["hAhAhHAAH", "HHAAHHAAhh", "AAAhhhAAA", "hHhHhHhHhH"] {
            let ws = w(s);
            for _ in 0..40 {
                let f = generate::close(&generate::random_fork(&ws, &mut rng, cfg));
                let ra = ReachAnalysis::new(&f);
                assert!(ra.rho() <= rho(&ws));
                let margins = ra.relative_margins();
                for (cut, &m) in margins.iter().enumerate().take(ws.len() + 1) {
                    assert!(m <= relative_margin(&ws, cut), "{s} cut {cut}");
                }
            }
        }
    }

    #[test]
    fn uvp_via_margin_equals_catalan_characterization() {
        // Theorem 3 ∘ Lemma 1: for uniquely honest s, UVP(s) ⇔ Catalan(s).
        // Exhaustive over all strings up to length 9.
        for n in 1..=9 {
            for s in exhaustive_strings(n) {
                let cat = CatalanAnalysis::new(&s);
                for t in 1..=n {
                    if s.get(t) == Symbol::UniqueHonest {
                        assert_eq!(
                            has_uvp(&s, t),
                            cat.is_catalan(t),
                            "UVP/Catalan mismatch at slot {t} of {s}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn settlement_predicate_by_hand() {
        // hAhAhA: slot 1 never settles (margins hit 0 at every even
        // horizon).
        let s = w("hAhAhA");
        assert!(violates_settlement(&s, 1, 0));
        assert!(violates_settlement(&s, 1, 6));
        // hhhh: slot 1 settles immediately (µ < 0 at every horizon ≥ 1).
        let s = w("hhhh");
        assert!(!violates_settlement(&s, 1, 1));
        assert!(is_slot_settled(&s, 1, 1));
        // Horizon-0 "violations" are trivial: µ_x(ε) = ρ(x) ≥ 0 always.
        assert!(violates_settlement(&s, 1, 0));
    }

    #[test]
    fn monotone_in_adversarial_upgrades() {
        // Upgrading symbols never decreases ρ or µ (the monotone-set
        // argument in the proof of Theorem 1).
        for s in exhaustive_strings(7) {
            for up in multihonest_chars::order::covers(&s) {
                assert!(rho(&up) >= rho(&s), "rho not monotone: {s} -> {up}");
                for cut in 0..=s.len() {
                    assert!(
                        relative_margin(&up, cut) >= relative_margin(&s, cut),
                        "margin not monotone at cut {cut}: {s} -> {up}"
                    );
                }
            }
        }
    }

    /// The pre-streaming predicates, straight off the margin trace — the
    /// equivalence oracles for the early-exit implementations.
    fn trace_has_uvp(w: &CharString, s: usize) -> bool {
        if w.get(s) != Symbol::UniqueHonest {
            return false;
        }
        margin_trace(w, s - 1).iter().skip(1).all(|&m| m < 0)
    }

    fn trace_violates_settlement(w: &CharString, s: usize, k: usize) -> bool {
        margin_trace(w, s - 1)
            .iter()
            .enumerate()
            .any(|(len, &m)| len >= k && m >= 0)
    }

    #[test]
    fn streaming_predicates_match_trace_definitions_exhaustively() {
        for n in 1..=8 {
            for s in exhaustive_strings(n) {
                for t in 1..=n {
                    assert_eq!(
                        has_uvp(&s, t),
                        trace_has_uvp(&s, t),
                        "has_uvp diverged at slot {t} of {s}"
                    );
                    for k in 0..=n + 1 {
                        assert_eq!(
                            violates_settlement(&s, t, k),
                            trace_violates_settlement(&s, t, k),
                            "violates_settlement diverged at slot {t}, k={k} of {s}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn settled_slots_matches_per_slot_predicate() {
        // Exhaustive small strings plus a long random sample.
        for n in 1..=7 {
            for s in exhaustive_strings(n) {
                for k in 0..=n {
                    let batch = settled_slots(&s, k);
                    assert_eq!(batch.len(), s.len());
                    for t in 1..=n {
                        assert_eq!(
                            batch[t - 1],
                            is_slot_settled(&s, t, k),
                            "batch scan diverged at slot {t}, k={k} of {s}"
                        );
                    }
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(4242);
        let cond = multihonest_chars::BernoulliCondition::new(0.2, 0.3).unwrap();
        let w = cond.sample(&mut rng, 400);
        for k in [1usize, 10, 50] {
            let batch = settled_slots(&w, k);
            for t in 1..=w.len() {
                assert_eq!(batch[t - 1], is_slot_settled(&w, t, k), "slot {t}, k={k}");
            }
        }
    }

    #[test]
    fn uvp_requires_unique_honesty() {
        assert!(!has_uvp(&w("HhH"), 1));
        assert!(!has_uvp(&w("HhH"), 3));
        assert!(has_uvp(&w("HhH"), 2) || !CatalanAnalysis::new(&w("HhH")).is_catalan(2));
    }
}
