//! # multihonest-margin
//!
//! Reach and relative margin — Section 6 of *Consistency of Proof-of-Stake
//! Blockchains with Concurrent Honest Slot Leaders* (Kiayias, Quader,
//! Russell; ICDCS 2020).
//!
//! The *relative margin* `µ_x(y)` measures the adversary's best ability to
//! present two chains that agree on the prefix `x` and diverge over `y`:
//! `µ_x(y) ≥ 0` exactly when some fork for `xy` is `x`-balanced (Fact 6),
//! i.e. when slot `|x| + 1` can suffer a settlement violation at horizon
//! `|y|`. Theorem 5 shows the pair `(ρ(xy), µ_x(y))` obeys a two-variable
//! recurrence over the symbols of `y`; this crate implements it:
//!
//! * [`ReachState`] / [`MarginState`] — the incremental recurrences;
//! * [`rho`], [`relative_margin`], [`margin_trace`] — whole-string queries;
//! * [`has_uvp`] — the Unique Vertex Property via margins (Lemma 1);
//! * [`exact::ExactSettlement`] — the `O(T³)` dynamic program of
//!   Section 6.6 computing **exact** settlement-violation probabilities
//!   under the `(ε, p_h)`-Bernoulli condition; this regenerates Table 1.
//!
//! ## Example
//!
//! ```
//! use multihonest_margin::{relative_margin, rho};
//!
//! let w = "hAhAhA".parse()?;
//! // Figure 2 exhibits a balanced fork for this string: µ_ε(w) ≥ 0.
//! assert!(relative_margin(&w, 0) >= 0);
//! // The trailing adversarial slot keeps one unit of reach in reserve.
//! assert_eq!(rho(&w), 1);
//! # Ok::<(), multihonest_chars::ParseCharStringError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod recurrence;

pub use crate::exact::ExactSettlement;
pub use crate::recurrence::{
    has_uvp, is_slot_settled, margin_trace, relative_margin, rho, settled_slots,
    violates_settlement, MarginState, ReachState,
};
