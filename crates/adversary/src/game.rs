//! The `(D, T; s, k)`-settlement game of paper Section 2.2.
//!
//! The challenger plays the honest side mechanically: at each honest slot
//! it adds the required vertices at the end of maximum-length paths. All
//! discretion — tie-breaking among maximum-length paths, the number `k` of
//! honest vertices at a multiply honest slot, adversarial-slot moves and
//! post-slot augmentations — belongs to the [`GameAdversary`].

use multihonest_chars::{CharString, Symbol};
use multihonest_fork::{Fork, StreamValidator, VertexId};
use rand::Rng;

/// The adversary interface of the settlement game.
///
/// Implementations must respect two rules, enforced by the challenger with
/// panics (they are programming errors, not recoverable conditions):
///
/// * [`choose_honest_parent`](Self::choose_honest_parent) must return a
///   vertex of maximum depth (honest players extend maximum-length
///   chains; the adversary only breaks ties);
/// * [`augment`](Self::augment) may mutate the fork arbitrarily but must
///   leave it a valid fork for the current prefix (axioms (F1)–(F4)), and
///   may only add vertices (forks grow monotonically: `F_{t−1} ⊑ F_t`).
pub trait GameAdversary {
    /// How many honest vertices to create for the multiply honest `slot`
    /// (must be ≥ 1). The default treats `H` like `h`.
    fn multi_honest_count(&mut self, fork: &Fork, slot: usize) -> usize {
        let _ = (fork, slot);
        1
    }

    /// Chooses which maximum-length tine the `index`-th honest vertex of
    /// `slot` extends. `candidates` are the endpoints of all maximum-length
    /// tines.
    fn choose_honest_parent(
        &mut self,
        fork: &Fork,
        slot: usize,
        index: usize,
        candidates: &[VertexId],
    ) -> VertexId;

    /// Called after every slot (honest or adversarial): the adversarial
    /// augmentation step 3(c) of the game. The default does nothing.
    fn augment(&mut self, fork: &mut Fork, slot: usize) {
        let _ = (fork, slot);
    }
}

/// The do-nothing adversary: breaks ties towards the first candidate,
/// requests a single vertex per `H` slot, never augments. Against it the
/// honest chain grows linearly.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopAdversary;

impl GameAdversary for NoopAdversary {
    fn choose_honest_parent(
        &mut self,
        _fork: &Fork,
        _slot: usize,
        _index: usize,
        candidates: &[VertexId],
    ) -> VertexId {
        candidates[0]
    }
}

/// A randomised adversary: random tie-breaking, random `H` multiplicities
/// in `1..=2`, and random withholding-style augmentations (it occasionally
/// plants adversarial vertices on shorter tines). Useful for fuzzing the
/// game engine; it is far from optimal.
#[derive(Debug)]
pub struct RandomAdversary<R> {
    rng: R,
    /// Probability of planting an adversarial vertex at each adversarial
    /// slot.
    pub plant_probability: f64,
}

impl<R: Rng> RandomAdversary<R> {
    /// Creates the adversary with the given randomness source.
    pub fn new(rng: R) -> RandomAdversary<R> {
        RandomAdversary {
            rng,
            plant_probability: 0.8,
        }
    }
}

impl<R: Rng> GameAdversary for RandomAdversary<R> {
    fn multi_honest_count(&mut self, _fork: &Fork, _slot: usize) -> usize {
        self.rng.gen_range(1..=2)
    }

    fn choose_honest_parent(
        &mut self,
        _fork: &Fork,
        _slot: usize,
        _index: usize,
        candidates: &[VertexId],
    ) -> VertexId {
        candidates[self.rng.gen_range(0..candidates.len())]
    }

    fn augment(&mut self, fork: &mut Fork, slot: usize) {
        if fork.string().get(slot) != Symbol::Adversarial {
            return;
        }
        if self.rng.gen::<f64>() >= self.plant_probability {
            return;
        }
        let candidates: Vec<VertexId> = fork.vertices().filter(|v| fork.label(*v) < slot).collect();
        let parent = candidates[self.rng.gen_range(0..candidates.len())];
        fork.push_vertex(parent, slot);
    }
}

/// The settlement-game engine: mechanical challenger + pluggable adversary.
#[derive(Debug)]
pub struct SettlementGame {
    w: CharString,
}

impl SettlementGame {
    /// Creates a game over the characteristic string `w` (already drawn
    /// from the leader-election distribution `D`).
    pub fn new(w: CharString) -> SettlementGame {
        SettlementGame { w }
    }

    /// The characteristic string in play.
    pub fn string(&self) -> &CharString {
        &self.w
    }

    /// Plays the game to completion and returns the final fork
    /// `A_T ⊢ w`.
    ///
    /// # Panics
    ///
    /// Panics if the adversary breaks the game rules: a non-maximal
    /// parent, a zero multiplicity, or a fork-axiom violation after an
    /// augmentation. Validity is checked **online** through a
    /// [`StreamValidator`] — `O(log n)` per vertex instead of the
    /// `O(V²)` full revalidation this used to cost — so the check is on
    /// in release builds too, and fires at the exact slot whose
    /// augmentation broke the fork.
    pub fn play<A: GameAdversary>(&self, adversary: &mut A) -> Fork {
        // The fork's string grows slot by slot so that the validity
        // invariant (checked online after every augmentation) always
        // refers to the prefix processed so far.
        let mut fork = Fork::trivial();
        // Synchronous play: the stream validator checks (F3)/(F4) at Δ=0.
        let mut validator = StreamValidator::new(0);
        // Vertices already fed to the validator (the root needs none).
        let mut observed = 1usize;
        // The maximum-depth frontier, maintained incrementally: forks only
        // ever gain vertices, so folding in each new vertex once (`synced`
        // is the watermark) keeps `frontier` equal to the endpoints of all
        // maximum-length tines in ascending id order — O(V) total instead
        // of a full vertex scan per honest slot. Adversarial augmentations
        // go through `&mut Fork` directly, which is why the frontier syncs
        // from the arena delta rather than observing individual pushes.
        let mut frontier: Vec<VertexId> = vec![VertexId::ROOT];
        let mut height = 0usize;
        let mut synced = 1usize;
        for (slot, sym) in self.w.iter_slots() {
            fork.push_symbol(sym);
            validator.push_symbol(sym.into());
            match sym {
                Symbol::UniqueHonest | Symbol::MultiHonest => {
                    let count = if sym == Symbol::UniqueHonest {
                        1
                    } else {
                        let c = adversary.multi_honest_count(&fork, slot);
                        assert!(c >= 1, "H slot must receive at least one vertex");
                        c
                    };
                    // Maximum-length paths of A_{t−1}: synced once — all k
                    // vertices of this slot extend tines that were maximal
                    // *before* the slot began (every vertex so far is
                    // labelled `< slot`, so no label filter is needed).
                    for v in fork.vertices().skip(synced) {
                        let d = fork.depth(v);
                        if d > height {
                            height = d;
                            frontier.clear();
                        }
                        if d == height {
                            frontier.push(v);
                        }
                    }
                    synced = fork.vertex_count();
                    let candidates = &frontier;
                    for index in 0..count {
                        let parent = adversary.choose_honest_parent(&fork, slot, index, candidates);
                        assert!(
                            fork.depth(parent) == height && fork.label(parent) < slot,
                            "honest vertices extend maximum-length tines only"
                        );
                        fork.push_vertex(parent, slot);
                    }
                }
                Symbol::Adversarial => {}
            }
            adversary.augment(&mut fork, slot);
            // Stream this slot's delta (challenger vertices + whatever the
            // augmentation added, possibly at earlier labels) through the
            // validator.
            for v in fork.vertices().skip(observed) {
                validator.observe(fork.label(v), fork.depth(v));
            }
            observed = fork.vertex_count();
            if let Err(e) = validator.status() {
                panic!("adversary corrupted the fork at slot {slot}: {e}");
            }
        }
        if let Err(e) = validator.finish() {
            panic!("adversary left the fork incomplete: {e}");
        }
        fork
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_fork::balanced;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn w(s: &str) -> CharString {
        s.parse().unwrap()
    }

    #[test]
    fn noop_adversary_yields_single_chain() {
        let game = SettlementGame::new(w("hhHhH"));
        let fork = game.play(&mut NoopAdversary);
        assert!(fork.validate().is_ok());
        // One vertex per slot, all on one chain.
        assert_eq!(fork.vertex_count(), 6);
        assert_eq!(fork.height(), 5);
        assert_eq!(fork.max_length_tines().len(), 1);
        assert!(!balanced::is_balanced(&fork));
    }

    #[test]
    fn adversarial_slots_without_augmentation_leave_no_trace() {
        let game = SettlementGame::new(w("hAAh"));
        let fork = game.play(&mut NoopAdversary);
        assert_eq!(fork.vertex_count(), 3); // root + two honest vertices
        assert_eq!(fork.height(), 2);
    }

    #[test]
    fn random_adversary_produces_valid_forks() {
        let mut adv = RandomAdversary::new(StdRng::seed_from_u64(5));
        for s in ["hAhAhHAAH", "HHHHH", "AAAAh", "hHAhHAhA"] {
            let game = SettlementGame::new(w(s));
            let fork = game.play(&mut adv);
            assert!(fork.validate().is_ok(), "invalid fork for {s}");
        }
    }

    #[test]
    fn multi_honest_multiplicity_respected() {
        struct TwoPerH;
        impl GameAdversary for TwoPerH {
            fn multi_honest_count(&mut self, _f: &Fork, _s: usize) -> usize {
                2
            }
            fn choose_honest_parent(
                &mut self,
                _f: &Fork,
                _s: usize,
                _i: usize,
                c: &[VertexId],
            ) -> VertexId {
                c[0]
            }
        }
        let fork = SettlementGame::new(w("hH")).play(&mut TwoPerH);
        assert_eq!(fork.vertices_with_label(2).len(), 2);
        assert!(fork.validate().is_ok());
        // Both H vertices share the same (unique) max-length parent; they
        // are concurrent and at equal depth.
        let vs = fork.vertices_with_label(2);
        assert_eq!(fork.depth(vs[0]), fork.depth(vs[1]));
    }

    #[test]
    #[should_panic(expected = "maximum-length tines")]
    fn cheating_adversary_is_caught() {
        struct Cheater;
        impl GameAdversary for Cheater {
            fn choose_honest_parent(
                &mut self,
                _f: &Fork,
                _s: usize,
                _i: usize,
                _c: &[VertexId],
            ) -> VertexId {
                VertexId::ROOT // not maximal once the chain has grown
            }
        }
        let _ = SettlementGame::new(w("hh")).play(&mut Cheater);
    }

    #[test]
    #[should_panic(expected = "corrupted the fork at slot 2")]
    fn corrupting_augmentation_is_caught_online() {
        // An augmentation that re-labels honest slot 1 with a second vertex
        // breaks (F3)'s uniqueness; the stream validator must flag it at
        // the exact slot of the offending augmentation, not at game end.
        struct Corruptor;
        impl GameAdversary for Corruptor {
            fn choose_honest_parent(
                &mut self,
                _f: &Fork,
                _s: usize,
                _i: usize,
                c: &[VertexId],
            ) -> VertexId {
                c[0]
            }
            fn augment(&mut self, fork: &mut Fork, slot: usize) {
                if slot == 2 {
                    fork.push_vertex(VertexId::ROOT, 1);
                }
            }
        }
        let _ = SettlementGame::new(w("hAh")).play(&mut Corruptor);
    }

    /// The pre-frontier engine, verbatim: full vertex scan per honest
    /// slot. Oracle for the incremental max-depth frontier.
    fn play_oracle<A: GameAdversary>(w: &CharString, adversary: &mut A) -> Fork {
        let mut fork = Fork::trivial();
        for (slot, sym) in w.iter_slots() {
            fork.push_symbol(sym);
            match sym {
                Symbol::UniqueHonest | Symbol::MultiHonest => {
                    let count = if sym == Symbol::UniqueHonest {
                        1
                    } else {
                        let c = adversary.multi_honest_count(&fork, slot);
                        assert!(c >= 1);
                        c
                    };
                    let height = fork.height();
                    let candidates: Vec<VertexId> = fork
                        .vertices()
                        .filter(|v| fork.depth(*v) == height && fork.label(*v) < slot)
                        .collect();
                    for index in 0..count {
                        let parent =
                            adversary.choose_honest_parent(&fork, slot, index, &candidates);
                        fork.push_vertex(parent, slot);
                    }
                }
                Symbol::Adversarial => {}
            }
            adversary.augment(&mut fork, slot);
        }
        fork
    }

    #[test]
    fn incremental_frontier_matches_full_scan() {
        // Same adversary randomness on both paths: the candidate lists —
        // hence the tie-break choices, hence the forks — must be
        // bit-identical.
        for seed in 0..8u64 {
            for s in [
                "hAhAhHAAHhHAhhAAHH",
                "HHHHHHHHHH",
                "AAAAhhhhAA",
                "hHAhHAhAhH",
            ] {
                let fork = SettlementGame::new(w(s))
                    .play(&mut RandomAdversary::new(StdRng::seed_from_u64(seed)));
                let oracle = play_oracle(
                    &w(s),
                    &mut RandomAdversary::new(StdRng::seed_from_u64(seed)),
                );
                assert_eq!(fork, oracle, "frontier diverged on {s} seed {seed}");
            }
        }
    }

    #[test]
    fn withholding_adversary_can_balance_h_against_h() {
        // A hand-written adversary realising Figure 2's balanced fork on
        // w = hAhAhA: it plants adversarial blocks on the shorter branch so
        // the two honest chains alternate in the lead.
        struct Balancer;
        impl GameAdversary for Balancer {
            fn choose_honest_parent(
                &mut self,
                fork: &Fork,
                _slot: usize,
                _index: usize,
                candidates: &[VertexId],
            ) -> VertexId {
                // Honest leaders are steered onto the adversary's own
                // (adversarial-tipped) tine whenever it is tied for the
                // lead, keeping the two branches separate.
                *candidates
                    .iter()
                    .find(|v| !fork.is_honest(**v))
                    .unwrap_or(&candidates[0])
            }
            fn augment(&mut self, fork: &mut Fork, slot: usize) {
                if fork.string().get(slot) != Symbol::Adversarial {
                    return;
                }
                // Prop up the trailing branch (the honest-tipped vertex one
                // level below the top) with a withheld adversarial block.
                let height = fork.height();
                let trailing = fork
                    .vertices()
                    .find(|v| fork.depth(*v) + 1 == height && fork.label(*v) < slot);
                if let Some(v) = trailing {
                    fork.push_vertex(v, slot);
                }
            }
        }
        let fork = SettlementGame::new(w("hAhAhA")).play(&mut Balancer);
        assert!(fork.validate().is_ok());
        // The run reconstructs Figure 2: two disjoint maximum-length tines
        // that disagree about slot 1.
        assert_eq!(fork.vertex_count(), 7);
        assert!(balanced::is_x_balanced(&fork, 0));
        assert!(balanced::violates_settlement(&fork, 1));
    }
}
