//! # multihonest-adversary
//!
//! The settlement game and the optimal online adversary `A*` — Sections
//! 2.2 and 6.5 of *Consistency of Proof-of-Stake Blockchains with
//! Concurrent Honest Slot Leaders* (Kiayias, Quader, Russell; ICDCS 2020).
//!
//! * [`game`] — the `(D, T; s, k)`-settlement game: a challenger plays the
//!   honest longest-chain rule while a pluggable [`game::GameAdversary`]
//!   chooses honest tie-breaks, multiplicities for multiply honest slots,
//!   and arbitrary fork augmentations;
//! * [`astar`] — the optimal online adversary of Figure 4, which builds a
//!   **canonical fork**: one that simultaneously maximises the relative
//!   margin `µ_x(y)` for *every* prefix decomposition `w = xy`
//!   (Theorem 6), verified against the Theorem 5 recurrences by
//!   [`astar::is_canonical`];
//! * [`montecarlo`] — parallel Monte-Carlo estimation of settlement, UVP
//!   and Catalan statistics over sampled characteristic strings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod astar;
pub mod game;
pub mod montecarlo;

pub use crate::astar::{is_canonical, AstarBuilder, OptimalAdversary};
pub use crate::game::{GameAdversary, NoopAdversary, RandomAdversary, SettlementGame};
pub use crate::montecarlo::{CanonicalMonteCarlo, CanonicalSummary, MonteCarlo, SimMonteCarlo};
