//! The optimal online adversary `A*` of paper Figure 4 (Section 6.5).
//!
//! `A*` scans the characteristic string left to right, maintaining a
//! closed fork. Adversarial symbols leave the fork untouched (banking
//! reserve); honest symbols trigger one or two **conservative extensions**
//! — a zero-reach tine is padded with exactly `gap` withheld adversarial
//! blocks and capped with the new honest vertex at depth `height + 1`
//! (Definition 15), so the new tine has reach exactly 0 (Fact 5).
//!
//! The subtle part is *which* tine to extend. Following Figure 4:
//!
//! * if a single zero-reach tine exists, extend it;
//! * otherwise pick the zero-reach tine `z₁` that diverges **earliest**
//!   from some maximum-reach tine `r₁` (minimising `ℓ(r₁ ∩ z₁)`);
//! * on a multiply honest symbol with `ρ(F) = 0`, extend *both* `z₁` and
//!   `r₁`, freezing the earliest possible divergence into two tied chains.
//!
//! The result is a **canonical fork** (Theorem 6): it attains the maximum
//! relative margin `µ_x(y)` of Theorem 5's recurrence for *every* prefix
//! decomposition `w = xy` simultaneously. [`is_canonical`] checks exactly
//! this, giving the library an end-to-end cross-validation between the
//! game-theoretic and the algebraic views.
//!
//! ## Two implementations, one fork
//!
//! [`OptimalAdversary::build`] drives an [`AstarBuilder`], which keeps an
//! incremental [`ReachEngine`] across steps: reach values and the
//! zero/maximum-reach sets are `O(1)` bucket lookups, the
//! earliest-diverging pair resolves through per-bucket LCA aggregates and
//! `O(log n)` meets, and conservative extensions take their reserve slots
//! from a maintained adversarial-slot list instead of rescanning the
//! string backwards — `O(n log n)`-flavoured instead of super-quadratic.
//! The pre-engine implementation — a fresh definitional
//! [`ReachAnalysis`] per honest symbol plus explicit pair scans — survives
//! verbatim in [`reference`] as the equivalence oracle; the two paths are
//! asserted **bit-identical** over exhaustive short strings and seeded
//! random long strings.

use multihonest_chars::{CharString, Symbol};
use multihonest_fork::{Fork, ReachAnalysis, ReachEngine, VertexId};
use multihonest_margin::recurrence;

/// The optimal online adversary `A*` (paper Figure 4).
///
/// # Examples
///
/// ```
/// use multihonest_adversary::{is_canonical, OptimalAdversary};
///
/// let w = "hAhAhHAAH".parse()?;
/// let fork = OptimalAdversary::build(&w);
/// assert!(fork.validate().is_ok());
/// assert!(is_canonical(&fork));
/// # Ok::<(), multihonest_chars::ParseCharStringError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimalAdversary;

impl OptimalAdversary {
    /// Builds the canonical fork for `w` through the incremental engine.
    pub fn build(w: &CharString) -> Fork {
        let mut builder = AstarBuilder::new();
        for (_, sym) in w.iter_slots() {
            builder.step(sym);
        }
        builder.into_fork()
    }

    /// Extends a canonical fork for some prefix `w` into one for `w·b`.
    ///
    /// The fork must have been produced by [`OptimalAdversary`] (or be the
    /// trivial fork); the method appends `b` to the fork's string and
    /// performs `A*`'s move. This is the definitional single-step entry
    /// point (it re-analyses the fork from scratch); for building whole
    /// forks or stepping in a loop, [`AstarBuilder`] amortises the
    /// analysis across steps and produces bit-identical forks.
    pub fn step(fork: &mut Fork, b: Symbol) {
        reference::step(fork, b);
    }
}

/// Incremental `A*`: one [`ReachEngine`] carried across steps.
///
/// # Examples
///
/// ```
/// use multihonest_adversary::{is_canonical, AstarBuilder};
/// use multihonest_chars::Symbol;
///
/// let mut builder = AstarBuilder::new();
/// for sym in [Symbol::UniqueHonest, Symbol::Adversarial, Symbol::UniqueHonest] {
///     builder.step(sym);
/// }
/// assert_eq!(builder.rho(), 0);
/// assert!(is_canonical(builder.fork()));
/// ```
#[derive(Debug, Clone)]
pub struct AstarBuilder {
    engine: ReachEngine,
    /// Reused scratch for the reserve-slot labels of one conservative
    /// extension (avoids an allocation per honest symbol).
    reserve_scratch: Vec<usize>,
}

impl Default for AstarBuilder {
    fn default() -> AstarBuilder {
        AstarBuilder::new()
    }
}

impl AstarBuilder {
    /// Starts from the trivial fork over the empty string.
    pub fn new() -> AstarBuilder {
        AstarBuilder {
            engine: ReachEngine::new(Fork::trivial()),
            reserve_scratch: Vec::new(),
        }
    }

    /// Resumes from a canonical fork built by `A*` (replays it into the
    /// incremental state in `O(V log V)`).
    pub fn from_fork(fork: Fork) -> AstarBuilder {
        AstarBuilder {
            engine: ReachEngine::new(fork),
            reserve_scratch: Vec::new(),
        }
    }

    /// The fork built so far.
    pub fn fork(&self) -> &Fork {
        self.engine.fork()
    }

    /// Unwraps the canonical fork.
    pub fn into_fork(self) -> Fork {
        self.engine.into_fork()
    }

    /// `ρ` of the fork built so far — maintained incrementally, so
    /// margin/ρ sweeps over long strings never re-analyse the fork.
    pub fn rho(&self) -> i64 {
        self.engine.rho()
    }

    /// Starts incremental maintenance of the relative margin `µ_cut` (and
    /// a witness pair) over the growing canonical fork: `O(log n)` per
    /// vertex from here on, `O(1)` per query. By Theorem 6,
    /// `µ_x(F) = µ_x(y)` for the canonical fork of `w = xy`, so a tracked
    /// cut gives the settlement recurrence's value online, with a
    /// concrete fork witness the recurrence alone cannot provide.
    pub fn track_cut(&mut self, cut: usize) {
        self.engine.track_cut(cut);
    }

    /// `µ_cut` of the fork built so far (`None` if the cut is untracked).
    /// For cuts at or beyond the current length this saturates at
    /// `ρ(F)` — every tine pair qualifies.
    pub fn relative_margin(&self, cut: usize) -> Option<i64> {
        self.engine.margin(cut)
    }

    /// A witness pair attaining [`relative_margin`](Self::relative_margin):
    /// two tine endpoints meeting at label `≤ cut` whose min-reach equals
    /// `µ_cut` (equal endpoints encode a self-pair). `None` if untracked.
    pub fn margin_witness(&self, cut: usize) -> Option<(VertexId, VertexId)> {
        self.engine.margin_witness(cut)
    }

    /// Appends `b` and performs `A*`'s move for it.
    pub fn step(&mut self, b: Symbol) {
        if b == Symbol::Adversarial {
            self.engine.push_symbol(b);
            return;
        }
        // Analyse reach with respect to the current prefix — all O(1)
        // bucket lookups plus O(log n) meets on the shared ancestry index.
        let zero_empty = self.engine.zero_reach_tines().is_empty();
        let selection: [Option<VertexId>; 2] = if zero_empty {
            // No zero-reach tine (possible after a surplus of adversarial
            // slots): extend a maximum-reach tine — the prefix-aware
            // fallback of footnote 4.
            [Some(self.engine.max_reach_tines()[0]), None]
        } else {
            let rho_positive = self.engine.rho() >= 1;
            let (r1, z1) = self.engine.earliest_diverging_pair();
            if b == Symbol::UniqueHonest || rho_positive {
                [Some(z1), None]
            } else {
                // ρ(F) = 0 and b = H: freeze the earliest divergence into
                // two tied zero-reach chains. When the zero-reach tine is
                // unique (r1 = z1), extend it TWICE — Figure 4's literal
                // "|Z| = 1 ⇒ single extension" shortcut would fail to be
                // canonical already on w = "H" (µ_ε(H) = 0 needs two
                // concurrent leaders); Proposition 2's proof confirms two
                // extensions are intended whenever ρ = µ-candidate = 0.
                [Some(z1), Some(r1)]
            }
        };
        let gaps = selection.map(|tip| tip.map(|t| self.engine.gap(t)));
        self.engine.push_symbol(b);
        let new_label = self.engine.fork().string().len();
        for (tip, gap) in selection.into_iter().zip(gaps).flat_map(|(t, g)| t.zip(g)) {
            self.conservative_extend(tip, gap, new_label);
        }
    }

    /// Conservatively extends the tine ending at `tip`: adds `gap`
    /// adversarial vertices — the *latest* reserve slots after `ℓ(tip)`,
    /// read off the engine's adversarial-slot list instead of a backwards
    /// string scan — and one honest vertex labelled `new_label` on top.
    fn conservative_extend(&mut self, tip: VertexId, gap: i64, new_label: usize) {
        self.reserve_scratch.clear();
        self.reserve_scratch
            .extend_from_slice(self.engine.latest_adversarial_slots(gap as usize));
        if let Some(&earliest) = self.reserve_scratch.first() {
            assert!(
                earliest > self.engine.fork().label(tip),
                "zero-reach tine must have reserve ≥ gap (Fact 5)"
            );
        }
        let mut cur = tip;
        for i in 0..self.reserve_scratch.len() {
            cur = self.engine.push_vertex(cur, self.reserve_scratch[i]);
        }
        self.engine.push_vertex(cur, new_label);
    }
}

/// The pre-engine `A*` implementation, kept verbatim as the equivalence
/// oracle: a fresh definitional [`ReachAnalysis`] per honest symbol,
/// explicit `R × Z` pair scans for the earliest divergence, and a
/// backwards string scan per conservative extension. Quadratic-and-worse —
/// use [`OptimalAdversary::build`] for anything long — but it transcribes
/// Figure 4 directly from the definitions, which is exactly what an oracle
/// should do. [`OptimalAdversary::build`] is asserted to produce
/// bit-identical forks.
pub mod reference {
    use super::*;

    /// Builds the canonical fork for `w` by repeated definitional steps.
    pub fn build(w: &CharString) -> Fork {
        let mut fork = Fork::trivial();
        for (_, sym) in w.iter_slots() {
            step(&mut fork, sym);
        }
        fork
    }

    /// Performs one definitional `A*` step (see [`OptimalAdversary::step`]).
    pub fn step(fork: &mut Fork, b: Symbol) {
        if b == Symbol::Adversarial {
            fork.push_symbol(b);
            return;
        }
        // Analyse reach with respect to the current prefix.
        let (rho, zero, max_reach, gaps) = {
            let ra = ReachAnalysis::new(fork);
            let rho = ra.rho();
            let zero: Vec<VertexId> = ra.tines_with_reach(0);
            let max_reach: Vec<VertexId> = ra.tines_with_reach(rho);
            let gaps: Vec<i64> = fork.vertices().map(|v| ra.gap(v)).collect();
            (rho, zero, max_reach, gaps)
        };
        let rho_positive = rho >= 1;
        let selection: Vec<VertexId> = if zero.is_empty() {
            vec![max_reach[0]]
        } else {
            let (r1, z1) = earliest_diverging_pair(fork, &max_reach, &zero);
            if b == Symbol::UniqueHonest || rho_positive {
                vec![z1]
            } else {
                vec![z1, r1]
            }
        };
        fork.push_symbol(b);
        let new_label = fork.string().len();
        for tip in selection {
            conservative_extend(fork, tip, gaps[tip.index()], new_label);
        }
    }

    /// Finds `(r₁, z₁) ∈ R × Z` minimising `ℓ(r₁ ∩ z₁)` by scanning every
    /// pair.
    ///
    /// Distinct pairs always weakly beat equal pairs (`ℓ(r ∩ z) ≤ ℓ(z)`
    /// since the last common vertex is an ancestor of `z`), so an equal
    /// pair is returned only when `R × Z` contains no distinct pair —
    /// i.e. when both sets are the same singleton.
    fn earliest_diverging_pair(
        fork: &Fork,
        max_reach: &[VertexId],
        zero: &[VertexId],
    ) -> (VertexId, VertexId) {
        let mut best: Option<(usize, VertexId, VertexId)> = None;
        for &r in max_reach {
            for &z in zero {
                if r == z {
                    continue;
                }
                let l = fork.label(fork.last_common_vertex(r, z));
                if best.is_none_or(|(bl, _, _)| l < bl) {
                    best = Some((l, r, z));
                }
            }
        }
        match best {
            Some((_, r1, z1)) => (r1, z1),
            // R and Z are the same singleton {z}: the "pair" is (z, z).
            None => (zero[0], zero[0]),
        }
    }

    /// Conservatively extends the tine ending at `tip`: adds `gap`
    /// adversarial vertices (consuming the latest available adversarial
    /// slots after `ℓ(tip)`, found by scanning the string backwards) and
    /// one honest vertex labelled `new_label` on top, reaching depth
    /// `height + 1`.
    fn conservative_extend(fork: &mut Fork, tip: VertexId, gap: i64, new_label: usize) {
        let mut labels = Vec::with_capacity(gap as usize);
        // Latest `gap` adversarial slots strictly after ℓ(tip), before
        // new_label.
        let mut t = new_label - 1;
        while labels.len() < gap as usize {
            assert!(
                t > fork.label(tip),
                "zero-reach tine must have reserve ≥ gap (Fact 5)"
            );
            if fork.string().get(t).is_adversarial() {
                labels.push(t);
            }
            t -= 1;
        }
        labels.reverse();
        let mut cur = tip;
        for l in labels {
            cur = fork.push_vertex(cur, l);
        }
        fork.push_vertex(cur, new_label);
    }
}

/// Verifies that a closed fork is **canonical** (paper Definition 19):
/// `ρ(F) = ρ(w)` and `µ_x(F) = µ_x(y)` for every decomposition `w = xy`,
/// where the right-hand sides are computed by the Theorem 5 recurrences.
///
/// The definitional `µ` side is the `O(V²)` pair scan — the bottleneck
/// when verifying long canonical forks — so it runs through the
/// thread-parallel [`ReachAnalysis::relative_margins_parallel`] (exact:
/// an integer max-reduction, identical to the serial oracle for every
/// thread count).
pub fn is_canonical(fork: &Fork) -> bool {
    if !fork.is_closed() {
        return false;
    }
    let w = fork.string();
    let ra = ReachAnalysis::new(fork);
    if ra.rho() != recurrence::rho(w) {
        return false;
    }
    let definitional = ra.relative_margins_parallel();
    (0..=w.len()).all(|cut| definitional[cut] == recurrence::relative_margin(w, cut))
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_catalan::exhaustive_strings;
    use multihonest_chars::BernoulliCondition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn w(s: &str) -> CharString {
        s.parse().unwrap()
    }

    #[test]
    fn builds_valid_closed_forks() {
        for s in ["", "h", "A", "H", "hAhAhA", "hAhAhHAAH", "AAAAhh", "HHHHH"] {
            let fork = OptimalAdversary::build(&w(s));
            assert!(fork.validate().is_ok(), "invalid fork for {s:?}");
            assert!(fork.is_closed(), "open fork for {s:?}");
        }
    }

    #[test]
    fn canonical_on_all_strings_up_to_length_8() {
        // Theorem 6, verified exhaustively: 3^8 = 6561 strings.
        for n in 0..=8 {
            for s in exhaustive_strings(n) {
                let fork = OptimalAdversary::build(&s);
                assert!(is_canonical(&fork), "A* fork not canonical for {s}");
            }
        }
    }

    #[test]
    fn engine_matches_reference_on_all_strings_up_to_length_8() {
        // The incremental engine must replicate the definitional oracle
        // bit for bit — same vertices, same parents, same insertion order.
        for n in 0..=8 {
            for s in exhaustive_strings(n) {
                let engine = OptimalAdversary::build(&s);
                let oracle = reference::build(&s);
                assert_eq!(engine, oracle, "engine diverged from oracle on {s}");
            }
        }
    }

    #[test]
    fn engine_matches_reference_on_random_longer_strings() {
        let mut rng = StdRng::seed_from_u64(2024);
        for (eps, p_h) in [(0.1, 0.3), (0.3, 0.05), (0.05, 0.45), (0.2, 0.0)] {
            let cond = BernoulliCondition::new(eps, p_h).unwrap();
            for len in [60usize, 150, 400] {
                let s = cond.sample(&mut rng, len);
                let engine = OptimalAdversary::build(&s);
                let oracle = reference::build(&s);
                assert_eq!(engine, oracle, "engine diverged from oracle on {s}");
            }
        }
    }

    #[test]
    fn canonical_on_random_longer_strings() {
        let cond = BernoulliCondition::new(0.1, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..30 {
            let s = cond.sample(&mut rng, 40);
            let fork = OptimalAdversary::build(&s);
            assert!(is_canonical(&fork), "A* fork not canonical for {s}");
        }
    }

    #[test]
    fn incremental_steps_match_batch_build() {
        let s = w("hAHAhHA");
        let batch = OptimalAdversary::build(&s);
        // Definitional single-step entry point.
        let mut inc = Fork::trivial();
        for &sym in s.symbols() {
            OptimalAdversary::step(&mut inc, sym);
        }
        assert_eq!(batch, inc);
        // Engine-backed stepping, resumed from a half-built fork.
        let mut builder = AstarBuilder::new();
        for &sym in &s.symbols()[..3] {
            builder.step(sym);
        }
        let mut resumed = AstarBuilder::from_fork(builder.into_fork());
        for &sym in &s.symbols()[3..] {
            resumed.step(sym);
        }
        assert_eq!(batch, resumed.into_fork());
    }

    #[test]
    fn balanced_fork_realised_on_figure2_string() {
        // µ_ε(hAhAhA) ≥ 0, so the canonical fork must witness an
        // ε-balanced fork after trimming to equal lengths — at minimum the
        // final margins must match the recurrence.
        let s = w("hAhAhA");
        let fork = OptimalAdversary::build(&s);
        let ra = ReachAnalysis::new(&fork);
        assert_eq!(ra.relative_margin(0), recurrence::relative_margin(&s, 0));
        assert!(ra.relative_margin(0) >= 0);
    }

    #[test]
    fn multi_honest_double_extension_freezes_divergence() {
        // On w = H with ρ = µ = 0, the two concurrent honest leaders give
        // the adversary two tied chains for free: A* extends the root
        // twice, and µ_ε(H) = 0 is witnessed by the two slot-1 vertices.
        let fork = OptimalAdversary::build(&w("H"));
        assert_eq!(fork.vertex_count(), 3);
        assert_eq!(fork.vertices_with_label(1).len(), 2);
        assert!(is_canonical(&fork));
        // On HH both branches advance in lockstep: 5 vertices, margin 0.
        let fork = OptimalAdversary::build(&w("HH"));
        assert_eq!(fork.vertex_count(), 5);
        assert_eq!(fork.max_length_tines().len(), 2);
        assert!(is_canonical(&fork));
        // But a uniquely honest slot collapses the tie: the h of "Hh" must
        // extend one branch only (F3 allows exactly one slot-2 vertex).
        let fork = OptimalAdversary::build(&w("Hh"));
        assert_eq!(fork.vertices_with_label(2).len(), 1);
        assert!(is_canonical(&fork));
    }

    /// Asserts every tracked cut of `builder` agrees with the Theorem 5
    /// recurrence on `prefix` (Theorem 6: the canonical fork attains
    /// `µ_x(y)` for every decomposition simultaneously), and that the
    /// reported witness pair qualifies and attains the value.
    fn check_tracked(builder: &AstarBuilder, prefix: &CharString, cuts: &[usize]) {
        let n = prefix.len();
        let fork = builder.fork();
        let ra = ReachAnalysis::new(fork);
        for &cut in cuts {
            let want = recurrence::relative_margin(prefix, cut.min(n));
            let got = builder.relative_margin(cut).expect("cut is tracked");
            assert_eq!(got, want, "µ at cut {cut} after {prefix}");
            let (a, b) = builder.margin_witness(cut).expect("cut is tracked");
            let meet = fork.last_common_vertex(a, b);
            assert!(
                fork.label(meet) <= cut,
                "witness for cut {cut} must qualify (meet label ≤ cut) after {prefix}"
            );
            assert_eq!(
                ra.reach(a).min(ra.reach(b)),
                want,
                "witness must attain µ at cut {cut} after {prefix}"
            );
        }
    }

    #[test]
    fn tracked_margins_match_recurrence_on_all_strings_up_to_length_7() {
        let cuts = [0usize, 1, 2, 3, 5, 9];
        for n in 0..=7 {
            for s in exhaustive_strings(n) {
                let mut builder = AstarBuilder::new();
                for &cut in &cuts {
                    builder.track_cut(cut);
                }
                let mut prefix = w("");
                check_tracked(&builder, &prefix, &cuts);
                for &sym in s.symbols() {
                    builder.step(sym);
                    prefix.push(sym);
                    check_tracked(&builder, &prefix, &cuts);
                }
            }
        }
    }

    #[test]
    fn tracked_margins_match_recurrence_on_random_longer_strings() {
        let cond = BernoulliCondition::new(0.1, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(4242);
        let cuts = [0usize, 7, 40, 120];
        for _ in 0..8 {
            let s = cond.sample(&mut rng, 120);
            let mut builder = AstarBuilder::new();
            for &cut in &cuts {
                builder.track_cut(cut);
            }
            let mut prefix = w("");
            for (i, &sym) in s.symbols().iter().enumerate() {
                builder.step(sym);
                prefix.push(sym);
                if (i + 1) % 15 == 0 {
                    check_tracked(&builder, &prefix, &cuts);
                }
            }
            check_tracked(&builder, &prefix, &cuts);
            // Tracking a cut late must replay to the same state — and the
            // replay path has to cope with the backdated reserve vertices
            // conservative extensions insert below past labels.
            let mut late = AstarBuilder::new();
            for &sym in s.symbols() {
                late.step(sym);
            }
            late.track_cut(40);
            assert_eq!(late.relative_margin(40), builder.relative_margin(40));
            assert_eq!(late.margin_witness(40), builder.margin_witness(40));
        }
    }

    #[test]
    fn adversarial_reserve_is_materialised_on_demand() {
        // w = hAAh: the final h extends the maximum-reach tine v1 (no
        // zero-reach tine exists after two A's); no adversarial vertices
        // are needed because v1 is already at maximum length.
        let s = w("hAAh");
        let fork = OptimalAdversary::build(&s);
        assert!(is_canonical(&fork));
        assert_eq!(fork.vertex_count(), 3); // root, v1, v4

        // w = hAh: when the final h arrives, the root is the unique
        // zero-reach tine with gap 1; the conservative extension must
        // materialise one withheld adversarial block (label 2) beneath the
        // new honest vertex — exactly the µ_ε(hAh) = 0 witness fork
        // (root→1 and root→2→3, the latter of maximum length).
        let s = w("hAh");
        let fork = OptimalAdversary::build(&s);
        assert!(is_canonical(&fork));
        let adversarial = fork.vertices().filter(|v| !fork.is_honest(*v)).count();
        assert_eq!(
            adversarial, 1,
            "conservative extension must consume reserve"
        );
        assert_eq!(fork.vertex_count(), 4);
    }
}
