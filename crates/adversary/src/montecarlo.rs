//! Parallel Monte-Carlo estimation of settlement, UVP and Catalan
//! statistics over sampled characteristic strings.
//!
//! Every estimator samples i.i.d. strings from a
//! [`BernoulliCondition`] and evaluates a *deterministic* predicate from
//! the sibling crates (margin recurrence, Catalan scan). The results come
//! with Wilson confidence intervals so that the experiment harness can
//! print honest error bars next to the exact DP values and the analytic
//! bounds.

use multihonest_catalan::CatalanAnalysis;
use multihonest_chars::BernoulliCondition;
use multihonest_margin::recurrence;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A binomial estimate with Wilson confidence intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Number of trials in which the event occurred.
    pub hits: u64,
    /// Total number of trials.
    pub trials: u64,
}

impl Estimate {
    /// The point estimate `hits / trials`.
    pub fn frequency(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.hits as f64 / self.trials as f64
    }

    /// The Wilson score interval at `z` standard deviations (use
    /// `z = 1.96` for 95%).
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.frequency();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((centre - half).max(0.0), (centre + half).min(1.0))
    }
}

/// Parallel Monte-Carlo driver over a Bernoulli condition.
///
/// # Examples
///
/// ```
/// use multihonest_chars::BernoulliCondition;
/// use multihonest_adversary::MonteCarlo;
///
/// let cond = BernoulliCondition::new(0.4, 0.4)?;
/// let mc = MonteCarlo::new(cond, 2_000, 42);
/// let est = mc.settlement_violation(50, 10);
/// assert!(est.frequency() < 0.5);
/// # Ok::<(), multihonest_chars::DistributionError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    cond: BernoulliCondition,
    trials: u64,
    seed: u64,
    threads: usize,
}

impl MonteCarlo {
    /// Creates a driver running `trials` samples with the given seed,
    /// using all available parallelism.
    pub fn new(cond: BernoulliCondition, trials: u64, seed: u64) -> MonteCarlo {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        MonteCarlo {
            cond,
            trials,
            seed,
            threads,
        }
    }

    /// Overrides the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> MonteCarlo {
        self.threads = threads.max(1);
        self
    }

    /// The condition being sampled.
    pub fn condition(&self) -> BernoulliCondition {
        self.cond
    }

    /// Trials per work block. Each block derives its RNG from the block
    /// index alone, so the estimate is a pure function of `(seed, trials)`
    /// — identical for every thread count — while threads steal blocks
    /// from a shared counter for load balance.
    const BLOCK: u64 = 1024;

    /// The RNG seed of work block `b` — independent of which worker runs
    /// it (SplitMix64-style odd multiplier to decorrelate nearby blocks).
    fn block_seed(&self, b: u64) -> u64 {
        self.seed ^ (b.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Runs `predicate` on `trials` sampled strings of length `len` and
    /// counts hits. The predicate must be deterministic.
    ///
    /// The result is **seed-stable across thread counts**: trials are
    /// partitioned into fixed-size blocks seeded by block index (not by
    /// worker), workers claim blocks through an atomic counter, and hit
    /// counts are summed (a commutative integer reduction), so
    /// `with_threads(1)` and `with_threads(n)` return identical estimates.
    pub fn estimate<F>(&self, len: usize, predicate: F) -> Estimate
    where
        F: Fn(&multihonest_chars::CharString) -> bool + Sync,
    {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cond = self.cond;
        let blocks = self.trials.div_ceil(Self::BLOCK);
        let workers = (self.threads as u64).min(blocks.max(1)) as usize;
        let run_block = |b: u64| -> u64 {
            let quota = Self::BLOCK.min(self.trials - b * Self::BLOCK);
            let mut rng = StdRng::seed_from_u64(self.block_seed(b));
            let mut local = 0u64;
            for _ in 0..quota {
                let w = cond.sample(&mut rng, len);
                if predicate(&w) {
                    local += 1;
                }
            }
            local
        };
        let hits = if workers <= 1 {
            (0..blocks).map(run_block).sum()
        } else {
            let counter = AtomicU64::new(0);
            let mut hits = 0u64;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..workers {
                    let counter = &counter;
                    let run_block = &run_block;
                    handles.push(scope.spawn(move || {
                        let mut local = 0u64;
                        loop {
                            let b = counter.fetch_add(1, Ordering::Relaxed);
                            if b >= blocks {
                                break;
                            }
                            local += run_block(b);
                        }
                        local
                    }));
                }
                for h in handles {
                    hits += h.join().expect("worker panicked");
                }
            });
            hits
        };
        Estimate {
            hits,
            trials: self.trials,
        }
    }

    /// Frequency of `µ_x(y) ≥ 0` at `|x| = prefix_len`, `|y| = k` — the
    /// Monte-Carlo counterpart of
    /// [`ExactSettlement::violation_probability`].
    ///
    /// [`ExactSettlement::violation_probability`]:
    /// multihonest_margin::ExactSettlement::violation_probability
    pub fn settlement_violation(&self, prefix_len: usize, k: usize) -> Estimate {
        self.estimate(prefix_len + k, |w| {
            recurrence::margin_trace(w, prefix_len)[k] >= 0
        })
    }

    /// Frequency of a violation at **any** horizon in `k..=horizon`
    /// (matching [`ExactSettlement::violation_by_horizon`]).
    ///
    /// [`ExactSettlement::violation_by_horizon`]:
    /// multihonest_margin::ExactSettlement::violation_by_horizon
    pub fn settlement_violation_by_horizon(
        &self,
        prefix_len: usize,
        k: usize,
        horizon: usize,
    ) -> Estimate {
        self.estimate(prefix_len + horizon, |w| {
            recurrence::margin_trace(w, prefix_len)
                .iter()
                .enumerate()
                .any(|(len, &m)| len >= k && m >= 0)
        })
    }

    /// Frequency of the Bound-1 failure event: the window
    /// `[start, start + k − 1]` of a length-`len` string contains **no
    /// uniquely honest Catalan slot** (Catalan with respect to the whole
    /// string).
    pub fn no_unique_catalan_in_window(&self, len: usize, start: usize, k: usize) -> Estimate {
        self.estimate(len, |w| {
            CatalanAnalysis::new(w)
                .first_uniquely_honest_catalan_in(start, start + k - 1)
                .is_none()
        })
    }

    /// Frequency of the Bound-2 failure event: the window contains no two
    /// **consecutive** Catalan slots.
    pub fn no_consecutive_catalan_in_window(&self, len: usize, start: usize, k: usize) -> Estimate {
        self.estimate(len, |w| {
            CatalanAnalysis::new(w)
                .first_consecutive_catalan_in(start, start + k - 1)
                .is_none()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_margin::ExactSettlement;

    #[test]
    fn wilson_interval_sanity() {
        let e = Estimate {
            hits: 50,
            trials: 100,
        };
        let (lo, hi) = e.wilson_interval(1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25);
        let empty = Estimate { hits: 0, trials: 0 };
        assert_eq!(empty.wilson_interval(1.96), (0.0, 1.0));
        assert_eq!(empty.frequency(), 0.0);
    }

    #[test]
    fn estimate_is_deterministic_given_seed() {
        let cond = BernoulliCondition::new(0.3, 0.4).unwrap();
        let mc = MonteCarlo::new(cond, 1_000, 7).with_threads(2);
        let a = mc.settlement_violation(20, 8);
        let b = mc.settlement_violation(20, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn estimate_is_stable_across_thread_counts() {
        // Block-indexed seeding: the estimate is a pure function of
        // (seed, trials), whatever the parallelism — including trial
        // counts that don't divide evenly into blocks.
        let cond = BernoulliCondition::new(0.3, 0.4).unwrap();
        for trials in [1_000u64, 2_048, 5_000] {
            let single = MonteCarlo::new(cond, trials, 7)
                .with_threads(1)
                .settlement_violation(20, 8);
            for threads in [2usize, 3, 8] {
                let multi = MonteCarlo::new(cond, trials, 7)
                    .with_threads(threads)
                    .settlement_violation(20, 8);
                assert_eq!(
                    single, multi,
                    "thread count changed the estimate ({trials} trials, {threads} threads)"
                );
            }
        }
    }

    #[test]
    fn frequency_matches_exact_dp() {
        let cond = BernoulliCondition::new(0.35, 0.4).unwrap();
        let mc = MonteCarlo::new(cond, 30_000, 11);
        let k = 10;
        let prefix = 200;
        let est = mc.settlement_violation(prefix, k);
        let exact =
            ExactSettlement::new(cond).violation_probabilities_finite_prefix(prefix, &[k])[0];
        let (lo, hi) = est.wilson_interval(3.5);
        assert!(
            lo <= exact && exact <= hi,
            "exact {exact} outside MC interval [{lo}, {hi}]"
        );
    }

    #[test]
    fn horizon_variant_at_least_pointwise() {
        let cond = BernoulliCondition::new(0.3, 0.5).unwrap();
        let mc = MonteCarlo::new(cond, 5_000, 13);
        let point = mc.settlement_violation(50, 8).frequency();
        let horizon = mc.settlement_violation_by_horizon(50, 8, 30).frequency();
        assert!(horizon >= point - 0.02);
    }

    #[test]
    fn catalan_window_events_shrink_with_k() {
        let cond = BernoulliCondition::new(0.4, 0.55).unwrap();
        let mc = MonteCarlo::new(cond, 4_000, 17);
        let small = mc.no_unique_catalan_in_window(120, 40, 10).frequency();
        let large = mc.no_unique_catalan_in_window(120, 40, 40).frequency();
        assert!(
            large <= small + 0.02,
            "longer windows catch more Catalan slots"
        );
        let cons = mc.no_consecutive_catalan_in_window(120, 40, 40).frequency();
        assert!(
            cons >= large - 0.02,
            "consecutive pairs are rarer than singles"
        );
    }
}
