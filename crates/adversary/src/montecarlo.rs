//! Parallel Monte-Carlo estimation of settlement, UVP and Catalan
//! statistics — over sampled characteristic strings ([`MonteCarlo`]) and
//! over full protocol executions ([`SimMonteCarlo`]).
//!
//! Every string estimator samples i.i.d. strings from a
//! [`BernoulliCondition`] and evaluates a *deterministic* predicate from
//! the sibling crates (margin recurrence, Catalan scan); the execution
//! estimators run the slot-by-slot simulator and read its indexed
//! consistency layer. The results come with Wilson confidence intervals
//! so that the experiment harness can print honest error bars next to the
//! exact DP values and the analytic bounds.

use multihonest_catalan::CatalanAnalysis;
use multihonest_chars::BernoulliCondition;
use multihonest_margin::recurrence;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::astar::AstarBuilder;

/// Sums `f(i)` over jobs `i ∈ 0..n` with up to `workers` scoped threads
/// claiming indices from a shared atomic counter. The reduction is a
/// commutative integer sum over a fixed job set, so the total is a pure
/// function of `(n, f)` — identical for every worker count. Both
/// Monte-Carlo drivers ([`MonteCarlo`], [`SimMonteCarlo`]) reduce
/// through this.
fn sum_claimed<F>(n: u64, workers: usize, f: F) -> u64
where
    F: Fn(u64) -> u64 + Sync,
{
    reduce_claimed(n, workers, 0u64, f, |a, b| a + b)
}

/// A binomial estimate with Wilson confidence intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Number of trials in which the event occurred.
    pub hits: u64,
    /// Total number of trials.
    pub trials: u64,
}

impl Estimate {
    /// The point estimate `hits / trials`.
    pub fn frequency(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.hits as f64 / self.trials as f64
    }

    /// The Wilson score interval at `z` standard deviations (use
    /// `z = 1.96` for 95%).
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.frequency();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((centre - half).max(0.0), (centre + half).min(1.0))
    }
}

/// Parallel Monte-Carlo driver over a Bernoulli condition.
///
/// # Examples
///
/// ```
/// use multihonest_chars::BernoulliCondition;
/// use multihonest_adversary::MonteCarlo;
///
/// let cond = BernoulliCondition::new(0.4, 0.4)?;
/// let mc = MonteCarlo::new(cond, 2_000, 42);
/// let est = mc.settlement_violation(50, 10);
/// assert!(est.frequency() < 0.5);
/// # Ok::<(), multihonest_chars::DistributionError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    cond: BernoulliCondition,
    trials: u64,
    seed: u64,
    threads: usize,
}

impl MonteCarlo {
    /// Creates a driver running `trials` samples with the given seed,
    /// using all available parallelism.
    pub fn new(cond: BernoulliCondition, trials: u64, seed: u64) -> MonteCarlo {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        MonteCarlo {
            cond,
            trials,
            seed,
            threads,
        }
    }

    /// Overrides the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> MonteCarlo {
        self.threads = threads.max(1);
        self
    }

    /// The condition being sampled.
    pub fn condition(&self) -> BernoulliCondition {
        self.cond
    }

    /// Trials per work block. Each block derives its RNG from the block
    /// index alone, so the estimate is a pure function of `(seed, trials)`
    /// — identical for every thread count — while threads steal blocks
    /// from a shared counter for load balance.
    const BLOCK: u64 = 1024;

    /// The RNG seed of work block `b` — independent of which worker runs
    /// it (SplitMix64-style odd multiplier to decorrelate nearby blocks).
    fn block_seed(&self, b: u64) -> u64 {
        self.seed ^ (b.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Runs `predicate` on `trials` sampled strings of length `len` and
    /// counts hits. The predicate must be deterministic.
    ///
    /// The result is **seed-stable across thread counts**: trials are
    /// partitioned into fixed-size blocks seeded by block index (not by
    /// worker), workers claim blocks through an atomic counter, and hit
    /// counts are summed (a commutative integer reduction), so
    /// `with_threads(1)` and `with_threads(n)` return identical estimates.
    pub fn estimate<F>(&self, len: usize, predicate: F) -> Estimate
    where
        F: Fn(&multihonest_chars::CharString) -> bool + Sync,
    {
        let cond = self.cond;
        let blocks = self.trials.div_ceil(Self::BLOCK);
        let hits = sum_claimed(blocks, self.threads, |b| {
            let quota = Self::BLOCK.min(self.trials - b * Self::BLOCK);
            let mut rng = StdRng::seed_from_u64(self.block_seed(b));
            let mut local = 0u64;
            for _ in 0..quota {
                let w = cond.sample(&mut rng, len);
                if predicate(&w) {
                    local += 1;
                }
            }
            local
        });
        Estimate {
            hits,
            trials: self.trials,
        }
    }

    /// Frequency of `µ_x(y) ≥ 0` at `|x| = prefix_len`, `|y| = k` — the
    /// Monte-Carlo counterpart of
    /// [`ExactSettlement::violation_probability`].
    ///
    /// [`ExactSettlement::violation_probability`]:
    /// multihonest_margin::ExactSettlement::violation_probability
    pub fn settlement_violation(&self, prefix_len: usize, k: usize) -> Estimate {
        self.estimate(prefix_len + k, |w| {
            recurrence::margin_trace(w, prefix_len)[k] >= 0
        })
    }

    /// Frequency of a violation at **any** horizon in `k..=horizon`
    /// (matching [`ExactSettlement::violation_by_horizon`]).
    ///
    /// [`ExactSettlement::violation_by_horizon`]:
    /// multihonest_margin::ExactSettlement::violation_by_horizon
    pub fn settlement_violation_by_horizon(
        &self,
        prefix_len: usize,
        k: usize,
        horizon: usize,
    ) -> Estimate {
        self.estimate(prefix_len + horizon, |w| {
            recurrence::margin_trace(w, prefix_len)
                .iter()
                .enumerate()
                .any(|(len, &m)| len >= k && m >= 0)
        })
    }

    /// Frequency of the Bound-1 failure event: the window
    /// `[start, start + k − 1]` of a length-`len` string contains **no
    /// uniquely honest Catalan slot** (Catalan with respect to the whole
    /// string).
    pub fn no_unique_catalan_in_window(&self, len: usize, start: usize, k: usize) -> Estimate {
        self.estimate(len, |w| {
            CatalanAnalysis::new(w)
                .first_uniquely_honest_catalan_in(start, start + k - 1)
                .is_none()
        })
    }

    /// Frequency of the Bound-2 failure event: the window contains no two
    /// **consecutive** Catalan slots.
    pub fn no_consecutive_catalan_in_window(&self, len: usize, start: usize, k: usize) -> Estimate {
        self.estimate(len, |w| {
            CatalanAnalysis::new(w)
                .first_consecutive_catalan_in(start, start + k - 1)
                .is_none()
        })
    }
}

/// Claims jobs `i ∈ 0..n` from a shared atomic counter across up to
/// `workers` scoped threads and merges `f(i)` with the commutative,
/// associative `merge` — like [`sum_claimed`], but for arbitrary
/// aggregates. The result is a pure function of `(n, f)` whatever the
/// parallelism, provided `merge` really is commutative and associative
/// (integer sums, maxima and counts are; float sums are **not**).
fn reduce_claimed<T, F, M>(n: u64, workers: usize, init: T, f: F, merge: M) -> T
where
    T: Send,
    F: Fn(u64) -> T + Sync,
    M: Fn(T, T) -> T + Sync + Send,
{
    use std::sync::atomic::{AtomicU64, Ordering};
    let workers = (workers as u64).clamp(1, n.max(1)) as usize;
    let mut total = init;
    if workers <= 1 {
        for i in 0..n {
            total = merge(total, f(i));
        }
        return total;
    }
    let counter = AtomicU64::new(0);
    let mut locals: Vec<T> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let counter = &counter;
            let f = &f;
            let merge = &merge;
            handles.push(scope.spawn(move || {
                let mut local: Option<T> = None;
                loop {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let v = f(i);
                    local = Some(match local {
                        None => v,
                        Some(acc) => merge(acc, v),
                    });
                }
                local
            }));
        }
        for h in handles {
            if let Some(local) = h.join().expect("worker panicked") {
                locals.push(local);
            }
        }
    });
    for local in locals {
        total = merge(total, local);
    }
    total
}

/// Aggregate statistics of canonical forks over sampled characteristic
/// strings — the output of [`CanonicalMonteCarlo::summary`].
///
/// The `rho_agreements` field is the Theorem-6 cross-validation at scale:
/// for every sampled string the game-side `ρ(F)` of the `A*`-built fork
/// (read off the incremental engine in `O(1)`) is compared against the
/// algebraic `ρ(w)` of the Theorem-5 recurrence; canonical forks must
/// agree on all trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanonicalSummary {
    /// Number of sampled strings.
    pub trials: u64,
    /// Length of each sampled string.
    pub len: usize,
    /// Trials where the fork's `ρ(F)` equals the recurrence `ρ(w)`
    /// (Theorem 6 demands all of them).
    pub rho_agreements: u64,
    /// Mean `ρ` over trials.
    pub mean_rho: f64,
    /// Maximum `ρ` over trials.
    pub max_rho: i64,
    /// Mean plain margin `µ_ε(w)` (Theorem-5 recurrence) over trials.
    pub mean_margin: f64,
    /// Trials with `µ_ε(w) ≥ 0` (an ε-balanced fork exists).
    pub nonneg_margin_trials: u64,
    /// Mean vertex count of the canonical forks.
    pub mean_vertices: f64,
}

/// Per-block integer partials behind [`CanonicalSummary`] — everything is
/// summed or maxed in integers so the reduction is exact and
/// thread-count-invariant.
#[derive(Debug, Clone, Copy)]
struct CanonicalPartial {
    rho_sum: i64,
    rho_max: i64,
    margin_sum: i64,
    nonneg_margin: u64,
    vertices: u64,
    agreements: u64,
}

impl CanonicalPartial {
    const ZERO: CanonicalPartial = CanonicalPartial {
        rho_sum: 0,
        rho_max: i64::MIN,
        margin_sum: 0,
        nonneg_margin: 0,
        vertices: 0,
        agreements: 0,
    };

    fn merge(a: CanonicalPartial, b: CanonicalPartial) -> CanonicalPartial {
        CanonicalPartial {
            rho_sum: a.rho_sum + b.rho_sum,
            rho_max: a.rho_max.max(b.rho_max),
            margin_sum: a.margin_sum + b.margin_sum,
            nonneg_margin: a.nonneg_margin + b.nonneg_margin,
            vertices: a.vertices + b.vertices,
            agreements: a.agreements + b.agreements,
        }
    }
}

/// Parallel Monte-Carlo driver over **canonical forks**: each trial
/// samples a characteristic string, runs the incremental `A*` engine over
/// it, and folds margin/ρ statistics — the game-theoretic side of the
/// theory-vs-game experiments at horizons (`n = 10⁴–10⁵`) the definitional
/// path could never reach.
///
/// Seed-stable like [`MonteCarlo`]: trials are partitioned into fixed
/// blocks seeded by block index, workers steal blocks from an atomic
/// counter, and the reduction is exact integer arithmetic — so the
/// summary is a pure function of `(condition, trials, seed, len)`,
/// identical for every thread count.
///
/// # Examples
///
/// ```
/// use multihonest_chars::BernoulliCondition;
/// use multihonest_adversary::CanonicalMonteCarlo;
///
/// let cond = BernoulliCondition::new(0.3, 0.4)?;
/// let mc = CanonicalMonteCarlo::new(cond, 50, 11);
/// let s = mc.summary(200);
/// assert_eq!(s.rho_agreements, s.trials); // Theorem 6, every trial
/// # Ok::<(), multihonest_chars::DistributionError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CanonicalMonteCarlo {
    cond: BernoulliCondition,
    trials: u64,
    seed: u64,
    threads: usize,
}

impl CanonicalMonteCarlo {
    /// Trials per work block — small, because a single canonical build at
    /// `n = 10⁵` already takes ~0.1 s, and small blocks keep the workers
    /// load-balanced.
    const BLOCK: u64 = 4;

    /// Creates a driver running `trials` canonical builds with the given
    /// seed, using all available parallelism.
    pub fn new(cond: BernoulliCondition, trials: u64, seed: u64) -> CanonicalMonteCarlo {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        CanonicalMonteCarlo {
            cond,
            trials,
            seed,
            threads,
        }
    }

    /// Overrides the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> CanonicalMonteCarlo {
        self.threads = threads.max(1);
        self
    }

    /// The condition being sampled.
    pub fn condition(&self) -> BernoulliCondition {
        self.cond
    }

    /// The RNG seed of work block `b` (same scheme as [`MonteCarlo`]).
    fn block_seed(&self, b: u64) -> u64 {
        self.seed ^ (b.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Builds canonical forks for `trials` sampled strings of length
    /// `len` and returns the aggregated margin/ρ statistics.
    pub fn summary(&self, len: usize) -> CanonicalSummary {
        let cond = self.cond;
        let blocks = self.trials.div_ceil(Self::BLOCK);
        let total = reduce_claimed(
            blocks,
            self.threads,
            CanonicalPartial::ZERO,
            |b| {
                let quota = Self::BLOCK.min(self.trials - b * Self::BLOCK);
                let mut rng = StdRng::seed_from_u64(self.block_seed(b));
                let mut acc = CanonicalPartial::ZERO;
                for _ in 0..quota {
                    let w = cond.sample(&mut rng, len);
                    let mut builder = AstarBuilder::new();
                    for &sym in w.symbols() {
                        builder.step(sym);
                    }
                    let rho = builder.rho();
                    let margin = recurrence::relative_margin(&w, 0);
                    acc = CanonicalPartial::merge(
                        acc,
                        CanonicalPartial {
                            rho_sum: rho,
                            rho_max: rho,
                            margin_sum: margin,
                            nonneg_margin: u64::from(margin >= 0),
                            vertices: builder.fork().vertex_count() as u64,
                            agreements: u64::from(rho == recurrence::rho(&w)),
                        },
                    );
                }
                acc
            },
            CanonicalPartial::merge,
        );
        let t = self.trials.max(1) as f64;
        CanonicalSummary {
            trials: self.trials,
            len,
            rho_agreements: total.agreements,
            mean_rho: total.rho_sum as f64 / t,
            max_rho: total.rho_max,
            mean_margin: total.margin_sum as f64 / t,
            nonneg_margin_trials: total.nonneg_margin,
            mean_vertices: total.vertices as f64 / t,
        }
    }
}

/// Parallel Monte-Carlo driver over **full protocol executions** — the
/// simulator-side counterpart of [`MonteCarlo`], which samples bare
/// characteristic strings. Each trial runs the **columnar scenario
/// engine** ([`ColumnarSimulation`], bit-identical to `sim::reference`
/// by the scenario crate's equivalence suite, and several times faster)
/// on a distinct seed in streaming mode — no per-slot traces are
/// retained — and reads the observed settlement statistics from the
/// online-folded divergence index, so a whole per-trial sweep costs
/// `O(slots)` on top of the run itself (the naive per-`(s, k)` scans
/// would dominate at `O(slots²)` and worse).
///
/// [`ColumnarSimulation`]: multihonest_scenario::ColumnarSimulation
#[derive(Debug, Clone, Copy)]
pub struct SimMonteCarlo {
    cfg: multihonest_sim::SimConfig,
    runs: u64,
    seed: u64,
    threads: usize,
}

impl SimMonteCarlo {
    /// Creates a driver executing `runs` simulations with seeds
    /// `seed, seed + 1, …`, using all available parallelism.
    pub fn new(cfg: multihonest_sim::SimConfig, runs: u64, seed: u64) -> SimMonteCarlo {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        SimMonteCarlo {
            cfg,
            runs,
            seed,
            threads,
        }
    }

    /// Overrides the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> SimMonteCarlo {
        self.threads = threads.max(1);
        self
    }

    /// The configuration each trial runs.
    pub fn config(&self) -> &multihonest_sim::SimConfig {
        &self.cfg
    }

    /// Maps every trial seed through `f` (given the trial's end-of-run
    /// metrics and settlement index) and sums the results — workers claim
    /// seeds from a shared counter, and the commutative integer reduction
    /// makes the total a pure function of `(cfg, seed, runs)`, identical
    /// for every thread count.
    fn sum_over_seeds<F>(&self, f: F) -> u64
    where
        F: Fn(&multihonest_sim::Metrics, &multihonest_sim::DivergenceIndex) -> u64 + Sync,
    {
        sum_claimed(self.runs, self.threads, |i| {
            let seed = self.seed.wrapping_add(i);
            let schedule = multihonest_scenario::ColumnarSchedule::sample(
                self.cfg.honest_nodes,
                self.cfg.adversarial_stake,
                self.cfg.active_slot_coeff,
                self.cfg.slots,
                seed,
            );
            let mut strategy = self.cfg.strategy.instantiate();
            let (metrics, index) = multihonest_scenario::ColumnarSimulation::run_streaming(
                &self.cfg,
                &schedule,
                strategy.as_mut(),
                &mut (),
            );
            f(&metrics, &index)
        })
    }

    /// Frequency of executions exhibiting **any** `(s, k)`-settlement
    /// violation — an `O(1)` read per trial off the execution's maximum
    /// settlement lag.
    pub fn any_violation(&self, k: usize) -> Estimate {
        let hits = self.sum_over_seeds(|m, _| u64::from(m.observed_settlement_violation(k)));
        Estimate {
            hits,
            trials: self.runs,
        }
    }

    /// Mean number of violated anchor slots per execution at parameter
    /// `k`, via the batch sweep.
    pub fn mean_violating_slots(&self, k: usize) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        let total = self.sum_over_seeds(|_, index| index.count_violations(k, usize::MAX) as u64);
        total as f64 / self.runs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multihonest_margin::ExactSettlement;
    use multihonest_sim::{SimConfig, Strategy, TieBreak};

    #[test]
    fn wilson_interval_sanity() {
        let e = Estimate {
            hits: 50,
            trials: 100,
        };
        let (lo, hi) = e.wilson_interval(1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25);
        let empty = Estimate { hits: 0, trials: 0 };
        assert_eq!(empty.wilson_interval(1.96), (0.0, 1.0));
        assert_eq!(empty.frequency(), 0.0);
    }

    #[test]
    fn estimate_is_deterministic_given_seed() {
        let cond = BernoulliCondition::new(0.3, 0.4).unwrap();
        let mc = MonteCarlo::new(cond, 1_000, 7).with_threads(2);
        let a = mc.settlement_violation(20, 8);
        let b = mc.settlement_violation(20, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn estimate_is_stable_across_thread_counts() {
        // Block-indexed seeding: the estimate is a pure function of
        // (seed, trials), whatever the parallelism — including trial
        // counts that don't divide evenly into blocks.
        let cond = BernoulliCondition::new(0.3, 0.4).unwrap();
        for trials in [1_000u64, 2_048, 5_000] {
            let single = MonteCarlo::new(cond, trials, 7)
                .with_threads(1)
                .settlement_violation(20, 8);
            for threads in [2usize, 3, 8] {
                let multi = MonteCarlo::new(cond, trials, 7)
                    .with_threads(threads)
                    .settlement_violation(20, 8);
                assert_eq!(
                    single, multi,
                    "thread count changed the estimate ({trials} trials, {threads} threads)"
                );
            }
        }
    }

    #[test]
    fn frequency_matches_exact_dp() {
        let cond = BernoulliCondition::new(0.35, 0.4).unwrap();
        let mc = MonteCarlo::new(cond, 30_000, 11);
        let k = 10;
        let prefix = 200;
        let est = mc.settlement_violation(prefix, k);
        let exact =
            ExactSettlement::new(cond).violation_probabilities_finite_prefix(prefix, &[k])[0];
        let (lo, hi) = est.wilson_interval(3.5);
        assert!(
            lo <= exact && exact <= hi,
            "exact {exact} outside MC interval [{lo}, {hi}]"
        );
    }

    #[test]
    fn horizon_variant_at_least_pointwise() {
        let cond = BernoulliCondition::new(0.3, 0.5).unwrap();
        let mc = MonteCarlo::new(cond, 5_000, 13);
        let point = mc.settlement_violation(50, 8).frequency();
        let horizon = mc.settlement_violation_by_horizon(50, 8, 30).frequency();
        assert!(horizon >= point - 0.02);
    }

    #[test]
    fn canonical_summary_is_thread_count_invariant_and_agrees() {
        let cond = BernoulliCondition::new(0.25, 0.35).unwrap();
        for trials in [10u64, 33] {
            let single = CanonicalMonteCarlo::new(cond, trials, 5)
                .with_threads(1)
                .summary(120);
            assert_eq!(
                single.rho_agreements, trials,
                "Theorem 6 must hold on every sampled string"
            );
            assert_eq!(single.trials, trials);
            assert!(single.mean_rho >= 0.0);
            assert!(single.mean_vertices >= 121.0, "{single:?}"); // ≥ one vertex per honest slot + root
            for threads in [2usize, 3, 8] {
                let multi = CanonicalMonteCarlo::new(cond, trials, 5)
                    .with_threads(threads)
                    .summary(120);
                assert_eq!(single, multi, "thread count changed the summary");
            }
        }
    }

    #[test]
    fn canonical_summary_margin_statistics_track_epsilon() {
        // A weak adversary (large ε) should settle: mostly negative
        // margins; a strong one mostly non-negative.
        let weak = CanonicalMonteCarlo::new(BernoulliCondition::new(0.6, 0.5).unwrap(), 40, 9)
            .summary(160);
        let strong = CanonicalMonteCarlo::new(BernoulliCondition::new(0.02, 0.3).unwrap(), 40, 9)
            .summary(160);
        assert!(weak.mean_margin < strong.mean_margin);
        assert!(weak.nonneg_margin_trials <= strong.nonneg_margin_trials);
        assert!(weak.max_rho <= strong.max_rho + 5);
    }

    fn sim_mc_config() -> SimConfig {
        SimConfig {
            honest_nodes: 6,
            adversarial_stake: 0.45,
            active_slot_coeff: 0.3,
            delta: 0,
            slots: 300,
            tie_break: TieBreak::AdversarialOrder,
            strategy: Strategy::PrivateWithholding,
        }
    }

    #[test]
    fn sim_estimates_are_thread_count_invariant() {
        let mc = SimMonteCarlo::new(sim_mc_config(), 12, 5);
        let single = mc.with_threads(1).any_violation(5);
        for threads in [2usize, 4] {
            assert_eq!(single, mc.with_threads(threads).any_violation(5));
        }
        let m1 = mc.with_threads(1).mean_violating_slots(5);
        let m4 = mc.with_threads(4).mean_violating_slots(5);
        assert_eq!(m1, m4);
    }

    #[test]
    fn sim_mc_columnar_trials_match_the_reference_engine() {
        // The driver now runs the columnar engine per trial; its per-seed
        // statistics must match reference executions exactly.
        let cfg = sim_mc_config();
        let mc = SimMonteCarlo::new(cfg, 6, 11).with_threads(1);
        let k = 5;
        let mut ref_hits = 0u64;
        let mut ref_total = 0u64;
        for i in 0..6u64 {
            let sim = multihonest_sim::Simulation::run(&cfg, 11 + i);
            ref_hits += u64::from(sim.metrics().observed_settlement_violation(k));
            ref_total += sim.count_violating_slots(k, cfg.slots) as u64;
        }
        assert_eq!(mc.any_violation(k).hits, ref_hits);
        assert!((mc.mean_violating_slots(k) - ref_total as f64 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn sim_violation_frequency_decreases_with_k() {
        let mc = SimMonteCarlo::new(sim_mc_config(), 16, 3);
        let small = mc.any_violation(2);
        let large = mc.any_violation(40);
        assert!(
            small.hits >= large.hits,
            "larger k can only settle more: {} vs {}",
            small.hits,
            large.hits
        );
        assert!(
            small.hits > 0,
            "a 45% withholding adversary must violate small k"
        );
        assert!(mc.mean_violating_slots(2) >= mc.mean_violating_slots(40));
    }

    #[test]
    fn catalan_window_events_shrink_with_k() {
        let cond = BernoulliCondition::new(0.4, 0.55).unwrap();
        let mc = MonteCarlo::new(cond, 4_000, 17);
        let small = mc.no_unique_catalan_in_window(120, 40, 10).frequency();
        let large = mc.no_unique_catalan_in_window(120, 40, 40).frequency();
        assert!(
            large <= small + 0.02,
            "longer windows catch more Catalan slots"
        );
        let cons = mc.no_consecutive_catalan_in_window(120, 40, 40).frequency();
        assert!(
            cons >= large - 0.02,
            "consecutive pairs are rarer than singles"
        );
    }
}
